/**
 * @file
 * The full pipeline of section 2.3 (Figures 4, 5 and 6): the NAS CG
 * sparse matrix-vector kernel is detected by the SPMV idiom, the
 * constraint solution is printed (Figure 5), the loop nest is replaced
 * with a cusparseDcsrmv-style call (Figure 6), and the transformed
 * program is executed and verified against the sequential original.
 */
#include <cstdio>

#include "frontend/compiler.h"
#include "idioms/library.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "transform/binder.h"
#include "transform/transform.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

const char *kSource = R"(
    void spmv(int m, int *rowstr, int *colidx, double *a, double *z,
              double *r) {
        for (int j = 0; j < m; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * z[colidx[k]];
            r[j] = d;
        }
    }
)";

RuntimeValue
I(int64_t v)
{
    return RuntimeValue::makeInt(v);
}

std::vector<double>
runProgram(bool transformed)
{
    ir::Module module;
    frontend::compileMiniCOrDie(kSource, module);
    ir::Function *func = module.functionByName("spmv");

    std::vector<transform::Replacement> replacements;
    if (transformed) {
        idioms::IdiomDetector detector;
        auto matches = detector.detectOne(func, "SPMV");
        std::printf("=== Constraint solution (Figure 5) ===\n");
        const auto &sol = matches.at(0).solution;
        for (const char *var :
             {"iterator", "inner.iter_begin", "inner.iter_end",
              "inner.iterator", "idx_read.value", "seq_read.value",
              "indir_read.value", "output.address", "iter_begin",
              "iter_end", "idx_read.base_pointer",
              "seq_read.base_pointer", "indir_read.base_pointer"}) {
            const ir::Value *v = sol.lookup(var);
            std::printf("  %-24s -> %s\n", var,
                        v ? v->handle().c_str() : "(unbound)");
        }
        transform::Transformer transformer(module);
        replacements = transformer.applyAll(matches);
        std::printf("\n=== Transformed IR (Figure 6's call) ===\n%s\n",
                    ir::printFunction(func).c_str());
    }

    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    transform::bindReplacements(interp, replacements);

    // A small CSR matrix.
    const int n = 4;
    int32_t rowstr[] = {0, 2, 3, 5, 6};
    int32_t colidx[] = {0, 2, 1, 0, 3, 2};
    double a[] = {2.0, 1.0, 3.0, 4.0, 0.5, 6.0};
    double z[] = {1.0, 10.0, 100.0, 1000.0};
    uint64_t rs = mem.allocate(sizeof(rowstr));
    uint64_t ci = mem.allocate(sizeof(colidx));
    uint64_t av = mem.allocate(sizeof(a));
    uint64_t zv = mem.allocate(sizeof(z));
    uint64_t rv = mem.allocate(n * 8);
    for (int i = 0; i < n + 1; ++i)
        mem.store<int32_t>(rs + 4 * i, rowstr[i]);
    for (int i = 0; i < 6; ++i) {
        mem.store<int32_t>(ci + 4 * i, colidx[i]);
        mem.store<double>(av + 8 * i, a[i]);
    }
    for (int i = 0; i < n; ++i)
        mem.store<double>(zv + 8 * i, z[i]);

    interp.run(func, {I(n), I(rs), I(ci), I(av), I(zv), I(rv)});

    std::vector<double> out(n);
    for (int i = 0; i < n; ++i)
        out[i] = mem.load<double>(rv + 8 * i);
    return out;
}

} // namespace

int
main()
{
    std::printf("=== NAS CG kernel (Figure 4) ===\n%s\n", kSource);
    auto sequential = runProgram(false);
    auto accelerated = runProgram(true);

    std::printf("=== Verification ===\n");
    bool ok = true;
    for (size_t i = 0; i < sequential.size(); ++i) {
        std::printf("  r[%zu] = %-10g (sequential)  %-10g "
                    "(cuSPARSE-style call)\n",
                    i, sequential[i], accelerated[i]);
        ok = ok && sequential[i] == accelerated[i];
    }
    std::printf(ok ? "results identical\n" : "MISMATCH\n");
    return ok ? 0 : 1;
}
