/**
 * @file
 * Semantic (not syntactic) matching — section 4.3 / Figure 8 of the
 * paper: two syntactically distinct GEMM implementations both match
 * the single GEMM idiom, and the Lift composition of Figure 15
 * computes the same result as the BLAS library.
 */
#include <cstdio>
#include <vector>

#include "frontend/compiler.h"
#include "idioms/library.h"
#include "runtime/blas.h"
#include "runtime/lift_like.h"

using namespace repro;

namespace {

// First style: strided / transposed operands with alpha and beta.
const char *kStyle1 = R"(
    void style1(float *A, int lda, float *B, int ldb, float *C,
                int ldc, int m, int n, int k,
                float alpha, float beta) {
        for (int mm = 0; mm < m; mm++) {
            for (int nn = 0; nn < n; nn++) {
                float c = 0.0f;
                for (int i = 0; i < k; i++) {
                    float a = A[mm + i * lda];
                    float b = B[nn + i * ldb];
                    c += a * b;
                }
                C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
            }
        }
    }
)";

// Second style: two-dimensional global arrays, memory accumulator.
const char *kStyle2 = R"(
    float M1[64][64];
    float M2[64][64];
    float M3[64][64];
    void style2() {
        for (int i = 0; i < 64; i++)
            for (int j = 0; j < 64; j++) {
                M3[i][j] = 0.0f;
                for (int k = 0; k < 64; k++)
                    M3[i][j] += M1[i][k] * M2[k][j];
            }
    }
)";

int
gemmMatches(const char *source, const char *entry)
{
    ir::Module module;
    frontend::compileMiniCOrDie(source, module);
    idioms::IdiomDetector detector;
    auto matches =
        detector.detectOne(module.functionByName(entry), "GEMM");
    return static_cast<int>(matches.size());
}

} // namespace

int
main()
{
    std::printf("Style 1 (strided, alpha/beta): %d GEMM match(es)\n",
                gemmMatches(kStyle1, "style1"));
    std::printf("Style 2 (2D arrays, += accumulator): %d GEMM "
                "match(es)\n\n",
                gemmMatches(kStyle2, "style2"));

    // Figure 15: gemm_in_lift — and it agrees with the BLAS library.
    const size_t m = 3, n = 4, k = 5;
    std::vector<double> a(m * k), b(k * n), c(m * n, 1.0);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = 0.5 + 0.25 * static_cast<double>(i % 7);
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = 1.0 - 0.125 * static_cast<double>(i % 5);

    runtime::lift::Value lift_out =
        runtime::lift::gemmInLift(a, b, c, m, n, k, 2.0, 0.5);

    std::vector<double> blas_out = c;
    // Row-major: C[i*n + j], A[i*k + kk], B[kk*n + j].
    runtime::blas::gemm(blas_out.data(), static_cast<int64_t>(n), 1,
                        a.data(), static_cast<int64_t>(k), 1,
                        b.data(), 1, static_cast<int64_t>(n),
                        static_cast<int64_t>(m),
                        static_cast<int64_t>(n),
                        static_cast<int64_t>(k), 2.0, 0.5);

    std::printf("gemm_in_lift (Figure 15) vs BLAS library:\n");
    bool ok = true;
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double lv = lift_out.items()[i].items()[j].scalar();
            double bv = blas_out[i * n + j];
            ok = ok && lv == bv;
        }
    }
    std::printf(ok ? "  identical results\n" : "  MISMATCH\n");

    // Show the functional composition Lift compiles.
    auto mult = [](const runtime::lift::Value &p) {
        return runtime::lift::Value(p.items()[0].scalar() *
                                    p.items()[1].scalar());
    };
    auto row = runtime::lift::input(
        runtime::lift::Value::fromVector({1, 2, 3}), "a_row");
    auto col = runtime::lift::input(
        runtime::lift::Value::fromVector({4, 5, 6}), "b_col");
    auto add = [](const runtime::lift::Value &x,
                  const runtime::lift::Value &y) {
        return runtime::lift::Value(x.scalar() + y.scalar());
    };
    auto dot = runtime::lift::reduce(
        add, runtime::lift::Value(0.0),
        runtime::lift::map(mult, runtime::lift::zip(row, col),
                           "mult"),
        "add");
    std::printf("\n%s\n",
                runtime::lift::generateOpenCl(dot, "dot").c_str());
    return ok ? 0 : 1;
}
