/**
 * @file
 * A scripted client session against the matching service: start the
 * daemon's socket front in-process on a unix socket, connect as an
 * ordinary socket client, and drive an edit session through the line
 * protocol (docs/SERVICE.md) — exactly what an editor integration or
 * build-system hook would do against a long-running repro_serviced.
 *
 * The session submits a module, resubmits it unchanged (every
 * function replays from the cache), then submits an edited version
 * (only the edited function re-solves). Exits non-zero if any
 * response deviates from the protocol contract, so the build treats
 * this example as a service smoke test.
 */
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/server.h"
#include "service/service.h"

using namespace repro;

namespace {

/** The client's module; @p bound is the constant an "edit" changes. */
std::string
moduleSource(int bound)
{
    std::ostringstream os;
    os << "void reduce(double *a, double *out) {\n"
          "    double s = 0.0;\n"
          "    for (int i = 0; i < " << bound << "; i++)\n"
          "        s = s + a[i];\n"
          "    out[0] = s;\n"
          "}\n"
          "void histogram(int *keys, int *bins) {\n"
          "    for (int i = 0; i < 64; i++)\n"
          "        bins[keys[i]] = bins[keys[i]] + 1;\n"
          "}\n";
    return os.str();
}

/** Blocking unix-socket line-protocol client. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    bool
    send(const std::string &data)
    {
        size_t sent = 0;
        while (sent < data.size()) {
            ssize_t n = ::write(fd_, data.data() + sent,
                                data.size() - sent);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** One response line (responses are newline-delimited). */
    std::string
    readLine()
    {
        std::string line;
        char c;
        while (::read(fd_, &c, 1) == 1) {
            if (c == '\n')
                break;
            line.push_back(c);
        }
        return line;
    }

    /** A full SUBMIT/MATCHES response: OK/ERR line through END. */
    std::string
    readResponse()
    {
        std::string all;
        for (;;) {
            std::string line = readLine();
            all += line;
            all += '\n';
            if (line == "END" || line.rfind("ERR", 0) == 0 ||
                line.empty())
                return all;
        }
    }

  private:
    int fd_ = -1;
};

bool
expectContains(const std::string &response, const std::string &needle,
               const char *what)
{
    if (response.find(needle) != std::string::npos)
        return true;
    std::fprintf(stderr, "FAIL: %s — expected \"%s\" in:\n%s\n", what,
                 needle.c_str(), response.c_str());
    return false;
}

} // namespace

int
main()
{
    const std::string socketPath =
        "/tmp/repro_service_example_" + std::to_string(::getpid()) +
        ".sock";

    // The daemon, in-process: one shared cache behind a socket front.
    service::MatchService svc;
    service::ServerOptions serverOpts;
    serverOpts.unixPath = socketPath;
    service::SocketServer server(svc, serverOpts);
    server.start();

    bool ok = true;
    {
        Client client(socketPath);
        if (!client.connected()) {
            std::fprintf(stderr, "FAIL: connect(%s)\n",
                         socketPath.c_str());
            server.stop();
            return 1;
        }

        client.send("HELLO\n");
        std::string hello = client.readLine();
        std::printf("<- %s\n", hello.c_str());
        ok &= expectContains(hello, "OK service=repro-match",
                             "HELLO");

        // Cold submit: both functions are solved.
        const std::string v1 = moduleSource(100);
        client.send("SUBMIT editor_buffer " +
                    std::to_string(v1.size()) + "\n" + v1);
        std::string cold = client.readResponse();
        std::printf("cold submit:\n%s", cold.c_str());
        ok &= expectContains(cold, "hits=0 misses=2", "cold submit");
        ok &= expectContains(cold, "source=solve", "cold submit");

        // Unchanged resubmit: both replay from the cache.
        client.send("SUBMIT editor_buffer " +
                    std::to_string(v1.size()) + "\n" + v1);
        std::string warm = client.readResponse();
        std::printf("warm resubmit:\n%s", warm.c_str());
        ok &= expectContains(warm, "hits=2 misses=0",
                             "warm resubmit");
        ok &= expectContains(warm, "source=cache", "warm resubmit");

        // Edit reduce's loop bound: it re-solves, histogram replays.
        const std::string v2 = moduleSource(200);
        client.send("SUBMIT editor_buffer " +
                    std::to_string(v2.size()) + "\n" + v2);
        std::string edited = client.readResponse();
        std::printf("edited resubmit:\n%s", edited.c_str());
        ok &= expectContains(edited, "hits=1 misses=1",
                             "edited resubmit");
        ok &= expectContains(edited, "idiom=Reduction",
                             "edited resubmit");

        client.send("STATS\n");
        std::string stats = client.readLine();
        std::printf("<- %s\n", stats.c_str());
        ok &= expectContains(stats, "sessions=1", "STATS");

        client.send("QUIT\n");
        std::printf("<- %s\n", client.readLine().c_str());
    }

    server.stop();
    if (!ok)
        return 1;
    std::printf("service client session OK\n");
    return 0;
}
