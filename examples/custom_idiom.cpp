/**
 * @file
 * Extensibility: "new idioms can be easily added thanks to the
 * flexibility of IDL ... without touching the core compiler"
 * (section 1 of the paper).
 *
 * This example defines a brand-new idiom — AXPY, y[i] = y[i] + a*x[i]
 * — entirely in IDL at runtime, reusing the library's building blocks
 * through inheritance, and detects it in user code.
 */
#include <cstdio>

#include "frontend/compiler.h"
#include "idl/lower.h"
#include "idl/parser.h"
#include "idioms/library.h"
#include "solver/solver.h"

using namespace repro;

namespace {

// The new idiom: a For loop whose body stores y[i] = y[i] + a * x[i].
// VectorRead/VectorStore and For come from the standard library.
const char *kAxpyIdl = R"(
Constraint AXPY
( inherits For and
  inherits VectorStore with {iterator} as {idx} at {output} and
  {body_begin} control flow dominates {output.store_instr} and
  inherits VectorRead with {iterator} as {idx} at {x_read} and
  inherits VectorRead with {iterator} as {idx} at {y_read} and
  {y_read.base_pointer} is the same as {output.base_pointer} and
  {x_read.base_pointer} is not the same as {output.base_pointer} and
  {sum} is first argument of {output.store_instr} and
  {sum} is fadd instruction and
  {y_read.value} is first argument of {sum} and
  {scaled} is second argument of {sum} and
  {scaled} is fmul instruction and
  ( {factor} is first argument of {scaled} or
    {factor} is second argument of {scaled} ) and
  {factor} is a compile time value and
  ( {x_read.value} is first argument of {scaled} or
    {x_read.value} is second argument of {scaled} ) )
End
)";

} // namespace

int
main()
{
    const char *source = R"(
        void saxpy_like(double *y, double *x, double a, int n) {
            for (int i = 0; i < n; i++)
                y[i] = y[i] + a * x[i];
        }
        void not_axpy(double *y, double *x, double a, int n) {
            for (int i = 0; i < n; i++)
                y[i] = x[i] * x[i] + a;
        }
    )";

    // Extend the standard library with the user idiom: no compiler
    // changes, just more IDL text.
    idl::IdlProgram program;
    DiagEngine diags;
    idl::parseIdlInto(idioms::idiomLibrarySource(), program, diags);
    idl::parseIdlInto(kAxpyIdl, program, diags);
    if (diags.hasErrors()) {
        std::printf("IDL error:\n%s", diags.dump().c_str());
        return 1;
    }
    auto lowered = idl::lowerIdiom(program, "AXPY");

    ir::Module module;
    frontend::compileMiniCOrDie(source, module);
    for (const char *fn : {"saxpy_like", "not_axpy"}) {
        ir::Function *func = module.functionByName(fn);
        analysis::FunctionAnalyses analyses(func);
        solver::Solver solver(func, analyses);
        auto solutions = solver.solveAll(lowered);
        std::printf("%-12s: %zu AXPY match(es)", fn,
                    solutions.size());
        if (!solutions.empty()) {
            const auto &sol = solutions.front();
            std::printf("  [factor=%s x=%s y=%s]",
                        sol.lookup("factor")->handle().c_str(),
                        sol.lookup("x_read.base_pointer")
                            ->handle()
                            .c_str(),
                        sol.lookup("output.base_pointer")
                            ->handle()
                            .c_str());
        }
        std::printf("\n");
    }
    return 0;
}
