/**
 * @file
 * Quickstart: the running example of section 2.2 of the paper
 * (Figures 2 and 3).
 *
 * A C function is compiled to SSA IR, the FactorizationOpportunity
 * idiom is expressed in IDL, and the constraint solver reports the
 * single satisfying assignment — {factor} binds to %a.
 */
#include <cstdio>

#include "frontend/compiler.h"
#include "idl/lower.h"
#include "idl/parser.h"
#include "idioms/library.h"
#include "ir/printer.h"
#include "solver/solver.h"

using namespace repro;

int
main()
{
    const char *source = R"(
        int example(int a, int b, int c) {
            int d = a;
            return (a*b) + (c*d);
        }
    )";

    std::printf("=== Original C code ===\n%s\n", source);

    ir::Module module;
    frontend::compileMiniCOrDie(source, module);
    ir::Function *func = module.functionByName("example");
    std::printf("=== Resulting IR ===\n%s\n",
                ir::printFunction(func).c_str());

    // The idiom is part of the library (Figure 2 of the paper); any
    // IDL program parsed at runtime works the same way.
    auto lowered = idl::lowerIdiom(idioms::idiomLibrary(),
                                   "FactorizationOpportunity");

    analysis::FunctionAnalyses analyses(func);
    solver::Solver solver(func, analyses);
    auto solutions = solver.solveAll(lowered);

    std::printf("=== Detected factorization opportunities ===\n");
    for (const auto &sol : solutions) {
        std::printf("{ \"sum\": %s, \"left_addend\": %s, "
                    "\"right_addend\": %s, \"factor\": %s }\n",
                    sol.lookup("sum")->handle().c_str(),
                    sol.lookup("left_addend")->handle().c_str(),
                    sol.lookup("right_addend")->handle().c_str(),
                    sol.lookup("factor")->handle().c_str());
    }
    std::printf("\n(The paper's Figure 3 reports exactly one solution"
                " with factor = %%a.)\n");
    return solutions.size() == 1 ? 0 : 1;
}
