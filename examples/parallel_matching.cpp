/**
 * @file
 * Parallel matching walkthrough: shard a multi-function module and
 * the whole NAS/Parboil corpus over worker threads, and check the
 * results are byte-identical to the serial driver.
 *
 * Exits 0 when serial and parallel agree (the CTest smoke contract).
 */
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"

using namespace repro;

namespace {

std::vector<std::string>
keysOf(const driver::MatchReport &report)
{
    std::vector<std::string> keys;
    for (const auto &m : report.allMatches())
        keys.push_back(idioms::matchFingerprint(m));
    return keys;
}

} // namespace

int
main()
{
    // 1. One module, many functions: intra-module sharding.
    std::ostringstream src;
    for (int i = 0; i < 8; ++i) {
        src << "double dot" << i << "(double *a, double *b, int n) {\n"
            << "  double acc = 0.0;\n"
            << "  for (int k = 0; k < n; k = k + 1)\n"
            << "    acc = acc + a[k] * b[k];\n"
            << "  return acc;\n"
            << "}\n";
    }

    driver::MatchingDriver drv;
    ir::Module serialModule;
    auto serial = drv.compileAndMatch(src.str(), serialModule);
    ir::Module parallelModule;
    auto parallel =
        drv.compileAndMatchParallel(src.str(), parallelModule, 4);

    std::printf("one module, 8 functions:  serial %zu matches, "
                "4 threads %zu matches\n",
                serial.matchCount(), parallel.matchCount());
    if (keysOf(serial) != keysOf(parallel)) {
        std::fprintf(stderr, "FAIL: intra-module mismatch\n");
        return 1;
    }

    // 2. The Table 1 corpus: one shared work queue across 21
    // single-function modules (runParallelBatch), against per-module
    // serial matching.
    std::vector<std::unique_ptr<ir::Module>> modules;
    std::vector<ir::Module *> ptrs;
    std::vector<std::string> serialKeys, parallelKeys;
    size_t serialCount = 0, parallelCount = 0;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        modules.push_back(std::make_unique<ir::Module>());
        frontend::compileMiniCOrDie(b.source, *modules.back());
        ptrs.push_back(modules.back().get());
    }
    for (ir::Module *m : ptrs) {
        auto report = drv.matchModule(*m);
        serialCount += report.matchCount();
        for (auto &k : keysOf(report))
            serialKeys.push_back(std::move(k));
    }
    for (const auto &report : drv.runParallelBatch(ptrs, 4)) {
        parallelCount += report.matchCount();
        for (auto &k : keysOf(report))
            parallelKeys.push_back(std::move(k));
    }

    std::printf("NAS/Parboil, 21 modules:  serial %zu matches, "
                "4 threads %zu matches\n",
                serialCount, parallelCount);
    if (serialKeys != parallelKeys) {
        std::fprintf(stderr, "FAIL: corpus mismatch\n");
        return 1;
    }
    std::printf("serial and parallel drivers agree\n");
    return 0;
}
