/**
 * @file
 * Fault-injection verification campaign over the NAS/Parboil suite
 * (BENCH_harden.json).
 *
 * Sweeps deterministic single-bit faults across every benchmark
 * program twice — once with the entry function hardened (EDDI
 * duplication + CFCSS signatures) and once as an unprotected baseline
 * — and classifies each injected run as detected / masked / sdc /
 * crashed (driver/harden_campaign.h). The binary fails when the
 * hardened sweep catches less than 90% of the otherwise-silent
 * corruptions, or when the baseline sweep shows no SDC at all (which
 * would mean the campaign is not actually stressing anything).
 *
 * Flags: --json=PATH (default BENCH_harden.json),
 *        --injections=N per program per variant (default 40),
 *        --threads=N campaign shards (default 1; any value produces
 *                    byte-identical results).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/harden_campaign.h"

using namespace repro;
using namespace repro::bench;

namespace {

struct Totals
{
    size_t detected = 0, masked = 0, sdc = 0, crashed = 0;

    void
    add(const driver::HardenCampaignResult &r)
    {
        detected += r.detected;
        masked += r.masked;
        sdc += r.sdc;
        crashed += r.crashed;
    }

    double
    detectionRate() const
    {
        size_t denom = detected + sdc;
        return denom == 0 ? 1.0
                          : static_cast<double>(detected) /
                                static_cast<double>(denom);
    }
};

void
emitCounts(std::ofstream &out, const char *key, size_t detected,
           size_t masked, size_t sdc, size_t crashed, double rate)
{
    out << "\"" << key << "\": {\"detected\": " << detected
        << ", \"masked\": " << masked << ", \"sdc\": " << sdc
        << ", \"crashed\": " << crashed
        << ", \"detection_rate\": " << rate << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_harden.json";
    size_t injections = 40;
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--injections=", 13) == 0)
            injections = static_cast<size_t>(
                std::atol(argv[i] + 13));
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
    if (injections < 1)
        injections = 1;
    if (threads < 1)
        threads = 1;

    const auto &suite = benchmarks::nasParboilSuite();
    std::printf("Fault-injection verification campaign: %zu "
                "single-bit faults per program per variant over the "
                "Fig. 16-19 workloads (%zu programs)\n",
                injections, suite.size());

    driver::HardenCampaignOptions opts;
    opts.injectionsPerProgram = injections;

    opts.harden = true;
    double t0 = nowMs();
    std::vector<driver::HardenCampaignResult> hardened =
        driver::runHardenCampaignSuite(opts, threads);
    double hardenedMs = nowMs() - t0;

    opts.harden = false;
    t0 = nowMs();
    std::vector<driver::HardenCampaignResult> baseline =
        driver::runHardenCampaignSuite(opts, threads);
    double baselineMs = nowMs() - t0;

    std::printf("%-8s %12s | %-28s | %-28s\n", "bench", "boundaries",
                "hardened det/mask/sdc/crash", "baseline det/mask/sdc/crash");
    Totals hardTotal, baseTotal;
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &h = hardened[i];
        const auto &b = baseline[i];
        hardTotal.add(h);
        baseTotal.add(b);
        std::printf("%-8s %12llu | %4zu %5zu %4zu %5zu  (%.2f) | "
                    "%4zu %5zu %4zu %5zu  (%.2f)\n",
                    h.program.c_str(),
                    static_cast<unsigned long long>(
                        h.goldenBoundaries),
                    h.detected, h.masked, h.sdc, h.crashed,
                    h.detectionRate(), b.detected, b.masked, b.sdc,
                    b.crashed, b.detectionRate());
    }
    std::printf("hardened: detected %zu, masked %zu, sdc %zu, "
                "crashed %zu -> detection rate %.3f (%.1f ms)\n",
                hardTotal.detected, hardTotal.masked, hardTotal.sdc,
                hardTotal.crashed, hardTotal.detectionRate(),
                hardenedMs);
    std::printf("baseline: detected %zu, masked %zu, sdc %zu, "
                "crashed %zu (%.1f ms)\n",
                baseTotal.detected, baseTotal.masked, baseTotal.sdc,
                baseTotal.crashed, baselineMs);

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"nas-parboil-fault-injection\",\n"
        << "  \"programs\": " << suite.size() << ",\n"
        << "  \"injections_per_program\": " << injections << ",\n"
        << "  \"seed\": " << driver::HardenCampaignOptions().seed
        << ",\n"
        << "  \"hardened_ms\": " << hardenedMs << ",\n"
        << "  \"baseline_ms\": " << baselineMs << ",\n"
        << "  \"totals\": {";
    emitCounts(out, "hardened", hardTotal.detected, hardTotal.masked,
               hardTotal.sdc, hardTotal.crashed,
               hardTotal.detectionRate());
    out << ", ";
    emitCounts(out, "baseline", baseTotal.detected, baseTotal.masked,
               baseTotal.sdc, baseTotal.crashed,
               baseTotal.detectionRate());
    out << "},\n  \"suites\": [\n";
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &h = hardened[i];
        const auto &b = baseline[i];
        out << "    {\"name\": \"" << h.program << "\""
            << ", \"golden_steps\": " << h.goldenSteps
            << ", \"golden_boundaries\": " << h.goldenBoundaries
            << ", \"baseline_golden_steps\": " << b.goldenSteps
            << ", ";
        emitCounts(out, "hardened", h.detected, h.masked, h.sdc,
                   h.crashed, h.detectionRate());
        out << ", ";
        emitCounts(out, "baseline", b.detected, b.masked, b.sdc,
                   b.crashed, b.detectionRate());
        out << "}" << (i + 1 < suite.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    if (out.fail()) {
        std::fprintf(stderr, "FAIL: could not write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // Acceptance gates: the hardened sweep must catch >= 90% of the
    // otherwise-silent corruptions, and the baseline sweep must show
    // that the injected faults matter at all.
    if (hardTotal.detectionRate() < 0.9) {
        std::fprintf(stderr,
                     "FAIL: hardened detection rate %.3f < 0.9\n",
                     hardTotal.detectionRate());
        return 1;
    }
    if (baseTotal.sdc == 0) {
        std::fprintf(stderr,
                     "FAIL: baseline sweep produced no SDC - the "
                     "campaign is not stressing the programs\n");
        return 1;
    }
    return 0;
}
