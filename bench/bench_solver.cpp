/**
 * @file
 * google-benchmark microbenchmarks for the constraint solver
 * (section 4.4: "the overhead is modest"): detection cost for the
 * factorization example, GEMM, SPMV and full-suite scans. All paths
 * go through the MatchingDriver so the measured pipeline is the same
 * one the table/figure binaries use. The *Cached variants reuse one
 * driver (warm per-function analyses) against the cold path that
 * rebuilds dominators/loops every iteration.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace repro;

namespace {

/** A function with @p n independent statements plus one match. */
std::string
syntheticSource(int n)
{
    std::string src = "int f(int a, int b, int c) {\n int acc = 0;\n";
    for (int i = 0; i < n; ++i) {
        src += " acc = acc + " + std::to_string(i % 7) +
               " * (a + " + std::to_string(i) + ");\n";
    }
    src += " return (a*b) + (c*a) + acc;\n}\n";
    return src;
}

void
BM_DetectFactorization(benchmark::State &state)
{
    ir::Module module;
    frontend::compileMiniCOrDie(
        syntheticSource(static_cast<int>(state.range(0))), module);
    ir::Function *func = module.functionByName("f");
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto matches = drv.matchOne(func, "FactorizationOpportunity");
        benchmark::DoNotOptimize(matches);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_DetectIdiom(benchmark::State &state, const char *bench_name,
               const char *idiom)
{
    const auto &b = benchmarks::benchmarkByName(bench_name);
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto matches = drv.matchOne(func, idiom);
        benchmark::DoNotOptimize(matches);
    }
}

/** Same as BM_DetectIdiom with warm analyses across iterations. */
void
BM_DetectIdiomCached(benchmark::State &state, const char *bench_name,
                     const char *idiom)
{
    const auto &b = benchmarks::benchmarkByName(bench_name);
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);
    driver::MatchingDriver drv;
    for (auto _ : state) {
        auto matches = drv.matchOne(func, idiom);
        benchmark::DoNotOptimize(matches);
    }
}

void
BM_DetectSpmvInCg(benchmark::State &state)
{
    BM_DetectIdiom(state, "CG", "SPMV");
}

void
BM_DetectSpmvInCgCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "CG", "SPMV");
}

void
BM_DetectGemmInSgemm(benchmark::State &state)
{
    BM_DetectIdiom(state, "sgemm", "GEMM");
}

void
BM_DetectGemmInSgemmCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "sgemm", "GEMM");
}

void
BM_DetectStencilInParboil(benchmark::State &state)
{
    BM_DetectIdiom(state, "stencil", "Stencil3D");
}

void
BM_DetectStencilInParboilCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "stencil", "Stencil3D");
}

void
BM_DetectFullSuite(benchmark::State &state)
{
    for (auto _ : state) {
        int total = 0;
        for (const auto &b : benchmarks::nasParboilSuite()) {
            ir::Module module;
            auto matches = bench::detectBenchmark(b, module);
            total += static_cast<int>(matches.size());
        }
        benchmark::DoNotOptimize(total);
    }
}

/**
 * Threads sweep of the parallel driver over the precompiled Table 1
 * workload (matching only — compilation is excluded so the sweep
 * isolates the sharded solve). Arg(1) is the serial-equivalent
 * baseline of the speedup curve.
 */
void
BM_MatchSuiteParallel(benchmark::State &state)
{
    auto modules = bench::compileSuite();
    auto ptrs = bench::modulePointers(modules);
    unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto reports = drv.runParallelBatch(ptrs, threads);
        benchmark::DoNotOptimize(reports);
    }
}

} // namespace

BENCHMARK(BM_DetectFactorization)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_DetectSpmvInCg);
BENCHMARK(BM_DetectSpmvInCgCached);
BENCHMARK(BM_DetectGemmInSgemm);
BENCHMARK(BM_DetectGemmInSgemmCached);
BENCHMARK(BM_DetectStencilInParboil);
BENCHMARK(BM_DetectStencilInParboilCached);
BENCHMARK(BM_DetectFullSuite)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatchSuiteParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
