/**
 * @file
 * google-benchmark microbenchmarks for the constraint solver
 * (section 4.4: "the overhead is modest"): detection cost for the
 * factorization example, GEMM, SPMV and full-suite scans. All paths
 * go through the MatchingDriver so the measured pipeline is the same
 * one the table/figure binaries use. The *Cached variants reuse one
 * driver (warm per-function analyses) against the cold path that
 * rebuilds dominators/loops every iteration.
 *
 * Before the microbenchmarks run, main() takes one canonical
 * measurement of the Table 1 matching workload — per-suite wall time
 * and SolveStats (assignments/checks/solutions/rotations/dedup hits),
 * serial and 4-thread totals — and writes it as BENCH_solver.json so
 * the solver's perf trajectory is tracked per commit (the Release CI
 * job uploads the file as an artifact). Flags, consumed before the
 * remainder is handed to google-benchmark:
 *
 *   --json=PATH            output path (default BENCH_solver.json)
 *   --baseline_ms=X        serial-total of a reference commit; adds a
 *                          baseline/speedup record to the JSON
 *   --baseline_commit=SHA  labels that reference commit
 *   --benchmark_filter=^$  (google-benchmark) skip the microbenches,
 *                          e.g. for the CI artifact job
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace repro;

namespace {

/** A function with @p n independent statements plus one match. */
std::string
syntheticSource(int n)
{
    std::string src = "int f(int a, int b, int c) {\n int acc = 0;\n";
    for (int i = 0; i < n; ++i) {
        src += " acc = acc + " + std::to_string(i % 7) +
               " * (a + " + std::to_string(i) + ");\n";
    }
    src += " return (a*b) + (c*a) + acc;\n}\n";
    return src;
}

void
BM_DetectFactorization(benchmark::State &state)
{
    ir::Module module;
    frontend::compileMiniCOrDie(
        syntheticSource(static_cast<int>(state.range(0))), module);
    ir::Function *func = module.functionByName("f");
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto matches = drv.matchOne(func, "FactorizationOpportunity");
        benchmark::DoNotOptimize(matches);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_DetectIdiom(benchmark::State &state, const char *bench_name,
               const char *idiom)
{
    const auto &b = benchmarks::benchmarkByName(bench_name);
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto matches = drv.matchOne(func, idiom);
        benchmark::DoNotOptimize(matches);
    }
}

/** Same as BM_DetectIdiom with warm analyses across iterations. */
void
BM_DetectIdiomCached(benchmark::State &state, const char *bench_name,
                     const char *idiom)
{
    const auto &b = benchmarks::benchmarkByName(bench_name);
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);
    driver::MatchingDriver drv;
    for (auto _ : state) {
        auto matches = drv.matchOne(func, idiom);
        benchmark::DoNotOptimize(matches);
    }
}

void
BM_DetectSpmvInCg(benchmark::State &state)
{
    BM_DetectIdiom(state, "CG", "SPMV");
}

void
BM_DetectSpmvInCgCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "CG", "SPMV");
}

void
BM_DetectGemmInSgemm(benchmark::State &state)
{
    BM_DetectIdiom(state, "sgemm", "GEMM");
}

void
BM_DetectGemmInSgemmCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "sgemm", "GEMM");
}

void
BM_DetectStencilInParboil(benchmark::State &state)
{
    BM_DetectIdiom(state, "stencil", "Stencil3D");
}

void
BM_DetectStencilInParboilCached(benchmark::State &state)
{
    BM_DetectIdiomCached(state, "stencil", "Stencil3D");
}

void
BM_DetectFullSuite(benchmark::State &state)
{
    for (auto _ : state) {
        int total = 0;
        for (const auto &b : benchmarks::nasParboilSuite()) {
            ir::Module module;
            auto matches = bench::detectBenchmark(b, module);
            total += static_cast<int>(matches.size());
        }
        benchmark::DoNotOptimize(total);
    }
}

/**
 * Threads sweep of the parallel driver over the precompiled Table 1
 * workload (matching only — compilation is excluded so the sweep
 * isolates the sharded solve). Arg(1) is the serial-equivalent
 * baseline of the speedup curve.
 */
void
BM_MatchSuiteParallel(benchmark::State &state)
{
    auto modules = bench::compileSuite();
    auto ptrs = bench::modulePointers(modules);
    unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        driver::MatchingDriver drv;
        auto reports = drv.runParallelBatch(ptrs, threads);
        benchmark::DoNotOptimize(reports);
    }
}

} // namespace

BENCHMARK(BM_DetectFactorization)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_DetectSpmvInCg);
BENCHMARK(BM_DetectSpmvInCgCached);
BENCHMARK(BM_DetectGemmInSgemm);
BENCHMARK(BM_DetectGemmInSgemmCached);
BENCHMARK(BM_DetectStencilInParboil);
BENCHMARK(BM_DetectStencilInParboilCached);
BENCHMARK(BM_DetectFullSuite)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatchSuiteParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

namespace {

using bench::bestOf;

void
printStatsFields(std::ofstream &out, const solver::SolveStats &s)
{
    out << "\"assignments\": " << s.assignments
        << ", \"checks\": " << s.checks
        << ", \"solutions\": " << s.solutions
        << ", \"rotations\": " << s.rotations
        << ", \"dedup_hits\": " << s.dedupHits;
}

/**
 * The canonical solver measurement: matching only (modules
 * precompiled), the same workload bench_parallel sweeps, per suite
 * and in total, serial and with 4 worker threads.
 */
void
writeCanonicalJson(const std::string &path, double baseline_ms,
                   const std::string &baseline_commit)
{
    const int reps = 5;
    const auto &suite = benchmarks::nasParboilSuite();
    auto modules = bench::compileSuite();
    auto ptrs = bench::modulePointers(modules);

    struct SuitePoint
    {
        std::string name;
        double ms = 0.0;
        size_t matches = 0;
        solver::SolveStats stats;
    };
    std::vector<SuitePoint> points;
    solver::SolveStats totals;
    size_t total_matches = 0;
    for (size_t i = 0; i < ptrs.size(); ++i) {
        SuitePoint p;
        p.name = suite[i].name;
        driver::MatchReport report;
        p.ms = bestOf(reps, [&] {
            driver::MatchingDriver drv;
            report = drv.matchModule(*ptrs[i]);
        });
        p.matches = report.matchCount();
        p.stats = report.totals;
        totals += p.stats;
        total_matches += p.matches;
        points.push_back(std::move(p));
    }
    double serial_ms = bestOf(reps, [&] {
        driver::MatchingDriver drv;
        for (ir::Module *m : ptrs)
            drv.matchModule(*m);
    });
    double threads4_ms = bestOf(reps, [&] {
        driver::MatchingDriver drv;
        drv.runParallelBatch(ptrs, 4);
    });

    std::printf("Canonical solver measurement: Table 1 workload "
                "(%zu modules, %zu matches, best of %d)\n",
                ptrs.size(), total_matches, reps);
    std::printf("%-10s %9s %8s %12s %10s %10s %10s %10s\n", "suite",
                "ms", "matches", "assignments", "checks", "solutions",
                "rotations", "dedup");
    for (const auto &p : points) {
        std::printf("%-10s %9.3f %8zu %12llu %10llu %10llu %10llu "
                    "%10llu\n",
                    p.name.c_str(), p.ms, p.matches,
                    static_cast<unsigned long long>(
                        p.stats.assignments),
                    static_cast<unsigned long long>(p.stats.checks),
                    static_cast<unsigned long long>(p.stats.solutions),
                    static_cast<unsigned long long>(p.stats.rotations),
                    static_cast<unsigned long long>(
                        p.stats.dedupHits));
    }
    std::printf("serial total %.2f ms, 4-thread total %.2f ms\n",
                serial_ms, threads4_ms);
    if (baseline_ms > 0.0) {
        std::printf("baseline %s: %.2f ms -> speedup %.2fx\n",
                    baseline_commit.c_str(), baseline_ms,
                    baseline_ms / serial_ms);
    }

    std::ofstream out(path);
    out << "{\n"
        << "  \"workload\": \"nas-parboil-table1\",\n"
        << "  \"modules\": " << ptrs.size() << ",\n"
        << "  \"matches\": " << total_matches << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"serial_total_ms\": " << serial_ms << ",\n"
        << "  \"threads4_total_ms\": " << threads4_ms << ",\n"
        << "  \"totals\": {";
    printStatsFields(out, totals);
    out << "},\n";
    if (baseline_ms > 0.0) {
        out << "  \"baseline\": {\"commit\": \"" << baseline_commit
            << "\", \"serial_total_ms\": " << baseline_ms
            << ", \"speedup\": " << baseline_ms / serial_ms << "},\n";
    }
    out << "  \"suites\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        out << "    {\"name\": \"" << p.name << "\", \"ms\": " << p.ms
            << ", \"matches\": " << p.matches << ", ";
        printStatsFields(out, p.stats);
        out << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_solver.json";
    double baseline_ms = 0.0;
    std::string baseline_commit = "unknown";

    // Strip our flags; everything else goes to google-benchmark.
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--baseline_ms=", 14) == 0)
            baseline_ms = std::atof(argv[i] + 14);
        else if (std::strncmp(argv[i], "--baseline_commit=", 18) == 0)
            baseline_commit = argv[i] + 18;
        else
            rest.push_back(argv[i]);
    }
    int rest_argc = static_cast<int>(rest.size());

    writeCanonicalJson(json_path, baseline_ms, baseline_commit);

    benchmark::Initialize(&rest_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
