/**
 * @file
 * Regenerates Table 2: compile time without and with IDL detection,
 * and the overhead percentage. (The paper reports an average overhead
 * of 82% for its solver; we report what our solver measures.)
 */
#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace repro;

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    auto d = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

int
main()
{
    std::printf("Table 2: Compile time cost (milliseconds)\n");
    std::printf("%-8s %12s %12s %10s\n", "bench", "without IDL",
                "with IDL", "overhead");
    double total_without = 0, total_with = 0;
    const int reps = 5;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        double without_ms = 1e30, with_ms = 1e30;
        for (int r = 0; r < reps; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            ir::Module m1;
            frontend::compileMiniCOrDie(b.source, m1);
            without_ms = std::min(without_ms, msSince(t0));

            auto t1 = std::chrono::steady_clock::now();
            ir::Module m2;
            frontend::compileMiniCOrDie(b.source, m2);
            idioms::IdiomDetector detector;
            detector.detectModule(m2);
            with_ms = std::min(with_ms, msSince(t1));
        }
        double overhead = (with_ms / without_ms - 1.0) * 100.0;
        std::printf("%-8s %12.2f %12.2f %9.0f%%\n", b.name.c_str(),
                    without_ms, with_ms, overhead);
        total_without += without_ms;
        total_with += with_ms;
    }
    std::printf("%-8s %12.2f %12.2f %9.0f%%\n", "all",
                total_without, total_with,
                (total_with / total_without - 1.0) * 100.0);
    std::printf("\nPaper: overhead ranges 24%%..484%%, average 82%%\n");
    return 0;
}
