/**
 * @file
 * Regenerates Table 1 of the paper: idioms detected by IDL, Polly and
 * ICC across the NAS + Parboil corpus.
 *
 * Paper values: Polly 3/—/5/—/—, ICC 28/—/—/—/—, IDL 45/5/6/1/3.
 */
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_common.h"

using namespace repro;

int
main()
{
    bench::ClassCounts idl;
    baselines::BaselineCounts polly, icc;

    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        auto matches = bench::detectBenchmark(b, module);
        bench::ClassCounts c = bench::countClasses(matches);
        idl.sr += c.sr;
        idl.h += c.h;
        idl.st += c.st;
        idl.m += c.m;
        idl.sp += c.sp;

        auto p = baselines::runPollyLike(module);
        polly.scalarReductions += p.scalarReductions;
        polly.stencils += p.stencils;
        auto i = baselines::runIccLike(module);
        icc.scalarReductions += i.scalarReductions;
    }

    std::printf("Table 1: Idioms detected by IDL, ICC, Polly\n");
    std::printf("%-6s %10s %10s %8s %10s %12s\n", "", "ScalarRed",
                "Histogram", "Stencil", "MatrixOp", "SparseMatOp");
    auto dash = [](int v) {
        return v == 0 ? std::string("-") : std::to_string(v);
    };
    std::printf("%-6s %10s %10s %8s %10s %12s\n", "Polly",
                dash(polly.scalarReductions).c_str(),
                dash(polly.histograms).c_str(),
                dash(polly.stencils).c_str(),
                dash(polly.matrixOps).c_str(),
                dash(polly.sparseOps).c_str());
    std::printf("%-6s %10d %10s %8s %10s %12s\n", "ICC",
                icc.scalarReductions, "-", "-", "-", "-");
    std::printf("%-6s %10d %10d %8d %10d %12d\n", "IDL", idl.sr,
                idl.h, idl.st, idl.m, idl.sp);
    std::printf("\nPaper: Polly 3/-/5/-/-  ICC 28/-/-/-/-  "
                "IDL 45/5/6/1/3\n");
    return 0;
}
