/**
 * @file
 * Ablation for the design choice called out in section 4.4: "the
 * ordering impacts performance, as it determines how well the search
 * space is pruned". The library orders atomics so that each variable
 * is introduced by a candidate-generating constraint; reversing every
 * conjunction destroys that property and the solver falls back to
 * goal rotation and wide enumeration.
 */
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "idl/lower.h"

using namespace repro;

namespace {

void
reverseConjunctions(solver::Node &node)
{
    if (node.kind == solver::Node::Kind::And ||
        node.kind == solver::Node::Kind::Or) {
        std::reverse(node.children.begin(), node.children.end());
    }
    for (auto &child : node.children)
        reverseConjunctions(*child);
    if (node.collectBody)
        reverseConjunctions(*node.collectBody);
}

struct Run
{
    uint64_t assignments;
    double ms;
    size_t solutions;
};

Run
solveWith(driver::MatchingDriver &drv, ir::Function *func,
          const solver::ConstraintProgram &prog)
{
    auto outcome = drv.solveProgram(func, prog);
    return {outcome.stats.assignments, outcome.solveMillis,
            outcome.solutions.size()};
}

} // namespace

int
main()
{
    std::printf("Ablation: solver variable/goal ordering\n");
    std::printf("%-10s %-10s | %12s %9s | %12s %9s | %s\n", "bench",
                "idiom", "ordered", "ms", "reversed", "ms",
                "slowdown");
    struct Case
    {
        const char *bench;
        const char *idiom;
    };
    for (const Case &c : {Case{"CG", "SPMV"}, Case{"sgemm", "GEMM"},
                          Case{"MG", "Stencil3D"},
                          Case{"LU", "Reduction"}}) {
        const auto &b = benchmarks::benchmarkByName(c.bench);
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        ir::Function *func = module.functionByName(b.entry);
        driver::MatchingDriver drv;

        auto ordered =
            idl::lowerIdiom(idioms::idiomLibrary(), c.idiom);
        Run r1 = solveWith(drv, func, ordered);

        auto reversed =
            idl::lowerIdiom(idioms::idiomLibrary(), c.idiom);
        reverseConjunctions(*reversed.root);
        Run r2 = solveWith(drv, func, reversed);

        if (r1.solutions != r2.solutions) {
            std::printf("WARNING: solution count differs (%zu vs "
                        "%zu)\n",
                        r1.solutions, r2.solutions);
        }
        std::printf("%-10s %-10s | %12llu %8.2f | %12llu %8.2f | "
                    "%.1fx\n",
                    c.bench, c.idiom,
                    static_cast<unsigned long long>(r1.assignments),
                    r1.ms,
                    static_cast<unsigned long long>(r2.assignments),
                    r2.ms,
                    r1.assignments
                        ? static_cast<double>(r2.assignments) /
                              static_cast<double>(r1.assignments)
                        : 0.0);
    }
    return 0;
}
