/**
 * @file
 * Backend-selection crossover sweep (docs/BACKENDS.md).
 *
 * Generates square GEMM kernels with literal bounds for a range of
 * problem sizes, runs each through the full pipeline under
 * BackendPolicy::CostModel, and records which (API, platform) target
 * the cost layer chose per size together with every rejected
 * alternative's predicted time. The interesting output is the
 * crossover: small kernels stay on the host (the PCIe transfer and
 * launch latency dominate), large ones flip to an accelerator — the
 * selection actually changes with problem size, it is not a constant
 * re-labeling.
 *
 * Usage: bench_backends [--json=PATH]
 *
 * Exits non-zero when the sweep finds NO crossover (the cost model
 * has degenerated to a constant choice) or when any size fails to
 * match/transform — so CI catches a dead selection stage, not just a
 * crashed one.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/workload.h"
#include "bench_common.h"
#include "runtime/cost.h"

using namespace repro;

namespace {

/** Square float GEMM with literal bounds so the static workload
 *  estimator sees the real trip counts. */
std::string
gemmSource(int n)
{
    const std::string N = std::to_string(n);
    return "void gemm_main(float *A, float *B, float *C,\n"
           "               float alpha, float beta) {\n"
           "    for (int mm = 0; mm < " + N + "; mm++) {\n"
           "        for (int nn = 0; nn < " + N + "; nn++) {\n"
           "            float c = 0.0f;\n"
           "            for (int i = 0; i < " + N + "; i++) {\n"
           "                float a = A[mm + i * " + N + "];\n"
           "                float b = B[nn + i * " + N + "];\n"
           "                c += a * b;\n"
           "            }\n"
           "            C[mm + nn * " + N + "] =\n"
           "                C[mm + nn * " + N + "] * beta + alpha * c;\n"
           "        }\n"
           "    }\n"
           "}\n";
}

struct Row
{
    int n = 0;
    analysis::WorkloadDescriptor workload;
    runtime::BackendTarget chosen;
    std::vector<runtime::BackendTarget> alternatives;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            std::fprintf(stderr,
                         "usage: bench_backends [--json=PATH]\n");
            return 2;
        }
    }

    const std::vector<int> sizes = {8,  16,  24,  32,  48,  64,
                                    96, 128, 192, 256, 384, 512};
    std::vector<Row> rows;

    for (int n : sizes) {
        driver::DriverOptions opts;
        opts.applyTransforms = true;
        opts.backendPolicy = transform::BackendPolicy::CostModel;
        driver::MatchingDriver drv(opts);

        ir::Module module;
        driver::MatchReport report =
            drv.compileAndMatch(gemmSource(n), module);
        if (report.replacements.size() != 1 ||
            report.replacements[0].kind != "gemm") {
            std::fprintf(stderr,
                         "bench_backends: N=%d did not produce one "
                         "gemm replacement (%zu replacements)\n",
                         n, report.replacements.size());
            return 1;
        }
        const transform::Replacement &rep = report.replacements[0];
        if (!rep.costModeled || rep.rejected.empty()) {
            std::fprintf(stderr,
                         "bench_backends: N=%d selection was not "
                         "cost-modeled\n",
                         n);
            return 1;
        }

        Row row;
        row.n = n;
        row.chosen = rep.target;
        row.alternatives = rep.rejected;
        // The engine prices a static estimate of the matched nest;
        // re-derive the same descriptor for the report. The rewritten
        // module no longer has the loop, so estimate from a fresh
        // compile of the same source.
        ir::Module pristine;
        frontend::compileMiniCOrDie(gemmSource(n), pristine);
        for (const auto &f : pristine.functions()) {
            if (f->isDeclaration())
                continue;
            analysis::FunctionAnalyses fa(f.get());
            for (const auto &loop : fa.loopInfo().loops()) {
                if (loop->parent)
                    continue;
                row.workload = analysis::estimateWorkload(
                    fa.loopInfo(), loop.get(),
                    analysis::InstCountFn());
            }
        }
        std::printf("N=%4d  chosen=%-14s predicted=%.6g ms  "
                    "(next: %s at %.6g ms)\n",
                    n, runtime::backendToken(row.chosen).c_str(),
                    row.chosen.predictedMs,
                    runtime::backendToken(row.alternatives[0]).c_str(),
                    row.alternatives[0].predictedMs);
        rows.push_back(std::move(row));
    }

    // Crossovers: consecutive sizes whose chosen backend differs.
    struct Crossover
    {
        std::string from, to;
        int atN = 0;
    };
    std::vector<Crossover> crossovers;
    for (size_t i = 1; i < rows.size(); ++i) {
        if (!runtime::sameBackend(rows[i - 1].chosen,
                                  rows[i].chosen)) {
            crossovers.push_back(
                {runtime::backendToken(rows[i - 1].chosen),
                 runtime::backendToken(rows[i].chosen), rows[i].n});
        }
    }
    for (const auto &c : crossovers)
        std::printf("crossover: %s -> %s at N=%d\n", c.from.c_str(),
                    c.to.c_str(), c.atN);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"backends\",\n"
            << "  \"kernel\": \"gemm\",\n"
            << "  \"policy\": \"cost_model\",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "    {\"n\": %d, \"workload\": "
                          "{\"flops\": %.6g, \"bytes\": %.6g, "
                          "\"transfer_bytes\": %.6g}, ",
                          r.n, r.workload.flops, r.workload.bytes,
                          r.workload.transferBytes);
            out << buf << "\"chosen\": \""
                << runtime::backendToken(r.chosen) << "\", ";
            std::snprintf(buf, sizeof(buf), "\"predicted_ms\": %.6g, ",
                          r.chosen.predictedMs);
            out << buf << "\"alternatives\": [";
            for (size_t a = 0; a < r.alternatives.size(); ++a) {
                std::snprintf(buf, sizeof(buf),
                              "%s{\"target\": \"%s\", "
                              "\"predicted_ms\": %.6g}",
                              a ? ", " : "",
                              runtime::backendToken(r.alternatives[a])
                                  .c_str(),
                              r.alternatives[a].predictedMs);
                out << buf;
            }
            out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"crossovers\": [\n";
        for (size_t i = 0; i < crossovers.size(); ++i) {
            out << "    {\"from\": \"" << crossovers[i].from
                << "\", \"to\": \"" << crossovers[i].to
                << "\", \"at_n\": " << crossovers[i].atN << "}"
                << (i + 1 < crossovers.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }

    if (crossovers.empty()) {
        std::fprintf(stderr,
                     "bench_backends: no crossover — the cost model "
                     "picked one backend at every size\n");
        return 1;
    }
    return 0;
}
