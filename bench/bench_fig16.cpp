/**
 * @file
 * Regenerates Figure 16: computational idioms found per benchmark,
 * broken down by idiom class.
 */
#include <cstdio>

#include "bench_common.h"

using namespace repro;

int
main()
{
    std::printf("Figure 16: Idioms per benchmark\n");
    std::printf("%-8s %6s | %9s %9s %7s %6s %6s\n", "bench", "total",
                "ScalarR", "HistogR", "Stencil", "MatOp", "SpMat");
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        auto matches = bench::detectBenchmark(b, module);
        bench::ClassCounts c = bench::countClasses(matches);
        std::printf("%-8s %6d | %9d %9d %7d %6d %6d\n",
                    b.name.c_str(), c.total(), c.sr, c.h, c.st, c.m,
                    c.sp);
    }
    return 0;
}
