/**
 * @file
 * Canonical measurement of the matching service: a synthetic
 * many-client edit trace replayed through MatchService, recording
 * per-submission latency and cache effectiveness.
 *
 * Each client owns a module of ~10 functions (idiomatic kernels —
 * reduction, histogram, stencil, gemm-like nest — plus plain
 * helpers), seeded with client-specific constants so every client's
 * first submission is a genuine cold solve. The trace then replays M
 * edits per client; each edit rewrites the embedded constants of 1-2
 * functions, exactly the incremental-recompilation shape an editor
 * integration produces. A warm submission therefore re-solves only
 * the edited functions and replays the rest from the shared
 * fingerprint-keyed cache.
 *
 * Reported: cold-submission latency (first submit per client) vs
 * warm-submission p50/p99, the cache hit rate over the whole trace,
 * and the p50 cold/warm speedup. After the trace, the cache is
 * snapshotted to disk and restored into a fresh service (a simulated
 * daemon restart), measuring save/load cost and the warm-restart
 * round: every client resubmitting its current module against the
 * recovered cache. Written as BENCH_service.json so the service
 * layer's perf trajectory is tracked per commit (the Release CI job
 * uploads the file as an artifact).
 *
 * Flags:
 *   --json=PATH    output path (default BENCH_service.json)
 *   --clients=N    concurrent client sessions (default 8)
 *   --edits=M      edits per client after the cold submit (default 25)
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "driver/cache_snapshot.h"
#include "service/service.h"

using namespace repro;

namespace {

constexpr size_t kFunctionsPerModule = 10;

/**
 * The synthetic module: ten functions whose loop bounds / constants
 * come from @p knobs (one knob per function), so editing knob i
 * recompiles to a module where exactly function i hashes differently.
 */
std::string
moduleSource(const std::vector<int> &knobs)
{
    const int *k = knobs.data();
    std::ostringstream os;
    os << "void reduce_sum(double *a, double *out) {\n"
          "    double s = 0.0;\n"
          "    for (int i = 0; i < " << 100 + k[0] << "; i++)\n"
          "        s = s + a[i];\n"
          "    out[0] = s;\n"
          "}\n"
          "void reduce_dot(double *a, double *b, double *out) {\n"
          "    double s = 0.0;\n"
          "    for (int i = 0; i < " << 100 + k[1] << "; i++)\n"
          "        s = s + a[i] * b[i];\n"
          "    out[0] = s;\n"
          "}\n"
          "void histogram(int *keys, int *bins) {\n"
          "    for (int i = 0; i < " << 100 + k[2] << "; i++)\n"
          "        bins[keys[i]] = bins[keys[i]] + 1;\n"
          "}\n"
          "void stencil3(double *in, double *out) {\n"
          "    for (int i = 1; i < " << 100 + k[3] << "; i++)\n"
          "        out[i] = in[i - 1] + in[i] + in[i + 1];\n"
          "}\n"
          "void gemm_like(double *a, double *b, double *c) {\n"
          "    for (int i = 0; i < " << 10 + k[4] % 7 << "; i++)\n"
          "        for (int j = 0; j < 12; j++) {\n"
          "            double s = 0.0;\n"
          "            for (int p = 0; p < 14; p++)\n"
          "                s = s + a[i * 14 + p] * b[p * 12 + j];\n"
          "            c[i * 12 + j] = s;\n"
          "        }\n"
          "}\n"
          "void scale(double *a, double *out) {\n"
          "    for (int i = 0; i < " << 100 + k[5] << "; i++)\n"
          "        out[i] = a[i] * " << 2 + k[5] % 5 << ".0;\n"
          "}\n"
          "void saxpy(double *x, double *y, double *out) {\n"
          "    for (int i = 0; i < " << 100 + k[6] << "; i++)\n"
          "        out[i] = " << 1 + k[6] % 9 << ".0 * x[i] + y[i];\n"
          "}\n"
          "int clampi(int x) {\n"
          "    if (x < " << k[7] % 50 << ")\n"
          "        return " << k[7] % 50 << ";\n"
          "    return x;\n"
          "}\n"
          "int mix(int a, int b) {\n"
          "    return a * " << 3 + k[8] % 11 << " + b * "
       << 5 + k[8] % 13 << ";\n"
          "}\n"
          "void memset_like(int *a) {\n"
          "    for (int i = 0; i < " << 100 + k[9] << "; i++)\n"
          "        a[i] = " << k[9] % 17 << ";\n"
          "}\n";
    return os.str();
}

/** Deterministic trace randomness (xorshift; seeded per run). */
struct Rng
{
    uint64_t state;

    uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_service.json";
    size_t clients = 8;
    size_t edits = 25;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--clients=", 10) == 0)
            clients = static_cast<size_t>(std::atoll(argv[i] + 10));
        else if (std::strncmp(argv[i], "--edits=", 8) == 0)
            edits = static_cast<size_t>(std::atoll(argv[i] + 8));
    }

    service::MatchService svc;
    Rng rng{0x9e3779b97f4a7c15ull};

    // Client-specific knob vectors: every client cold-solves its own
    // ten functions (no cross-client freebies on the first submit).
    std::vector<std::vector<int>> knobs(clients);
    for (size_t c = 0; c < clients; ++c) {
        knobs[c].resize(kFunctionsPerModule);
        for (size_t f = 0; f < kFunctionsPerModule; ++f)
            knobs[c][f] =
                static_cast<int>((rng.next() >> 17) % 4000);
    }

    // Whole-submission latency (compile + match), and the match phase
    // alone: recompilation cost is paid either way, so the match
    // phase is where the cache's effect is undiluted.
    std::vector<double> coldMs, warmMs, coldMatchMs, warmMatchMs;
    size_t totalMatches = 0;

    for (size_t c = 0; c < clients; ++c) {
        const std::string module = "client" + std::to_string(c);
        double t0 = bench::nowMs();
        auto outcome = svc.submit(module, moduleSource(knobs[c]));
        coldMs.push_back(bench::nowMs() - t0);
        coldMatchMs.push_back(outcome.matchMillis);
        if (!outcome.ok) {
            std::fprintf(stderr, "FAIL: cold submit (%s): %s\n",
                         module.c_str(), outcome.error.c_str());
            return 1;
        }
        totalMatches += outcome.matches;
    }

    // The edit trace: clients interleave round-robin, each edit
    // touching one or two of the ten functions.
    for (size_t e = 0; e < edits; ++e) {
        for (size_t c = 0; c < clients; ++c) {
            const size_t touched = 1 + rng.next() % 2;
            for (size_t t = 0; t < touched; ++t) {
                const size_t f = rng.next() % kFunctionsPerModule;
                knobs[c][f] =
                    static_cast<int>((rng.next() >> 17) % 4000);
            }
            const std::string module = "client" + std::to_string(c);
            double t0 = bench::nowMs();
            auto outcome = svc.submit(module, moduleSource(knobs[c]));
            warmMs.push_back(bench::nowMs() - t0);
            warmMatchMs.push_back(outcome.matchMillis);
            if (!outcome.ok) {
                std::fprintf(stderr, "FAIL: edit submit (%s): %s\n",
                             module.c_str(), outcome.error.c_str());
                return 1;
            }
            totalMatches += outcome.matches;
        }
    }

    // Snapshot + warm restart: persist the trace-heated cache, load
    // it into a fresh service (what --snapshot= does across a daemon
    // restart), and replay every client's current module. With the
    // cache recovered, the restart round should be all replays.
    const std::string snapPath =
        "/tmp/bench_service_" + std::to_string(::getpid()) + ".snap";
    double t0 = bench::nowMs();
    auto saved = driver::saveSnapshot(svc.cache(), snapPath);
    const double saveMs = bench::nowMs() - t0;
    if (!saved.ok) {
        std::fprintf(stderr, "FAIL: snapshot save: %s\n",
                     saved.detail.c_str());
        return 1;
    }

    service::MatchService restarted;
    t0 = bench::nowMs();
    auto loaded = driver::loadSnapshot(restarted.cache(), snapPath);
    const double loadMs = bench::nowMs() - t0;
    ::unlink(snapPath.c_str());
    if (!loaded.ok || loaded.records != saved.records) {
        std::fprintf(stderr,
                     "FAIL: snapshot load: %zu of %zu records (%s)\n",
                     loaded.records, saved.records,
                     loaded.detail.c_str());
        return 1;
    }

    std::vector<double> restartMs;
    for (size_t c = 0; c < clients; ++c) {
        const std::string module = "client" + std::to_string(c);
        t0 = bench::nowMs();
        auto outcome =
            restarted.submit(module, moduleSource(knobs[c]));
        restartMs.push_back(bench::nowMs() - t0);
        if (!outcome.ok) {
            std::fprintf(stderr, "FAIL: restart submit (%s): %s\n",
                         module.c_str(), outcome.error.c_str());
            return 1;
        }
    }
    const auto restartCounters = restarted.cacheCounters();
    const double restartHitRate =
        restartCounters.hits + restartCounters.misses > 0
            ? static_cast<double>(restartCounters.hits) /
                  static_cast<double>(restartCounters.hits +
                                      restartCounters.misses)
            : 0.0;
    const double restartP50 = percentile(restartMs, 0.50);

    const auto counters = svc.cacheCounters();
    const double hitRate =
        counters.hits + counters.misses > 0
            ? static_cast<double>(counters.hits) /
                  static_cast<double>(counters.hits + counters.misses)
            : 0.0;
    const double coldP50 = percentile(coldMs, 0.50);
    const double warmP50 = percentile(warmMs, 0.50);
    const double warmP99 = percentile(warmMs, 0.99);
    const double speedup = warmP50 > 0.0 ? coldP50 / warmP50 : 0.0;
    const double coldMatchP50 = percentile(coldMatchMs, 0.50);
    const double warmMatchP50 = percentile(warmMatchMs, 0.50);
    const double warmMatchP99 = percentile(warmMatchMs, 0.99);
    const double matchSpeedup =
        warmMatchP50 > 0.0 ? coldMatchP50 / warmMatchP50 : 0.0;

    std::printf("service bench: %zu clients x %zu edits "
                "(%zu warm submissions)\n",
                clients, edits, warmMs.size());
    std::printf("  cold  p50 %.3f ms  mean %.3f ms  "
                "(match phase p50 %.3f ms)\n",
                coldP50, mean(coldMs), coldMatchP50);
    std::printf("  warm  p50 %.3f ms  p99 %.3f ms  mean %.3f ms  "
                "(match phase p50 %.3f ms, p99 %.3f ms)\n",
                warmP50, warmP99, mean(warmMs), warmMatchP50,
                warmMatchP99);
    std::printf("  cache hit rate %.1f%% (%llu hits, %llu misses, "
                "%llu evictions)\n",
                hitRate * 100.0,
                static_cast<unsigned long long>(counters.hits),
                static_cast<unsigned long long>(counters.misses),
                static_cast<unsigned long long>(counters.evictions));
    std::printf("  p50 cold/warm speedup %.1fx end-to-end, "
                "%.1fx match phase\n",
                speedup, matchSpeedup);
    std::printf("  snapshot save %.3f ms, load %.3f ms "
                "(%zu records, %llu bytes)\n",
                saveMs, loadMs, saved.records,
                static_cast<unsigned long long>(saved.bytes));
    std::printf("  warm restart p50 %.3f ms, hit rate %.1f%% "
                "(%zu submissions)\n",
                restartP50, restartHitRate * 100.0,
                restartMs.size());

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"service-edit-trace\",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"edits_per_client\": " << edits << ",\n"
        << "  \"functions_per_module\": " << kFunctionsPerModule
        << ",\n"
        << "  \"cold_submissions\": " << coldMs.size() << ",\n"
        << "  \"warm_submissions\": " << warmMs.size() << ",\n"
        << "  \"total_matches\": " << totalMatches << ",\n"
        << "  \"cold_p50_ms\": " << coldP50 << ",\n"
        << "  \"cold_mean_ms\": " << mean(coldMs) << ",\n"
        << "  \"warm_p50_ms\": " << warmP50 << ",\n"
        << "  \"warm_p99_ms\": " << warmP99 << ",\n"
        << "  \"warm_mean_ms\": " << mean(warmMs) << ",\n"
        << "  \"cold_match_p50_ms\": " << coldMatchP50 << ",\n"
        << "  \"warm_match_p50_ms\": " << warmMatchP50 << ",\n"
        << "  \"warm_match_p99_ms\": " << warmMatchP99 << ",\n"
        << "  \"p50_speedup\": " << speedup << ",\n"
        << "  \"p50_match_speedup\": " << matchSpeedup << ",\n"
        << "  \"cache_hits\": " << counters.hits << ",\n"
        << "  \"cache_misses\": " << counters.misses << ",\n"
        << "  \"cache_evictions\": " << counters.evictions << ",\n"
        << "  \"cache_hit_rate\": " << hitRate << ",\n"
        << "  \"snapshot_save_ms\": " << saveMs << ",\n"
        << "  \"snapshot_load_ms\": " << loadMs << ",\n"
        << "  \"snapshot_records\": " << saved.records << ",\n"
        << "  \"snapshot_bytes\": " << saved.bytes << ",\n"
        << "  \"restart_submissions\": " << restartMs.size() << ",\n"
        << "  \"restart_p50_ms\": " << restartP50 << ",\n"
        << "  \"restart_hit_rate\": " << restartHitRate << "\n"
        << "}\n";
    out.close();
    if (out.fail()) {
        std::fprintf(stderr, "FAIL: could not write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    // An incremental service that misses its own cache is broken:
    // each edit touches at most 2 of 10 functions, so the steady
    // state must replay the large majority of submissions.
    if (hitRate < 0.5) {
        std::fprintf(stderr,
                     "FAIL: warm hit rate %.1f%% below 50%%\n",
                     hitRate * 100.0);
        return 1;
    }
    // A restart that re-solves what the snapshot recovered defeats
    // the persistence: every current body was cached pre-save, so
    // the restart round must be overwhelmingly replays.
    if (restartHitRate < 0.9) {
        std::fprintf(stderr,
                     "FAIL: warm-restart hit rate %.1f%% below 90%%\n",
                     restartHitRate * 100.0);
        return 1;
    }
    return 0;
}
