/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 */
#ifndef BENCH_BENCH_COMMON_H
#define BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"
#include "idioms/library.h"

namespace repro::bench {

/** Milliseconds on the monotonic clock (shared timing methodology of
 *  every bench binary). */
inline double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-@p reps wall-clock of @p fn in milliseconds. */
template <typename Fn>
inline double
bestOf(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        double t0 = nowMs();
        fn();
        double dt = nowMs() - t0;
        if (r == 0 || dt < best)
            best = dt;
    }
    return best;
}

/** Idiom-class counts of one benchmark. */
struct ClassCounts
{
    int sr = 0, h = 0, st = 0, m = 0, sp = 0;

    void
    add(idioms::IdiomClass cls)
    {
        switch (cls) {
          case idioms::IdiomClass::ScalarReduction: ++sr; break;
          case idioms::IdiomClass::HistogramReduction: ++h; break;
          case idioms::IdiomClass::Stencil: ++st; break;
          case idioms::IdiomClass::MatrixOp: ++m; break;
          case idioms::IdiomClass::SparseMatrixOp: ++sp; break;
          default: break;
        }
    }

    int total() const { return sr + h + st + m + sp; }
};

/** Compile one benchmark and detect its idioms (batched driver). */
inline std::vector<idioms::IdiomMatch>
detectBenchmark(const benchmarks::BenchmarkProgram &b,
                ir::Module &module)
{
    driver::MatchingDriver drv;
    return drv.compileAndMatch(b.source, module).allMatches();
}

inline ClassCounts
countClasses(const std::vector<idioms::IdiomMatch> &matches)
{
    ClassCounts c;
    for (const auto &m : matches)
        c.add(m.cls);
    return c;
}

/**
 * Compile every NAS/Parboil program into its own module (serially),
 * ready for serial-vs-parallel matching sweeps over the Table 1
 * workload.
 */
inline std::vector<std::unique_ptr<ir::Module>>
compileSuite()
{
    std::vector<std::unique_ptr<ir::Module>> modules;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        modules.push_back(std::make_unique<ir::Module>());
        frontend::compileMiniCOrDie(b.source, *modules.back());
    }
    return modules;
}

/** Non-owning view of compileSuite()'s result for runParallelBatch. */
inline std::vector<ir::Module *>
modulePointers(const std::vector<std::unique_ptr<ir::Module>> &modules)
{
    std::vector<ir::Module *> ptrs;
    for (const auto &m : modules)
        ptrs.push_back(m.get());
    return ptrs;
}

} // namespace repro::bench

#endif // BENCH_BENCH_COMMON_H
