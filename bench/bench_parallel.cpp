/**
 * @file
 * Threads-sweep benchmark of the parallel matching driver on the
 * Table 1 workload (all 21 NAS/Parboil modules, all idioms).
 *
 * For each thread count the sweep times MatchingDriver::runParallelBatch
 * over the precompiled suite, verifies the match sets and aggregated
 * SolveStats are byte-identical to the serial driver, and emits the
 * measurements as BENCH_parallel.json (path overridable via argv[1])
 * so the speedup is tracked in the perf trajectory. Exits non-zero on
 * any serial/parallel mismatch.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace repro;

namespace {

using bench::bestOf;

std::vector<std::string>
reportKeys(const std::vector<driver::MatchReport> &reports)
{
    std::vector<std::string> keys;
    for (const auto &r : reports) {
        for (const auto &m : r.allMatches())
            keys.push_back(idioms::matchFingerprint(m));
    }
    return keys;
}

solver::SolveStats
reportTotals(const std::vector<driver::MatchReport> &reports)
{
    solver::SolveStats totals;
    for (const auto &r : reports)
        totals += r.totals;
    return totals;
}

struct SweepPoint
{
    unsigned threads;
    double millis;
    double speedup;
    bool identical;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_parallel.json";
    const int reps = 5;

    auto modules = bench::compileSuite();
    auto ptrs = bench::modulePointers(modules);

    // Serial reference: one matchModule pass per module.
    std::vector<driver::MatchReport> serialReports;
    double serial_ms = bestOf(reps, [&] {
        serialReports.clear();
        driver::MatchingDriver drv;
        for (ir::Module *m : ptrs)
            serialReports.push_back(drv.matchModule(*m));
    });
    auto serialKeys = reportKeys(serialReports);
    auto serialTotals = reportTotals(serialReports);

    std::printf("Parallel matching sweep: Table 1 workload "
                "(%zu modules, %zu matches)\n",
                ptrs.size(), serialKeys.size());
    std::printf("%-8s %10s %9s %10s\n", "threads", "ms", "speedup",
                "identical");
    std::printf("%-8s %10.2f %9s %10s\n", "serial", serial_ms, "1.00x",
                "-");

    std::vector<SweepPoint> sweep;
    bool all_identical = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        std::vector<driver::MatchReport> reports;
        double ms = bestOf(reps, [&] {
            driver::MatchingDriver drv;
            reports = drv.runParallelBatch(ptrs, threads);
        });
        auto totals = reportTotals(reports);
        bool identical =
            reportKeys(reports) == serialKeys &&
            totals.assignments == serialTotals.assignments &&
            totals.checks == serialTotals.checks &&
            totals.solutions == serialTotals.solutions;
        all_identical = all_identical && identical;
        SweepPoint p{threads, ms, serial_ms / ms, identical};
        sweep.push_back(p);
        std::printf("%-8u %10.2f %8.2fx %10s\n", threads, ms,
                    p.speedup, identical ? "yes" : "NO");
    }

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"workload\": \"nas-parboil-table1\",\n"
        << "  \"modules\": " << ptrs.size() << ",\n"
        << "  \"matches\": " << serialKeys.size() << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"serial_ms\": " << serial_ms << ",\n"
        << "  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
        const auto &p = sweep[i];
        out << "    {\"threads\": " << p.threads
            << ", \"ms\": " << p.millis
            << ", \"speedup\": " << p.speedup << ", \"identical\": "
            << (p.identical ? "true" : "false") << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"identical\": " << (all_identical ? "true" : "false")
        << "\n}\n";
    std::printf("\nwrote %s\n", out_path);

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: parallel results diverge from serial\n");
        return 1;
    }
    return 0;
}
