/**
 * @file
 * Regenerates Table 3: modeled execution time in milliseconds of each
 * heterogeneous API on each platform, for the 10 benchmarks whose
 * idioms dominate execution. Empty cells mean the API cannot express
 * the idiom or does not target the platform.
 */
#include <cstdio>

#include "bench_common.h"
#include "runtime/device_model.h"

using namespace repro;
using runtime::Api;
using runtime::Platform;

int
main()
{
    std::printf("Table 3: per-API modeled times (ms); * marks the "
                "fastest per platform\n\n");
    for (Platform p : runtime::allPlatforms()) {
        std::printf("--- %s ---\n", runtime::platformName(p));
        std::printf("%-8s", "bench");
        for (Api api : runtime::allApis())
            std::printf(" %9s", runtime::apiName(api));
        std::printf("\n");
        for (const auto &b : benchmarks::nasParboilSuite()) {
            if (!b.exploited)
                continue;
            auto best = runtime::bestApiOn(p, b.profile, true);
            std::printf("%-8s", b.name.c_str());
            for (Api api : runtime::allApis()) {
                auto t = runtime::apiTimeOn(p, api, b.profile, true);
                if (!t) {
                    std::printf(" %9s", "-");
                } else {
                    char buf[32];
                    std::snprintf(buf, sizeof(buf), "%.2f%s", *t,
                                  best && best->api == api ? "*"
                                                           : "");
                    std::printf(" %9s", buf);
                }
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Shape targets from the paper: MKL best on CPU linear"
                " algebra;\ncuBLAS/cuSPARSE best on the external GPU;"
                " histo/MG favour the iGPU;\ntpacf is fastest on the "
                "CPU (transfers dominate the GPUs).\n");
    return 0;
}
