/**
 * @file
 * Regenerates Figure 19: our generated code (best device) against the
 * handwritten OpenMP (CPU) and OpenCL (GPU) reference
 * implementations shipped with the suites. EP, IS, MG and tpacf
 * references parallelize the whole application (algorithmic factor).
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "runtime/device_model.h"

using namespace repro;
using runtime::Platform;

int
main()
{
    std::printf("Figure 19: speedup vs sequential — IDL vs handwritten"
                " references\n");
    std::printf("%-8s %10s %10s %10s\n", "bench", "IDL", "OpenCL",
                "OpenMP");
    for (const auto &b : benchmarks::nasParboilSuite()) {
        if (!b.exploited)
            continue;
        double seq = runtime::sequentialTimeMs(b.profile);
        double best = 0;
        for (Platform p : runtime::allPlatforms()) {
            auto choice = runtime::bestApiOn(p, b.profile, true);
            if (choice)
                best = std::max(best, seq / choice->timeMs);
        }
        double ocl =
            seq / runtime::referenceOpenClMs(b.profile,
                                             b.refAlgoFactor);
        double omp =
            seq / runtime::referenceOpenMpMs(b.profile,
                                             b.refAlgoFactor);
        std::printf("%-8s %9.2fx %9.2fx %9.2fx\n", b.name.c_str(),
                    best, ocl, omp);
    }
    std::printf("\nPaper: comparable or better where references keep "
                "the algorithm\n(CG, histo, lbm, sgemm, spmv, "
                "stencil); EP, IS, MG, tpacf references\nparallelize "
                "the entire application and win.\n");
    return 0;
}
