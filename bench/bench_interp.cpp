/**
 * @file
 * Canonical measurement of the execution layer: the bytecode engine
 * (interp/compiled.h) vs the tree-walking reference interpreter on
 * the profiled interpreted runs behind Figures 16-19, plus the
 * end-to-end differential transform-verification sweep
 * (MatchingDriver::verifyTransforms).
 *
 * For every NAS/Parboil program the bench times a fully profiled run
 * of the original program under both engines (best of --reps, fresh
 * interpreter per repetition so bytecode compilation cost is charged
 * honestly), then runs the differential harness: original and
 * transformed programs on identical seeded heaps, byte-identical
 * heaps/returns/Profile counts across engines, byte-identical watched
 * outputs across the transform. Results are written as
 * BENCH_interp.json so the execution layer's perf trajectory is
 * tracked per commit (the Release CI job uploads the file as an
 * artifact). Exits non-zero on any verification failure.
 *
 * Flags:
 *   --json=PATH   output path (default BENCH_interp.json)
 *   --reps=N      repetitions per measurement (default 5)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "interp/builtins.h"

using namespace repro;

namespace {

using bench::bestOf;

struct ProgramPoint
{
    std::string name;
    double referenceMs = 0.0;
    double bytecodeMs = 0.0;
    uint64_t steps = 0;
    driver::TransformVerification verify;

    double
    speedup() const
    {
        return bytecodeMs > 0.0 ? referenceMs / bytecodeMs : 0.0;
    }
};

/** One profiled run of @p b's original program under one engine. */
uint64_t
runOnce(ir::Module &module, const benchmarks::BenchmarkProgram &b,
        bool reference)
{
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    interp::registerMathBuiltins(it);
    it.enableProfile(true);
    auto inst = b.setup(mem);
    ir::Function *entry = module.functionByName(b.entry);
    if (reference)
        it.runReference(entry, inst.args);
    else
        it.run(entry, inst.args);
    return it.profile().totalSteps;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_interp.json";
    int reps = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
    }
    if (reps < 1)
        reps = 1;

    const auto &suite = benchmarks::nasParboilSuite();
    std::printf("Canonical execution-layer measurement: profiled "
                "interpreted runs of the Fig. 16-19 workloads "
                "(%zu programs, best of %d)\n",
                suite.size(), reps);
    std::printf("%-8s %12s %12s %9s %12s %6s %7s\n", "bench",
                "ref(ms)", "bytecode(ms)", "speedup", "steps",
                "repl", "verify");

    driver::MatchingDriver drv;
    std::vector<ProgramPoint> points;
    double total_ref = 0.0, total_bc = 0.0;
    bool all_ok = true;
    for (const auto &b : suite) {
        ProgramPoint p;
        p.name = b.name;

        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        p.referenceMs =
            bestOf(reps, [&] { runOnce(module, b, true); });
        p.bytecodeMs =
            bestOf(reps, [&] { p.steps = runOnce(module, b, false); });
        p.verify = drv.verifyTransform(b);
        all_ok = all_ok && p.verify.ok();
        total_ref += p.referenceMs;
        total_bc += p.bytecodeMs;

        std::printf("%-8s %12.3f %12.3f %8.2fx %12llu %6zu %7s\n",
                    p.name.c_str(), p.referenceMs, p.bytecodeMs,
                    p.speedup(),
                    static_cast<unsigned long long>(p.steps),
                    p.verify.replacements,
                    p.verify.ok() ? "ok" : "FAIL");
        if (!p.verify.ok())
            std::printf("  mismatch: %s\n", p.verify.error.c_str());
        points.push_back(std::move(p));
    }
    double speedup = total_bc > 0.0 ? total_ref / total_bc : 0.0;
    std::printf("total: reference %.2f ms, bytecode %.2f ms -> "
                "%.2fx, differential verification %s\n",
                total_ref, total_bc, speedup,
                all_ok ? "passed" : "FAILED");

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"nas-parboil-fig16-19-interp\",\n"
        << "  \"programs\": " << points.size() << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"reference_total_ms\": " << total_ref << ",\n"
        << "  \"bytecode_total_ms\": " << total_bc << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"verified\": " << (all_ok ? "true" : "false") << ",\n"
        << "  \"suites\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        out << "    {\"name\": \"" << p.name << "\""
            << ", \"reference_ms\": " << p.referenceMs
            << ", \"bytecode_ms\": " << p.bytecodeMs
            << ", \"speedup\": " << p.speedup()
            << ", \"steps\": " << p.steps
            << ", \"transformed_steps\": " << p.verify.transformedSteps
            << ", \"matches\": " << p.verify.matches
            << ", \"replacements\": " << p.verify.replacements
            << ", \"loops_compared\": " << p.verify.loopsCompared
            << ", \"verify_ok\": "
            << (p.verify.ok() ? "true" : "false") << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    if (out.fail()) {
        std::fprintf(stderr, "FAIL: could not write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());

    if (!all_ok) {
        std::fprintf(stderr, "FAIL: transformed execution diverges "
                             "from the original program\n");
        return 1;
    }
    return 0;
}
