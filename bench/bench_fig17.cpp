/**
 * @file
 * Regenerates Figure 17: runtime coverage of the detected idioms,
 * measured by profiling an interpreted run of each benchmark.
 */
#include <cstdio>

#include "bench_common.h"
#include "benchmarks/coverage.h"
#include "interp/builtins.h"

using namespace repro;

int
main()
{
    std::printf("Figure 17: Runtime coverage of detected idioms\n");
    std::printf("%-8s %10s   %s\n", "bench", "coverage", "bar");
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        auto matches = bench::detectBenchmark(b, module);

        interp::Memory mem;
        interp::Interpreter it(module, mem);
        interp::registerMathBuiltins(it);
        it.enableProfile(true);
        auto inst = b.setup(mem);
        it.run(module.functionByName(b.entry), inst.args);

        double cov =
            benchmarks::runtimeCoverage(matches, it.profile());
        int bars = static_cast<int>(cov * 40.0 + 0.5);
        std::printf("%-8s %9.1f%%   ", b.name.c_str(), cov * 100.0);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("\nPaper: coverage is either low or dominates; EP sits"
                " near 50%%\n");
    return 0;
}
