/**
 * @file
 * Regenerates Figure 18: end-to-end speedup over the sequential C
 * program for the best heterogeneous API on each device. The lazy
 * copying column corresponds to the red bars (CG, lbm, spmv, stencil
 * benefit most).
 */
#include <cstdio>

#include "bench_common.h"
#include "runtime/device_model.h"

using namespace repro;
using runtime::Platform;

int
main()
{
    std::printf("Figure 18: speedup vs sequential (best API per "
                "device)\n");
    std::printf("%-8s %8s | %18s %18s %18s | %s\n", "bench",
                "seq(ms)", "CPU", "iGPU", "GPU", "lazy-copy gain");
    for (const auto &b : benchmarks::nasParboilSuite()) {
        if (!b.exploited)
            continue;
        double seq = runtime::sequentialTimeMs(b.profile);
        std::printf("%-8s %8.0f |", b.name.c_str(), seq);
        double best_nolazy = 0, best_lazy = 0;
        for (Platform p : runtime::allPlatforms()) {
            auto best = runtime::bestApiOn(p, b.profile, true);
            if (!best) {
                std::printf(" %18s", "-");
                continue;
            }
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%6.2fx (%s)",
                          seq / best->timeMs,
                          runtime::apiName(best->api));
            std::printf(" %18s", buf);
            auto nolazy = runtime::bestApiOn(p, b.profile, false);
            best_lazy = std::max(best_lazy, seq / best->timeMs);
            if (nolazy) {
                best_nolazy =
                    std::max(best_nolazy, seq / nolazy->timeMs);
            }
        }
        if (b.profile.lazyCopyApplicable && best_nolazy > 0) {
            std::printf(" | %.2fx -> %.2fx", best_nolazy, best_lazy);
        } else {
            std::printf(" | n/a");
        }
        std::printf("\n");
    }
    std::printf("\nPaper: speedups range from 1.26x (histo) to >20x; "
                "CG ~17x, sgemm >275x;\ntpacf best on CPU; MG and "
                "histo best on the iGPU.\n");
    return 0;
}
