/**
 * @file
 * Static-verification lint gate for CI (docs/ANALYSIS.md).
 *
 * Runs every pass-boundary check the pipeline owns, over everything
 * the repository ships:
 *
 *  - the IDL semantic analyzer (idl/check.h) over the full idiom
 *    library, rooted at the solver's actual root set — any error-tier
 *    diagnostic (unknown opcode, unbound variable, unsatisfiable
 *    atomic, ...) fails the gate, warnings are reported but pass; and
 *  - the dominance-aware IR verifier (ir/verifier.h) over all 21
 *    NAS/Parboil suite programs: each is compiled with
 *    VerifyMode::Boundaries (re-verifying after codegen, mem2reg and
 *    the optimizer), matched and transformed with rewrite-commit /
 *    rewrite-rollback verification on, and finally re-verified as a
 *    whole module.
 *
 * The JSON report additionally carries a backend-coverage table: for
 * every root idiom, its class and the legal (API, platform) lowering
 * targets the cost layer can choose between (runtime/cost.h). Idioms
 * with fewer than two legal targets are listed explicitly under
 * "undercovered" — never silently capped — so a device-model edit
 * that strands an idiom class on a single (or no) backend is visible
 * in the CI artifact.
 *
 * Modes:
 *   repro_lint                    human-readable report, exit 0 iff
 *                                 clean
 *   repro_lint --json             one JSON object on stdout (CI)
 *   repro_lint --max-warnings=N   fail the gate when the library
 *                                 carries more than N warnings
 *                                 (default: unlimited)
 *   repro_lint --self-test        negative oracle: seeds a
 *                                 typo'd-opcode idiom and a malformed
 *                                 IR function, and exits 0 only if
 *                                 BOTH fail their gates — proving the
 *                                 green run above means something.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "idl/check.h"
#include "idl/parser.h"
#include "ir/irbuilder.h"
#include "ir/verifier.h"
#include "runtime/cost.h"
#include "support/diagnostics.h"

using namespace repro;

namespace {

struct ProgramResult
{
    std::string name;
    size_t matches = 0;
    size_t replacements = 0;
    std::string error; ///< empty = verifier-clean at every boundary
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

/** Lint one suite program through compile + match + transform. */
ProgramResult
lintProgram(const benchmarks::BenchmarkProgram &program)
{
    ProgramResult result;
    result.name = program.name;
    try {
        ir::Module module;
        frontend::compileMiniCOrDie(program.source, module,
                                    ir::VerifyMode::Boundaries);

        driver::DriverOptions opts;
        opts.applyTransforms = true;
        opts.verify = ir::VerifyMode::Boundaries;
        driver::MatchingDriver matcher(opts);
        driver::MatchReport report = matcher.matchModule(module);
        result.matches = report.matchCount();
        result.replacements = report.replacements.size();

        ir::VerifierReport vr = ir::verifyModuleDetailed(module);
        if (vr.errorCount() != 0)
            result.error = vr.firstError().str();
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    return result;
}

/**
 * Negative oracle. Returns 0 when both seeded defects are caught:
 * a typo'd-opcode idiom must fail the IDL gate and a hand-built
 * use-before-def function must fail the IR verifier.
 */
int
selfTest()
{
    int failures = 0;

    // 1. The shipped library text plus one broken idiom must fail.
    idl::IdlProgram program;
    DiagEngine diags;
    if (!idl::parseIdlInto(idioms::idiomLibrarySource(), program,
                           diags) ||
        !idl::parseIdlInto("Constraint LintSelfTest ( {a} is "
                           "frobnicate instruction ) End",
                           program, diags)) {
        std::fprintf(stderr, "self-test: seeded library failed to "
                             "parse\n");
        return 1;
    }
    std::vector<std::string> roots = idioms::rootIdiomNames();
    roots.push_back("LintSelfTest");
    idl::CheckReport idlReport = idl::checkProgram(program, roots);
    if (idlReport.ok() || !idlReport.hasRule("unknown-opcode")) {
        std::fprintf(stderr, "self-test: typo'd opcode was NOT "
                             "rejected by the IDL gate\n");
        ++failures;
    }

    // 2. A use-before-def across blocks must fail the IR verifier.
    ir::Module module;
    ir::Function *f = module.createFunction(
        "self_test", module.types().i64Ty(),
        {module.types().i64Ty()});
    ir::IRBuilder b(module);
    ir::BasicBlock *entry = f->createBlock("entry");
    ir::BasicBlock *left = f->createBlock("left");
    ir::BasicBlock *right = f->createBlock("right");
    b.setInsertPoint(entry);
    b.condBr(b.icmp(ir::CmpPred::EQ, f->arg(0), b.i64(0)), left,
             right);
    b.setInsertPoint(left);
    ir::Instruction *def = b.add(f->arg(0), f->arg(0), "def");
    b.ret(def);
    b.setInsertPoint(right);
    b.ret(b.add(def, f->arg(0), "use"));
    ir::VerifierReport irReport = ir::verifyFunctionDetailed(f);
    if (irReport.errorCount() == 0 || !irReport.hasRule("dom-use")) {
        std::fprintf(stderr, "self-test: use-before-def was NOT "
                             "rejected by the IR verifier\n");
        ++failures;
    }

    if (failures == 0)
        std::printf("repro_lint self-test: both seeded defects "
                    "caught\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    size_t maxWarnings = ~size_t(0);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strncmp(argv[i], "--max-warnings=", 15) == 0) {
            maxWarnings =
                static_cast<size_t>(std::atoll(argv[i] + 15));
        } else if (std::strcmp(argv[i], "--self-test") == 0) {
            return selfTest();
        } else {
            std::fprintf(stderr, "usage: repro_lint [--json] "
                                 "[--max-warnings=N] [--self-test]\n");
            return 2;
        }
    }

    // IDL semantic lint over the shipped library, with the rewrite-ABI
    // export list so solution-output variables are not "unused".
    idl::CheckReport library = idl::checkProgram(
        idioms::idiomLibrary(), idioms::rootIdiomNames(),
        idioms::rewriteAbiVarLeaves());

    // IR boundary verification over the whole suite.
    std::vector<ProgramResult> programs;
    size_t brokenPrograms = 0;
    for (const auto &program : benchmarks::nasParboilSuite()) {
        programs.push_back(lintProgram(program));
        if (!programs.back().error.empty())
            ++brokenPrograms;
    }

    // Backend coverage: how many legal lowering targets the cost layer
    // can choose between, per root idiom.
    struct Coverage
    {
        std::string idiom;
        idioms::IdiomClass cls;
        std::vector<runtime::BackendTarget> targets;
    };
    std::vector<Coverage> coverage;
    size_t undercovered = 0;
    for (const auto &name : idioms::rootIdiomNames()) {
        Coverage c;
        c.idiom = name;
        c.cls = idioms::idiomClassOf(name);
        c.targets = runtime::legalTargets(c.cls);
        if (c.targets.size() < 2)
            ++undercovered;
        coverage.push_back(std::move(c));
    }

    bool ok = library.errorCount() == 0 &&
              library.warningCount() <= maxWarnings &&
              brokenPrograms == 0;

    if (json) {
        std::printf("{\"ok\": %s, \"library\": {\"errors\": %zu, "
                    "\"warnings\": %zu, \"diags\": [",
                    ok ? "true" : "false", library.errorCount(),
                    library.warningCount());
        for (size_t i = 0; i < library.diags.size(); ++i)
            std::printf("%s\"%s\"", i ? ", " : "",
                        jsonEscape(library.diags[i].str()).c_str());
        std::printf("]}, \"backends\": {\"undercovered\": [");
        bool first = true;
        for (const auto &c : coverage) {
            if (c.targets.size() >= 2)
                continue;
            std::printf("%s\"%s\"", first ? "" : ", ",
                        jsonEscape(c.idiom).c_str());
            first = false;
        }
        std::printf("], \"coverage\": [");
        for (size_t i = 0; i < coverage.size(); ++i) {
            const Coverage &c = coverage[i];
            std::printf("%s{\"idiom\": \"%s\", \"class\": \"%s\", "
                        "\"targets\": [",
                        i ? ", " : "", jsonEscape(c.idiom).c_str(),
                        idioms::idiomClassName(c.cls));
            for (size_t t = 0; t < c.targets.size(); ++t)
                std::printf(
                    "%s\"%s\"", t ? ", " : "",
                    runtime::backendToken(c.targets[t]).c_str());
            std::printf("]}");
        }
        std::printf("]}, \"programs\": [");
        for (size_t i = 0; i < programs.size(); ++i) {
            const ProgramResult &p = programs[i];
            std::printf("%s{\"name\": \"%s\", \"matches\": %zu, "
                        "\"replacements\": %zu, \"error\": \"%s\"}",
                        i ? ", " : "", jsonEscape(p.name).c_str(),
                        p.matches, p.replacements,
                        jsonEscape(p.error).c_str());
        }
        std::printf("]}\n");
    } else {
        std::printf("idiom library: %zu errors, %zu warnings\n",
                    library.errorCount(), library.warningCount());
        for (const auto &d : library.diags)
            std::printf("  %s\n", d.str().c_str());
        for (const auto &c : coverage) {
            std::printf("backend coverage: %-26s %zu target%s%s\n",
                        c.idiom.c_str(), c.targets.size(),
                        c.targets.size() == 1 ? "" : "s",
                        c.targets.size() < 2 ? "  [undercovered]"
                                             : "");
        }
        for (const auto &p : programs) {
            if (p.error.empty())
                std::printf("%-10s ok (%zu matches, %zu "
                            "replacements)\n",
                            p.name.c_str(), p.matches,
                            p.replacements);
            else
                std::printf("%-10s FAIL: %s\n", p.name.c_str(),
                            p.error.c_str());
        }
        std::printf("repro_lint: %s\n", ok ? "clean" : "FAILED");
    }
    return ok ? 0 : 1;
}
