/**
 * @file
 * The matching daemon: a persistent process serving the idiom
 * matching pipeline over the line protocol (docs/SERVICE.md).
 *
 * Modes:
 *   repro_serviced                 stdin/stdout REPL (the default)
 *   repro_serviced --unix=PATH     unix-domain socket listener
 *   repro_serviced --tcp=PORT      loopback TCP listener (0 = pick)
 *
 * Options:
 *   --capacity=N          match-cache entry bound (default 1024)
 *   --snapshot=PATH       persist the match cache: load it on start,
 *                         save on shutdown (crash-safe temp+rename)
 *   --autosave-ms=N       also save the snapshot every N ms (0 = off)
 *   --deadline-ms=N       default solve deadline per SUBMIT (0 = off;
 *                         clients override with DEADLINE_MS=)
 *   --max-connections=N   concurrent connections before BUSY-shedding
 *   --max-inflight=N      concurrent SUBMIT solves before BUSY
 *
 * All sessions share one fingerprint-keyed match cache, so repeated
 * or cross-client submissions of unchanged functions replay cached
 * matches instead of re-solving them. With --snapshot that cache
 * survives restarts — including kill -9, which at worst loses the
 * entries since the last committed autosave, never the snapshot file.
 *
 * Shutdown is crash-only: SIGTERM/SIGINT save the snapshot and
 * _exit(), skipping destructor teardown a kill -9 would skip anyway.
 */
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include <unistd.h>

#include "driver/cache_snapshot.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"

using namespace repro;

namespace {

/** Async-signal-safe shutdown request flag (SIGTERM / SIGINT). */
volatile std::sig_atomic_t g_shutdownRequested = 0;

void
onTerminate(int)
{
    g_shutdownRequested = 1;
}

void
logSnapshot(const char *what, const driver::SnapshotResult &result)
{
    std::fprintf(stderr,
                 "repro_serviced: snapshot %s: %s (%zu records, "
                 "%zu skipped, %llu bytes%s%s)\n",
                 what, result.ok ? "ok" : "failed", result.records,
                 result.skipped,
                 static_cast<unsigned long long>(result.bytes),
                 result.detail.empty() ? "" : "; ",
                 result.detail.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_path;
    std::string snapshot_path;
    int tcp_port = -1;
    size_t capacity = driver::MatchCache::kDefaultCapacity;
    uint64_t autosave_ms = 0;
    uint64_t deadline_ms = 0;
    bool cost_model = false;
    service::ServerOptions server_opts;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--unix=", 7) == 0) {
            unix_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--tcp=", 6) == 0) {
            tcp_port = std::atoi(argv[i] + 6);
        } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
            capacity =
                static_cast<size_t>(std::atoll(argv[i] + 11));
        } else if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
            snapshot_path = argv[i] + 11;
        } else if (std::strncmp(argv[i], "--autosave-ms=", 14) == 0) {
            autosave_ms =
                static_cast<uint64_t>(std::atoll(argv[i] + 14));
        } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
            deadline_ms =
                static_cast<uint64_t>(std::atoll(argv[i] + 14));
        } else if (std::strncmp(argv[i], "--max-connections=", 18) ==
                   0) {
            server_opts.maxConnections =
                static_cast<size_t>(std::atoll(argv[i] + 18));
        } else if (std::strncmp(argv[i], "--max-inflight=", 15) == 0) {
            server_opts.maxInFlight =
                static_cast<size_t>(std::atoll(argv[i] + 15));
        } else if (std::strcmp(argv[i], "--cost-model") == 0) {
            cost_model = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--unix=PATH | --tcp=PORT] [--capacity=N]"
                " [--snapshot=PATH] [--autosave-ms=N]"
                " [--deadline-ms=N] [--max-connections=N]"
                " [--max-inflight=N] [--cost-model]\n",
                argv[0]);
            return 2;
        }
    }

    // A client that disconnects mid-response must cost one EPIPE
    // write error, not the whole daemon.
    std::signal(SIGPIPE, SIG_IGN);

    service::ServiceOptions opts;
    opts.cacheCapacity = capacity;
    opts.defaultDeadlineMillis = deadline_ms;
    if (cost_model)
        opts.backendPolicy = transform::BackendPolicy::CostModel;
    service::MatchService svc(opts);

    if (!snapshot_path.empty()) {
        auto result =
            driver::loadSnapshot(svc.cache(), snapshot_path);
        logSnapshot("load", result);
    }

    // Autosave: a plain interval thread; the final save on shutdown
    // is separate, so stopping it early loses nothing committed.
    std::mutex autosave_mutex;
    std::condition_variable autosave_cv;
    bool autosave_stop = false;
    std::thread autosave_thread;
    if (!snapshot_path.empty() && autosave_ms > 0) {
        autosave_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(autosave_mutex);
            while (!autosave_cv.wait_for(
                lock, std::chrono::milliseconds(autosave_ms),
                [&] { return autosave_stop; })) {
                lock.unlock();
                auto result =
                    driver::saveSnapshot(svc.cache(), snapshot_path);
                if (!result.ok)
                    logSnapshot("autosave", result);
                lock.lock();
            }
        });
    }

    auto stopAutosave = [&] {
        if (!autosave_thread.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(autosave_mutex);
            autosave_stop = true;
        }
        autosave_cv.notify_all();
        autosave_thread.join();
    };

    auto saveFinal = [&] {
        if (snapshot_path.empty())
            return;
        auto result =
            driver::saveSnapshot(svc.cache(), snapshot_path);
        logSnapshot("save", result);
    };

    if (unix_path.empty() && tcp_port < 0) {
        service::runRepl(svc, std::cin, std::cout);
        stopAutosave();
        saveFinal();
        return 0;
    }

    server_opts.unixPath = unix_path;
    server_opts.tcpPort = tcp_port;
    service::SocketServer server(svc, server_opts);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "repro_serviced: %s\n", e.what());
        return 1;
    }
    // sigaction without SA_RESTART: the handler must interrupt the
    // blocked stdin read below (std::signal's BSD semantics would
    // transparently restart it and the flag would go unnoticed until
    // the next line arrived).
    struct sigaction term_action;
    std::memset(&term_action, 0, sizeof(term_action));
    term_action.sa_handler = onTerminate;
    sigemptyset(&term_action.sa_mask);
    term_action.sa_flags = 0;
    sigaction(SIGTERM, &term_action, nullptr);
    sigaction(SIGINT, &term_action, nullptr);
    if (!unix_path.empty())
        std::fprintf(stderr, "repro_serviced: listening on %s\n",
                     unix_path.c_str());
    else
        std::fprintf(stderr, "repro_serviced: listening on "
                             "127.0.0.1:%d\n",
                     server.boundTcpPort());

    // The daemon runs until SIGTERM/SIGINT or until its controlling
    // terminal closes stdin (service management's usual teardown for
    // a foreground process); socket clients come and go meanwhile. A
    // signal interrupts the blocked read, so the flag set by the
    // handler is observed promptly with no signal-unsafe work done
    // inside the handler itself.
    std::string line;
    while (!g_shutdownRequested) {
        if (!std::getline(std::cin, line)) {
            // stdin is closed or exhausted — the usual shape under a
            // service manager (stdin=/dev/null). Keep serving until
            // a signal arrives instead of exiting on the spot.
            while (!g_shutdownRequested)
                ::pause();
            break;
        }
        if (line == "QUIT")
            break;
    }

    stopAutosave();
    saveFinal();
    if (g_shutdownRequested) {
        // Crash-only exit: the snapshot is committed, connection
        // threads may be mid-solve — _exit() skips their teardown
        // exactly as a crash would, which recovery must (and does)
        // tolerate anyway.
        std::fprintf(stderr, "repro_serviced: terminating on "
                             "signal\n");
        ::_exit(0);
    }
    server.stop();
    return 0;
}
