/**
 * @file
 * The matching daemon: a persistent process serving the idiom
 * matching pipeline over the line protocol (docs/SERVICE.md).
 *
 * Modes:
 *   repro_serviced                 stdin/stdout REPL (the default)
 *   repro_serviced --unix=PATH     unix-domain socket listener
 *   repro_serviced --tcp=PORT      loopback TCP listener (0 = pick)
 *
 * Options:
 *   --capacity=N   match-cache entry bound (default 1024)
 *
 * All sessions share one fingerprint-keyed match cache, so repeated
 * or cross-client submissions of unchanged functions replay cached
 * matches instead of re-solving them.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"

using namespace repro;

int
main(int argc, char **argv)
{
    std::string unix_path;
    int tcp_port = -1;
    size_t capacity = driver::MatchCache::kDefaultCapacity;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--unix=", 7) == 0) {
            unix_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--tcp=", 6) == 0) {
            tcp_port = std::atoi(argv[i] + 6);
        } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
            capacity =
                static_cast<size_t>(std::atoll(argv[i] + 11));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--unix=PATH | --tcp=PORT] "
                         "[--capacity=N]\n",
                         argv[0]);
            return 2;
        }
    }

    service::ServiceOptions opts;
    opts.cacheCapacity = capacity;
    service::MatchService svc(opts);

    if (unix_path.empty() && tcp_port < 0) {
        service::runRepl(svc, std::cin, std::cout);
        return 0;
    }

    service::ServerOptions server_opts;
    server_opts.unixPath = unix_path;
    server_opts.tcpPort = tcp_port;
    service::SocketServer server(svc, server_opts);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "repro_serviced: %s\n", e.what());
        return 1;
    }
    if (!unix_path.empty())
        std::fprintf(stderr, "repro_serviced: listening on %s\n",
                     unix_path.c_str());
    else
        std::fprintf(stderr, "repro_serviced: listening on "
                             "127.0.0.1:%d\n",
                     server.boundTcpPort());

    // The daemon runs until its controlling terminal closes stdin
    // (service management's usual teardown signal for a foreground
    // process); socket clients come and go freely meanwhile.
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == "QUIT")
            break;
    }
    server.stop();
    return 0;
}
