/**
 * @file
 * Tests of matching-as-a-service: the structural content hash, the
 * cross-request MatchCache (cold/warm/edited/evicted paths, portable
 * capture/re-anchor), the module-aware matchFingerprint, the
 * MatchService session core and both transports (iostream REPL and
 * unix-socket listener).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "driver/driver.h"
#include "driver/match_cache.h"
#include "frontend/compiler.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"

using namespace repro;

namespace {

/**
 * A three-function client module: a scalar reduction, a histogram and
 * a non-idiomatic helper. @p redBound / @p histBound parameterize
 * embedded constants so "edits" of individual functions are one
 * string away.
 */
std::string
clientSource(int redBound = 100, int histBound = 50)
{
    std::ostringstream os;
    os << R"(
void reduce(double *a, double *out) {
    double s = 0.0;
    for (int i = 0; i < )"
       << redBound << R"(; i++)
        s = s + a[i];
    out[0] = s;
}
void histo(int *keys, int *bins) {
    for (int i = 0; i < )"
       << histBound << R"(; i++)
        bins[keys[i]] = bins[keys[i]] + 1;
}
int helper(int x) {
    return x * 3 + 1;
}
)";
    return os.str();
}

std::vector<std::string>
fingerprints(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<std::string> keys;
    for (const auto &m : matches)
        keys.push_back(idioms::matchFingerprint(m));
    return keys;
}

uint64_t
hashOf(const ir::Module &module, const std::string &func)
{
    return module.functionByName(func)->contentHash();
}

} // namespace

// ------------------------------------------------------- content hash

TEST(ContentHash, StableAcrossRecompiles)
{
    // Recompiling the same source (byte-stable LICM, PR 5) must
    // reproduce every function hash even though all heap addresses
    // and Type pointers differ.
    ir::Module a, b;
    frontend::compileMiniCOrDie(clientSource(), a);
    frontend::compileMiniCOrDie(clientSource(), b);
    for (const char *f : {"reduce", "histo", "helper"})
        EXPECT_EQ(hashOf(a, f), hashOf(b, f)) << f;
}

TEST(ContentHash, SensitiveToLocalEditsOnly)
{
    ir::Module a, b;
    frontend::compileMiniCOrDie(clientSource(100, 50), a);
    frontend::compileMiniCOrDie(clientSource(101, 50), b);
    // Only the edited function's hash moves.
    EXPECT_NE(hashOf(a, "reduce"), hashOf(b, "reduce"));
    EXPECT_EQ(hashOf(a, "histo"), hashOf(b, "histo"));
    EXPECT_EQ(hashOf(a, "helper"), hashOf(b, "helper"));
}

TEST(ContentHash, IndependentOfModuleAndFunctionNames)
{
    // The same body under different module names hashes equal — the
    // cache key is structural, which is what lets two clients share
    // entries.
    ir::Module a, b;
    a.setName("client_a");
    b.setName("client_b");
    frontend::compileMiniCOrDie(clientSource(), a);
    frontend::compileMiniCOrDie(clientSource(), b);
    EXPECT_EQ(hashOf(a, "reduce"), hashOf(b, "reduce"));
}

// ---------------------------------------------- fingerprint identity

TEST(MatchFingerprint, DisambiguatesSameNamedFunctionsAcrossModules)
{
    // Regression (ISSUE 6 satellite): the fingerprint used to key on
    // the bare function name, so two modules with a same-named
    // function collided in any cross-module store. It now embeds the
    // module name and the content hash.
    ir::Module a, b, c;
    a.setName("client_a");
    b.setName("client_b");
    c.setName("client_a"); // same name as a, edited body
    frontend::compileMiniCOrDie(clientSource(100, 50), a);
    frontend::compileMiniCOrDie(clientSource(100, 50), b);
    frontend::compileMiniCOrDie(clientSource(101, 50), c);

    driver::MatchingDriver drv;
    auto fa = fingerprints(drv.matchModule(a).allMatches());
    drv.invalidateAll();
    auto fb = fingerprints(drv.matchModule(b).allMatches());
    drv.invalidateAll();
    auto fc = fingerprints(drv.matchModule(c).allMatches());

    ASSERT_FALSE(fa.empty());
    ASSERT_EQ(fa.size(), fb.size());
    // Same body, different module identity: distinct fingerprints.
    for (size_t i = 0; i < fa.size(); ++i)
        EXPECT_NE(fa[i], fb[i]);
    // Same module name, edited reduce: the reduce match must differ.
    EXPECT_NE(fa, fc);
}

// --------------------------------------------------- portable replay

TEST(MatchCache, CaptureReanchorRoundTrip)
{
    ir::Module a, b;
    frontend::compileMiniCOrDie(clientSource(), a);
    frontend::compileMiniCOrDie(clientSource(), b);
    ir::Function *fa = a.functionByName("reduce");
    ir::Function *fb = b.functionByName("reduce");

    driver::MatchingDriver drv;
    auto matches = drv.matchFunction(fa);
    ASSERT_FALSE(matches.empty());

    std::vector<driver::PortableMatch> portable;
    ASSERT_TRUE(driver::MatchCache::capture(matches, fa, &portable));

    // Re-anchored onto the structurally identical recompile, every
    // binding resolves to the value at the same position — i.e. to
    // the same handle text.
    std::vector<idioms::IdiomMatch> replayed;
    ASSERT_TRUE(
        driver::MatchCache::reanchor(portable, fb, &replayed));
    ASSERT_EQ(replayed.size(), matches.size());
    for (size_t i = 0; i < matches.size(); ++i) {
        EXPECT_EQ(replayed[i].idiom, matches[i].idiom);
        ASSERT_EQ(replayed[i].solution.bindings.size(),
                  matches[i].solution.bindings.size());
        for (const auto &[name, value] :
             matches[i].solution.bindings) {
            const ir::Value *other =
                replayed[i].solution.lookup(name);
            ASSERT_NE(other, nullptr) << name;
            EXPECT_NE(other, value) << name; // different module...
            EXPECT_EQ(other->handle(), value->handle()) << name;
        }
    }

    // Against a structurally different function the membership
    // validation must reject the replay instead of mis-anchoring.
    ir::Function *helper = b.functionByName("helper");
    std::vector<idioms::IdiomMatch> bogus;
    EXPECT_FALSE(
        driver::MatchCache::reanchor(portable, helper, &bogus));
}

TEST(MatchCache, LruEvictionAndCounters)
{
    driver::MatchCache cache(2);
    driver::CacheKey k1{1, 9}, k2{2, 9}, k3{3, 9};
    cache.insert(k1, {});
    cache.insert(k2, {});
    EXPECT_EQ(cache.size(), 2u);

    // Touch k1 so k2 is the LRU victim of the next insert.
    EXPECT_NE(cache.lookup(k1), nullptr);
    cache.insert(k3, {});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup(k1), nullptr);
    EXPECT_EQ(cache.lookup(k2), nullptr);
    EXPECT_NE(cache.lookup(k3), nullptr);

    auto counters = cache.counters();
    EXPECT_EQ(counters.insertions, 3u);
    EXPECT_EQ(counters.evictions, 1u);

    // Shrinking evicts immediately.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.counters().evictions, 2u);
}

// ------------------------------------------------ incremental driver

TEST(CachedDriver, WarmResubmissionDoesNoSolverWork)
{
    auto cache = std::make_shared<driver::MatchCache>();
    driver::MatchingDriver drv;
    drv.attachCache(cache);

    ir::Module cold;
    auto coldReport = drv.compileAndMatch(clientSource(), cold);
    EXPECT_EQ(coldReport.cacheHits, 0u);
    EXPECT_EQ(coldReport.cacheMisses, 3u);
    const auto coldTotals = drv.totals();
    EXPECT_GT(coldTotals.assignments, 0u);

    // Identical resubmission: every function replays; the driver's
    // lifetime totals (real solver effort) must not move, while the
    // report totals stay byte-identical to the cold run.
    ir::Module warm;
    auto warmReport = drv.compileAndMatch(clientSource(), warm);
    EXPECT_EQ(warmReport.cacheHits, 3u);
    EXPECT_EQ(warmReport.cacheMisses, 0u);
    EXPECT_EQ(drv.totals().assignments, coldTotals.assignments);
    EXPECT_EQ(drv.totals().checks, coldTotals.checks);
    EXPECT_EQ(warmReport.totals.assignments,
              coldReport.totals.assignments);
    EXPECT_EQ(warmReport.totals.checks, coldReport.totals.checks);
    EXPECT_EQ(warmReport.totals.solutions,
              coldReport.totals.solutions);
    for (const auto &fr : warmReport.functions)
        EXPECT_TRUE(fr.fromCache) << fr.function->name();

    // And the replayed matches bind the *fresh* module's IR with the
    // same solution shapes (fingerprints embed module name + hash,
    // which are equal here by construction).
    EXPECT_EQ(fingerprints(warmReport.allMatches()),
              fingerprints(coldReport.allMatches()));
}

TEST(CachedDriver, EditedResubmissionResolvesOnlyEditedFunctions)
{
    auto cache = std::make_shared<driver::MatchCache>();
    driver::MatchingDriver drv;
    drv.attachCache(cache);

    ir::Module cold;
    drv.compileAndMatch(clientSource(100, 50), cold);
    const auto before = drv.totals();

    // Edit reduce only: exactly one miss, two replays, and solver
    // effort grows by the edited function alone.
    ir::Module edited;
    auto report = drv.compileAndMatch(clientSource(101, 50), edited);
    EXPECT_EQ(report.cacheHits, 2u);
    EXPECT_EQ(report.cacheMisses, 1u);
    EXPECT_GT(drv.totals().assignments, before.assignments);
    for (const auto &fr : report.functions) {
        if (fr.function->name() == "reduce")
            EXPECT_FALSE(fr.fromCache);
        else
            EXPECT_TRUE(fr.fromCache) << fr.function->name();
    }

    // The edited module's matches must equal a fresh uncached solve.
    driver::MatchingDriver plain;
    ir::Module reference;
    auto expected =
        plain.compileAndMatch(clientSource(101, 50), reference);
    // Fingerprints embed the (empty) module name and content hashes,
    // identical across these two compiles of the same source.
    EXPECT_EQ(fingerprints(report.allMatches()),
              fingerprints(expected.allMatches()));
}

TEST(CachedDriver, ParallelBatchSharesTheCache)
{
    auto cache = std::make_shared<driver::MatchCache>();
    driver::MatchingDriver drv(
        driver::DriverOptions{{}, false, cache});

    ir::Module cold;
    frontend::compileMiniCOrDie(clientSource(), cold);
    auto coldReport = drv.runParallel(cold, 4);
    EXPECT_EQ(coldReport.cacheMisses, 3u);

    ir::Module warm;
    frontend::compileMiniCOrDie(clientSource(), warm);
    drv.invalidateAll();
    auto warmReport = drv.runParallel(warm, 4);
    EXPECT_EQ(warmReport.cacheHits, 3u);
    EXPECT_EQ(warmReport.cacheMisses, 0u);
    EXPECT_EQ(fingerprints(warmReport.allMatches()),
              fingerprints(coldReport.allMatches()));
}

TEST(CachedDriver, EvictionForcesResolve)
{
    const std::string srcA = clientSource(100, 50);
    const std::string srcB = clientSource(200, 60);

    auto cache = std::make_shared<driver::MatchCache>(3);
    driver::MatchingDriver drv;
    drv.attachCache(cache);

    // Fill the three-entry cache with module A, then push module B
    // through. B's reduce and histo differ (fresh inserts, each
    // evicting an A entry); B's helper is byte-identical to A's and
    // replays A's entry instead of inserting.
    ir::Module a1, b1;
    drv.compileAndMatch(srcA, a1);
    EXPECT_EQ(cache->size(), 3u);
    EXPECT_EQ(cache->counters().evictions, 0u);
    auto crossed = drv.compileAndMatch(srcB, b1);
    EXPECT_EQ(crossed.cacheHits, 1u);
    EXPECT_EQ(crossed.cacheMisses, 2u);
    EXPECT_EQ(cache->size(), 3u);
    EXPECT_EQ(cache->counters().evictions, 2u);

    // A's evicted entries force a re-solve; the surviving shared
    // helper still replays...
    ir::Module a2;
    auto evicted = drv.compileAndMatch(srcA, a2);
    EXPECT_EQ(evicted.cacheHits, 1u);
    EXPECT_EQ(evicted.cacheMisses, 2u);

    // ...and is cached again afterwards.
    ir::Module a3;
    auto warm = drv.compileAndMatch(srcA, a3);
    EXPECT_EQ(warm.cacheHits, 3u);
    EXPECT_EQ(warm.cacheMisses, 0u);
}

TEST(CachedDriver, CollidingEntryWithDifferentShapeIsNotReplayed)
{
    auto cache = std::make_shared<driver::MatchCache>();
    driver::MatchingDriver drv;
    drv.attachCache(cache);

    ir::Module cold;
    auto coldReport = drv.compileAndMatch(clientSource(), cold);
    ASSERT_EQ(coldReport.cacheMisses, 3u);

    // Emulate a 64-bit contentHash collision: keep each entry's key
    // but make its structural signature describe a different body.
    // Replay must degrade to a fresh solve, not re-anchor the
    // colliding entry's matches.
    for (const auto &fr : coldReport.functions) {
        driver::CacheKey key{fr.contentHash,
                             idioms::idiomSetHash()};
        auto entry = cache->lookup(key);
        ASSERT_NE(entry, nullptr);
        driver::CachedMatches poisoned = *entry;
        poisoned.signature.numInsts += 1;
        cache->insert(key, std::move(poisoned));
    }

    ir::Module warm;
    auto warmReport = drv.compileAndMatch(clientSource(), warm);
    EXPECT_EQ(warmReport.cacheHits, 0u);
    EXPECT_EQ(warmReport.cacheMisses, 3u);
    for (const auto &fr : warmReport.functions)
        EXPECT_FALSE(fr.fromCache) << fr.function->name();
}

TEST(CachedDriver, EpochsAreGloballyUniqueAcrossDrivers)
{
    // Regression: epochs used to be per-driver counters from 0, so
    // two drivers sharing one MatchCache could sit at the same epoch
    // — a recycled function address in driver B then revived analyses
    // whose module driver A had already destroyed (use-after-free).
    driver::MatchingDriver a, b;
    EXPECT_NE(a.epoch(), b.epoch());
    const uint64_t prev = a.epoch();
    a.invalidateAll();
    EXPECT_NE(a.epoch(), prev);
    EXPECT_NE(a.epoch(), b.epoch());
}

// -------------------------------------------------- service sessions

TEST(MatchService, ColdWarmEditedAcrossSessions)
{
    service::MatchService svc;

    auto cold = svc.submit("clientA", clientSource(100, 50));
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.functions, 3u);
    EXPECT_EQ(cold.cacheMisses, 3u);
    EXPECT_GT(cold.matches, 0u);

    auto warm = svc.submit("clientA", clientSource(100, 50));
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.cacheHits, 3u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.matches, cold.matches);

    auto edited = svc.submit("clientA", clientSource(100, 51));
    ASSERT_TRUE(edited.ok);
    EXPECT_EQ(edited.cacheHits, 2u);
    EXPECT_EQ(edited.cacheMisses, 1u);
    for (const auto &fo : edited.perFunction)
        EXPECT_EQ(fo.fromCache, fo.name != "histo") << fo.name;

    // A second client submitting the original body shares the first
    // client's entries: all hits, no solver work.
    auto shared = svc.submit("clientB", clientSource(100, 50));
    ASSERT_TRUE(shared.ok);
    EXPECT_EQ(shared.cacheHits, 3u);
    EXPECT_EQ(shared.cacheMisses, 0u);
    EXPECT_EQ(svc.sessionCount(), 2u);
}

TEST(MatchService, CompileErrorKeepsPreviousSession)
{
    service::MatchService svc;
    auto good = svc.submit("clientA", clientSource());
    ASSERT_TRUE(good.ok);

    auto bad = svc.submit("clientA", "void broken( {");
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    service::SubmitOutcome last;
    ASSERT_TRUE(svc.lastOutcome("clientA", &last));
    EXPECT_TRUE(last.ok);
    EXPECT_EQ(last.matches, good.matches);
    EXPECT_EQ(svc.sessionCount(), 1u);

    EXPECT_TRUE(svc.drop("clientA"));
    EXPECT_FALSE(svc.drop("clientA"));
    EXPECT_EQ(svc.sessionCount(), 0u);
}

// ------------------------------------------------------- line proto

TEST(Protocol, ParseRequests)
{
    auto submit = service::parseRequest("SUBMIT mod 123");
    EXPECT_EQ(submit.verb, service::Request::Verb::Submit);
    EXPECT_EQ(submit.module, "mod");
    EXPECT_EQ(submit.payloadBytes, 123u);

    auto heredoc = service::parseRequest("SUBMIT mod <<EOF");
    EXPECT_EQ(heredoc.verb, service::Request::Verb::Submit);
    EXPECT_EQ(heredoc.terminator, "EOF");

    EXPECT_EQ(service::parseRequest("SUBMIT mod x7").verb,
              service::Request::Verb::Invalid);
    EXPECT_EQ(service::parseRequest("FROBNICATE").verb,
              service::Request::Verb::Invalid);
    EXPECT_EQ(service::parseRequest("CAPACITY 64").capacity, 64u);
}

TEST(Protocol, ReplScriptedEditSession)
{
    // Counted SUBMIT payloads through the iostream REPL — exactly
    // what a daemon client sends over a socket.
    const std::string v1 = clientSource(100, 50);
    const std::string v2 = clientSource(100, 51);
    std::ostringstream script;
    script << "HELLO\n";
    script << "SUBMIT editsess " << v1.size() << "\n" << v1;
    script << "SUBMIT editsess " << v2.size() << "\n" << v2;
    script << "MATCHES editsess\n";
    script << "STATS\n";
    script << "BOGUS\n";
    script << "QUIT\n";

    service::MatchService svc;
    std::istringstream in(script.str());
    std::ostringstream out;
    size_t served = service::runRepl(svc, in, out);
    EXPECT_EQ(served, 7u);

    const std::string transcript = out.str();
    EXPECT_NE(transcript.find("OK service=repro-match protocol=1"),
              std::string::npos);
    // Cold submit: all three functions solved.
    EXPECT_NE(transcript.find("misses=3"), std::string::npos);
    // Edited resubmit: two replayed, one solved.
    EXPECT_NE(transcript.find("hits=2 misses=1"), std::string::npos);
    EXPECT_NE(transcript.find("source=cache"), std::string::npos);
    EXPECT_NE(transcript.find("source=solve"), std::string::npos);
    EXPECT_NE(transcript.find("idiom=Reduction"), std::string::npos);
    EXPECT_NE(transcript.find("ERR unknown verb: BOGUS"),
              std::string::npos);
    EXPECT_NE(transcript.find("OK bye"), std::string::npos);
}

TEST(Protocol, OversizedCountedSubmitIsRejectedBeforeAllocation)
{
    // A hostile byte count must never reach std::string::resize
    // (std::length_error would escape the handler and terminate the
    // daemon): it is refused before any of the payload is read, and
    // the connection — no longer synchronizable — is torn down.
    std::istringstream in("SUBMIT big 18446744073709551615\nSTATS\n");
    std::ostringstream out;
    service::MatchService svc;
    EXPECT_EQ(service::runRepl(svc, in, out), 1u);
    EXPECT_NE(out.str().find("ERR payload too large"),
              std::string::npos);
    // The unread "payload" cannot be skipped, so STATS never runs.
    EXPECT_EQ(out.str().find("entries="), std::string::npos);
}

TEST(Protocol, OversizedHeredocFailsRequestButKeepsConnection)
{
    // The heredoc form is drained to its terminator with bounded
    // memory: the one request fails, the stream stays in sync.
    std::ostringstream script;
    script << "SUBMIT big <<EOF\n";
    const std::string chunk(1u << 20, 'x');
    for (int i = 0; i < 17; ++i)
        script << chunk << "\n";
    script << "EOF\n";
    script << "STATS\n";
    script << "QUIT\n";

    service::MatchService svc;
    std::istringstream in(script.str());
    std::ostringstream out;
    EXPECT_EQ(service::runRepl(svc, in, out), 3u);
    const std::string transcript = out.str();
    EXPECT_NE(transcript.find("ERR payload too large"),
              std::string::npos);
    EXPECT_NE(transcript.find("OK entries=0"), std::string::npos);
    EXPECT_NE(transcript.find("OK bye"), std::string::npos);
}

// ------------------------------------------------------ socket front

namespace {

/** Minimal blocking unix-socket client for the round-trip test. */
class UnixClient
{
  public:
    explicit UnixClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0;
    }

    ~UnixClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    void
    send(const std::string &data)
    {
        size_t sent = 0;
        while (sent < data.size()) {
            ssize_t n = ::write(fd_, data.data() + sent,
                                data.size() - sent);
            ASSERT_GT(n, 0);
            sent += static_cast<size_t>(n);
        }
    }

    /** Read until the peer closes (server side of QUIT). */
    std::string
    drain()
    {
        std::string all;
        char buf[4096];
        for (;;) {
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0)
                return all;
            all.append(buf, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
};

} // namespace

TEST(SocketServer, UnixSocketEditSessionRoundTrip)
{
    const std::string path =
        "/tmp/repro_service_test_" + std::to_string(::getpid()) +
        ".sock";
    service::MatchService svc;
    service::ServerOptions opts;
    opts.unixPath = path;
    service::SocketServer server(svc, opts);
    server.start();

    {
        const std::string v1 = clientSource(100, 50);
        UnixClient client(path);
        ASSERT_TRUE(client.connected());
        std::ostringstream script;
        script << "HELLO\n";
        script << "SUBMIT sockmod " << v1.size() << "\n" << v1;
        script << "SUBMIT sockmod " << v1.size() << "\n" << v1;
        script << "STATS\n";
        script << "QUIT\n";
        client.send(script.str());

        const std::string transcript = client.drain();
        EXPECT_NE(transcript.find("OK service=repro-match"),
                  std::string::npos);
        EXPECT_NE(transcript.find("misses=3"), std::string::npos);
        EXPECT_NE(transcript.find("hits=3 misses=0"),
                  std::string::npos);
        EXPECT_NE(transcript.find("OK bye"), std::string::npos);
    }

    // The warm submission went through the shared service state.
    EXPECT_EQ(svc.sessionCount(), 1u);
    EXPECT_EQ(svc.cacheCounters().hits, 3u);
    server.stop();
}
