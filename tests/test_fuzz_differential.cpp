/**
 * @file
 * Seeded differential fuzzing of the two execution engines.
 *
 * A deterministic generator emits small MiniC programs (loops,
 * guarded branches, array reads/writes, scalar accumulators) and
 * every program is executed by both engines — the tree-walking
 * reference and the bytecode engine — over identically seeded heaps.
 * Return values must be bit-equal, written arrays byte-identical and
 * the dynamic profiles the same map. Recompiling the same source must
 * reproduce every function's contentHash (the key of the matching
 * service's incremental cache), and the generator itself must be a
 * pure function of its seed.
 *
 * The generator is NaN-avoiding by construction: loop-carried
 * scalars only ever accumulate decayed updates of bounded
 * subexpressions (no `s*s` blowup to infinity, hence no `inf - inf`),
 * and every division has a denominator bounded away from zero. That
 * keeps bit-equality meaningful: any mismatch is an engine bug, not
 * floating-point folklore.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "transform/transform.h"
#include "frontend/compiler.h"
#include "interp/builtins.h"
#include "interp/interpreter.h"
#include "ir/function.h"
#include "ir/printer.h"
#include "ir/verifier.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

/** splitmix64: the generator's only source of randomness. */
struct Rng
{
    uint64_t state;

    uint64_t
    next()
    {
        uint64_t x = (state += 0x9e3779b97f4a7c15ULL);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /** Uniform in [0, n). */
    uint64_t
    pick(uint64_t n)
    {
        return next() % n;
    }
};

constexpr int kScalars = 3;

/** A literal from a small NaN-safe pool (exact in binary). */
std::string
literal(Rng &rng)
{
    static const char *pool[] = {"0.25",  "1.5",  "-0.75", "2.0",
                                 "0.125", "-1.0", "3.5",   "0.5"};
    return pool[rng.pick(8)];
}

/** An index expression always inside [0, n). */
std::string
index(Rng &rng)
{
    switch (rng.pick(3)) {
      case 0: return "i";
      case 1: return "n - 1 - i";
      default: return "c[i]"; // setup seeds c with values in [0, 8)
    }
}

/**
 * A bounded double expression over the arrays and the induction
 * variable — never over the loop-carried scalars, which is what keeps
 * accumulators from compounding into infinity.
 */
std::string
expr(Rng &rng, int depth)
{
    if (depth <= 0) {
        switch (rng.pick(4)) {
          case 0: return "a[" + index(rng) + "]";
          case 1: return "b[" + index(rng) + "]";
          case 2: return literal(rng);
          default: return "(double)(i + 1)";
        }
    }
    std::string lhs = expr(rng, depth - 1);
    std::string rhs = expr(rng, depth - 1);
    switch (rng.pick(4)) {
      case 0: return "(" + lhs + " + " + rhs + ")";
      case 1: return "(" + lhs + " - " + rhs + ")";
      case 2: return "(" + lhs + " * " + rhs + ")";
      default:
        // Denominator >= 1.5: division can only shrink magnitudes.
        return "(" + lhs + " / (1.5 + (" + rhs + ") * (" + rhs +
               ")))";
    }
}

/** One statement of a loop body. */
std::string
statement(Rng &rng)
{
    std::string s = "s" + std::to_string(rng.pick(kScalars));
    std::string e = expr(rng, static_cast<int>(rng.pick(3)));
    switch (rng.pick(5)) {
      case 0: return s + " = " + s + " + " + e + ";";
      case 1: return s + " = 0.25 * " + s + " + " + e + ";";
      case 2: return "a[" + index(rng) + "] = " + e + ";";
      case 3:
        return "b[i] = b[i] + 0.5 * (" + e + ");";
      default:
        return "if (c[i] < " + std::to_string(1 + rng.pick(6)) +
               ") { " + s + " = " + s + " + " + e + "; } else { " +
               s + " = " + s + " - " + e + "; }";
    }
}

/** A complete MiniC program: a pure function of the seed. */
std::string
generate(uint64_t seed)
{
    Rng rng{seed * 0x9e3779b97f4a7c15ULL + 0xfd7246 };
    std::string src =
        "double fuzz(int n, double *a, double *b, int *c) {\n";
    for (int s = 0; s < kScalars; ++s)
        src += "    double s" + std::to_string(s) + " = " +
               literal(rng) + ";\n";
    int loops = 1 + static_cast<int>(rng.pick(3));
    for (int l = 0; l < loops; ++l) {
        src += "    for (int i = 0; i < n; i++) {\n";
        int stmts = 1 + static_cast<int>(rng.pick(4));
        for (int st = 0; st < stmts; ++st)
            src += "        " + statement(rng) + "\n";
        src += "    }\n";
    }
    src += "    return s0 + s1 + s2;\n}\n";
    return src;
}

constexpr int kN = 48;

struct Heap
{
    interp::Memory mem;
    uint64_t a = 0, b = 0, c = 0;
    std::vector<RuntimeValue> args;
};

/** Identical deterministic seeding for every engine run. */
void
seedHeap(Heap &h)
{
    h.a = h.mem.allocate(kN * 8);
    h.b = h.mem.allocate(kN * 8);
    h.c = h.mem.allocate(kN * 4);
    for (int i = 0; i < kN; ++i) {
        h.mem.store<double>(h.a + 8 * i, 0.5 + 0.0625 * i);
        h.mem.store<double>(h.b + 8 * i, 2.0 - 0.03125 * i);
        h.mem.store<int32_t>(h.c + 4 * i,
                             static_cast<int32_t>((i * 5 + 3) % 8));
    }
    h.args = {RuntimeValue::makeInt(kN), RuntimeValue::makeInt(h.a),
              RuntimeValue::makeInt(h.b), RuntimeValue::makeInt(h.c)};
}

std::vector<uint8_t>
arrayBytes(interp::Memory &mem, uint64_t addr, uint64_t len)
{
    interp::Memory::RawSpan span(mem, addr, len);
    return std::vector<uint8_t>(span.data(), span.data() + span.size());
}

} // namespace

TEST(FuzzDifferential, EnginesAgreeOnGeneratedPrograms)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        std::string src = generate(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + src);

        ir::Module module;
        frontend::compileMiniCOrDie(src, module);
        auto problems = ir::verifyModule(module);
        ASSERT_TRUE(problems.empty()) << problems.front();
        ir::Function *entry = module.functionByName("fuzz");
        ASSERT_NE(entry, nullptr);

        Heap fast, ref;
        seedHeap(fast);
        seedHeap(ref);
        interp::Interpreter fastIt(module, fast.mem);
        interp::Interpreter refIt(module, ref.mem);
        interp::registerMathBuiltins(fastIt);
        interp::registerMathBuiltins(refIt);

        RuntimeValue fastRet = fastIt.run(entry, fast.args);
        RuntimeValue refRet = refIt.runReference(entry, ref.args);

        // NaN would make bit-equality vacuous for the wrong reason:
        // the generator promises it cannot appear.
        ASSERT_EQ(fastRet.kind, RuntimeValue::Kind::FP);
        EXPECT_FALSE(fastRet.f != fastRet.f)
            << "generator produced NaN: " << fastRet.f;

        EXPECT_TRUE(RuntimeValue::bitsEqual(fastRet, refRet));
        EXPECT_EQ(arrayBytes(fast.mem, fast.a, kN * 8),
                  arrayBytes(ref.mem, ref.a, kN * 8));
        EXPECT_EQ(arrayBytes(fast.mem, fast.b, kN * 8),
                  arrayBytes(ref.mem, ref.b, kN * 8));
        EXPECT_EQ(fastIt.profile().totalSteps,
                  refIt.profile().totalSteps);
        EXPECT_EQ(fastIt.profile().counts, refIt.profile().counts);
    }
}

TEST(FuzzDifferential, VerifierCleanAtEveryPassBoundary)
{
    // The fuzzer corpus swept through the full pipeline with
    // VerifyMode::Boundaries forced on: compilation re-verifies after
    // codegen, mem2reg and the optimizer; execution re-verifies before
    // bytecode lowering; and the matching driver re-verifies after
    // every rewrite commit. Any malformed IR at any boundary throws
    // InternalError, which fails the test — over the whole corpus,
    // not just the 21 curated suite programs.
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        std::string src = generate(seed);
        SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + src);

        ir::Module module;
        frontend::compileMiniCOrDie(src, module,
                                    ir::VerifyMode::Boundaries);
        ir::Function *entry = module.functionByName("fuzz");
        ASSERT_NE(entry, nullptr);

        // Pre-bytecode boundary: lower and execute before rewriting.
        Heap heap;
        seedHeap(heap);
        interp::Interpreter it(module, heap.mem);
        it.setVerifyMode(ir::VerifyMode::Boundaries);
        interp::registerMathBuiltins(it);
        it.run(entry, heap.args);

        // Rewrite boundaries: match and transform with verification
        // on; commits and rollbacks re-verify inside the engine.
        driver::DriverOptions opts;
        opts.applyTransforms = true;
        opts.verify = ir::VerifyMode::Boundaries;
        driver::MatchingDriver matcher(opts);
        matcher.matchModule(module);

        // And the final module must still be verifier-clean.
        ir::VerifierReport report = ir::verifyModuleDetailed(module);
        EXPECT_EQ(report.errorCount(), 0u) << report.str();

        // Post-harden boundary: the EDDI+CFCSS rewrite of a fresh
        // compile commits under the same rewrite-commit verification.
        ir::Module hardened;
        frontend::compileMiniCOrDie(src, hardened,
                                    ir::VerifyMode::Boundaries);
        hardened.functionByName("fuzz")->addAttribute("protect");
        transform::Transformer protector(hardened,
                                         ir::VerifyMode::Boundaries);
        ASSERT_EQ(protector.applyAll({}).size(), 1u);
        ir::VerifierReport hr = ir::verifyModuleDetailed(hardened);
        EXPECT_EQ(hr.errorCount(), 0u) << hr.str();
    }
}

TEST(FuzzDifferential, RecompileReproducesContentHash)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        std::string src = generate(seed);
        SCOPED_TRACE("seed " + std::to_string(seed));

        ir::Module first, second;
        frontend::compileMiniCOrDie(src, first);
        frontend::compileMiniCOrDie(src, second);

        // Same source, same pipeline: textual IR and the incremental
        // match cache's content hashes must reproduce exactly.
        EXPECT_EQ(ir::printModule(first), ir::printModule(second));
        ASSERT_EQ(first.functions().size(), second.functions().size());
        for (size_t i = 0; i < first.functions().size(); ++i) {
            EXPECT_EQ(first.functions()[i]->contentHash(),
                      second.functions()[i]->contentHash())
                << first.functions()[i]->name();
        }
    }
}

TEST(FuzzDifferential, GeneratorIsDeterministic)
{
    for (uint64_t seed = 1; seed <= 10; ++seed)
        EXPECT_EQ(generate(seed), generate(seed)) << seed;
    // Distinct seeds must explore distinct programs (not a collapsed
    // stream), otherwise the sweep above is one test case repeated.
    EXPECT_NE(generate(1), generate(2));
}
