#include <gtest/gtest.h>
#include "frontend/compiler.h"
#include "idl/parser.h"
#include "idl/lower.h"
#include "solver/solver.h"

using namespace repro;

// The running example of section 2.2 / Figures 2 and 3 of the paper.
static const char *kFactorizationIdl = R"(
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend} ) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend} ) )
End
)";

TEST(Factorization, PaperExample)
{
    const char *src = R"(
        int example(int a, int b, int c) {
            int d = a;
            return (a*b) + (c*d);
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    ir::Function *func = module.functionByName("example");
    ASSERT_NE(func, nullptr);

    auto program = idl::parseIdlOrDie(kFactorizationIdl);
    auto lowered = idl::lowerIdiom(*program, "FactorizationOpportunity");

    analysis::FunctionAnalyses fa(func);
    solver::Solver s(func, fa);
    auto solutions = s.solveAll(lowered);

    ASSERT_EQ(solutions.size(), 1u);
    const auto &sol = solutions[0];
    EXPECT_EQ(sol.lookup("factor"), func->arg(0)); // %a
    const ir::Value *sum = sol.lookup("sum");
    ASSERT_NE(sum, nullptr);
    EXPECT_TRUE(static_cast<const ir::Instruction *>(sum)->is(
        ir::Opcode::Add));
}

TEST(Factorization, NoOpportunity)
{
    const char *src = R"(
        int example(int a, int b, int c, int e) {
            return (a*b) + (c*e);
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    ir::Function *func = module.functionByName("example");

    auto program = idl::parseIdlOrDie(kFactorizationIdl);
    auto lowered = idl::lowerIdiom(*program, "FactorizationOpportunity");
    analysis::FunctionAnalyses fa(func);
    solver::Solver s(func, fa);
    EXPECT_TRUE(s.solveAll(lowered).empty());
}
