/**
 * @file
 * Golden cross-check of the slot-addressed solver (solver/compiled.h)
 * against the retained pre-compilation reference engine
 * (Solver::solveAllReference), plus unit tests for symbol interning
 * and collect-template expansion.
 *
 * The contract under test is strict: on every Table 1 suite program,
 * every cached idiom, and both ablation orderings, the compiled
 * engine must produce byte-identical solution strings in the same
 * order and identical SolveStats (assignments, checks, solutions,
 * rotations, dedupHits). This is what makes the compilation step a
 * pure performance transformation with a mechanical correctness
 * argument.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/suite.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "idl/lower.h"
#include "idl/parser.h"
#include "solver/compiled.h"
#include "solver/solver.h"

using namespace repro;

namespace {

// ------------------------------------------------------ symbol table

TEST(SymbolTable, InternsDenseAndDeduplicates)
{
    solver::SymbolTable syms;
    EXPECT_EQ(syms.intern("a"), 0u);
    EXPECT_EQ(syms.intern("b.c"), 1u);
    EXPECT_EQ(syms.intern("a"), 0u);
    EXPECT_EQ(syms.intern("b.c[0]"), 2u);
    EXPECT_EQ(syms.size(), 3u);
    EXPECT_EQ(syms.name(1), "b.c");
    EXPECT_EQ(syms.lookup("b.c[0]"), 2u);
    EXPECT_EQ(syms.lookup("missing"), solver::SymbolTable::kNoSlot);
}

// ------------------------------------------- compiled program layout

TEST(CompiledProgram, CollectTemplatesExpandToIndexedSlots)
{
    const solver::ConstraintProgram *lowered =
        idioms::loweredIdiomOrNull("Reduction");
    ASSERT_NE(lowered, nullptr);
    solver::CompiledProgram prog(*lowered);

    // The collect body binds "read_value[#]"; its expansions must be
    // pre-interned, one slot per index below the collect bound.
    uint32_t tmpl = prog.symbols().lookup("read_value[#]");
    ASSERT_NE(tmpl, solver::SymbolTable::kNoSlot);
    ASSERT_TRUE(prog.isTemplateSlot(tmpl));
    ASSERT_GE(prog.maxCollect(), 1);
    for (int k = 0; k < prog.maxCollect(); ++k) {
        uint32_t slot = prog.expandedSlot(tmpl, k);
        EXPECT_EQ(prog.slotName(slot),
                  "read_value[" + std::to_string(k) + "]");
    }

    // The "[*]" wildcard list entry of the kernel-closure atomic must
    // resolve to the same slots the template expansion created.
    bool found_wildcard = false;
    for (uint32_t id = 0; id < prog.numNodes(); ++id) {
        const solver::CompiledNode &n = prog.node(id);
        if (n.kind != solver::Node::Kind::Atomic)
            continue;
        for (uint32_t li = n.listsBegin; li < n.listsEnd; ++li) {
            const solver::CompiledList &cl = prog.lists()[li];
            for (uint32_t e = cl.begin; e < cl.end; ++e) {
                const solver::ListEntry &entry =
                    prog.listEntries()[e];
                if (!entry.wildcard)
                    continue;
                found_wildcard = true;
                const auto &run = prog.wildcardRun(entry.id);
                ASSERT_GE(run.size(),
                          static_cast<size_t>(prog.maxCollect()));
                EXPECT_EQ(run[0], prog.expandedSlot(tmpl, 0));
            }
        }
    }
    EXPECT_TRUE(found_wildcard);

    // Template slots are listed in lexicographic name order (the
    // collect dedup key order), and orderedSlots covers every slot.
    const auto &tmpls = prog.templateSlotsByName();
    EXPECT_TRUE(std::is_sorted(
        tmpls.begin(), tmpls.end(), [&](uint32_t a, uint32_t b) {
            return prog.slotName(a) < prog.slotName(b);
        }));
    EXPECT_EQ(prog.orderedSlots().size(), prog.numSlots());
}

TEST(CompiledProgram, ExplicitIndexSharesSlotWithTemplateExpansion)
{
    // Stencil1D names "read[0].base_pointer" directly in an atomic
    // while the collect body binds "read[#].base_pointer" — the
    // expansion at k=0 must land on the very same slot, or the
    // deferred NotSame check would never see the collected binding.
    const solver::CompiledProgram *prog =
        idioms::compiledIdiomOrNull("Stencil1D");
    ASSERT_NE(prog, nullptr);
    uint32_t direct = prog->symbols().lookup("read[0].base_pointer");
    uint32_t tmpl = prog->symbols().lookup("read[#].base_pointer");
    ASSERT_NE(direct, solver::SymbolTable::kNoSlot);
    ASSERT_NE(tmpl, solver::SymbolTable::kNoSlot);
    EXPECT_EQ(prog->expandedSlot(tmpl, 0), direct);
}

// --------------------------------------------------- golden equality

std::vector<std::string>
solutionStrings(const std::vector<solver::Solution> &sols)
{
    std::vector<std::string> out;
    out.reserve(sols.size());
    for (const auto &s : sols)
        out.push_back(s.str());
    return out;
}

void
expectStatsEqual(const solver::SolveStats &a,
                 const solver::SolveStats &b, const std::string &what)
{
    EXPECT_EQ(a.assignments, b.assignments) << what;
    EXPECT_EQ(a.checks, b.checks) << what;
    EXPECT_EQ(a.solutions, b.solutions) << what;
    EXPECT_EQ(a.rotations, b.rotations) << what;
    EXPECT_EQ(a.dedupHits, b.dedupHits) << what;
}

/** Idioms the golden sweep checks: the cached set. */
std::vector<std::string>
goldenIdioms()
{
    auto idioms = idioms::topLevelIdioms();
    idioms.push_back("FactorizationOpportunity");
    return idioms;
}

/**
 * Solve @p program compiled and via the reference engine against
 * every defined function of @p module and require byte-identical
 * solution strings and SolveStats. Returns the compiled engine's
 * accumulated effort (so callers can assert non-vacuity without
 * re-running the sweep).
 */
solver::SolveStats
crossCheck(ir::Module &module, const solver::ConstraintProgram &lowered,
           const std::string &what,
           const solver::SolverLimits &limits = {})
{
    solver::CompiledProgram compiled(lowered);
    solver::SolveStats total;
    for (const auto &f : module.functions()) {
        if (f->isDeclaration())
            continue;
        analysis::FunctionAnalyses fa(f.get());

        solver::Solver fast(f.get(), fa);
        auto fastSols = fast.solveAll(compiled, limits);
        solver::Solver ref(f.get(), fa);
        auto refSols = ref.solveAllReference(lowered, limits);

        const std::string ctx = what + " @ " + f->name();
        EXPECT_EQ(solutionStrings(fastSols), solutionStrings(refSols))
            << ctx;
        expectStatsEqual(fast.stats(), ref.stats(), ctx);
        total += fast.stats();
    }
    return total;
}

TEST(CompiledSolverGolden, Table1SuiteAllIdioms)
{
    solver::SolveStats total;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        for (const auto &idiom : goldenIdioms()) {
            const solver::ConstraintProgram *lowered =
                idioms::loweredIdiomOrNull(idiom);
            ASSERT_NE(lowered, nullptr) << idiom;
            total +=
                crossCheck(module, *lowered, b.name + "/" + idiom);
        }
    }
    // The sweep must have exercised a real search, not vacuous
    // early exits.
    EXPECT_GT(total.assignments, 0u);
    EXPECT_GT(total.checks, 0u);
    EXPECT_GT(total.solutions, 0u);
}

TEST(CompiledSolverGolden, BudgetExhaustionParity)
{
    // A blown assignment budget unwinds collect sub-searches
    // mid-flight; the pooled sub-search must shed that state and keep
    // tracking the reference engine (which builds a fresh search per
    // collect) both during and after the abort.
    for (uint64_t budget : {200u, 2000u, 20000u}) {
        solver::SolverLimits limits;
        limits.maxAssignments = budget;
        for (const char *bench : {"LU", "MG"}) {
            const auto &b = benchmarks::benchmarkByName(bench);
            ir::Module module;
            frontend::compileMiniCOrDie(b.source, module);
            for (const char *idiom : {"Reduction", "Stencil3D"}) {
                crossCheck(module,
                           *idioms::loweredIdiomOrNull(idiom),
                           std::string(bench) + "/" + idiom +
                               "/budget=" + std::to_string(budget),
                           limits);
            }
        }
    }
}

TEST(CompiledSolverGolden, DuplicateCandidatesCountAsDedupHits)
{
    // t+t presents the operand t twice to the HasDataFlowTo
    // generator; both engines must skip the duplicate, count it, and
    // still agree byte for byte.
    ir::Module module;
    frontend::compileMiniCOrDie(
        "int f(int a) { int t = a * a; return t + t; }", module);

    idl::IdlProgram program;
    DiagEngine diags;
    idl::parseIdlInto("Constraint Dup\n"
                      "( {s} is add instruction and\n"
                      "  {x} has data flow to {s} and\n"
                      "  {x} is mul instruction )\n"
                      "End",
                      program, diags);
    ASSERT_FALSE(diags.hasErrors()) << diags.dump();
    auto lowered = idl::lowerIdiom(program, "Dup");

    crossCheck(module, lowered, "Dup");

    ir::Function *func = module.functionByName("f");
    ASSERT_NE(func, nullptr);
    analysis::FunctionAnalyses fa(func);
    solver::Solver s(func, fa);
    auto sols = s.solveAll(lowered);
    EXPECT_EQ(sols.size(), 1u);
    EXPECT_GT(s.stats().dedupHits, 0u);
}

namespace {

void
reverseConjunctions(solver::Node &node)
{
    if (node.kind == solver::Node::Kind::And ||
        node.kind == solver::Node::Kind::Or) {
        std::reverse(node.children.begin(), node.children.end());
    }
    for (auto &child : node.children)
        reverseConjunctions(*child);
    if (node.collectBody)
        reverseConjunctions(*node.collectBody);
}

} // namespace

TEST(CompiledSolverGolden, AblationOrderings)
{
    // The ordering ablation (bench_ablation_ordering) perturbs the
    // lowered tree before solving; the compiled engine must track the
    // reference on the hostile ordering too — including the rotation
    // counts the reversal provokes.
    struct Case
    {
        const char *bench;
        const char *idiom;
    };
    solver::SolveStats reversedTotal;
    for (const Case &c : {Case{"CG", "SPMV"}, Case{"sgemm", "GEMM"},
                          Case{"MG", "Stencil3D"},
                          Case{"LU", "Reduction"}}) {
        const auto &b = benchmarks::benchmarkByName(c.bench);
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);

        auto ordered = idl::lowerIdiom(idioms::idiomLibrary(), c.idiom);
        crossCheck(module, ordered,
                   std::string(c.bench) + "/" + c.idiom + "/ordered");

        auto reversed =
            idl::lowerIdiom(idioms::idiomLibrary(), c.idiom);
        reverseConjunctions(*reversed.root);
        crossCheck(module, reversed,
                   std::string(c.bench) + "/" + c.idiom + "/reversed");

        ir::Function *func = module.functionByName(b.entry);
        ASSERT_NE(func, nullptr);
        analysis::FunctionAnalyses fa(func);
        solver::Solver s(func, fa);
        s.solveAll(reversed);
        reversedTotal += s.stats();
    }
    // Reversal destroys the generate-before-check ordering, so the
    // goal-rotation fallback must actually fire.
    EXPECT_GT(reversedTotal.rotations, 0u);
}

} // namespace
