#include <gtest/gtest.h>
#include "benchmarks/suite.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "interp/builtins.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "driver/driver.h"
#include "transform/binder.h"
#include "transform/transform.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

RuntimeValue I(int64_t v) { return RuntimeValue::makeInt(v); }
RuntimeValue F(double v) { return RuntimeValue::makeFP(v); }

/** Compile source twice: run @p fn sequentially and transformed,
 *  then compare a double array of @p n elements at @p out_addr. */
struct Pipeline
{
    std::unique_ptr<ir::Module> module =
        std::make_unique<ir::Module>();
    std::vector<transform::Replacement> replacements;
    int matches = 0;

    void
    build(const char *src, bool do_transform)
    {
        frontend::compileMiniCOrDie(src, *module);
        if (!do_transform)
            return;
        idioms::IdiomDetector det;
        auto found = det.detectModule(*module);
        matches = static_cast<int>(found.size());
        transform::Transformer tr(*module);
        replacements = tr.applyAll(found);
        auto problems = ir::verifyModule(*module);
        ASSERT_TRUE(problems.empty())
            << problems.front() << "\n"
            << ir::printModule(*module);
    }
};

} // namespace

TEST(Transform, SpmvMatchesSequential)
{
    const char *src = R"(
        void spmv(int m, int *rowstr, int *colidx, double *a,
                  double *z, double *r) {
            for (int j = 0; j < m; j++) {
                double d = 0.0;
                for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                    d = d + a[k] * z[colidx[k]];
                r[j] = d;
            }
        }
    )";
    // Tiny CSR matrix: 3 rows.
    auto run = [&](bool transformed) {
        Pipeline p;
        p.build(src, transformed);
        if (transformed) {
            EXPECT_GE(p.matches, 1);
            EXPECT_EQ(p.replacements.size(), 1u);
            EXPECT_EQ(p.replacements[0].kind, "spmv");
        }
        interp::Memory mem;
        interp::Interpreter it(*p.module, mem);
        interp::registerMathBuiltins(it);
        transform::bindReplacements(it, p.replacements);
        uint64_t rowstr = mem.allocate(4 * 4);
        uint64_t colidx = mem.allocate(5 * 4);
        uint64_t a = mem.allocate(5 * 8);
        uint64_t z = mem.allocate(3 * 8);
        uint64_t r = mem.allocate(3 * 8);
        int32_t rs[4] = {0, 2, 3, 5};
        int32_t ci[5] = {0, 2, 1, 0, 2};
        double av[5] = {1, 2, 3, 4, 5};
        double zv[3] = {1, 10, 100};
        for (int i = 0; i < 4; ++i) mem.store<int32_t>(rowstr+4*i, rs[i]);
        for (int i = 0; i < 5; ++i) mem.store<int32_t>(colidx+4*i, ci[i]);
        for (int i = 0; i < 5; ++i) mem.store<double>(a+8*i, av[i]);
        for (int i = 0; i < 3; ++i) mem.store<double>(z+8*i, zv[i]);
        it.run(p.module->functionByName("spmv"),
               {I(3), I(rowstr), I(colidx), I(a), I(z), I(r)});
        std::vector<double> out(3);
        for (int i = 0; i < 3; ++i) out[i] = mem.load<double>(r+8*i);
        return out;
    };
    auto seq = run(false);
    auto acc = run(true);
    ASSERT_EQ(seq.size(), acc.size());
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_DOUBLE_EQ(seq[i], acc[i]) << "row " << i;
    EXPECT_DOUBLE_EQ(seq[0], 201.0);
}

TEST(Transform, ReductionMatchesSequential)
{
    const char *src = R"(
        double norm(double *a, double *b, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s += a[i] * b[i];
            return s;
        }
    )";
    auto run = [&](bool transformed) {
        Pipeline p;
        p.build(src, transformed);
        if (transformed)
            EXPECT_EQ(p.replacements.size(), 1u);
        interp::Memory mem;
        interp::Interpreter it(*p.module, mem);
        transform::bindReplacements(it, p.replacements);
        uint64_t a = mem.allocate(8 * 8), b = mem.allocate(8 * 8);
        for (int i = 0; i < 8; ++i) {
            mem.store<double>(a + 8 * i, i + 1.0);
            mem.store<double>(b + 8 * i, 0.5 * i);
        }
        return it.run(p.module->functionByName("norm"),
                      {I(a), I(b), I(8)}).f;
    };
    EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(Transform, HistogramMatchesSequential)
{
    const char *src = R"(
        void histo(int *bins, int *key, int n) {
            for (int i = 0; i < n; i++)
                bins[key[i]] += 1;
        }
    )";
    auto run = [&](bool transformed) {
        Pipeline p;
        p.build(src, transformed);
        if (transformed)
            EXPECT_EQ(p.replacements.size(), 1u);
        interp::Memory mem;
        interp::Interpreter it(*p.module, mem);
        transform::bindReplacements(it, p.replacements);
        uint64_t bins = mem.allocate(4 * 4), key = mem.allocate(10 * 4);
        int32_t keys[10] = {0, 1, 2, 3, 0, 1, 2, 0, 1, 0};
        for (int i = 0; i < 10; ++i)
            mem.store<int32_t>(key + 4 * i, keys[i]);
        it.run(p.module->functionByName("histo"),
               {I(bins), I(key), I(10)});
        std::vector<int32_t> out(4);
        for (int i = 0; i < 4; ++i)
            out[i] = mem.load<int32_t>(bins + 4 * i);
        return out;
    };
    auto seq = run(false);
    auto acc = run(true);
    EXPECT_EQ(seq, acc);
    EXPECT_EQ(seq[0], 4);
}

TEST(Transform, GemmFlatMatchesSequential)
{
    const char *src = R"(
        void sgemm(float *A, int lda, float *B, int ldb, float *C,
                   int ldc, int m, int n, int k,
                   float alpha, float beta) {
            for (int mm = 0; mm < m; mm++) {
                for (int nn = 0; nn < n; nn++) {
                    float c = 0.0f;
                    for (int i = 0; i < k; i++)
                        c += A[mm + i * lda] * B[nn + i * ldb];
                    C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
                }
            }
        }
    )";
    const int M = 4, N = 3, K = 5;
    auto run = [&](bool transformed) {
        Pipeline p;
        p.build(src, transformed);
        if (transformed) {
            EXPECT_EQ(p.replacements.size(), 1u);
            EXPECT_EQ(p.replacements[0].kind, "gemm");
        }
        interp::Memory mem;
        interp::Interpreter it(*p.module, mem);
        transform::bindReplacements(it, p.replacements);
        uint64_t A = mem.allocate(M * K * 4);
        uint64_t B = mem.allocate(N * K * 4);
        uint64_t C = mem.allocate(M * N * 4);
        for (int i = 0; i < M * K; ++i)
            mem.store<float>(A + 4 * i, 0.25f * i);
        for (int i = 0; i < N * K; ++i)
            mem.store<float>(B + 4 * i, 1.0f - 0.1f * i);
        for (int i = 0; i < M * N; ++i)
            mem.store<float>(C + 4 * i, 2.0f);
        it.run(p.module->functionByName("sgemm"),
               {I(A), I(M), I(B), I(N), I(C), I(M), I(M), I(N), I(K),
                F(1.5), F(0.5)});
        std::vector<float> out(M * N);
        for (int i = 0; i < M * N; ++i)
            out[i] = mem.load<float>(C + 4 * i);
        return out;
    };
    auto seq = run(false);
    auto acc = run(true);
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_FLOAT_EQ(seq[i], acc[i]) << "elem " << i;
}

TEST(Transform, Stencil3dMatchesSequential)
{
    const char *src = R"(
        void stencil(double c0, double c1, double *A0, double *Anext,
                     int nx, int ny, int nz) {
            for (int k = 1; k < nz - 1; k++)
                for (int j = 1; j < ny - 1; j++)
                    for (int i = 1; i < nx - 1; i++)
                        Anext[i + nx * (j + ny * k)] =
                          c1 * (A0[(i+1) + nx * (j + ny * k)] +
                                A0[(i-1) + nx * (j + ny * k)] +
                                A0[i + nx * ((j+1) + ny * k)] +
                                A0[i + nx * ((j-1) + ny * k)] +
                                A0[i + nx * (j + ny * (k+1))] +
                                A0[i + nx * (j + ny * (k-1))]) -
                          c0 * A0[i + nx * (j + ny * k)];
        }
    )";
    const int NX = 6, NY = 5, NZ = 4, TOTAL = NX * NY * NZ;
    auto run = [&](bool transformed) {
        Pipeline p;
        p.build(src, transformed);
        if (transformed) {
            EXPECT_EQ(p.replacements.size(), 1u);
            EXPECT_EQ(p.replacements[0].kind, "stencil3d");
        }
        interp::Memory mem;
        interp::Interpreter it(*p.module, mem);
        transform::bindReplacements(it, p.replacements);
        uint64_t A0 = mem.allocate(TOTAL * 8);
        uint64_t An = mem.allocate(TOTAL * 8);
        for (int i = 0; i < TOTAL; ++i)
            mem.store<double>(A0 + 8 * i, 0.01 * i * (i % 7));
        it.run(p.module->functionByName("stencil"),
               {F(2.0), F(0.1), I(A0), I(An), I(NX), I(NY), I(NZ)});
        std::vector<double> out(TOTAL);
        for (int i = 0; i < TOTAL; ++i)
            out[i] = mem.load<double>(An + 8 * i);
        return out;
    };
    auto seq = run(false);
    auto acc = run(true);
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_DOUBLE_EQ(seq[i], acc[i]) << "cell " << i;
}

// Table-driven differential sweep: on every Table 1 suite program the
// transactional engine (applyAll) and the legacy per-match path
// (applyAllReference) must produce byte-identical modules and
// replacement metadata — and the corpus idiom counts must stay at the
// paper's 45/5/6/1/3.
TEST(Transform, EngineMatchesReferenceOnTable1Suite)
{
    int sr = 0, histos = 0, stencils = 0, matrix = 0, sparse = 0;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module ref_module, eng_module;
        frontend::compileMiniCOrDie(b.source, ref_module);
        frontend::compileMiniCOrDie(b.source, eng_module);
        idioms::IdiomDetector ref_det, eng_det;
        auto ref_matches = ref_det.detectModule(ref_module);
        auto eng_matches = eng_det.detectModule(eng_module);
        ASSERT_EQ(ref_matches.size(), eng_matches.size()) << b.name;
        for (const auto &m : eng_matches) {
            switch (m.cls) {
              case idioms::IdiomClass::ScalarReduction: ++sr; break;
              case idioms::IdiomClass::HistogramReduction:
                ++histos;
                break;
              case idioms::IdiomClass::Stencil: ++stencils; break;
              case idioms::IdiomClass::MatrixOp: ++matrix; break;
              case idioms::IdiomClass::SparseMatrixOp: ++sparse; break;
              default: break;
            }
        }

        transform::Transformer ref_tr(ref_module);
        auto ref_reps = ref_tr.applyAllReference(ref_matches);
        transform::Transformer eng_tr(eng_module);
        auto eng_reps = eng_tr.applyAll(eng_matches);

        ASSERT_EQ(ref_reps.size(), eng_reps.size()) << b.name;
        for (size_t i = 0; i < ref_reps.size(); ++i) {
            const auto &r = ref_reps[i];
            const auto &e = eng_reps[i];
            EXPECT_EQ(r.kind, e.kind) << b.name;
            EXPECT_EQ(r.calleeName, e.calleeName) << b.name;
            EXPECT_EQ(r.kernel != nullptr, e.kernel != nullptr)
                << b.name;
            if (r.kernel && e.kernel)
                EXPECT_EQ(r.kernel->name(), e.kernel->name());
            EXPECT_EQ(r.indexKernel != nullptr,
                      e.indexKernel != nullptr)
                << b.name;
            EXPECT_EQ(r.numReads, e.numReads) << b.name;
            EXPECT_EQ(r.numInvariants, e.numInvariants) << b.name;
            EXPECT_EQ(r.numIndexInvariants, e.numIndexInvariants)
                << b.name;
            EXPECT_EQ(r.readKinds, e.readKinds) << b.name;
            EXPECT_EQ(r.readOffsets, e.readOffsets) << b.name;
            EXPECT_EQ(r.stencilDims, e.stencilDims) << b.name;
            EXPECT_EQ(r.elemKind, e.elemKind) << b.name;
        }
        EXPECT_EQ(ir::printModule(ref_module),
                  ir::printModule(eng_module))
            << b.name;
        auto ref_problems = ir::verifyModule(ref_module);
        auto eng_problems = ir::verifyModule(eng_module);
        EXPECT_TRUE(ref_problems.empty()) << b.name;
        EXPECT_TRUE(eng_problems.empty()) << b.name;
    }
    EXPECT_EQ(sr, 45);
    EXPECT_EQ(histos, 5);
    EXPECT_EQ(stencils, 6);
    EXPECT_EQ(matrix, 1);
    EXPECT_EQ(sparse, 3);
}

namespace {

/**
 * Negative-oracle fixture: a reduction program whose result is
 * published through a single store to the `out` argument. The tamper
 * hook drops exactly that store, so the watched output keeps its
 * sentinel value and differential verification must notice.
 */
benchmarks::BenchmarkProgram
dotProgram()
{
    benchmarks::BenchmarkProgram p;
    p.name = "oracle-dot";
    p.suite = "test";
    p.entry = "dot";
    p.source = R"(
        double dot(int n, double *a, double *b, double *out) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s = s + a[i] * b[i];
            out[0] = s;
            return s;
        }
    )";
    p.setup = [](interp::Memory &mem) {
        const int n = 64;
        benchmarks::Instance inst;
        uint64_t a = mem.allocate(n * 8);
        uint64_t b = mem.allocate(n * 8);
        uint64_t out = mem.allocate(8);
        for (int i = 0; i < n; ++i) {
            mem.store<double>(a + 8 * i, 0.5 + 0.25 * i);
            mem.store<double>(b + 8 * i, 2.0 - 0.125 * i);
        }
        mem.store<double>(out, -1.0); // sentinel the sabotage exposes
        inst.args = {I(n), I(a), I(b), I(out)};
        inst.watchDoubles = {{out, 1}};
        return inst;
    };
    return p;
}

/** Erase every store whose pointer traces to argument @p argIndex of
 *  @p fn (directly or through one GEP). */
void
dropStoresTo(ir::Function *fn, size_t argIndex)
{
    ir::Value *target = fn->arg(argIndex);
    std::vector<ir::Instruction *> victims;
    for (auto &bb : fn->blocks()) {
        for (auto &inst : bb->insts()) {
            if (inst->opcode() != ir::Opcode::Store)
                continue;
            ir::Value *ptr = inst->operand(1);
            if (ptr == target) {
                victims.push_back(inst.get());
                continue;
            }
            auto *gep = dynamic_cast<ir::Instruction *>(ptr);
            if (gep && gep->opcode() == ir::Opcode::GEP &&
                gep->operand(0) == target)
                victims.push_back(inst.get());
        }
    }
    ASSERT_FALSE(victims.empty())
        << "no store to argument " << argIndex << " found";
    for (ir::Instruction *inst : victims)
        inst->parent()->erase(inst);
}

} // namespace

TEST(Transform, NegativeOracleDroppedStoreFailsVerification)
{
    benchmarks::BenchmarkProgram prog = dotProgram();
    driver::MatchingDriver drv;

    // The untampered pipeline must pass and must actually transform
    // (the reduction loop is idiomatic), so the oracle below is
    // exercising verification of rewritten code, not a no-op run.
    driver::TransformVerification clean = drv.verifyTransform(prog);
    ASSERT_TRUE(clean.ok()) << clean.error;
    ASSERT_GE(clean.replacements, 1u);

    // Sabotage: drop the store publishing the result. Verification
    // must fail, and the failure must be attributed to the watched
    // output comparison, not to an engine disagreement.
    driver::TransformVerification broken = drv.verifyTransform(
        prog, [](ir::Module &m) {
            ir::Function *fn = m.functionByName("dot");
            ASSERT_NE(fn, nullptr);
            dropStoresTo(fn, 3);
        });
    EXPECT_FALSE(broken.ok());
    EXPECT_NE(broken.error.find("watched double"), std::string::npos)
        << broken.error;
}

TEST(Transform, NegativeOracleNullTamperMatchesPlainVerify)
{
    // The hook itself must not perturb verification: a present but
    // empty tamper behaves exactly like the 1-argument overload.
    benchmarks::BenchmarkProgram prog = dotProgram();
    driver::MatchingDriver drv;
    driver::TransformVerification hooked =
        drv.verifyTransform(prog, [](ir::Module &) {});
    EXPECT_TRUE(hooked.ok()) << hooked.error;
    driver::TransformVerification plain = drv.verifyTransform(prog);
    EXPECT_EQ(plain.ok(), hooked.ok());
    EXPECT_EQ(plain.originalSteps, hooked.originalSteps);
    EXPECT_EQ(plain.transformedSteps, hooked.transformedSteps);
    EXPECT_EQ(plain.replacements, hooked.replacements);
}
