/**
 * @file
 * Protocol fuzzing: seeded random, truncated and oversized byte
 * streams against the request parser and the full command loop.
 *
 * The properties under test are the daemon's survival guarantees,
 * not any specific response: parseRequest never crashes on any
 * line; the command loop (runRepl — byte-identical to the socket
 * handler's loop) never crashes or hangs on arbitrary input; and a
 * connection that sent a malformed-but-framable request stays
 * usable for the next well-formed one. Every campaign is seeded and
 * bounded, so a failure replays exactly.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"

using namespace repro;

namespace {

constexpr uint64_t kSeed = 0xf0220badc0ffeeull;

/** Deterministic PRNG (splitmix64). */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t
    below(uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }
};

const char *const kVerbs[] = {"HELLO",    "SUBMIT", "MATCHES",
                              "STATS",    "CAPACITY", "DROP",
                              "RESET",    "QUIT",   "BOGUS",
                              "submit",   "",       "SUBMITX"};

/** A random token: printable, numeric, or raw bytes. */
std::string
randomToken(Rng &rng)
{
    std::string token;
    const size_t len = rng.below(12) + 1;
    switch (rng.below(4)) {
      case 0: // printable identifier-ish
        for (size_t i = 0; i < len; ++i)
            token.push_back(
                static_cast<char>('a' + rng.below(26)));
        break;
      case 1: // number, possibly enormous
        for (size_t i = 0; i < len + rng.below(18); ++i)
            token.push_back(
                static_cast<char>('0' + rng.below(10)));
        break;
      case 2: // heredoc-ish
        token = "<<";
        for (size_t i = 0; i < len; ++i)
            token.push_back(
                static_cast<char>('A' + rng.below(26)));
        break;
      default: // raw bytes (no \n — that would split the line)
        for (size_t i = 0; i < len; ++i) {
            char c = static_cast<char>(rng.below(256));
            token.push_back(c == '\n' ? '?' : c);
        }
        break;
    }
    return token;
}

std::string
randomLine(Rng &rng)
{
    std::string line = kVerbs[rng.below(sizeof(kVerbs) /
                                        sizeof(kVerbs[0]))];
    const size_t extra = rng.below(4);
    for (size_t i = 0; i < extra; ++i) {
        line += ' ';
        line += randomToken(rng);
    }
    return line;
}

} // namespace

TEST(ProtocolFuzz, ParseRequestNeverCrashesOnRandomLines)
{
    Rng rng(kSeed);
    for (int i = 0; i < 20000; ++i) {
        const std::string line = randomLine(rng);
        auto request = service::parseRequest(line);
        // Whatever parsed must carry a self-consistent shape.
        if (request.verb == service::Request::Verb::Invalid)
            EXPECT_FALSE(request.error.empty()) << line;
        if (!request.terminator.empty())
            EXPECT_EQ(request.verb, service::Request::Verb::Submit);
    }
}

TEST(ProtocolFuzz, ParseRequestHandlesHostileSubmitOptions)
{
    // The DEADLINE_MS option must parse strictly: anything else in
    // the fourth slot is a clean Invalid, never a crash or a bogus
    // deadline.
    auto ok = service::parseRequest("SUBMIT m 10 DEADLINE_MS=250");
    EXPECT_EQ(ok.verb, service::Request::Verb::Submit);
    EXPECT_EQ(ok.deadlineMillis, 250u);

    for (const char *bad :
         {"SUBMIT m 10 DEADLINE_MS=", "SUBMIT m 10 DEADLINE_MS=x",
          "SUBMIT m 10 DEADLINE_MS=-5", "SUBMIT m 10 DEADLINE=5",
          "SUBMIT m 10 D", "SUBMIT m 10 DEADLINE_MS=5 extra",
          "SUBMIT m 10 DEADLINE_MS=99999999999999999999999999"}) {
        auto request = service::parseRequest(bad);
        EXPECT_EQ(request.verb, service::Request::Verb::Invalid)
            << bad;
        EXPECT_EQ(request.deadlineMillis, 0u) << bad;
    }
}

TEST(ProtocolFuzz, RandomStreamsNeverCrashOrHangTheCommandLoop)
{
    Rng rng(kSeed ^ 0x10af);
    for (int round = 0; round < 300; ++round) {
        std::string script;
        const size_t lines = rng.below(20) + 1;
        for (size_t i = 0; i < lines; ++i) {
            script += randomLine(rng);
            script += '\n';
        }
        // Half the rounds end mid-line (a truncated stream).
        if (round % 2 == 0 && !script.empty())
            script.resize(script.size() - 1 - rng.below(
                std::min<size_t>(script.size() - 1, 8)));

        service::MatchService svc;
        std::istringstream in(script);
        std::ostringstream out;
        // Must return; gtest's default timeout catches a hang, any
        // uncaught throw/abort fails the test outright.
        service::runRepl(svc, in, out);
    }
}

TEST(ProtocolFuzz, TruncatedCountedSubmitTearsDownCleanly)
{
    Rng rng(kSeed ^ 0x7c07);
    for (int round = 0; round < 100; ++round) {
        const size_t claimed = rng.below(4096) + 1;
        const size_t delivered = rng.below(claimed);
        std::string script = "SUBMIT frag " +
                             std::to_string(claimed) + "\n";
        for (size_t i = 0; i < delivered; ++i)
            script.push_back(
                static_cast<char>(rng.below(255) + 1));

        service::MatchService svc;
        std::istringstream in(script);
        std::ostringstream out;
        service::runRepl(svc, in, out);
        EXPECT_NE(out.str().find("ERR truncated SUBMIT payload"),
                  std::string::npos)
            << "round " << round;
        EXPECT_EQ(svc.sessionCount(), 0u);
    }
}

TEST(ProtocolFuzz, OversizedCountsAreRefusedWithoutAllocation)
{
    // Counts past kMaxPayloadBytes, including ones that would
    // overflow size_t arithmetic, fail before any buffer exists.
    for (const char *count :
         {"16777217", "4294967296", "18446744073709551615",
          "18446744073709551616", "99999999999999999999"}) {
        service::MatchService svc;
        std::istringstream in(std::string("SUBMIT big ") + count +
                              "\n");
        std::ostringstream out;
        service::runRepl(svc, in, out);
        const std::string response = out.str();
        EXPECT_TRUE(
            response.find("ERR payload too large") !=
                std::string::npos ||
            response.find("ERR SUBMIT payload size") !=
                std::string::npos)
            << count << " -> " << response;
    }
}

TEST(ProtocolFuzz, MalformedRequestLeavesTheConnectionUsable)
{
    // Every framable malformation (bad verb, bad arity, bad option,
    // binary garbage in a line) must fail its own request only: the
    // next well-formed request on the same connection succeeds.
    Rng rng(kSeed ^ 0xab1e);
    const std::string good = "int f(int x) { return x + 1; }\n";
    for (int round = 0; round < 60; ++round) {
        std::string garbage = randomLine(rng);
        // Keep this stratum framable and non-terminal: a line that
        // parses as a real SUBMIT would swallow the rest of the
        // script as payload, and a real QUIT would end the session —
        // in-contract, but not what this test measures.
        auto parsed = service::parseRequest(garbage);
        if (parsed.verb == service::Request::Verb::Submit ||
            parsed.verb == service::Request::Verb::Quit)
            garbage = "GARBAGE " + std::to_string(rng.next());

        std::ostringstream script;
        script << garbage << "\n";
        script << "SUBMIT sane " << good.size() << "\n" << good;
        script << "QUIT\n";

        service::MatchService svc;
        std::istringstream in(script.str());
        std::ostringstream out;
        service::runRepl(svc, in, out);
        const std::string transcript = out.str();
        // The recovery path is what matters: SUBMIT then QUIT ran.
        EXPECT_NE(transcript.find("OK module=sane"),
                  std::string::npos)
            << "round " << round << " garbage: " << garbage;
        EXPECT_NE(transcript.find("OK bye"), std::string::npos);
    }
}
