#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

#include "frontend/compiler.h"
#include "interp/builtins.h"
#include "interp/interpreter.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

RuntimeValue I(int64_t v) { return RuntimeValue::makeInt(v); }
RuntimeValue F(double v) { return RuntimeValue::makeFP(v); }

double
runDouble(const char *src, const char *fn,
          const std::vector<RuntimeValue> &args)
{
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    interp::registerMathBuiltins(it);
    return it.run(module.functionByName(fn), args).f;
}

int64_t
runInt(const char *src, const char *fn,
       const std::vector<RuntimeValue> &args)
{
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    interp::registerMathBuiltins(it);
    return it.run(module.functionByName(fn), args).i;
}

} // namespace

// Property-style sweep: integer operator semantics match C.
struct IntOpCase
{
    const char *expr;
    int64_t (*expected)(int64_t, int64_t);
};

class IntOps : public ::testing::TestWithParam<IntOpCase>
{};

TEST_P(IntOps, MatchesHostSemantics)
{
    const IntOpCase &c = GetParam();
    std::string src = std::string("long f(long a, long b) { return ") +
                      c.expr + "; }";
    for (int64_t a : {-7, -1, 0, 3, 100}) {
        for (int64_t b : {1, 2, 5, 13}) {
            EXPECT_EQ(runInt(src.c_str(), "f", {I(a), I(b)}),
                      c.expected(a, b))
                << c.expr << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntOps,
    ::testing::Values(
        IntOpCase{"a + b", [](int64_t a, int64_t b) { return a + b; }},
        IntOpCase{"a - b", [](int64_t a, int64_t b) { return a - b; }},
        IntOpCase{"a * b", [](int64_t a, int64_t b) { return a * b; }},
        IntOpCase{"a / b", [](int64_t a, int64_t b) { return a / b; }},
        IntOpCase{"a % b", [](int64_t a, int64_t b) { return a % b; }},
        IntOpCase{"a & b", [](int64_t a, int64_t b) { return a & b; }},
        IntOpCase{"a | b", [](int64_t a, int64_t b) { return a | b; }},
        IntOpCase{"a ^ b", [](int64_t a, int64_t b) { return a ^ b; }},
        IntOpCase{"a < b",
                  [](int64_t a, int64_t b) -> int64_t { return a < b; }},
        IntOpCase{"a >= b", [](int64_t a, int64_t b) -> int64_t {
                      return a >= b;
                  }},
        IntOpCase{"a == b ? a : b", [](int64_t a, int64_t b) {
                      return a == b ? a : b;
                  }}));

TEST(Interp, ShortCircuitLogic)
{
    const char *src = R"(
        int f(int a, int b) { return a > 0 && b > 0; }
        int g(int a, int b) { return a > 0 || b > 0; }
    )";
    EXPECT_EQ(runInt(src, "f", {I(1), I(1)}), 1);
    EXPECT_EQ(runInt(src, "f", {I(1), I(0)}), 0);
    EXPECT_EQ(runInt(src, "f", {I(0), I(1)}), 0);
    EXPECT_EQ(runInt(src, "g", {I(0), I(0)}), 0);
    EXPECT_EQ(runInt(src, "g", {I(0), I(2)}), 1);
}

TEST(Interp, MathBuiltins)
{
    const char *src = R"(
        double f(double x) { return sqrt(x) + fabs(0.0 - x) + pow(x, 2.0); }
    )";
    EXPECT_DOUBLE_EQ(runDouble(src, "f", {F(4.0)}),
                     std::sqrt(4.0) + 4.0 + 16.0);
}

TEST(Interp, RecursionAndCalls)
{
    const char *src = R"(
        long fact(long n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
    )";
    EXPECT_EQ(runInt(src, "fact", {I(10)}), 3628800);
}

TEST(Interp, LocalArraysAndWhileLoops)
{
    const char *src = R"(
        int f(int n) {
            int fib[32];
            fib[0] = 0; fib[1] = 1;
            int i = 2;
            while (i <= n) {
                fib[i] = fib[i-1] + fib[i-2];
                i++;
            }
            return fib[n];
        }
    )";
    EXPECT_EQ(runInt(src, "f", {I(11)}), 89);
}

TEST(Interp, GlobalMultiDimArrays)
{
    const char *src = R"(
        double grid[4][5];
        double f(int i, int j) {
            grid[i][j] = 2.5;
            grid[i][j] += 1.5;
            return grid[i][j];
        }
    )";
    EXPECT_DOUBLE_EQ(runDouble(src, "f", {I(2), I(3)}), 4.0);
}

TEST(Interp, StepLimitTrips)
{
    const char *src = "void f() { while (1 > 0) { } }";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    it.setStepLimit(1000);
    EXPECT_THROW(it.run(module.functionByName("f"), {}), FatalError);
}

TEST(Interp, MemoryRangeChecked)
{
    interp::Memory mem;
    uint64_t a = mem.allocate(8);
    mem.store<double>(a, 1.0);
    EXPECT_DOUBLE_EQ(mem.load<double>(a), 1.0);
    EXPECT_THROW(mem.load<double>(mem.size() + 64), FatalError);
    EXPECT_THROW(mem.load<double>(0), FatalError); // null guard
}

TEST(Interp, MemoryRangeCheckRejectsAddressOverflow)
{
    // Regression: checkRange computed `addr + size`, which wraps for
    // near-2^64 addresses and silently passed the bounds check (the
    // memcpy then read/wrote wild host memory).
    interp::Memory mem;
    mem.allocate(64);
    EXPECT_THROW(mem.load<double>(UINT64_MAX - 4), FatalError);
    EXPECT_THROW(mem.store<double>(UINT64_MAX - 4, 1.0), FatalError);
    EXPECT_THROW(mem.load<int32_t>(UINT64_MAX - 2), FatalError);
    EXPECT_THROW(mem.store<int64_t>(UINT64_MAX - 7, 1), FatalError);
    EXPECT_THROW(mem.load<uint8_t>(UINT64_MAX), FatalError);
    // The boundary itself still works.
    uint64_t last = mem.size() - 8;
    mem.store<int64_t>(last, 42);
    EXPECT_EQ(mem.load<int64_t>(last), 42);
}

TEST(Interp, MemoryAllocateRejectsOverflowingSizes)
{
    // Regression: `addr + size` overflowed inside allocate, resizing
    // the heap to a tiny wrapped value instead of failing.
    interp::Memory mem;
    EXPECT_THROW(mem.allocate(UINT64_MAX), FatalError);
    EXPECT_THROW(mem.allocate(UINT64_MAX - 2), FatalError);
    EXPECT_THROW(mem.allocate(UINT64_MAX / 2), FatalError);
    // The failed calls must not have corrupted the heap.
    uint64_t a = mem.allocate(16);
    mem.store<int64_t>(a, 7);
    EXPECT_EQ(mem.load<int64_t>(a), 7);
}

TEST(Interp, ZeroSizedAllocationsDoNotAlias)
{
    // Regression: allocate(0) returned the current end-of-heap
    // address without advancing it, so the next allocation aliased
    // the zero-sized one.
    interp::Memory mem;
    uint64_t a = mem.allocate(0);
    uint64_t b = mem.allocate(0);
    uint64_t c = mem.allocate(8);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
    EXPECT_GE(b, a + 1);
    EXPECT_GE(c, b + 1);
}

TEST(Interp, RawSpanGuardsAgainstInvalidation)
{
    interp::Memory mem;
    uint64_t a = mem.allocate(8);
    mem.store<int64_t>(a, 11);
    {
        interp::Memory::RawSpan span(mem, a, 8);
        int64_t v;
        std::memcpy(&v, span.data(), sizeof(v));
        EXPECT_EQ(v, 11);
        // Growing the heap would invalidate the borrowed pointer;
        // the guard turns that bug into an InternalError.
        EXPECT_THROW(mem.allocate(8), InternalError);
    }
    // Once the span is gone, allocation works again.
    uint64_t b = mem.allocate(8);
    EXPECT_GT(b, a);
}

TEST(Interp, PhiGroupsChargeEveryMember)
{
    // Regression: the tree-walker evaluated a whole phi group
    // atomically but charged only the first phi to steps_/profile_,
    // skewing the per-loop counts Figures 16-19 report.
    const char *src = R"(
        int fib(int n) {
            int a = 0;
            int b = 1;
            for (int i = 0; i < n; i++) {
                int t = a + b;
                a = b;
                b = t;
            }
            return a;
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);

    for (bool reference : {true, false}) {
        interp::Memory mem;
        interp::Interpreter it(module, mem);
        it.enableProfile(true);
        ir::Function *func = module.functionByName("fib");
        int64_t r = reference ? it.runReference(func, {I(10)}).i
                              : it.run(func, {I(10)}).i;
        EXPECT_EQ(r, 55);

        // Every phi of a group executes the same number of times, so
        // all phis of one block must carry identical nonzero counts.
        size_t phis = 0;
        for (const auto &bb : func->blocks()) {
            uint64_t groupCount = 0;
            for (const auto &inst : bb->insts()) {
                if (!inst->is(ir::Opcode::Phi))
                    break;
                auto found = it.profile().counts.find(inst.get());
                ASSERT_NE(found, it.profile().counts.end())
                    << "uncharged phi (engine "
                    << (reference ? "reference" : "bytecode") << ")";
                if (groupCount == 0)
                    groupCount = found->second;
                EXPECT_EQ(found->second, groupCount);
                EXPECT_GT(found->second, 0u);
                ++phis;
            }
        }
        // mem2reg must have produced a phi group (a, b, i at least).
        EXPECT_GE(phis, 3u);

        // totalSteps is consistent with the per-instruction counts.
        uint64_t sum = 0;
        for (const auto &[inst, count] : it.profile().counts) {
            (void)inst;
            sum += count;
        }
        EXPECT_EQ(sum, it.profile().totalSteps);
    }
}

TEST(Interp, ProfileCountsDynamicInstructions)
{
    const char *src = R"(
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += i;
            return s;
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    it.enableProfile(true);
    it.run(module.functionByName("f"), {I(10)});
    uint64_t t1 = it.profile().totalSteps;
    it.clearProfile();
    it.run(module.functionByName("f"), {I(100)});
    uint64_t t2 = it.profile().totalSteps;
    EXPECT_GT(t2, t1 * 5); // roughly proportional to trip count
}

TEST(Interp, FloatRoundsToSinglePrecision)
{
    const char *src = R"(
        float f(float a, float b) { return a * b + 0.1f; }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    interp::Memory mem;
    interp::Interpreter it(module, mem);
    double r = it.run(module.functionByName("f"),
                      {F(1.375), F(2.9375)}).f;
    float expect = 1.375f * 2.9375f;
    expect += 0.1f;
    EXPECT_EQ(r, static_cast<double>(expect));
}
