/**
 * @file
 * Tests of the reliability-hardening rewrites (transform/harden.h),
 * the deterministic fault-injection hooks of both execution engines
 * and the campaign harness (driver/harden_campaign.h).
 *
 * The pins, in dependency order: hardening must be a semantic no-op
 * on fault-free runs (both engines, bit-identical outputs); a given
 * FaultPlan must classify identically under the bytecode and the
 * tree-walking reference engine; the campaign must be byte-stable
 * under sharding; and across the NAS/Parboil suite the hardened sweep
 * must eliminate silent data corruption that the baseline sweep
 * demonstrably suffers. Finally, hardening must win block-claim
 * overlap resolution against idiom rewrites inside `__protect`
 * functions, and the single-pass `__protect(eddi)` /
 * `__protect(cfcss)` modes must commit on their own.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/suite.h"
#include "driver/harden_campaign.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "interp/builtins.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "transform/harden.h"
#include "transform/rewrite.h"
#include "transform/transform.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

/** Compile @p program, optionally hardening its entry function. */
void
compileVariant(const benchmarks::BenchmarkProgram &program,
               ir::Module &module, const char *protectAttr)
{
    frontend::compileMiniCOrDie(program.source, module);
    if (!protectAttr)
        return;
    ir::Function *entry = module.functionByName(program.entry);
    ASSERT_NE(entry, nullptr) << program.name;
    entry->addAttribute(protectAttr);
    transform::Transformer transformer(module);
    auto reps = transformer.applyAll({});
    ASSERT_EQ(reps.size(), 1u) << program.name;
    EXPECT_EQ(reps[0].kind, "harden") << program.name;
    auto problems = ir::verifyModule(module);
    ASSERT_TRUE(problems.empty())
        << program.name << ": " << problems.front();
}

struct RunResult
{
    RuntimeValue ret;
    std::vector<uint8_t> watched;
    uint64_t steps = 0;
};

/** One fresh-heap execution of @p program's entry function. */
RunResult
runProgram(ir::Module &module,
           const benchmarks::BenchmarkProgram &program, bool reference)
{
    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    interp::registerMathBuiltins(interp);
    benchmarks::Instance inst = program.setup(mem);
    ir::Function *entry = module.functionByName(program.entry);
    RunResult out;
    out.ret = reference ? interp.runReference(entry, inst.args)
                        : interp.run(entry, inst.args);
    out.steps = interp.stepsExecuted();
    auto grab = [&](const std::vector<std::pair<uint64_t, size_t>> &ws,
                    uint64_t elemSize) {
        for (const auto &[addr, count] : ws) {
            interp::Memory::RawSpan span(mem, addr, elemSize * count);
            out.watched.insert(out.watched.end(), span.data(),
                               span.data() + span.size());
        }
    };
    grab(inst.watchDoubles, 8);
    grab(inst.watchInts, 4);
    return out;
}

void
expectSameResult(const RunResult &x, const RunResult &y,
                 const std::string &what)
{
    EXPECT_TRUE(RuntimeValue::bitsEqual(x.ret, y.ret)) << what;
    EXPECT_EQ(x.watched, y.watched) << what;
}

void
expectSameCampaign(const driver::HardenCampaignResult &x,
                   const driver::HardenCampaignResult &y)
{
    EXPECT_EQ(x.program, y.program);
    EXPECT_EQ(x.hardened, y.hardened);
    EXPECT_EQ(x.goldenSteps, y.goldenSteps) << x.program;
    EXPECT_EQ(x.goldenBoundaries, y.goldenBoundaries) << x.program;
    EXPECT_EQ(x.detected, y.detected) << x.program;
    EXPECT_EQ(x.masked, y.masked) << x.program;
    EXPECT_EQ(x.sdc, y.sdc) << x.program;
    EXPECT_EQ(x.crashed, y.crashed) << x.program;
    ASSERT_EQ(x.runs.size(), y.runs.size()) << x.program;
    for (size_t i = 0; i < x.runs.size(); ++i) {
        EXPECT_EQ(x.runs[i].plan.step, y.runs[i].plan.step);
        EXPECT_EQ(x.runs[i].plan.valueIndex,
                  y.runs[i].plan.valueIndex);
        EXPECT_EQ(x.runs[i].plan.bit, y.runs[i].plan.bit);
        EXPECT_EQ(x.runs[i].outcome, y.runs[i].outcome)
            << x.program << " run " << i;
    }
}

} // namespace

TEST(Harden, NoFaultRunsAreSemanticallyInvisible)
{
    // Across the whole suite: hardening must change how much work a
    // program does, never what it computes — on either engine.
    for (const auto &b : benchmarks::nasParboilSuite()) {
        SCOPED_TRACE(b.name);
        ir::Module plain, hardened;
        compileVariant(b, plain, nullptr);
        compileVariant(b, hardened, "protect");
        if (::testing::Test::HasFatalFailure())
            return;

        RunResult plainFast = runProgram(plain, b, false);
        RunResult hardFast = runProgram(hardened, b, false);
        RunResult hardRef = runProgram(hardened, b, true);
        expectSameResult(plainFast, hardFast, b.name + " bytecode");
        expectSameResult(plainFast, hardRef, b.name + " reference");
        // The checks are real instructions: the hardened run must be
        // doing strictly more dynamic work.
        EXPECT_GT(hardFast.steps, plainFast.steps) << b.name;
        EXPECT_EQ(hardFast.steps, hardRef.steps) << b.name;
    }
}

TEST(Harden, FaultOutcomesAgreeAcrossEngines)
{
    // The same FaultPlan must classify identically under both
    // engines: that parity is what makes campaign numbers engine-
    // independent facts about the program, not about the interpreter.
    driver::HardenCampaignOptions opts;
    opts.injectionsPerProgram = 8;
    for (const char *name : {"IS", "MG"}) {
        const auto &b = benchmarks::benchmarkByName(name);
        for (bool harden : {true, false}) {
            SCOPED_TRACE(std::string(name) +
                         (harden ? " hardened" : " baseline"));
            opts.harden = harden;
            opts.useReferenceEngine = false;
            auto fast = driver::runHardenCampaign(b, opts);
            opts.useReferenceEngine = true;
            auto ref = driver::runHardenCampaign(b, opts);
            expectSameCampaign(fast, ref);
        }
    }
}

TEST(Harden, CampaignShardingIsDeterministic)
{
    driver::HardenCampaignOptions opts;
    opts.injectionsPerProgram = 2;
    auto serial = driver::runHardenCampaignSuite(opts, 1);
    auto sharded = driver::runHardenCampaignSuite(opts, 4);
    ASSERT_EQ(serial.size(), sharded.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectSameCampaign(serial[i], sharded[i]);
}

TEST(Harden, CampaignEliminatesSilentCorruption)
{
    // The acceptance claim of the hardening passes, in miniature:
    // hardened programs catch at least 90% of the faults that would
    // otherwise corrupt silently, while the identical baseline sweep
    // proves the injected faults do cause SDC when unprotected.
    driver::HardenCampaignOptions opts;
    opts.injectionsPerProgram = 12;

    opts.harden = true;
    auto hardened = driver::runHardenCampaignSuite(opts, 1);
    size_t detected = 0, sdc = 0;
    for (const auto &r : hardened) {
        EXPECT_EQ(r.sdc, 0u) << r.program;
        detected += r.detected;
        sdc += r.sdc;
    }
    ASSERT_GT(detected + sdc, 0u);
    EXPECT_GE(static_cast<double>(detected) /
                  static_cast<double>(detected + sdc),
              0.9);

    opts.harden = false;
    auto baseline = driver::runHardenCampaignSuite(opts, 1);
    size_t baselineSdc = 0, baselineDetected = 0;
    for (const auto &r : baseline) {
        baselineSdc += r.sdc;
        baselineDetected += r.detected;
    }
    EXPECT_GT(baselineSdc, 0u)
        << "baseline sweep shows no SDC: the campaign is vacuous";
    // No hardening checks exist in the baseline, so nothing traps.
    EXPECT_EQ(baselineDetected, 0u);
}

TEST(Harden, SinglePassModesCommit)
{
    // `__protect(eddi)` and `__protect(cfcss)` must each commit alone
    // and stay semantically invisible; both passes together must cost
    // more dynamic steps than either alone.
    const auto &b = benchmarks::benchmarkByName("IS");
    ir::Module plain;
    compileVariant(b, plain, nullptr);
    RunResult base = runProgram(plain, b, false);

    uint64_t steps[3] = {0, 0, 0};
    const char *modes[3] = {"protect:eddi", "protect:cfcss",
                            "protect"};
    for (int m = 0; m < 3; ++m) {
        SCOPED_TRACE(modes[m]);
        ir::Module module;
        compileVariant(b, module, modes[m]);
        if (::testing::Test::HasFatalFailure())
            return;
        RunResult fast = runProgram(module, b, false);
        RunResult ref = runProgram(module, b, true);
        expectSameResult(base, fast, modes[m]);
        expectSameResult(base, ref, modes[m]);
        steps[m] = fast.steps;
    }
    EXPECT_GT(steps[0], base.steps);
    EXPECT_GT(steps[1], base.steps);
    EXPECT_GT(steps[2], steps[0]);
    EXPECT_GT(steps[2], steps[1]);
}

TEST(Harden, ProtectedFunctionBeatsIdiomRewrite)
{
    // Overlap pin: inside a `__protect` function the hardening plan
    // claims every block, so it must deterministically beat an idiom
    // plan (here a full GEMM match) in widest-claim-first resolution
    // — reliability was requested, acceleration loses.
    const char *src = R"(
        __protect void sgemm(float *A, int lda, float *B, int ldb,
                             float *C, int ldc, int m, int n, int k,
                             float alpha, float beta) {
            for (int mm = 0; mm < m; mm++) {
                for (int nn = 0; nn < n; nn++) {
                    float c = 0.0f;
                    for (int i = 0; i < k; i++)
                        c += A[mm + i * lda] * B[nn + i * ldb];
                    C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
                }
            }
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    ir::Function *fn = module.functionByName("sgemm");
    ASSERT_NE(fn, nullptr);
    EXPECT_TRUE(fn->hasAttribute("protect"));

    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    ASSERT_GE(matches.size(), 1u); // the GEMM is still *detected*

    transform::Transformer tr(module);
    auto reps = tr.applyAll(matches);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].kind, "harden");
    EXPECT_GE(tr.engine().stats().droppedOverlap, 1u);
    EXPECT_EQ(tr.engine().stats().committed, 1u);
    auto problems = ir::verifyModule(module);
    EXPECT_TRUE(problems.empty()) << problems.front();

    // Without the marker the same source is rewritten as GEMM.
    ir::Module accel;
    std::string plainSrc = src;
    plainSrc.replace(plainSrc.find("__protect "), 10, "");
    frontend::compileMiniCOrDie(plainSrc, accel);
    idioms::IdiomDetector det2;
    transform::Transformer tr2(accel);
    auto reps2 = tr2.applyAll(det2.detectModule(accel));
    ASSERT_EQ(reps2.size(), 1u);
    EXPECT_EQ(reps2[0].kind, "gemm");
}

TEST(Harden, TrapDeclarationIsReused)
{
    // Two protected functions share one trap declaration, and an
    // incompatible same-named definition makes planning refuse.
    const char *src = R"(
        __protect double f(double *a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        __protect double g(double *a, int n) {
            double s = 1.0;
            for (int i = 0; i < n; i++) s = s * (0.5 + a[i]);
            return s;
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    transform::Transformer tr(module);
    auto reps = tr.applyAll({});
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_EQ(reps[0].kind, "harden");
    EXPECT_EQ(reps[1].kind, "harden");
    EXPECT_EQ(reps[0].calleeName, reps[1].calleeName);
    EXPECT_EQ(reps[0].callee, reps[1].callee);
    auto problems = ir::verifyModule(module);
    EXPECT_TRUE(problems.empty()) << problems.front();
}
