/**
 * @file
 * Service chaos harness: deterministic, seeded fault injection
 * against the crash-safe matching service.
 *
 * Campaigns:
 *  - snapshot round trip, and recovery after kill -9 lands mid-save
 *    (child process SIGKILLed inside the write/fsync/rename window);
 *  - a corruption sweep flipping one bit at every byte offset of a
 *    committed snapshot, and truncation at every offset stratum —
 *    recovery must never crash and, checked by resubmitting through
 *    a service restored from the damaged file, never serve a wrong
 *    match;
 *  - clients dropped mid-SUBMIT (clean FIN and SO_LINGER RST, at
 *    several cut points) — the daemon survives and keeps serving;
 *  - a connection flood past the admission limit — shed with BUSY,
 *    admitted clients unaffected, slots recycled after disconnects;
 *  - the in-flight SUBMIT gate — shed with BUSY after the payload is
 *    consumed, so the same connection keeps working;
 *  - budget / deadline exhaustion mid-batch — responses degrade with
 *    partial (valid) results, and the degraded results are NOT
 *    deposited into the shared cache: a warm resubmission re-solves
 *    instead of replaying a truncated match list.
 *
 * Everything is seeded and bounded; there is no wall-clock
 * dependence anywhere except the deliberately pre-expired deadline
 * (which is deterministic by construction: the solver's entry probe
 * degrades before any search work).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/cache_snapshot.h"
#include "driver/driver.h"
#include "driver/match_cache.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"

using namespace repro;

namespace {

constexpr uint64_t kSeed = 0x5eed5eed2026ull;

/** Deterministic PRNG (splitmix64); no std::random in tests. */
struct Rng
{
    uint64_t state;
    explicit Rng(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t
    below(uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }
};

/** The usual three-function client module (see test_service.cpp). */
std::string
clientSource(int redBound = 100, int histBound = 50)
{
    std::ostringstream os;
    os << R"(
void reduce(double *a, double *out) {
    double s = 0.0;
    for (int i = 0; i < )"
       << redBound << R"(; i++)
        s = s + a[i];
    out[0] = s;
}
void histo(int *keys, int *bins) {
    for (int i = 0; i < )"
       << histBound << R"(; i++)
        bins[keys[i]] = bins[keys[i]] + 1;
}
int helper(int x) {
    return x * 3 + 1;
}
)";
    return os.str();
}

std::string
tempPath(const std::string &leaf)
{
    return "/tmp/repro_chaos_" + std::to_string(::getpid()) + "_" +
           leaf;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** The (function, idiom, class) triples of an outcome, sorted. */
std::vector<std::string>
matchTriples(const service::SubmitOutcome &outcome)
{
    std::vector<std::string> triples;
    for (const auto &mo : outcome.matchList)
        triples.push_back(mo.function + "/" + mo.idiom + "/" +
                          service::classToken(mo.cls));
    std::sort(triples.begin(), triples.end());
    return triples;
}

/** Populate a fresh service with the canonical module; outcome out. */
service::SubmitOutcome
populate(service::MatchService &svc)
{
    auto outcome = svc.submit("chaos", clientSource());
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_TRUE(outcome.degraded.empty());
    EXPECT_GT(outcome.matches, 0u);
    return outcome;
}

} // namespace

// -------------------------------------------------- snapshot basics

TEST(SnapshotChaos, RoundTripPreservesEntriesAndServesWarmHits)
{
    const std::string path = tempPath("roundtrip.snap");
    service::MatchService svc;
    auto cold = populate(svc);

    auto saved = driver::saveSnapshot(svc.cache(), path);
    ASSERT_TRUE(saved.ok) << saved.detail;
    EXPECT_EQ(saved.records, 3u);
    EXPECT_EQ(saved.skipped, 0u);
    EXPECT_GT(saved.bytes, 0u);

    // A restarted daemon: fresh service, restored cache.
    service::MatchService restarted;
    auto loaded = driver::loadSnapshot(restarted.cache(), path);
    ASSERT_TRUE(loaded.ok) << loaded.detail;
    EXPECT_EQ(loaded.records, 3u);
    EXPECT_EQ(loaded.skipped, 0u);
    EXPECT_EQ(restarted.cacheSize(), 3u);
    // Restored entries are not request activity.
    EXPECT_EQ(restarted.cacheCounters().insertions, 0u);

    auto warm = populate(restarted);
    EXPECT_EQ(warm.cacheHits, 3u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(matchTriples(warm), matchTriples(cold));

    ::unlink(path.c_str());
}

TEST(SnapshotChaos, MissingFileIsACleanColdStart)
{
    service::MatchService svc;
    auto result = driver::loadSnapshot(
        svc.cache(), tempPath("never_written.snap"));
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.detail.find("cold start"), std::string::npos);
    EXPECT_EQ(svc.cacheSize(), 0u);
}

TEST(SnapshotChaos, RestoreRespectsCapacityAndKeepsHottestEntries)
{
    const std::string path = tempPath("capacity.snap");
    service::MatchService svc;
    populate(svc);
    ASSERT_TRUE(driver::saveSnapshot(svc.cache(), path).ok);

    // A restarted daemon configured smaller must keep the MRU prefix
    // (snapshot order), not crash or overfill.
    service::ServiceOptions opts;
    opts.cacheCapacity = 2;
    service::MatchService small(opts);
    auto loaded = driver::loadSnapshot(small.cache(), path);
    EXPECT_TRUE(loaded.ok) << loaded.detail;
    ASSERT_EQ(small.cacheSize(), 2u);

    // The survivors are the two hottest entries — the ones most
    // recently touched before the save (histo and helper were
    // processed after reduce), not an arbitrary pair.
    std::vector<uint64_t> kept;
    for (const auto &[key, entry] : small.cache().entriesMruFirst())
        kept.push_back(key.contentHash);
    std::sort(kept.begin(), kept.end());
    service::SubmitOutcome cold;
    ASSERT_TRUE(svc.lastOutcome("chaos", &cold));
    std::vector<uint64_t> hottest;
    for (size_t i = 1; i < cold.perFunction.size(); ++i)
        hottest.push_back(cold.perFunction[i].contentHash);
    std::sort(hottest.begin(), hottest.end());
    EXPECT_EQ(kept, hottest);

    // And a warm resubmit through the shrunken cache still produces
    // the full, correct match set (possibly re-solving).
    auto warm = populate(small);
    EXPECT_EQ(warm.cacheHits + warm.cacheMisses, 3u);
    EXPECT_EQ(warm.matches, cold.matches);

    ::unlink(path.c_str());
}

// ------------------------------------------------ kill -9 mid-save

TEST(SnapshotChaos, Kill9MidSaveNeverLosesTheCommittedSnapshot)
{
    const std::string path = tempPath("kill9.snap");
    service::MatchService svc;
    auto cold = populate(svc);

    // Commit one good snapshot first: the invariant under attack is
    // "a kill at ANY point leaves the last committed file intact".
    ASSERT_TRUE(driver::saveSnapshot(svc.cache(), path).ok);
    const std::vector<uint8_t> committed = readFile(path);
    ASSERT_FALSE(committed.empty());

    Rng rng(kSeed);
    for (int round = 0; round < 12; ++round) {
        int ready[2];
        ASSERT_EQ(::pipe(ready), 0);
        pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            // Child: signal readiness, then save in a tight loop so
            // the parent's SIGKILL lands at an arbitrary point of the
            // write/fsync/rename cycle.
            ::close(ready[0]);
            char byte = 'r';
            (void)!::write(ready[1], &byte, 1);
            for (;;)
                driver::saveSnapshot(svc.cache(), path);
        }
        ::close(ready[1]);
        char byte = 0;
        ASSERT_EQ(::read(ready[0], &byte, 1), 1);
        ::close(ready[0]);
        ::usleep(static_cast<useconds_t>(rng.below(3000)));
        ASSERT_EQ(::kill(child, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status));

        // The committed file must be byte-identical (the child only
        // ever rewrote it via atomic rename of identical content) —
        // and must recover to a fully warm cache.
        EXPECT_EQ(readFile(path), committed) << "round " << round;
        service::MatchService restarted;
        auto loaded = driver::loadSnapshot(restarted.cache(), path);
        ASSERT_TRUE(loaded.ok) << loaded.detail;
        EXPECT_EQ(loaded.records, 3u);
        auto warm = populate(restarted);
        EXPECT_EQ(warm.cacheHits, 3u);
        EXPECT_EQ(matchTriples(warm), matchTriples(cold));
    }

    // A leftover .tmp from a killed save must not break later saves.
    auto resaved = driver::saveSnapshot(svc.cache(), path);
    EXPECT_TRUE(resaved.ok) << resaved.detail;
    ::unlink(path.c_str());
    ::unlink((path + ".tmp").c_str());
}

// ------------------------------------------- corruption / truncation

namespace {

/**
 * Load @p bytes as a snapshot into a fresh service. Must never
 * crash. When @p verifyMatches, also resubmit the canonical module
 * through the restored service and require the exact reference match
 * set — entries may be skipped (misses re-solve), but a wrong replay
 * is a campaign failure.
 */
void
recoverAndVerify(const std::vector<uint8_t> &bytes,
                 const std::vector<std::string> &reference,
                 bool verifyMatches, const std::string &what)
{
    const std::string path = tempPath("damaged.snap");
    writeFile(path, bytes);
    service::MatchService svc;
    auto loaded = driver::loadSnapshot(svc.cache(), path);
    EXPECT_LE(svc.cacheSize(), 3u) << what;
    (void)loaded; // ok or cold start are both acceptable; crashing
                  // or wrong matches below are not.
    if (verifyMatches) {
        auto warm = svc.submit("chaos", clientSource());
        ASSERT_TRUE(warm.ok) << what << ": " << warm.error;
        EXPECT_EQ(matchTriples(warm), reference) << what;
        EXPECT_EQ(warm.cacheHits + warm.cacheMisses, 3u) << what;
    }
    ::unlink(path.c_str());
}

} // namespace

TEST(SnapshotChaos, BitFlipAtEveryOffsetNeverCrashesNeverLies)
{
    const std::string path = tempPath("flip.snap");
    service::MatchService svc;
    auto cold = populate(svc);
    const auto reference = matchTriples(cold);
    ASSERT_TRUE(driver::saveSnapshot(svc.cache(), path).ok);
    const std::vector<uint8_t> good = readFile(path);
    ASSERT_GT(good.size(), 64u);
    ::unlink(path.c_str());

    Rng rng(kSeed ^ 0xf11fu);
    for (size_t off = 0; off < good.size(); ++off) {
        std::vector<uint8_t> bad = good;
        bad[off] ^= static_cast<uint8_t>(1u << rng.below(8));
        // Parse-only at every offset; the full resubmit verification
        // on a seeded stratified sample (compile+solve per probe).
        const bool verify = off % 29 == rng.state % 29;
        recoverAndVerify(bad, reference, verify,
                         "bit flip at offset " +
                             std::to_string(off));
    }
}

TEST(SnapshotChaos, TruncationAtEveryStratumNeverCrashesNeverLies)
{
    const std::string path = tempPath("trunc.snap");
    service::MatchService svc;
    auto cold = populate(svc);
    const auto reference = matchTriples(cold);
    ASSERT_TRUE(driver::saveSnapshot(svc.cache(), path).ok);
    const std::vector<uint8_t> good = readFile(path);
    ::unlink(path.c_str());

    // Strata: inside the magic, the header fields, the first record
    // frame, every later power-of-two-ish point, and the tail.
    std::vector<size_t> cuts;
    for (size_t i = 0; i <= 48 && i < good.size(); ++i)
        cuts.push_back(i);
    for (size_t i = 48; i < good.size(); i += 7)
        cuts.push_back(i);
    cuts.push_back(good.size() - 1);

    for (size_t cut : cuts) {
        std::vector<uint8_t> bad(good.begin(), good.begin() + cut);
        recoverAndVerify(bad, reference, cut % 13 == 0,
                         "truncated to " + std::to_string(cut));
    }

    // And appended garbage past a valid image.
    std::vector<uint8_t> padded = good;
    padded.insert(padded.end(), 33, 0xa5);
    recoverAndVerify(padded, reference, true, "trailing garbage");
}

// ----------------------------------------------------- socket chaos

namespace {

/** Minimal blocking unix-socket client (mirrors test_service.cpp). */
class UnixClient
{
  public:
    explicit UnixClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        connected_ =
            fd_ >= 0 &&
            ::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0;
    }

    ~UnixClient() { closeNow(); }

    bool connected() const { return connected_; }

    void
    closeNow()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

    /** Abort the connection: RST instead of FIN. */
    void
    closeWithReset()
    {
        if (fd_ < 0)
            return;
        struct linger lg;
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        closeNow();
    }

    bool
    send(const std::string &data)
    {
        size_t sent = 0;
        while (sent < data.size()) {
            ssize_t n = ::send(fd_, data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Read until the peer closes. */
    std::string
    drain()
    {
        std::string all;
        char buf[4096];
        for (;;) {
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0)
                return all;
            all.append(buf, static_cast<size_t>(n));
        }
    }

    /** Read until @p marker appears (the peer stays open). */
    std::string
    readUntil(const std::string &marker)
    {
        std::string all;
        char buf[4096];
        while (all.find(marker) == std::string::npos) {
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0)
                return all;
            all.append(buf, static_cast<size_t>(n));
        }
        return all;
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
};

/** One full scripted round trip proving the server still serves. */
void
expectServerAlive(const std::string &path)
{
    const std::string src = clientSource();
    UnixClient probe(path);
    ASSERT_TRUE(probe.connected());
    std::ostringstream script;
    script << "SUBMIT alive " << src.size() << "\n" << src;
    script << "QUIT\n";
    ASSERT_TRUE(probe.send(script.str()));
    const std::string transcript = probe.drain();
    EXPECT_NE(transcript.find("OK module=alive"), std::string::npos);
    EXPECT_NE(transcript.find("OK bye"), std::string::npos);
}

} // namespace

TEST(SocketChaos, MidSubmitDropsDoNotKillTheServer)
{
    const std::string path = tempPath("drop.sock");
    service::MatchService svc;
    service::ServerOptions opts;
    opts.unixPath = path;
    service::SocketServer server(svc, opts);
    server.start();

    const std::string src = clientSource();
    const std::string counted =
        "SUBMIT dropmod " + std::to_string(src.size()) + "\n";

    Rng rng(kSeed ^ 0xd20bu);
    for (int round = 0; round < 14; ++round) {
        UnixClient client(path);
        ASSERT_TRUE(client.connected());
        switch (round % 4) {
          case 0: // cut inside the request line
            client.send("SUBMIT dropm");
            break;
          case 1: // cut inside a counted payload
            client.send(counted +
                        src.substr(0, rng.below(src.size())));
            break;
          case 2: // heredoc without its terminator
            client.send("SUBMIT dropmod <<EOF\nvoid f() {}\n");
            break;
          case 3: // complete request, vanish before the response
            client.send(counted + src);
            break;
        }
        if (round % 2 == 0)
            client.closeWithReset(); // RST path
        else
            client.closeNow(); // FIN path
    }

    expectServerAlive(path);
    server.stop();
}

TEST(SocketChaos, FloodPastConnectionLimitShedsWithBusy)
{
    const std::string path = tempPath("flood.sock");
    service::MatchService svc;
    service::ServerOptions opts;
    opts.unixPath = path;
    opts.maxConnections = 2;
    opts.busyRetryMs = 7;
    service::SocketServer server(svc, opts);
    server.start();

    // Two held clients occupy every slot (HELLO proves admission).
    UnixClient held1(path), held2(path);
    ASSERT_TRUE(held1.connected());
    ASSERT_TRUE(held2.connected());
    ASSERT_TRUE(held1.send("HELLO\n"));
    ASSERT_TRUE(held2.send("HELLO\n"));
    EXPECT_NE(held1.readUntil("\n").find("OK service=repro-match"),
              std::string::npos);
    EXPECT_NE(held2.readUntil("\n").find("OK service=repro-match"),
              std::string::npos);

    // Every flood connection is shed with the backoff hint.
    for (int i = 0; i < 8; ++i) {
        UnixClient flood(path);
        ASSERT_TRUE(flood.connected());
        const std::string response = flood.drain();
        EXPECT_NE(response.find("BUSY retry_after_ms=7"),
                  std::string::npos)
            << "flood connection " << i;
    }

    // Held clients were unaffected by the flood.
    ASSERT_TRUE(held1.send("STATS\n"));
    EXPECT_NE(held1.readUntil("\n").find("OK entries="),
              std::string::npos);

    // Freeing a slot re-admits: clients retry after BUSY, and the
    // reaper recycles the slot on a subsequent accept.
    held2.send("QUIT\n");
    held2.drain();
    held2.closeNow();
    bool admitted = false;
    for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
        UnixClient retry(path);
        ASSERT_TRUE(retry.connected());
        if (!retry.send("HELLO\n"))
            continue;
        const std::string response = retry.readUntil("\n");
        if (response.find("OK service=repro-match") !=
            std::string::npos) {
            admitted = true;
        } else {
            EXPECT_NE(response.find("BUSY"), std::string::npos);
            ::usleep(2000);
        }
    }
    EXPECT_TRUE(admitted);

    held1.closeNow();
    server.stop();
}

TEST(SocketChaos, InFlightGateShedsSubmitButKeepsTheConnection)
{
    const std::string path = tempPath("inflight.sock");
    service::MatchService svc;
    service::ServerOptions opts;
    opts.unixPath = path;
    // Zero in-flight slots: every SUBMIT is deterministically shed.
    opts.maxInFlight = 0;
    opts.busyRetryMs = 11;
    service::SocketServer server(svc, opts);
    server.start();

    const std::string src = clientSource();
    UnixClient client(path);
    ASSERT_TRUE(client.connected());
    std::ostringstream script;
    script << "SUBMIT shedme " << src.size() << "\n" << src;
    script << "STATS\n";
    script << "QUIT\n";
    ASSERT_TRUE(client.send(script.str()));
    const std::string transcript = client.drain();

    // The payload was consumed before shedding, so the connection
    // stayed in sync: BUSY, then a clean STATS, then a clean QUIT.
    EXPECT_NE(transcript.find("BUSY retry_after_ms=11"),
              std::string::npos);
    EXPECT_NE(transcript.find("OK entries=0"), std::string::npos);
    EXPECT_NE(transcript.find("OK bye"), std::string::npos);
    // And no solve ran.
    EXPECT_EQ(svc.sessionCount(), 0u);

    server.stop();
}

// ----------------------------------------- degradation, not failure

TEST(Degradation, ExpiredDeadlineDegradesDeterministically)
{
    // A deadline already in the past when the solve starts: the
    // solver's entry probe degrades every function before any search
    // work — deterministic, no timing dependence.
    service::ServiceOptions opts;
    opts.limits.deadline = std::chrono::steady_clock::now() -
                           std::chrono::seconds(1);
    service::MatchService svc(opts);

    auto degraded = svc.submit("chaos", clientSource());
    ASSERT_TRUE(degraded.ok) << degraded.error;
    EXPECT_EQ(degraded.degraded, "deadline");
    EXPECT_EQ(degraded.functions, 3u);
    EXPECT_EQ(degraded.matches, 0u);
    EXPECT_EQ(degraded.cacheHits, 0u);

    // The OK line carries the reason.
    auto lines = service::formatSubmitResponse(degraded);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find(" degraded=deadline"),
              std::string::npos);
    // Nothing was deposited for the degraded functions.
    EXPECT_EQ(svc.cacheSize(), 0u);
}

TEST(Degradation, DegradedResultsAreNotCachedWarmResubmitResolves)
{
    // Same service: first submit under the (expired) default
    // deadline, then a per-request DEADLINE_MS override long enough
    // to complete. If the degraded run had poisoned the shared
    // cache, the second submit would replay empty match lists.
    service::ServiceOptions opts;
    opts.limits.deadline = std::chrono::steady_clock::now() -
                           std::chrono::seconds(1);
    service::MatchService svc(opts);

    auto degraded = svc.submit("chaos", clientSource());
    ASSERT_TRUE(degraded.ok);
    EXPECT_EQ(degraded.degraded, "deadline");
    EXPECT_EQ(degraded.matches, 0u);

    auto warm = svc.submit("chaos", clientSource(), 60'000);
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.degraded.empty());
    EXPECT_EQ(warm.cacheHits, 0u); // nothing to replay: re-solved
    EXPECT_EQ(warm.cacheMisses, 3u);
    EXPECT_GT(warm.matches, 0u);

    // The complete results ARE cached.
    auto replay = svc.submit("chaos", clientSource(), 60'000);
    EXPECT_EQ(replay.cacheHits, 3u);
    EXPECT_EQ(matchTriples(replay), matchTriples(warm));
}

TEST(Degradation, BudgetExhaustionMidBatchDoesNotPoisonTheCache)
{
    auto cache = std::make_shared<driver::MatchCache>();
    driver::MatchingDriver drv;
    drv.attachCache(cache);

    // Starve the solver: whatever completes may be cached, whatever
    // degrades must not be.
    solver::SolverLimits tiny;
    tiny.maxAssignments = 1;
    drv.setSolverLimits(tiny);
    ir::Module starved;
    auto degraded = drv.compileAndMatch(clientSource(), starved);
    EXPECT_EQ(degraded.status, solver::SolveStatus::BudgetExhausted);
    std::vector<std::string> starvedFuncs;
    for (const auto &fr : degraded.functions) {
        if (fr.status != solver::SolveStatus::Complete)
            starvedFuncs.push_back(fr.function->name());
    }
    ASSERT_FALSE(starvedFuncs.empty());

    // Full-budget resubmission: every starved function re-solves
    // (no poisoned replay) and the batch matches a fresh reference.
    drv.setSolverLimits(solver::SolverLimits{});
    ir::Module warm;
    auto recovered = drv.compileAndMatch(clientSource(), warm);
    EXPECT_EQ(recovered.status, solver::SolveStatus::Complete);
    for (const auto &fr : recovered.functions) {
        const bool wasStarved =
            std::find(starvedFuncs.begin(), starvedFuncs.end(),
                      fr.function->name()) != starvedFuncs.end();
        if (wasStarved)
            EXPECT_FALSE(fr.fromCache) << fr.function->name();
    }

    driver::MatchingDriver reference;
    ir::Module ref;
    auto expected = reference.compileAndMatch(clientSource(), ref);
    EXPECT_EQ(recovered.matchCount(), expected.matchCount());

    // Third pass: now everything replays, and still matches.
    drv.invalidateAll();
    ir::Module replayed;
    auto replay = drv.compileAndMatch(clientSource(), replayed);
    EXPECT_EQ(replay.cacheMisses, 0u);
    EXPECT_EQ(replay.matchCount(), expected.matchCount());
}

TEST(Degradation, BatchWithoutDeadlineIsByteIdenticalToBaseline)
{
    // The no-deadline solve path must do byte-identical work with
    // the deadline machinery compiled in: equal stats against a
    // plain driver proves the probes touch nothing when unarmed.
    driver::MatchingDriver a, b;
    b.setSolverLimits(solver::SolverLimits{}); // explicit default
    ir::Module ma, mb;
    auto ra = a.compileAndMatch(clientSource(), ma);
    auto rb = b.compileAndMatch(clientSource(), mb);
    EXPECT_EQ(ra.totals.assignments, rb.totals.assignments);
    EXPECT_EQ(ra.totals.checks, rb.totals.checks);
    EXPECT_EQ(ra.totals.solutions, rb.totals.solutions);
    EXPECT_EQ(ra.status, solver::SolveStatus::Complete);
    EXPECT_EQ(ra.matchCount(), rb.matchCount());
}
