// Regression tests for the transactional rewrite engine
// (transform/rewrite.h): overlap resolution, stale-pointer safety,
// live-IR validation and per-function rollback. The overlap and
// stale-accumulator cases fail (or are outright use-after-free) on
// the legacy per-match path this engine replaced.
#include <gtest/gtest.h>

#include "driver/driver.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "interp/builtins.h"
#include "interp/interpreter.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "transform/binder.h"
#include "transform/rewrite.h"
#include "transform/transform.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

RuntimeValue I(int64_t v) { return RuntimeValue::makeInt(v); }
RuntimeValue F(double v) { return RuntimeValue::makeFP(v); }

const char *kGemmSrc = R"(
    void sgemm(float *A, int lda, float *B, int ldb, float *C,
               int ldc, int m, int n, int k,
               float alpha, float beta) {
        for (int mm = 0; mm < m; mm++) {
            for (int nn = 0; nn < n; nn++) {
                float c = 0.0f;
                for (int i = 0; i < k; i++)
                    c += A[mm + i * lda] * B[nn + i * ldb];
                C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
            }
        }
    }
)";

const char *kSpmvSrc = R"(
    void spmv(int m, int *rowstr, int *colidx, double *a,
              double *z, double *r) {
        for (int j = 0; j < m; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * z[colidx[k]];
            r[j] = d;
        }
    }
)";

// Two disjoint reductions where the second loop's accumulator is
// seeded by the first loop's result: the legacy path's per-match DCE
// erased the first phi while the second match's solution still bound
// it as init_value (a use-after-free before the engine).
const char *kChainSrc = R"(
    double chain(double *a, double *b, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++)
            s = s + a[i];
        double t = s;
        for (int j = 0; j < n; j++)
            t = t + b[j];
        return t;
    }
)";

const char *kHistoSrc = R"(
    void histo(int *bins, int *key, int n) {
        for (int i = 0; i < n; i++)
            bins[key[i]] += 1;
    }
)";

void
expectValid(ir::Module &module)
{
    auto problems = ir::verifyModule(module);
    ASSERT_TRUE(problems.empty())
        << problems.front() << "\n"
        << ir::printModule(module);
}

/**
 * Build a Reduction match for the accumulation loop nested inside a
 * specific match (GEMM's loop[2], SPMV's inner loop), from the
 * specific solution's own bindings. The reproduction's IDL library
 * never reports both matches itself — the detector's constraint
 * programs are mutually exclusive — but applyAll accepts arbitrary
 * match lists (merged detector runs, detectOne batches), so the
 * engine must survive two idioms claiming the same blocks.
 */
idioms::IdiomMatch
innerReductionFrom(const idioms::IdiomMatch &specific,
                   const std::string &loopPrefix,
                   const std::string &accVar,
                   const std::string &sumVar,
                   const std::vector<std::string> &readPrefixes)
{
    idioms::IdiomMatch m;
    m.idiom = "Reduction";
    m.cls = idioms::IdiomClass::ScalarReduction;
    m.function = specific.function;
    const auto &src = specific.solution.bindings;
    auto &dst = m.solution.bindings;
    for (const char *key :
         {"precursor", "comparison", "iterator", "successor",
          "body_begin", "latch", "iter_begin", "iter_end"}) {
        dst[key] = src.at(loopPrefix + key);
    }
    dst["old_value"] = src.at(accVar);
    dst["kernel_output"] = src.at(sumVar);
    dst["init_value"] = src.at("init");
    for (size_t i = 0; i < readPrefixes.size(); ++i) {
        dst["read_value[" + std::to_string(i) + "]"] =
            src.at(readPrefixes[i] + ".value");
        dst["read[" + std::to_string(i) + "].base_pointer"] =
            src.at(readPrefixes[i] + ".base_pointer");
    }
    return m;
}

} // namespace

// A Reduction matched inside a GEMM nest claims blocks the GEMM plan
// already owns: exactly one replacement (the most specific idiom)
// must fire, even when the generic match comes first in the list.
TEST(RewriteEngine, NestedReductionInsideGemmFiresOnce)
{
    auto run = [&](bool transformed) {
        ir::Module module;
        frontend::compileMiniCOrDie(kGemmSrc, module);
        std::vector<transform::Replacement> reps;
        if (transformed) {
            ir::Function *func = module.functionByName("sgemm");
            idioms::IdiomDetector det;
            auto gemm = det.detectOne(func, "GEMM");
            EXPECT_EQ(gemm.size(), 1u);
            // The dot-product loop of the nest, claimed a second time
            // as a scalar Reduction. Generic match first: the engine
            // must still pick GEMM.
            std::vector<idioms::IdiomMatch> matches;
            matches.push_back(innerReductionFrom(
                gemm[0], "loop[2].", "acc", "sum",
                {"input1", "input2"}));
            matches.insert(matches.end(), gemm.begin(), gemm.end());

            transform::Transformer tr(module);
            reps = tr.applyAll(matches);
            EXPECT_EQ(reps.size(), 1u);
            EXPECT_EQ(reps.empty() ? "" : reps[0].kind, "gemm");
            EXPECT_EQ(tr.engine().stats().droppedOverlap, 1u);
            expectValid(module);
        }
        const int M = 4, N = 3, K = 5;
        interp::Memory mem;
        interp::Interpreter it(module, mem);
        transform::bindReplacements(it, reps);
        uint64_t A = mem.allocate(M * K * 4);
        uint64_t B = mem.allocate(N * K * 4);
        uint64_t C = mem.allocate(M * N * 4);
        for (int i = 0; i < M * K; ++i)
            mem.store<float>(A + 4 * i, 0.25f * i);
        for (int i = 0; i < N * K; ++i)
            mem.store<float>(B + 4 * i, 1.0f - 0.1f * i);
        for (int i = 0; i < M * N; ++i)
            mem.store<float>(C + 4 * i, 2.0f);
        it.run(module.functionByName("sgemm"),
               {I(A), I(M), I(B), I(N), I(C), I(M), I(M), I(N), I(K),
                F(1.5), F(0.5)});
        std::vector<float> out(M * N);
        for (int i = 0; i < M * N; ++i)
            out[i] = mem.load<float>(C + 4 * i);
        return out;
    };
    auto seq = run(false);
    auto acc = run(true);
    ASSERT_EQ(seq.size(), acc.size());
    for (size_t i = 0; i < seq.size(); ++i)
        EXPECT_FLOAT_EQ(seq[i], acc[i]) << "elem " << i;
}

// SPMV and the Reduction matched on its inner dot-product loop claim
// intersecting blocks; the wider claim (the SPMV nest) must win.
TEST(RewriteEngine, SpmvBeatsInnerReductionOnSharedLoop)
{
    ir::Module module;
    frontend::compileMiniCOrDie(kSpmvSrc, module);
    ir::Function *func = module.functionByName("spmv");
    idioms::IdiomDetector det;
    auto spmv = det.detectOne(func, "SPMV");
    ASSERT_EQ(spmv.size(), 1u);
    std::vector<idioms::IdiomMatch> matches;
    matches.push_back(innerReductionFrom(
        spmv[0], "inner.", "acc", "sum",
        {"seq_read", "indir_read"}));
    matches.insert(matches.end(), spmv.begin(), spmv.end());

    transform::Transformer tr(module);
    auto reps = tr.applyAll(matches);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].kind, "spmv");
    EXPECT_EQ(tr.engine().stats().droppedOverlap, 1u);
    expectValid(module);
}

// Merged detector runs hand applyAll the same loop twice: the second,
// byte-identical claim must be dropped, not double-rewritten (the
// legacy path applied the first, erased the loop in its per-match
// cleanup, then dereferenced the second match's dangling solution).
TEST(RewriteEngine, DuplicateMatchFiresExactlyOnce)
{
    ir::Module module;
    frontend::compileMiniCOrDie(kHistoSrc, module);
    ir::Function *func = module.functionByName("histo");
    idioms::IdiomDetector det;
    auto first = det.detectOne(func, "Histogram");
    auto second = det.detectOne(func, "Histogram");
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    std::vector<idioms::IdiomMatch> matches = first;
    matches.insert(matches.end(), second.begin(), second.end());

    transform::Transformer tr(module);
    auto reps = tr.applyAll(matches);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].kind, "histogram");
    EXPECT_EQ(tr.engine().stats().droppedOverlap, 1u);
    expectValid(module);
}

// The satellite-2 regression: two disjoint reductions in one function
// where the first replacement rewires (and its cleanup would erase)
// the value the second match's solution references. Both must land —
// the second call's seed resolves to the first call's result — with
// no use-after-free (this test runs under the ASan+UBSan CI job).
TEST(RewriteEngine, StaleAccumulatorAcrossDisjointMatches)
{
    auto run = [&](bool transformed) {
        ir::Module module;
        frontend::compileMiniCOrDie(kChainSrc, module);
        std::vector<transform::Replacement> reps;
        if (transformed) {
            idioms::IdiomDetector det;
            auto matches = det.detectModule(module);
            EXPECT_EQ(matches.size(), 2u);
            transform::Transformer tr(module);
            reps = tr.applyAll(matches);
            EXPECT_EQ(reps.size(), 2u);
            for (const auto &rep : reps)
                EXPECT_EQ(rep.kind, "reduce");
            expectValid(module);
        }
        interp::Memory mem;
        interp::Interpreter it(module, mem);
        transform::bindReplacements(it, reps);
        uint64_t a = mem.allocate(6 * 8), b = mem.allocate(6 * 8);
        for (int i = 0; i < 6; ++i) {
            mem.store<double>(a + 8 * i, 1.5 * i);
            mem.store<double>(b + 8 * i, 0.25 * i * i);
        }
        return it.run(module.functionByName("chain"),
                      {I(a), I(b), I(6)}).f;
    };
    EXPECT_DOUBLE_EQ(run(false), run(true));
}

// Plans are validated against the live IR: a plan made before the
// module was rewritten by someone else must be rejected, not
// committed into dangling pointers.
TEST(RewriteEngine, ValidationRejectsPlansAgainstMutatedIR)
{
    ir::Module module;
    frontend::compileMiniCOrDie(kHistoSrc, module);
    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    ASSERT_GE(matches.size(), 1u);

    transform::RewriteEngine engine(module);
    auto plans = engine.planAll(matches);
    ASSERT_GE(plans.size(), 1u);
    for (const auto &plan : plans)
        EXPECT_EQ(engine.validate(plan), "");

    // Someone else rewrites the module (and its cleanup erases the
    // claimed loop) between our plan and commit.
    transform::Transformer other(module);
    ASSERT_EQ(other.applyAll(matches).size(), 1u);

    for (const auto &plan : plans)
        EXPECT_NE(engine.validate(plan), "");
    // A fresh detection on the mutated module finds nothing left to
    // plan: the loop has already been rewritten away.
    idioms::IdiomDetector redet;
    auto reps = engine.applyAll(redet.detectModule(module));
    EXPECT_TRUE(reps.empty());
    expectValid(module);
}

// A plan that fails mid-commit (the loop-entering branch was
// retargeted after validation) must roll its function back to the
// exact pre-commit IR: no half-inserted calls, no leaked kernel or
// callee declarations.
TEST(RewriteEngine, CommitFailureRollsTheFunctionBack)
{
    ir::Module module;
    frontend::compileMiniCOrDie(kChainSrc, module);
    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    ASSERT_EQ(matches.size(), 2u);

    transform::RewriteEngine engine(module);
    auto plans = engine.planAll(matches);
    ASSERT_EQ(plans.size(), 2u);

    // Sabotage the SECOND plan so its commit fails after the first
    // plan of the same function already committed: point its
    // precursor at a non-branch, so the bypass precondition the
    // committer re-checks no longer holds. The whole function must
    // roll back atomically.
    plans[1].loop.precursor = plans[1].loop.successor;

    std::string before = ir::printModule(module);
    auto reps = engine.commit(std::move(plans));
    EXPECT_TRUE(reps.empty());
    EXPECT_EQ(engine.stats().rolledBack, 2u);
    EXPECT_EQ(ir::printModule(module), before);
    expectValid(module);
}

// A shared callee declaration (__hetero_spmv) created by one
// function's commit and reused by another function's committed call
// must survive the creator's rollback — destroying it would leave the
// other call's callee pointer dangling.
TEST(RewriteEngine, RollbackKeepsSharedCalleeAliveForOtherFunctions)
{
    const char *src = R"(
        void spmv1(int m, int *rowstr, int *colidx, double *a,
                   double *z, double *r) {
            for (int j = 0; j < m; j++) {
                double d = 0.0;
                for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                    d = d + a[k] * z[colidx[k]];
                r[j] = d;
            }
        }
        void spmv2(int m, int *rowstr, int *colidx, double *a,
                   double *z, double *r) {
            for (int j = 0; j < m; j++) {
                double d = 0.0;
                for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                    d = d + a[k] * z[colidx[k]];
                r[j] = d;
            }
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    ASSERT_EQ(matches.size(), 2u);

    transform::RewriteEngine engine(module);
    auto plans = engine.planAll(matches);
    ASSERT_EQ(plans.size(), 2u);
    ASSERT_NE(plans[0].function, plans[1].function);

    // A third plan for the FIRST function, sabotaged to fail
    // mid-commit after both earlier plans committed: spmv1 creates
    // the shared declaration, spmv2 reuses it, then spmv1 rolls back.
    std::string f1Before =
        ir::printFunction(plans[0].function);
    transform::RewritePlan doomed = plans[0];
    doomed.loop.precursor = doomed.loop.successor;
    plans.push_back(std::move(doomed));

    auto reps = engine.commit(std::move(plans));
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].kind, "spmv");
    EXPECT_EQ(engine.stats().rolledBack, 2u);
    // spmv1's body is restored; the shared declaration survives for
    // spmv2's committed call.
    EXPECT_EQ(ir::printFunction(module.functionByName("spmv1")),
              f1Before);
    EXPECT_NE(module.functionByName("__hetero_spmv"), nullptr);
    expectValid(module);
    EXPECT_NE(ir::printModule(module).find("call void @__hetero_spmv"),
              std::string::npos);
}

// The driver's sharded transform stage must produce byte-identical
// modules and replacement metadata to the serial engine, in module
// order, for any worker count.
TEST(RewriteEngine, ApplyAllParallelMatchesSerial)
{
    const std::vector<const char *> sources = {kSpmvSrc, kChainSrc,
                                               kHistoSrc, kGemmSrc};

    // Serial reference: one module at a time.
    std::vector<std::string> serialPrinted;
    std::vector<std::vector<transform::Replacement>> serialReps;
    for (const char *src : sources) {
        ir::Module module;
        frontend::compileMiniCOrDie(src, module);
        idioms::IdiomDetector det;
        auto matches = det.detectModule(module);
        transform::Transformer tr(module);
        serialReps.push_back(tr.applyAll(matches));
        serialPrinted.push_back(ir::printModule(module));
    }

    for (unsigned threads : {1u, 4u}) {
        std::vector<std::unique_ptr<ir::Module>> modules;
        std::vector<ir::Module *> ptrs;
        std::vector<std::vector<idioms::IdiomMatch>> matches;
        for (const char *src : sources) {
            modules.push_back(std::make_unique<ir::Module>());
            frontend::compileMiniCOrDie(src, *modules.back());
            ptrs.push_back(modules.back().get());
            idioms::IdiomDetector det;
            matches.push_back(det.detectModule(*modules.back()));
        }
        driver::MatchingDriver drv;
        auto reps = drv.applyAllParallel(ptrs, matches, threads);
        ASSERT_EQ(reps.size(), sources.size());
        for (size_t m = 0; m < sources.size(); ++m) {
            EXPECT_EQ(ir::printModule(*modules[m]), serialPrinted[m])
                << "module " << m << " threads " << threads;
            ASSERT_EQ(reps[m].size(), serialReps[m].size());
            for (size_t i = 0; i < reps[m].size(); ++i) {
                EXPECT_EQ(reps[m][i].kind, serialReps[m][i].kind);
                EXPECT_EQ(reps[m][i].calleeName,
                          serialReps[m][i].calleeName);
                EXPECT_EQ(reps[m][i].numReads,
                          serialReps[m][i].numReads);
                EXPECT_EQ(reps[m][i].numInvariants,
                          serialReps[m][i].numInvariants);
            }
        }
    }
}

TEST(RewriteEngine, HardeningClaimBeatsGemmOverlap)
{
    // A hardening plan claims every block of its function — strictly
    // more than the GEMM plan's loop-nest claim — so widest-claim-
    // first resolution must pick hardening deterministically, however
    // the plans are ordered, and commit must leave verified IR.
    ir::Module module;
    frontend::compileMiniCOrDie(kGemmSrc, module);
    ir::Function *fn = module.functionByName("sgemm");
    ASSERT_NE(fn, nullptr);
    fn->addAttribute("protect");

    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    ASSERT_GE(matches.size(), 1u);

    transform::RewriteEngine engine(module);
    std::vector<transform::RewritePlan> plans =
        engine.planAll(matches);
    ASSERT_GE(plans.size(), 1u);
    EXPECT_EQ(plans[0].kind, "gemm");
    for (transform::RewritePlan &plan :
         engine.planHardenAll(matches.size()))
        plans.push_back(std::move(plan));
    ASSERT_EQ(plans.size(), matches.size() + 1);

    // The hardening plan's claim is a strict superset of the GEMM
    // nest's claim (the entry block is in no loop).
    EXPECT_GT(plans.back().claimedBlocks.size(),
              plans[0].claimedBlocks.size());

    auto survivors = engine.resolveOverlaps(std::move(plans));
    ASSERT_EQ(survivors.size(), 1u);
    EXPECT_EQ(survivors[0].kind, "harden");
    EXPECT_GE(engine.stats().droppedOverlap, 1u);

    EXPECT_EQ(engine.validate(survivors[0]), "");
    auto reps = engine.commit(std::move(survivors));
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].kind, "harden");
    auto problems = ir::verifyModule(module);
    EXPECT_TRUE(problems.empty()) << problems.front();
}
