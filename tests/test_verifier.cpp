/**
 * @file
 * Negative-oracle suite for the dominance-aware IR verifier.
 *
 * Every test hand-builds exactly one malformed function and pins the
 * exact rule id the verifier must produce — a verifier that reports
 * the wrong rule (or drowns the defect in spurious findings) fails
 * here even if it technically "rejects" the function. The clean-IR
 * and warning-tier tests pin the other direction: valid IR must stay
 * diagnostic-free and advisory findings must never fail a function.
 */
#include <gtest/gtest.h>

#include "ir/irbuilder.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

using namespace repro;
using namespace repro::ir;

namespace {

/** All error-tier diagnostics carry @p rule (and there is >= 1). */
void
expectOnlyRule(const VerifierReport &report, const std::string &rule)
{
    ASSERT_GT(report.errorCount(), 0u) << "expected rule " << rule;
    for (const auto &d : report.diags) {
        if (d.severity == VerifySeverity::Error)
            EXPECT_EQ(d.rule, rule) << d.str();
    }
}

} // namespace

TEST(Verifier, CleanFunctionHasNoDiagnostics)
{
    Module m;
    Function *f = m.createFunction(
        "f", m.types().i64Ty(),
        {m.types().i64Ty(), m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *exit = f->createBlock("exit");
    b.setInsertPoint(entry);
    Instruction *sum = b.add(f->arg(0), f->arg(1), "sum");
    b.br(exit);
    b.setInsertPoint(exit);
    b.ret(sum);

    VerifierReport report = verifyFunctionDetailed(f);
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_EQ(report.diags.size(), 0u) << report.str();
}

TEST(Verifier, UseBeforeDefAcrossBlocks)
{
    Module m;
    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *left = f->createBlock("left");
    BasicBlock *right = f->createBlock("right");
    BasicBlock *exit = f->createBlock("exit");
    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::LT, f->arg(0), b.i64(10));
    b.condBr(cmp, left, right);
    b.setInsertPoint(left);
    Instruction *x = b.add(f->arg(0), b.i64(1), "x");
    b.br(exit);
    b.setInsertPoint(right);
    b.add(x, b.i64(2), "y"); // %x does not dominate %right
    b.br(exit);
    b.setInsertPoint(exit);
    b.ret(f->arg(0));

    expectOnlyRule(verifyFunctionDetailed(f), "dom-use");
}

TEST(Verifier, PhiIncomingNotDominatingItsEdge)
{
    Module m;
    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *left = f->createBlock("left");
    BasicBlock *right = f->createBlock("right");
    BasicBlock *merge = f->createBlock("merge");
    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::LT, f->arg(0), b.i64(10));
    b.condBr(cmp, left, right);
    b.setInsertPoint(left);
    Instruction *x = b.add(f->arg(0), b.i64(1), "x");
    b.br(merge);
    b.setInsertPoint(right);
    b.br(merge);
    b.setInsertPoint(merge);
    Instruction *p = b.phi(m.types().i64Ty(), "p");
    p->addIncoming(x, left);
    p->addIncoming(x, right); // %x does not dominate the %right edge
    b.ret(p);

    expectOnlyRule(verifyFunctionDetailed(f), "dom-phi");
}

TEST(Verifier, DanglingOperandAfterDetach)
{
    Module m;
    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    b.setInsertPoint(entry);
    Instruction *x = b.add(f->arg(0), b.i64(1), "x");
    Instruction *y = b.mul(x, f->arg(0), "y");
    b.ret(y);

    // Detach the def the way a buggy rewrite would erase it: %y now
    // references an instruction the function no longer owns. The
    // verifier must diagnose this by membership alone — it dare not
    // dereference the operand.
    std::unique_ptr<Instruction> detached = entry->detach(x);
    expectOnlyRule(verifyFunctionDetailed(f), "op-dangling");

    // Repair the use edge before `detached` destructs, so teardown
    // never touches freed memory.
    y->setOperand(0, f->arg(0));
}

TEST(Verifier, CrossFunctionOperand)
{
    Module m;
    Function *g =
        m.createFunction("g", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    b.setInsertPoint(g->createBlock("entry"));
    Instruction *gx = b.add(g->arg(0), b.i64(1), "gx");
    b.ret(gx);

    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *y = b.add(gx, b.i64(2), "y"); // operand owned by @g
    b.ret(y);

    VerifierReport report = verifyFunctionDetailed(f);
    expectOnlyRule(report, "op-cross-function");
    EXPECT_NE(report.firstError().message.find("@g"),
              std::string::npos)
        << report.str();
}

TEST(Verifier, BlockWithoutTerminator)
{
    Module m;
    Function *f = m.createFunction("f", m.types().voidTy(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.add(f->arg(0), b.i64(1)); // falls off the end

    expectOnlyRule(verifyFunctionDetailed(f), "block-term");
}

TEST(Verifier, TerminatorNotAtEnd)
{
    Module m;
    Function *f = m.createFunction("f", m.types().i64Ty(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.ret(f->arg(0));
    b.add(f->arg(0), b.i64(1)); // trailing code after ret

    expectOnlyRule(verifyFunctionDetailed(f), "block-term");
}

TEST(Verifier, PhiAfterNonPhi)
{
    Module m;
    Function *f = m.createFunction("f", m.types().i64Ty(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    b.setInsertPoint(entry);
    b.add(f->arg(0), b.i64(1), "x");
    // IRBuilder::phi keeps phis grouped; plant one out of order by
    // hand, the way a buggy pass would.
    entry->append(std::make_unique<Instruction>(
        Opcode::Phi, m.types().i64Ty(), "p"));
    b.ret(f->arg(0));

    expectOnlyRule(verifyFunctionDetailed(f), "phi-order");
}

TEST(Verifier, PhiIncomingCountMismatch)
{
    Module m;
    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *left = f->createBlock("left");
    BasicBlock *right = f->createBlock("right");
    BasicBlock *merge = f->createBlock("merge");
    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::LT, f->arg(0), b.i64(10));
    b.condBr(cmp, left, right);
    b.setInsertPoint(left);
    b.br(merge);
    b.setInsertPoint(right);
    b.br(merge);
    b.setInsertPoint(merge);
    Instruction *p = b.phi(m.types().i64Ty(), "p");
    p->addIncoming(f->arg(0), left); // two preds, one incoming
    b.ret(p);

    expectOnlyRule(verifyFunctionDetailed(f), "phi-pred");
}

TEST(Verifier, PhiIncomingTypeMismatch)
{
    Module m;
    Function *f = m.createFunction("f", m.types().doubleTy(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *left = f->createBlock("left");
    BasicBlock *right = f->createBlock("right");
    BasicBlock *merge = f->createBlock("merge");
    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::LT, f->arg(0), b.i64(10));
    b.condBr(cmp, left, right);
    b.setInsertPoint(left);
    b.br(merge);
    b.setInsertPoint(right);
    b.br(merge);
    b.setInsertPoint(merge);
    Instruction *p = b.phi(m.types().doubleTy(), "p");
    p->addIncoming(f->arg(0), left); // i64 into a double phi
    p->addIncoming(f->arg(0), right);
    b.ret(p);

    expectOnlyRule(verifyFunctionDetailed(f), "phi-type");
}

TEST(Verifier, StoreThroughNonPointer)
{
    Module m;
    Function *f = m.createFunction("f", m.types().voidTy(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    b.setInsertPoint(entry);
    Instruction *slot = b.alloca_(m.types().i64Ty(), "slot");
    // IRBuilder::store asserts well-typedness; build the swapped
    // store (value <-> pointer) by hand.
    auto st = std::make_unique<Instruction>(Opcode::Store,
                                            m.types().voidTy(), "");
    st->addOperand(slot);      // "value" is the pointer
    st->addOperand(f->arg(0)); // "pointer" is a plain i64
    entry->append(std::move(st));
    b.retVoid();

    expectOnlyRule(verifyFunctionDetailed(f), "op-type");
}

TEST(Verifier, BranchIntoForeignFunction)
{
    Module m;
    Function *g = m.createFunction("g", m.types().voidTy(), {});
    IRBuilder b(m);
    BasicBlock *gEntry = g->createBlock("entry");
    b.setInsertPoint(gEntry);
    b.retVoid();

    Function *f = m.createFunction("f", m.types().voidTy(), {});
    b.setInsertPoint(f->createBlock("entry"));
    b.br(gEntry); // target lives in @g

    expectOnlyRule(verifyFunctionDetailed(f), "cfg-edge");
}

TEST(Verifier, UnreachableBlockIsWarningOnly)
{
    Module m;
    Function *f = m.createFunction("f", m.types().i64Ty(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.ret(f->arg(0));
    b.setInsertPoint(f->createBlock("orphan"));
    b.ret(f->arg(0));

    VerifierReport report = verifyFunctionDetailed(f);
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_TRUE(report.hasRule("cfg-unreachable")) << report.str();
    EXPECT_EQ(report.warningCount(), 1u) << report.str();
    // Warnings never surface through the legacy string API.
    EXPECT_TRUE(verifyFunction(f).empty());
}

TEST(Verifier, UnknownAttributeIsWarningOnly)
{
    Module m;
    Function *f = m.createFunction("f", m.types().voidTy(), {});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.retVoid();
    f->addAttribute("protect"); // known: no finding
    f->addAttribute("vectorize=16"); // unknown: warning

    VerifierReport report = verifyFunctionDetailed(f);
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_TRUE(report.hasRule("attr-unknown")) << report.str();
    EXPECT_EQ(report.warningCount(), 1u) << report.str();
}

// The seed verifier checked nothing about call sites — a rewrite that
// materialized a call with the wrong arity or types sailed through
// verifyModule. These four pin the new call rules, through the legacy
// API too (the frontend's final gate must now reject such modules).

TEST(Verifier, CallArgumentCountMismatch)
{
    Module m;
    Function *callee = m.createFunction("api", m.types().i64Ty(),
                                        {m.types().i64Ty()});
    Function *f = m.createFunction("f", m.types().i64Ty(), {});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *c = b.call(callee, {}); // @api takes one argument
    b.ret(c);

    expectOnlyRule(verifyFunctionDetailed(f), "call-arity");
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, CallArgumentTypeMismatch)
{
    Module m;
    Function *callee = m.createFunction("api", m.types().i64Ty(),
                                        {m.types().i64Ty()});
    Function *f = m.createFunction("f", m.types().i64Ty(), {});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *c = b.call(callee, {b.f64(1.0)}); // double vs i64
    b.ret(c);

    expectOnlyRule(verifyFunctionDetailed(f), "call-arg-type");
    EXPECT_FALSE(verifyModule(m).empty());
}

TEST(Verifier, CallResultTypeMismatch)
{
    Module m;
    Function *calleeI = m.createFunction("api_i", m.types().i64Ty(),
                                         {m.types().i64Ty()});
    Function *calleeF = m.createFunction(
        "api_f", m.types().doubleTy(), {m.types().i64Ty()});
    Function *f = m.createFunction("f", m.types().i64Ty(), {});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *c = b.call(calleeI, {b.i64(1)});
    b.ret(c);
    // Retarget the call at a double-returning callee: the i64-typed
    // call result no longer matches the signature.
    c->setCallee(calleeF);

    expectOnlyRule(verifyFunctionDetailed(f), "call-ret-type");
}

TEST(Verifier, CallIntoForeignModule)
{
    Module other;
    Function *alien = other.createFunction(
        "alien", other.types().voidTy(), {});
    Module m;
    Function *f = m.createFunction("f", m.types().voidTy(), {});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.call(alien, {});
    b.retVoid();

    expectOnlyRule(verifyFunctionDetailed(f), "call-callee");
}

TEST(Verifier, VerifyOrThrowNamesTheBoundary)
{
    Module m;
    Function *f = m.createFunction("f", m.types().voidTy(),
                                   {m.types().i64Ty()});
    IRBuilder b(m);
    b.setInsertPoint(f->createBlock("entry"));
    b.add(f->arg(0), b.i64(1)); // no terminator

    try {
        verifyOrThrow(m, "unit-test-boundary");
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("unit-test-boundary"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("block-term"),
                  std::string::npos);
    }
}

TEST(Verifier, DiagnosticRendersStructuredFields)
{
    Module m;
    Function *f =
        m.createFunction("f", m.types().i64Ty(), {m.types().i64Ty()});
    IRBuilder b(m);
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *left = f->createBlock("left");
    BasicBlock *right = f->createBlock("right");
    BasicBlock *exit = f->createBlock("exit");
    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::LT, f->arg(0), b.i64(10));
    b.condBr(cmp, left, right);
    b.setInsertPoint(left);
    Instruction *x = b.add(f->arg(0), b.i64(1), "x");
    b.br(exit);
    b.setInsertPoint(right);
    b.add(x, b.i64(2), "y");
    b.br(exit);
    b.setInsertPoint(exit);
    b.ret(f->arg(0));

    VerifierReport report = verifyFunctionDetailed(f);
    ASSERT_FALSE(report.ok());
    const VerifierDiag &d = report.firstError();
    EXPECT_EQ(d.rule, "dom-use");
    EXPECT_EQ(d.function, "f");
    EXPECT_EQ(d.block, "right");
    EXPECT_EQ(d.instIndex, 0);
    EXPECT_NE(d.str().find("rule=dom-use"), std::string::npos);
    EXPECT_NE(d.str().find("function=@f"), std::string::npos);
    EXPECT_NE(d.str().find("block=%right"), std::string::npos);
}
