/**
 * @file
 * Tests for the IDL semantic analyzer (idl/check.h).
 *
 * The solver resolves opcode names and schedules generators lazily, so
 * before the analyzer existed a typo'd opcode or an ungeneratable
 * variable produced an idiom that silently never matched. These tests
 * pin that every such defect is now a load-time diagnostic with a
 * stable rule id and a real SourceLoc — and that the shipped idiom
 * library itself is clean at the error tier.
 */
#include <gtest/gtest.h>

#include "idl/check.h"
#include "idl/parser.h"
#include "idioms/library.h"
#include "support/diagnostics.h"

using namespace repro;
using namespace repro::idl;

namespace {

CheckReport
checkSource(const std::string &source)
{
    auto program = parseIdlOrDie(source);
    return checkProgram(*program);
}

/** First diagnostic carrying @p rule; fails the test when absent. */
const CheckDiag &
findRule(const CheckReport &report, const std::string &rule)
{
    for (const auto &d : report.diags) {
        if (d.rule == rule)
            return d;
    }
    ADD_FAILURE() << "no diagnostic with rule " << rule << ":\n"
                  << report.str();
    static CheckDiag none;
    return none;
}

} // namespace

TEST(IdlCheck, UnknownOpcodeIsLoadTimeErrorWithLocation)
{
    CheckReport report = checkSource(
        "Constraint T\n( {a} is frobnicate instruction )\nEnd");
    EXPECT_FALSE(report.ok());
    const CheckDiag &d = findRule(report, "unknown-opcode");
    EXPECT_EQ(d.severity, CheckSeverity::Error);
    EXPECT_EQ(d.idiom, "T");
    // The diagnostic must point into the source, at the atomic on
    // line 2 — this is the whole point over the old silent never-match.
    EXPECT_TRUE(d.loc.valid()) << d.str();
    EXPECT_EQ(d.loc.line, 2) << d.str();
    EXPECT_NE(d.message.find("frobnicate"), std::string::npos);
}

TEST(IdlCheck, OpcodeAliasesAreAccepted)
{
    // "branch"/"br", "getelementptr"/"gep", "return"/"ret" are all
    // legal spellings; none may be flagged.
    CheckReport report = checkSource(
        "Constraint T ( {a} is branch instruction and "
        "{b} is getelementptr instruction and "
        "{c} is return instruction and "
        "{d} is gep instruction ) End");
    EXPECT_FALSE(report.hasRule("unknown-opcode")) << report.str();
}

TEST(IdlCheck, UnboundVariableIsError)
{
    // Dominance atomics are checker-only: nothing ever generates
    // candidates for {b}, so the solver would defer its goal forever.
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{b} control flow dominates {a} ) End");
    EXPECT_FALSE(report.ok());
    const CheckDiag &d = findRule(report, "unbound-var");
    EXPECT_EQ(d.severity, CheckSeverity::Error);
    EXPECT_NE(d.message.find("'b'"), std::string::npos) << d.str();
}

TEST(IdlCheck, BindingFlowsThroughPairwiseGenerators)
{
    // {b} has no generator of its own but "is the same as" can
    // enumerate it from {a}; no unbound-var may fire.
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{b} is the same as {a} and "
        "{b} control flow dominates {a} ) End");
    EXPECT_FALSE(report.hasRule("unbound-var")) << report.str();
    EXPECT_TRUE(report.ok()) << report.str();
}

TEST(IdlCheck, SingleMentionVariableIsWarningOnly)
{
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{b} is mul instruction and "
        "{a} has data flow path to {b} ) End");
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_FALSE(report.hasRule("unused-var")) << report.str();

    CheckReport lonely = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{b} is mul instruction ) End");
    EXPECT_TRUE(lonely.ok()) << lonely.str();
    EXPECT_TRUE(lonely.hasRule("unused-var")) << lonely.str();
}

TEST(IdlCheck, NotSameSelfIsUnsatisfiable)
{
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{a} is not the same as {a} ) End");
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("unsat-atomic")) << report.str();
}

TEST(IdlCheck, SameSelfIsTrivialWarning)
{
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{a} is the same as {a} ) End");
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_TRUE(report.hasRule("trivial-atomic")) << report.str();
}

TEST(IdlCheck, StrictSelfDominanceIsUnsatisfiable)
{
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{a} strictly dominates {a} ) End");
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("unsat-atomic")) << report.str();
}

TEST(IdlCheck, DuplicateAtomicIsWarning)
{
    CheckReport report = checkSource(
        "Constraint T ( {a} is add instruction and "
        "{a} is add instruction ) End");
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_TRUE(report.hasRule("duplicate-atomic")) << report.str();
}

TEST(IdlCheck, CollectBodyWithoutIndexIsError)
{
    // A collect whose body never uses the index template collects the
    // same fact over and over — degenerate by construction.
    CheckReport report = checkSource(
        "Constraint T ( {x} is add instruction and "
        "collect i ( {a} is mul instruction ) ) End");
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasRule("collect-no-marker")) << report.str();
}

TEST(IdlCheck, CollectBodyWithIndexIsAccepted)
{
    CheckReport report = checkSource(
        "Constraint T ( {x} is add instruction and "
        "collect i ( {a[i]} is mul instruction and "
        "{a[i]} has data flow path to {x} ) ) End");
    EXPECT_FALSE(report.hasRule("collect-no-marker")) << report.str();
    EXPECT_TRUE(report.ok()) << report.str();
}

TEST(IdlCheck, InheritOfUndefinedConstraintIsError)
{
    CheckReport report = checkSource(
        "Constraint T ( inherits Nonexistent ) End");
    EXPECT_FALSE(report.ok());
    const CheckDiag &d = findRule(report, "unknown-idiom");
    EXPECT_EQ(d.severity, CheckSeverity::Error);
    EXPECT_NE(d.message.find("Nonexistent"), std::string::npos);
}

TEST(IdlCheck, UndeclaredInheritParameterIsWarning)
{
    CheckReport report = checkSource(
        "Constraint Helper ( n = 3 ) ( {a} is add instruction ) End "
        "Constraint T ( inherits Helper ( m = 5 ) ) End");
    EXPECT_TRUE(report.hasRule("unknown-param")) << report.str();
    const CheckDiag &d = findRule(report, "unknown-param");
    EXPECT_EQ(d.severity, CheckSeverity::Warning);
}

TEST(IdlCheck, HelperDefsAreNotHeldToRootStandards)
{
    // Helpers legitimately leave variables for includers to bind:
    // with only the root in the root set, the helper's free variable
    // must not be flagged.
    auto program = parseIdlOrDie(
        "Constraint Helper ( {free} control flow dominates {a} and "
        "{a} is add instruction ) End "
        "Constraint T ( inherits Helper and "
        "{free} is mul instruction ) End");
    CheckReport report = checkProgram(*program, {"T"});
    EXPECT_TRUE(report.ok()) << report.str();
}

TEST(IdlCheck, ShippedLibraryIsCleanAtErrorTier)
{
    CheckReport report = checkProgram(idioms::idiomLibrary(),
                                      idioms::rootIdiomNames());
    EXPECT_EQ(report.errorCount(), 0u) << report.str();
    // The load gate in idiomLibrary() must therefore never fire.
    EXPECT_NO_THROW(idioms::idiomLibrary());
}

TEST(IdlCheck, SeededTypoFailsTheLoadGate)
{
    // The negative oracle of the library gate: the same library text
    // plus one idiom with a typo'd opcode must fail
    // checkProgramOrThrow — proving the shipped-green result above is
    // a real check, not a vacuous pass.
    IdlProgram program;
    DiagEngine diags;
    ASSERT_TRUE(parseIdlInto(idioms::idiomLibrarySource(), program,
                             diags));
    ASSERT_TRUE(parseIdlInto(
        "Constraint BrokenIdiom ( {a} is fmal instruction ) End",
        program, diags));
    ASSERT_FALSE(diags.hasErrors());

    std::vector<std::string> roots = idioms::rootIdiomNames();
    roots.push_back("BrokenIdiom");
    try {
        checkProgramOrThrow(program, roots, "unit-test library");
        FAIL() << "expected FatalError from the lint gate";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown-opcode"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("unit-test library"),
                  std::string::npos);
    }
}
