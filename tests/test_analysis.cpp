#include <gtest/gtest.h>

#include "analysis/function_analyses.h"
#include "frontend/compiler.h"
#include "ir/parser.h"

using namespace repro;
using namespace repro::analysis;

namespace {

/** Diamond CFG: entry -> (then|else) -> merge -> exit. */
const char *kDiamond = R"(
define i32 @f(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %then, label %else
then:
  %x = add i32 %a, 1
  br label %merge
else:
  %y = add i32 %b, 2
  br label %merge
merge:
  %p = phi i32 [ %x, %then ], [ %y, %else ]
  ret i32 %p
}
)";

} // namespace

TEST(Dominators, DiamondBlocks)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    DomTree dom(f, false);
    ir::BasicBlock *entry = f->blockByName("entry");
    ir::BasicBlock *then_bb = f->blockByName("then");
    ir::BasicBlock *else_bb = f->blockByName("else");
    ir::BasicBlock *merge = f->blockByName("merge");

    EXPECT_TRUE(dom.dominates(entry, merge));
    EXPECT_TRUE(dom.dominates(entry, then_bb));
    EXPECT_FALSE(dom.dominates(then_bb, merge));
    EXPECT_FALSE(dom.dominates(then_bb, else_bb));
    EXPECT_EQ(dom.idom(merge), entry);
    EXPECT_EQ(dom.idom(then_bb), entry);
    EXPECT_EQ(dom.idom(entry), nullptr);
    // Dominance frontier of the branch sides is the merge block.
    ASSERT_EQ(dom.frontier(then_bb).size(), 1u);
    EXPECT_EQ(dom.frontier(then_bb)[0], merge);
}

TEST(Dominators, PostDominance)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    DomTree pdom(f, true);
    ir::BasicBlock *entry = f->blockByName("entry");
    ir::BasicBlock *then_bb = f->blockByName("then");
    ir::BasicBlock *merge = f->blockByName("merge");

    EXPECT_TRUE(pdom.dominates(merge, entry));
    EXPECT_TRUE(pdom.dominates(merge, then_bb));
    EXPECT_FALSE(pdom.dominates(then_bb, entry));
}

TEST(Dominators, InstructionLevelSameBlock)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    DomTree dom(f, false);
    ir::BasicBlock *then_bb = f->blockByName("then");
    const ir::Instruction *first = then_bb->front();
    const ir::Instruction *last = then_bb->terminator();
    EXPECT_TRUE(dom.dominates(first, last));
    EXPECT_FALSE(dom.strictlyDominates(last, first));
    EXPECT_TRUE(dom.dominates(first, first));
}

TEST(ControlDependence, BranchGovernsSides)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    FunctionAnalyses fa(f);
    const ir::Instruction *branch =
        f->blockByName("entry")->terminator();
    const ir::Instruction *in_then = f->blockByName("then")->front();
    const ir::Instruction *in_merge =
        f->blockByName("merge")->front();
    EXPECT_TRUE(fa.hasControlDependenceEdge(branch, in_then));
    EXPECT_FALSE(fa.hasControlDependenceEdge(branch, in_merge));
}

TEST(Loops, NestDepthAndStructure)
{
    const char *src = R"(
        void f(double *a, int n, int mm) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < mm; j++)
                    a[i] = a[i] + 1.0;
        }
    )";
    ir::Module m;
    frontend::compileMiniCOrDie(src, m);
    ir::Function *f = m.functionByName("f");
    DomTree dom(f, false);
    LoopInfo loops(f, dom);
    ASSERT_EQ(loops.loops().size(), 2u);

    const Loop *outer = nullptr;
    const Loop *inner = nullptr;
    for (const auto &l : loops.loops()) {
        if (l->depth == 1)
            outer = l.get();
        else
            inner = l.get();
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->parent, outer);
    EXPECT_EQ(outer->children.size(), 1u);
    EXPECT_TRUE(outer->contains(inner->header));
    EXPECT_NE(outer->preheader(), nullptr);
    EXPECT_FALSE(outer->exitingBlocks().empty());
}

TEST(InstCfg, PathQueriesRespectRemovedNodes)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    InstCFG cfg(f);
    const ir::Instruction *entry_term =
        f->blockByName("entry")->terminator();
    const ir::Instruction *merge_first =
        f->blockByName("merge")->front();
    const ir::Instruction *then_first =
        f->blockByName("then")->front();
    const ir::Instruction *else_first =
        f->blockByName("else")->front();

    EXPECT_TRUE(cfg.pathExists(entry_term, merge_first, {}));
    // Removing one side still leaves the other path.
    EXPECT_TRUE(cfg.pathExists(entry_term, merge_first, {then_first}));
    // Removing both sides disconnects entry from merge.
    EXPECT_FALSE(cfg.pathExists(entry_term, merge_first,
                                {then_first, else_first}));
}

TEST(DataFlow, TransitiveReachability)
{
    ir::Module m;
    ir::parseModuleOrDie(kDiamond, m);
    ir::Function *f = m.functionByName("f");
    const ir::Value *a = f->arg(1);
    const ir::Instruction *ret =
        f->blockByName("merge")->terminator();
    const ir::Value *phi = f->blockByName("merge")->front();
    EXPECT_TRUE(dataPathExists(a, ret, {}));
    // Every data path from %a to the return runs through the phi.
    EXPECT_FALSE(dataPathExists(a, ret, {phi}));
}

TEST(BasePointer, WalksGepChains)
{
    ir::Module m;
    ir::parseModuleOrDie(R"(
@g = global [4 x [4 x double]]

define double @f(i64 %i, i64 %j) {
entry:
  %row = getelementptr [4 x [4 x double]], [4 x [4 x double]]* @g, i64 0, i64 %i
  %elem = getelementptr [4 x double], [4 x double]* %row, i64 0, i64 %j
  %v = load double, double* %elem
  ret double %v
}
)",
                         m);
    ir::Function *f = m.functionByName("f");
    const ir::Instruction *load = nullptr;
    for (const auto &inst : f->entry()->insts()) {
        if (inst->is(ir::Opcode::Load))
            load = inst.get();
    }
    ASSERT_NE(load, nullptr);
    EXPECT_EQ(basePointerOf(load->operand(0)), m.globalByName("g"));
}
