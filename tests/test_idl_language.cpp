#include <gtest/gtest.h>

#include "frontend/compiler.h"
#include "idl/lower.h"
#include "idl/parser.h"
#include "idioms/library.h"
#include "ir/parser.h"
#include "solver/solver.h"

using namespace repro;

namespace {

std::vector<solver::Solution>
solveIdl(ir::Function *func, const std::string &extra_idl,
         const std::string &name,
         const std::map<std::string, int64_t> &params = {})
{
    idl::IdlProgram program;
    DiagEngine diags;
    idl::parseIdlInto(idioms::idiomLibrarySource(), program, diags);
    idl::parseIdlInto(extra_idl, program, diags);
    if (diags.hasErrors())
        throw FatalError(diags.dump());
    auto lowered = idl::lowerIdiom(program, name, params);
    analysis::FunctionAnalyses fa(func);
    solver::Solver solver(func, fa);
    return solver.solveAll(lowered);
}

} // namespace

TEST(IdlParser, RejectsMixedAndOr)
{
    DiagEngine diags;
    auto p = idl::parseIdl(
        "Constraint T ( {a} is add instruction and {b} is mul "
        "instruction or {c} is sub instruction ) End",
        diags);
    EXPECT_EQ(p, nullptr);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(IdlParser, NestedBraceInVariableIsDiagnosed)
{
    DiagEngine diags;
    auto p = idl::parseIdl(
        "Constraint T ( {a {b} is add instruction ) End", diags);
    EXPECT_EQ(p, nullptr);
    ASSERT_TRUE(diags.hasErrors());
    const auto &d = diags.all().front();
    EXPECT_NE(d.message.find("nested '{'"), std::string::npos)
        << d.message;
    // The diagnostic points at the nested '{', not the opening one.
    EXPECT_EQ(d.loc.line, 1);
    EXPECT_EQ(d.loc.column, 19);
}

TEST(IdlParser, NestedBraceSpanningLinesKeepsSourceLoc)
{
    DiagEngine diags;
    auto p = idl::parseIdl("Constraint T\n( {a\nnested {b} "
                           "is add instruction ) End\n",
                           diags);
    EXPECT_EQ(p, nullptr);
    ASSERT_TRUE(diags.hasErrors());
    const auto &d = diags.all().front();
    EXPECT_NE(d.message.find("nested '{'"), std::string::npos)
        << d.message;
    // The brace variable opened at 2:3; the nested '{' sits on the
    // next line at column 8 — the lexer must track the newline.
    EXPECT_EQ(d.loc.line, 3);
    EXPECT_EQ(d.loc.column, 8);
    EXPECT_NE(d.message.find("2:3"), std::string::npos) << d.message;
    // Recovery: exactly one diagnostic per malformed brace.
    EXPECT_EQ(diags.numErrors(), 1);
}

TEST(IdlParser, UnterminatedBraceSpanningLinesIsDiagnosed)
{
    DiagEngine diags;
    auto p = idl::parseIdl("Constraint T\n( {a\nb c d\n", diags);
    EXPECT_EQ(p, nullptr);
    ASSERT_TRUE(diags.hasErrors());
    const auto &d = diags.all().front();
    EXPECT_NE(d.message.find("unterminated"), std::string::npos)
        << d.message;
    // Reported at the opening '{' (line 2, column 3), however many
    // lines the scan consumed before hitting end of input.
    EXPECT_EQ(d.loc.line, 2);
    EXPECT_EQ(d.loc.column, 3);
}

TEST(IdlParser, AcceptsComments)
{
    DiagEngine diags;
    auto p = idl::parseIdl(R"(
# a comment
Constraint T
( {a} is add instruction ) # trailing comment
End
)",
                           diags);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(p->lookup("T"), nullptr);
}

TEST(IdlLowering, TemplateParametersAndForAll)
{
    // ForNest's N parameter changes the lowered variable set.
    auto two = idl::lowerIdiom(idioms::idiomLibrary(), "ForNest",
                               {{"N", 2}});
    auto three = idl::lowerIdiom(idioms::idiomLibrary(), "ForNest",
                                 {{"N", 3}});
    std::string s2 = two.root->str();
    std::string s3 = three.root->str();
    EXPECT_EQ(s2.find("loop[2]."), std::string::npos);
    EXPECT_NE(s3.find("loop[2]."), std::string::npos);
    EXPECT_NE(s2.find("loop[1]."), std::string::npos);
}

TEST(IdlLowering, UnknownIdiomThrows)
{
    EXPECT_THROW(idl::lowerIdiom(idioms::idiomLibrary(), "NoSuch"),
                 FatalError);
}

TEST(IdlLowering, RebasePrefixesUnrenamedVariables)
{
    auto prog = idl::parseIdlOrDie(R"(
Constraint Inner
( {x} is add instruction and
  {y} is first argument of {x} )
End
Constraint Outer
( inherits Inner with {shared} as {y} at {pre} )
End
)");
    auto lowered = idl::lowerIdiom(*prog, "Outer");
    std::string s = lowered.root->str();
    EXPECT_NE(s.find("{pre.x}"), std::string::npos);  // rebased
    EXPECT_NE(s.find("{shared}"), std::string::npos); // renamed
    EXPECT_EQ(s.find("{pre.y}"), std::string::npos);
}

TEST(IdlLowering, ForSomeBecomesDisjunction)
{
    auto prog = idl::parseIdlOrDie(R"(
Constraint T
( ( {v[i]} is add instruction ) for some i = 0 .. 3 )
End
)");
    auto lowered = idl::lowerIdiom(*prog, "T");
    EXPECT_EQ(lowered.root->kind, solver::Node::Kind::Or);
    EXPECT_EQ(lowered.root->children.size(), 3u);
}

TEST(IdlLowering, IfSelectsBranchAtCompileTime)
{
    auto prog = idl::parseIdlOrDie(R"(
Constraint T (N=1)
( if N = 1 then ( {a} is add instruction )
  else ( {a} is mul instruction ) endif )
End
)");
    auto then_branch = idl::lowerIdiom(*prog, "T", {{"N", 1}});
    auto else_branch = idl::lowerIdiom(*prog, "T", {{"N", 2}});
    EXPECT_NE(then_branch.root->str().find("add"), std::string::npos);
    EXPECT_NE(else_branch.root->str().find("mul"), std::string::npos);
}

TEST(SeseIdiom, MatchesIfRegion)
{
    // SESE (Figure 9) finds the single-entry single-exit region
    // spanned by a diamond.
    const char *text = R"(
define i32 @f(i1 %c, i32 %a) {
entry:
  br label %head
head:
  br i1 %c, label %then, label %else
then:
  %x = add i32 %a, 1
  br label %merge
else:
  %y = add i32 %a, 2
  br label %merge
merge:
  %p = phi i32 [ %x, %then ], [ %y, %else ]
  br label %tail
tail:
  ret i32 %p
}
)";
    ir::Module m;
    ir::parseModuleOrDie(text, m);
    ir::Function *f = m.functionByName("f");
    auto sols = solveIdl(f, "", "SESE");
    // The branch in %head / the branch in %merge span a SESE region.
    bool found = false;
    const ir::Instruction *head_br =
        f->blockByName("head")->terminator();
    const ir::Instruction *merge_br =
        f->blockByName("merge")->terminator();
    for (const auto &sol : sols) {
        const ir::Value *begin = sol.lookup("begin");
        const ir::Value *end = sol.lookup("end");
        if (begin == head_br && end == merge_br)
            found = true;
    }
    EXPECT_TRUE(found) << sols.size() << " SESE solutions";
}

TEST(IdlSolver, NotSameDistinguishesOperands)
{
    const char *src = R"(
        int square(int a) { return a * a; }
        int prod(int a, int b) { return a * b; }
    )";
    ir::Module m;
    frontend::compileMiniCOrDie(src, m);
    const char *idiom = R"(
Constraint DistinctMul
( {m} is mul instruction and
  {l} is first argument of {m} and
  {r} is second argument of {m} and
  {l} is not the same as {r} )
End
)";
    EXPECT_EQ(solveIdl(m.functionByName("square"), idiom,
                       "DistinctMul")
                  .size(),
              0u);
    EXPECT_EQ(solveIdl(m.functionByName("prod"), idiom, "DistinctMul")
                  .size(),
              1u);
}

TEST(IdlSolver, CollectBindsIndexedArrays)
{
    const char *src = R"(
        double f(double *a, double *b, double *c, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s += a[i] + b[i] * c[i];
            return s;
        }
    )";
    ir::Module m;
    frontend::compileMiniCOrDie(src, m);
    idioms::IdiomDetector det;
    auto matches = det.detectOne(m.functionByName("f"), "Reduction");
    ASSERT_EQ(matches.size(), 1u);
    auto reads = matches[0].solution.lookupArray("read_value[*]");
    EXPECT_EQ(reads.size(), 3u);
    // Bases bind alongside each collected element.
    for (int k = 0; k < 3; ++k) {
        EXPECT_NE(matches[0].solution.lookup(
                      "read[" + std::to_string(k) + "].base_pointer"),
                  nullptr);
    }
}

TEST(IdlSolver, SolverBudgetIsHonored)
{
    const char *src = R"(
        double f(double *a, double *b, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s += a[i] * b[i];
            return s;
        }
    )";
    ir::Module m;
    frontend::compileMiniCOrDie(src, m);
    ir::Function *func = m.functionByName("f");
    auto lowered =
        idl::lowerIdiom(idioms::idiomLibrary(), "Reduction");
    analysis::FunctionAnalyses fa(func);
    solver::Solver solver(func, fa);
    solver::SolverLimits limits;
    limits.maxAssignments = 1; // absurdly small budget
    auto sols = solver.solveAll(lowered, limits);
    EXPECT_TRUE(sols.empty()); // gave up gracefully, no crash
}
