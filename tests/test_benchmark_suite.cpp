#include <gtest/gtest.h>
#include "benchmarks/suite.h"
#include "benchmarks/coverage.h"
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "interp/builtins.h"
#include "ir/verifier.h"
#include "transform/binder.h"
#include "transform/transform.h"

using namespace repro;
using benchmarks::BenchmarkProgram;

namespace {

struct Counts
{
    int sr = 0, h = 0, st = 0, m = 0, sp = 0;
};

Counts
countMatches(const std::vector<idioms::IdiomMatch> &matches)
{
    Counts c;
    for (const auto &m : matches) {
        switch (m.cls) {
          case idioms::IdiomClass::ScalarReduction: ++c.sr; break;
          case idioms::IdiomClass::HistogramReduction: ++c.h; break;
          case idioms::IdiomClass::Stencil: ++c.st; break;
          case idioms::IdiomClass::MatrixOp: ++c.m; break;
          case idioms::IdiomClass::SparseMatrixOp: ++c.sp; break;
          default: break;
        }
    }
    return c;
}

} // namespace

class SuiteTest : public ::testing::TestWithParam<const char *>
{};

// Per-benchmark idiom counts: the Figure 16 ground truth.
TEST_P(SuiteTest, DetectsExpectedIdioms)
{
    const BenchmarkProgram &b = benchmarks::benchmarkByName(GetParam());
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    idioms::IdiomDetector det;
    auto matches = det.detectModule(module);
    Counts c = countMatches(matches);
    EXPECT_EQ(c.sr, b.expected.scalarReductions) << "scalar reductions";
    EXPECT_EQ(c.h, b.expected.histograms) << "histograms";
    EXPECT_EQ(c.st, b.expected.stencils) << "stencils";
    EXPECT_EQ(c.m, b.expected.matrixOps) << "matrix ops";
    EXPECT_EQ(c.sp, b.expected.sparseOps) << "sparse ops";
}

// Transformation must preserve program results bit-for-bit on every
// watched output array.
TEST_P(SuiteTest, TransformPreservesSemantics)
{
    const BenchmarkProgram &b = benchmarks::benchmarkByName(GetParam());

    auto run = [&](bool transformed,
                   std::vector<std::vector<double>> &dbls,
                   std::vector<std::vector<int32_t>> &ints) {
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        std::vector<transform::Replacement> reps;
        if (transformed) {
            idioms::IdiomDetector det;
            auto matches = det.detectModule(module);
            transform::Transformer tr(module);
            reps = tr.applyAll(matches);
            auto problems = ir::verifyModule(module);
            ASSERT_TRUE(problems.empty()) << problems.front();
        }
        interp::Memory mem;
        interp::Interpreter it(module, mem);
        interp::registerMathBuiltins(it);
        transform::bindReplacements(it, reps);
        auto inst = b.setup(mem);
        it.run(module.functionByName(b.entry), inst.args);
        for (auto &[addr, n] : inst.watchDoubles) {
            std::vector<double> v(n);
            for (size_t i = 0; i < n; ++i)
                v[i] = mem.load<double>(addr + 8 * i);
            dbls.push_back(std::move(v));
        }
        for (auto &[addr, n] : inst.watchInts) {
            std::vector<int32_t> v(n);
            for (size_t i = 0; i < n; ++i)
                v[i] = mem.load<int32_t>(addr + 4 * i);
            ints.push_back(std::move(v));
        }
    };

    std::vector<std::vector<double>> d_seq, d_acc;
    std::vector<std::vector<int32_t>> i_seq, i_acc;
    run(false, d_seq, i_seq);
    run(true, d_acc, i_acc);
    ASSERT_EQ(d_seq.size(), d_acc.size());
    for (size_t a = 0; a < d_seq.size(); ++a) {
        ASSERT_EQ(d_seq[a].size(), d_acc[a].size());
        for (size_t i = 0; i < d_seq[a].size(); ++i)
            ASSERT_DOUBLE_EQ(d_seq[a][i], d_acc[a][i])
                << "array " << a << " elem " << i;
    }
    ASSERT_EQ(i_seq, i_acc);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteTest,
    ::testing::Values("BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG",
                      "SP", "UA", "bfs", "cutcp", "histo", "lbm",
                      "mri-g", "mri-q", "sad", "sgemm", "spmv",
                      "stencil", "tpacf"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-') c = '_';
        return name;
    });

// Table 1 bottom line: 60 idioms across the whole corpus.
TEST(SuiteTotals, SixtyIdioms)
{
    Counts total;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        idioms::IdiomDetector det;
        Counts c = countMatches(det.detectModule(module));
        total.sr += c.sr;
        total.h += c.h;
        total.st += c.st;
        total.m += c.m;
        total.sp += c.sp;
    }
    EXPECT_EQ(total.sr, 45);
    EXPECT_EQ(total.h, 5);
    EXPECT_EQ(total.st, 6);
    EXPECT_EQ(total.m, 1);
    EXPECT_EQ(total.sp, 3);
}
