#include <gtest/gtest.h>

#include "frontend/licm.h"
#include "frontend/compiler.h"
#include "ir/printer.h"
#include "runtime/blas.h"
#include "runtime/device_model.h"
#include "runtime/halide_like.h"
#include "runtime/lift_like.h"
#include "runtime/sparse.h"
#include "benchmarks/suite.h"

using namespace repro;

TEST(Blas, GemmStridesExpressTranspose)
{
    // 2x2: C = A * B with A row-major and B accessed transposed.
    double a[] = {1, 2, 3, 4};  // [[1,2],[3,4]] row major
    double b[] = {5, 6, 7, 8};  // interpret columns as rows
    double c[4] = {0, 0, 0, 0};
    // C[i*2+j] = sum_k A[i*2+k] * B[j*2+k]  (B transposed)
    runtime::blas::gemm(c, 2, 1, a, 2, 1, b, 2, 1, 2, 2, 2, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(c[0], 1 * 5 + 2 * 6);
    EXPECT_DOUBLE_EQ(c[1], 1 * 7 + 2 * 8);
    EXPECT_DOUBLE_EQ(c[2], 3 * 5 + 4 * 6);
    EXPECT_DOUBLE_EQ(c[3], 3 * 7 + 4 * 8);
}

TEST(Blas, GemvDotAxpy)
{
    double a[] = {1, 2, 3, 4, 5, 6}; // 2x3
    double x[] = {1, 1, 1};
    double y[] = {10, 20};
    runtime::blas::gemv(y, a, 3, x, 2, 3, 1.0, 0.5);
    EXPECT_DOUBLE_EQ(y[0], 5 + 6);
    EXPECT_DOUBLE_EQ(y[1], 10 + 15);
    EXPECT_DOUBLE_EQ(runtime::blas::dot(a, a, 3), 1 + 4 + 9);
    double z[] = {1, 1};
    runtime::blas::axpy(z, y, 2.0, 2);
    EXPECT_DOUBLE_EQ(z[0], 1 + 2 * y[0]);
}

TEST(Sparse, CsrmvMatchesDense)
{
    auto m = runtime::sparse::makeBandedMatrix(16, 2, 42);
    std::vector<double> x(16), y(16), y_ref(16, 0.0);
    for (int i = 0; i < 16; ++i)
        x[i] = 0.25 * i;
    runtime::sparse::csrmv(m, x.data(), y.data());
    // Dense reference.
    for (int64_t r = 0; r < m.rows; ++r) {
        for (int32_t k = m.rowstr[r]; k < m.rowstr[r + 1]; ++k)
            y_ref[r] += m.values[k] * x[m.colidx[k]];
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(y[i], y_ref[i]);
}

TEST(Sparse, EllmvHandlesPadding)
{
    // 2 rows, up to 2 entries; -1 marks padding.
    int32_t indices[] = {0, 1, 1, -1}; // column-major [maxnz][rows]
    double data[] = {2.0, 3.0, 4.0, 0.0};
    double x[] = {10.0, 100.0};
    double y[2];
    runtime::sparse::ellmv(2, 2, indices, data, x, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0 * 10.0 + 4.0 * 100.0);
    EXPECT_DOUBLE_EQ(y[1], 3.0 * 100.0);
}

TEST(Lift, PatternsComposeAndEvaluate)
{
    using namespace runtime::lift;
    auto v = input(Value::fromVector({1, 2, 3, 4}));
    auto add1 = map(
        [](const Value &x) { return Value(x.scalar() + 1.0); }, v);
    auto total = reduce(
        [](const Value &a, const Value &x) {
            return Value(a.scalar() + x.scalar());
        },
        Value(0.0), add1);
    EXPECT_DOUBLE_EQ(eval(total).scalar(), 2 + 3 + 4 + 5);

    // slide is the Lift stencil primitive: windows of 3, step 1.
    auto windows = slide(3, 1, v);
    Value w = eval(windows);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w.items()[0].items()[2].scalar(), 3.0);

    auto m = input(Value::fromMatrix({1, 2, 3, 4, 5, 6}, 2, 3));
    Value t = eval(transpose(m));
    ASSERT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.items()[2].items()[1].scalar(), 6.0);
    EXPECT_EQ(eval(join(m)).size(), 6u);

    std::string cl = generateOpenCl(total, "sum");
    EXPECT_NE(cl.find("__kernel"), std::string::npos);
}

TEST(Halide, StencilRealizeWithClampedBorders)
{
    using namespace runtime::halide;
    Buffer in = Buffer::make({4, 4});
    for (size_t i = 0; i < in.data.size(); ++i)
        in.data[i] = static_cast<double>(i);

    Func blur("blur");
    blur.define((inputAt(0, {0, -1}) + inputAt(0, {0, 1}) +
                 inputAt(0, {0, 0})) /
                constant(3.0));
    blur.schedule().parallelOuter = true;
    blur.schedule().vectorWidth = 4;

    Buffer out = blur.realize({4, 4}, {&in});
    // Interior cell (1,1): mean of (1,0),(1,2),(1,1).
    EXPECT_DOUBLE_EQ(out.data[1 * 4 + 1], (4 + 6 + 5) / 3.0);
    // Border clamps: (0,0) uses (0,-1)->(0,0).
    EXPECT_DOUBLE_EQ(out.data[0], (0 + 1 + 0) / 3.0);

    std::string src = blur.compileToSource();
    EXPECT_NE(src.find("parallel(y)"), std::string::npos);
    EXPECT_NE(src.find("vectorize(x,4)"), std::string::npos);
}

TEST(DeviceModel, LazyCopyNeverSlower)
{
    for (const auto &b : benchmarks::nasParboilSuite()) {
        for (runtime::Platform p : runtime::allPlatforms()) {
            auto lazy = runtime::bestApiOn(p, b.profile, true);
            auto eager = runtime::bestApiOn(p, b.profile, false);
            if (lazy && eager)
                EXPECT_LE(lazy->timeMs, eager->timeMs * 1.0001);
        }
    }
}

TEST(DeviceModel, Table3WinnersMatchPaper)
{
    using runtime::Api;
    using runtime::Platform;
    struct Want
    {
        const char *bench;
        Platform platform;
        Api api;
    };
    // The crossovers the paper reports (section 8.3 / Table 3).
    const Want wants[] = {
        {"CG", Platform::DGPU, Api::CuSPARSE},
        {"sgemm", Platform::CPU, Api::MKL},
        {"sgemm", Platform::IGPU, Api::ClBLAS},
        {"sgemm", Platform::DGPU, Api::CuBLAS},
        {"IS", Platform::CPU, Api::Halide},
        {"stencil", Platform::CPU, Api::Halide},
        {"spmv", Platform::DGPU, Api::LibSPMV},
    };
    for (const Want &w : wants) {
        const auto &b = benchmarks::benchmarkByName(w.bench);
        auto best = runtime::bestApiOn(w.platform, b.profile, true);
        ASSERT_TRUE(best.has_value()) << w.bench;
        EXPECT_EQ(best->api, w.api)
            << w.bench << " on " << runtime::platformName(w.platform);
    }
}

TEST(DeviceModel, GlobalWinnersMatchPaper)
{
    // tpacf is fastest on the CPU; MG and histo on the iGPU; the
    // computational heavyweights on the external GPU.
    auto globalBest = [](const char *name) {
        const auto &b = benchmarks::benchmarkByName(name);
        runtime::Platform best = runtime::Platform::CPU;
        double best_t = 1e300;
        for (runtime::Platform p : runtime::allPlatforms()) {
            auto c = runtime::bestApiOn(p, b.profile, true);
            if (c && c->timeMs < best_t) {
                best_t = c->timeMs;
                best = p;
            }
        }
        return best;
    };
    EXPECT_EQ(globalBest("tpacf"), runtime::Platform::CPU);
    EXPECT_EQ(globalBest("MG"), runtime::Platform::IGPU);
    EXPECT_EQ(globalBest("histo"), runtime::Platform::IGPU);
    EXPECT_EQ(globalBest("sgemm"), runtime::Platform::DGPU);
    EXPECT_EQ(globalBest("CG"), runtime::Platform::DGPU);
    EXPECT_EQ(globalBest("lbm"), runtime::Platform::DGPU);
}

TEST(Licm, HoistsInvariantAddressComputation)
{
    const char *src = R"(
        float M[8][8];
        void f(int n) {
            for (int i = 0; i < 8; i++)
                for (int k = 0; k < n; k++)
                    M[i][3] += 1.0f;
        }
    )";
    ir::Module m;
    frontend::compileMiniCOrDie(src, m);
    // After LICM + promotion (run by compileMiniC), the inner loop
    // body must contain no gep: the accumulator became a phi.
    ir::Function *f = m.functionByName("f");
    analysis::DomTree dom(f, false);
    analysis::LoopInfo loops(f, dom);
    const analysis::Loop *inner = nullptr;
    for (const auto &l : loops.loops()) {
        if (l->depth == 2)
            inner = l.get();
    }
    ASSERT_NE(inner, nullptr);
    for (ir::BasicBlock *bb : inner->blocks) {
        for (const auto &inst : bb->insts()) {
            EXPECT_FALSE(inst->is(ir::Opcode::GEP))
                << "gep left in inner loop";
            EXPECT_FALSE(inst->is(ir::Opcode::Store))
                << "store left in inner loop";
        }
    }
}
