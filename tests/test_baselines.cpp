#include <gtest/gtest.h>
#include "baselines/baselines.h"
#include "benchmarks/suite.h"
#include "frontend/compiler.h"

using namespace repro;

// Table 1 of the paper: Polly 3/-/5/-/- and ICC 28/-/-/-/-.
TEST(Baselines, Table1Counts)
{
    baselines::BaselineCounts polly, icc;
    for (const auto &b : benchmarks::nasParboilSuite()) {
        ir::Module module;
        frontend::compileMiniCOrDie(b.source, module);
        auto p = baselines::runPollyLike(module);
        auto i = baselines::runIccLike(module);
        polly.scalarReductions += p.scalarReductions;
        polly.stencils += p.stencils;
        polly.histograms += p.histograms;
        polly.matrixOps += p.matrixOps;
        polly.sparseOps += p.sparseOps;
        icc.scalarReductions += i.scalarReductions;
    }
    EXPECT_EQ(polly.scalarReductions, 3);
    EXPECT_EQ(polly.stencils, 5);
    EXPECT_EQ(polly.histograms, 0);
    EXPECT_EQ(polly.matrixOps, 0);
    EXPECT_EQ(polly.sparseOps, 0);
    EXPECT_EQ(icc.scalarReductions, 28);
}

// The indirect accesses of sparse code defeat the polyhedral model
// (section 8.1: "fundamentally contradicts assumptions").
TEST(Baselines, PollyRejectsIndirection)
{
    const auto &cg = benchmarks::benchmarkByName("CG");
    ir::Module module;
    frontend::compileMiniCOrDie(cg.source, module);
    auto p = baselines::runPollyLike(module);
    EXPECT_EQ(p.scalarReductions + p.stencils + p.sparseOps, 0);
}

TEST(Baselines, IccRejectsMemoryDependentBounds)
{
    const auto &spmv = benchmarks::benchmarkByName("spmv");
    ir::Module module;
    frontend::compileMiniCOrDie(spmv.source, module);
    auto i = baselines::runIccLike(module);
    EXPECT_EQ(i.scalarReductions, 0);
}
