#include <gtest/gtest.h>
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "ir/printer.h"

using namespace repro;

namespace {

struct Compiled
{
    std::unique_ptr<ir::Module> module;
    std::vector<idioms::IdiomMatch> matches;
};

Compiled
detectIn(const char *src, const char *idiom)
{
    Compiled out;
    out.module = std::make_unique<ir::Module>();
    frontend::compileMiniCOrDie(src, *out.module);
    idioms::IdiomDetector det;
    for (const auto &f : out.module->functions())
        for (auto &m : det.detectOne(f.get(), idiom))
            out.matches.push_back(std::move(m));
    return out;
}

// The NAS CG kernel of Figure 4 of the paper.
const char *kSpmvSrc = R"(
    void spmv(int m, int *rowstr, int *colidx, double *a, double *z,
              double *r) {
        for (int j = 0; j < m; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * z[colidx[k]];
            r[j] = d;
        }
    }
)";

} // namespace

TEST(SpmvIdiom, NasCgKernel)
{
    auto r = detectIn(kSpmvSrc, "SPMV");
    ASSERT_EQ(r.matches.size(), 1u);
    const auto &sol = r.matches[0].solution;
    // The constraint solution of Figure 5: base pointers bind to the
    // right arrays.
    ir::Function *f = r.module->functionByName("spmv");
    EXPECT_EQ(sol.lookup("idx_read.base_pointer"), f->arg(2));  // colidx
    EXPECT_EQ(sol.lookup("seq_read.base_pointer"), f->arg(3));  // a
    EXPECT_EQ(sol.lookup("indir_read.base_pointer"), f->arg(4)); // z
    EXPECT_EQ(sol.lookup("output.base_pointer"), f->arg(5));    // r
    EXPECT_NE(sol.lookup("inner.iter_begin"), nullptr);
    EXPECT_NE(sol.lookup("inner.iter_end"), nullptr);
}

TEST(SpmvIdiom, DenseLoopDoesNotMatch)
{
    auto r = detectIn(R"(
        void mv(int m, int n, double *a, double *x, double *y) {
            for (int i = 0; i < m; i++) {
                double d = 0.0;
                for (int j = 0; j < n; j++)
                    d = d + a[i*n+j] * x[j];
                y[i] = d;
            }
        }
    )", "SPMV");
    EXPECT_EQ(r.matches.size(), 0u);
}

TEST(GemmIdiom, ParboilStyleFlat)
{
    // First kernel of Figure 8 (strided, transposed operands).
    auto r = detectIn(R"(
        void sgemm(float *A, int lda, float *B, int ldb, float *C,
                   int ldc, int m, int n, int k,
                   float alpha, float beta) {
            for (int mm = 0; mm < m; mm++) {
                for (int nn = 0; nn < n; nn++) {
                    float c = 0.0f;
                    for (int i = 0; i < k; i++) {
                        float a = A[mm + i * lda];
                        float b = B[nn + i * ldb];
                        c += a * b;
                    }
                    C[mm+nn*ldc] = C[mm+nn*ldc] * beta + alpha * c;
                }
            }
        }
    )", "GEMM");
    ASSERT_EQ(r.matches.size(), 1u);
    ir::Function *f = r.module->functionByName("sgemm");
    EXPECT_EQ(r.matches[0].solution.lookup("output.base_pointer"),
              f->arg(4));
}

TEST(Stencil3dIdiom, Jacobi7Point)
{
    // The Parboil stencil kernel: 7-point Jacobi on a flattened grid.
    auto r = detectIn(R"(
        void stencil(double c0, double c1, double *A0, double *Anext,
                     int nx, int ny, int nz) {
            for (int k = 1; k < nz - 1; k++) {
                for (int j = 1; j < ny - 1; j++) {
                    for (int i = 1; i < nx - 1; i++) {
                        Anext[i + nx * (j + ny * k)] =
                          c1 * (A0[(i+1) + nx * (j + ny * k)] +
                                A0[(i-1) + nx * (j + ny * k)] +
                                A0[i + nx * ((j+1) + ny * k)] +
                                A0[i + nx * ((j-1) + ny * k)] +
                                A0[i + nx * (j + ny * (k+1))] +
                                A0[i + nx * (j + ny * (k-1))]) -
                          c0 * A0[i + nx * (j + ny * k)];
                    }
                }
            }
        }
    )", "Stencil3D");
    ASSERT_EQ(r.matches.size(), 1u);
    EXPECT_EQ(r.matches[0]
                  .solution.lookupArray("read_value[*]")
                  .size(),
              7u);
}

TEST(Stencil1dIdiom, ThreePointAverage)
{
    auto r = detectIn(R"(
        void smooth(double *out, double *in, int n) {
            for (int i = 1; i < n - 1; i++)
                out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
        }
    )", "Stencil1D");
    ASSERT_EQ(r.matches.size(), 1u);
    EXPECT_EQ(r.matches[0]
                  .solution.lookupArray("read_value[*]")
                  .size(),
              3u);
}

TEST(Stencil1dIdiom, CopyLoopFilteredOut)
{
    auto r = detectIn(R"(
        void copy(double *out, double *in, int n) {
            for (int i = 0; i < n; i++)
                out[i] = in[i];
        }
    )", "Stencil1D");
    EXPECT_EQ(r.matches.size(), 0u); // single read: not a stencil
}

TEST(GemmIdiom, TwoDimensionalArrayStyle)
{
    // Second kernel of Figure 8: memory accumulator on 2D globals.
    auto r = detectIn(R"(
        float M1[300][300];
        float M2[300][300];
        float M3[300][300];
        void mm() {
            for (int i = 0; i < 300; i++)
                for (int j = 0; j < 300; j++) {
                    M3[i][j] = 0.0f;
                    for (int k = 0; k < 300; k++)
                        M3[i][j] += M1[i][k] * M2[k][j];
                }
        }
    )", "GEMM");
    ASSERT_EQ(r.matches.size(), 1u);
    EXPECT_EQ(r.matches[0].solution.lookup("output.base_pointer"),
              r.module->globalByName("M3"));
}
