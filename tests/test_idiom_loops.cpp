#include <gtest/gtest.h>
#include "frontend/compiler.h"
#include "idioms/library.h"
#include "idl/lower.h"
#include "ir/printer.h"

using namespace repro;

namespace {

std::vector<idioms::IdiomMatch>
detectIn(const char *src, const char *idiom)
{
    static ir::Module *leak = nullptr; // keep matches' values alive
    auto module = std::make_unique<ir::Module>();
    frontend::compileMiniCOrDie(src, *module);
    idioms::IdiomDetector det;
    std::vector<idioms::IdiomMatch> all;
    for (const auto &f : module->functions())
        for (auto &m : det.detectOne(f.get(), idiom))
            all.push_back(std::move(m));
    leak = module.release(); // tests only inspect within one call
    return all;
}

} // namespace

TEST(ForIdiom, CanonicalLoop)
{
    auto m = detectIn(R"(
        void fill(double *a, int n) {
            for (int i = 0; i < n; i++)
                a[i] = 1.0;
        }
    )", "For");
    ASSERT_GE(m.size(), 1u);
    EXPECT_NE(m[0].solution.lookup("iterator"), nullptr);
    EXPECT_NE(m[0].solution.lookup("iter_end"), nullptr);
    EXPECT_NE(m[0].solution.lookup("body_begin"), nullptr);
}

TEST(ForIdiom, WhileLoopAlsoMatches)
{
    auto m = detectIn(R"(
        int count(int n) {
            int i = 0;
            int c = 0;
            while (i < n) { c = c + 2; i = i + 1; }
            return c;
        }
    )", "For");
    EXPECT_GE(m.size(), 1u);
}

TEST(ReductionIdiom, SimpleSum)
{
    auto m = detectIn(R"(
        double sum(double *a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s += a[i];
            return s;
        }
    )", "Reduction");
    ASSERT_EQ(m.size(), 1u);
    auto reads = m[0].solution.lookupArray("read_value[*]");
    EXPECT_EQ(reads.size(), 1u);
}

TEST(ReductionIdiom, DotProductTwoReads)
{
    auto m = detectIn(R"(
        double dot(double *a, double *b, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s = s + a[i] * b[i];
            return s;
        }
    )", "Reduction");
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].solution.lookupArray("read_value[*]").size(), 2u);
}

TEST(ReductionIdiom, MaxViaTernary)
{
    auto m = detectIn(R"(
        double maxval(double *a, int n) {
            double m = 0.0;
            for (int i = 0; i < n; i++)
                m = a[i] > m ? a[i] : m;
            return m;
        }
    )", "Reduction");
    EXPECT_EQ(m.size(), 1u);
}

TEST(ReductionIdiom, RejectsIteratorKernel)
{
    auto m = detectIn(R"(
        int tri(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += i;
            return s;
        }
    )", "Reduction");
    EXPECT_EQ(m.size(), 0u); // kernel input is the iterator
}

TEST(ReductionIdiom, RejectsOverwrite)
{
    auto m = detectIn(R"(
        double last(double *a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s = a[i];
            return s;
        }
    )", "Reduction");
    EXPECT_EQ(m.size(), 0u);
}

TEST(HistogramIdiom, SimpleHistogram)
{
    auto m = detectIn(R"(
        void histo(int *bins, int *key, double *w, int n) {
            for (int i = 0; i < n; i++)
                bins[key[i]] += 1;
        }
    )", "Histogram");
    ASSERT_EQ(m.size(), 1u);
}

TEST(HistogramIdiom, RejectsPlainStore)
{
    auto m = detectIn(R"(
        void scale(double *a, int n) {
            for (int i = 0; i < n; i++)
                a[i] = a[i] * 2.0;
        }
    )", "Histogram");
    EXPECT_EQ(m.size(), 0u); // bin index is the iterator, not a read
}
