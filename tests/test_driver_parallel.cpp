/**
 * @file
 * Tests of the parallel matching driver: runParallel / runParallelBatch
 * must produce match sets, per-function stats and aggregated totals
 * byte-identical to the serial driver, for any thread count, on the
 * example modules and on synthetic many-function modules; and the
 * 1-thread path must equal serial without spawning workers.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"
#include "ir/verifier.h"

using namespace repro;

namespace {

std::vector<std::string>
matchKeys(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<std::string> keys;
    for (const auto &m : matches)
        keys.push_back(idioms::matchFingerprint(m));
    return keys;
}

void
expectSameStats(const solver::SolveStats &a, const solver::SolveStats &b)
{
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_EQ(a.checks, b.checks);
    EXPECT_EQ(a.solutions, b.solutions);
}

/** Serial-vs-parallel report equality, field by field. */
void
expectSameReport(const driver::MatchReport &serial,
                 const driver::MatchReport &parallel)
{
    EXPECT_EQ(matchKeys(serial.allMatches()),
              matchKeys(parallel.allMatches()));
    expectSameStats(serial.totals, parallel.totals);
    ASSERT_EQ(serial.functions.size(), parallel.functions.size());
    for (size_t i = 0; i < serial.functions.size(); ++i) {
        // Reports may come from separately compiled modules; compare
        // by name, not by pointer.
        EXPECT_EQ(serial.functions[i].function->name(),
                  parallel.functions[i].function->name());
        expectSameStats(serial.functions[i].stats,
                        parallel.functions[i].stats);
    }
}

/** A module with @p n functions, each holding a vector-sum reduction. */
std::string
manyFunctionSource(int n)
{
    std::ostringstream src;
    for (int i = 0; i < n; ++i) {
        src << "double sum" << i << "(double *a, int n) {\n"
            << "  double acc = 0.0;\n"
            << "  for (int k = 0; k < n; k = k + 1)\n"
            << "    acc = acc + a[k];\n"
            << "  return acc;\n"
            << "}\n";
    }
    return src.str();
}

} // namespace

TEST(DriverParallel, MatchesSerialOnExampleModules)
{
    for (const char *name : {"sgemm", "CG", "stencil", "histo"}) {
        const auto &b = benchmarks::benchmarkByName(name);

        driver::MatchingDriver serialDrv;
        ir::Module serialModule;
        auto serial =
            serialDrv.compileAndMatch(b.source, serialModule);

        driver::MatchingDriver parallelDrv;
        ir::Module parallelModule;
        auto parallel = parallelDrv.compileAndMatchParallel(
            b.source, parallelModule, 4);

        SCOPED_TRACE(name);
        expectSameReport(serial, parallel);
    }
}

TEST(DriverParallel, OneThreadEqualsSerial)
{
    const auto &b = benchmarks::benchmarkByName("sgemm");
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);

    driver::MatchingDriver drv;
    auto serial = drv.matchModule(module);
    auto oneThread = drv.runParallel(module, 1);
    expectSameReport(serial, oneThread);
}

TEST(DriverParallel, ManyFunctionModuleAnyThreadCount)
{
    // 16 functions in one module: real intra-module sharding, with
    // more shards than workers so the work-stealing queue rotates.
    std::string source = manyFunctionSource(16);

    driver::MatchingDriver serialDrv;
    ir::Module serialModule;
    auto serial = serialDrv.compileAndMatch(source, serialModule);
    EXPECT_EQ(serial.matchCount(), 16u);

    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        driver::MatchingDriver drv;
        ir::Module module;
        auto parallel =
            drv.compileAndMatchParallel(source, module, threads);
        SCOPED_TRACE(threads);
        expectSameReport(serial, parallel);
        // The driver's lifetime totals see exactly this batch.
        expectSameStats(drv.totals(), serial.totals);
    }
}

TEST(DriverParallel, BatchAcrossModulesMatchesSerial)
{
    // The Table 1 shape: many single-function modules, one shared
    // work queue across all of them.
    std::vector<const benchmarks::BenchmarkProgram *> programs;
    for (const char *name : {"sgemm", "CG", "MG", "LU", "histo"})
        programs.push_back(&benchmarks::benchmarkByName(name));

    std::vector<std::unique_ptr<ir::Module>> modules;
    std::vector<ir::Module *> modulePtrs;
    std::vector<driver::MatchReport> serial;
    driver::MatchingDriver serialDrv;
    for (const auto *p : programs) {
        modules.push_back(std::make_unique<ir::Module>());
        frontend::compileMiniCOrDie(p->source, *modules.back());
        modulePtrs.push_back(modules.back().get());
        serial.push_back(serialDrv.matchModule(*modules.back()));
    }

    for (unsigned threads : {2u, 4u}) {
        driver::MatchingDriver drv;
        auto parallel = drv.runParallelBatch(modulePtrs, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t m = 0; m < serial.size(); ++m) {
            SCOPED_TRACE(programs[m]->name + " @ " +
                         std::to_string(threads));
            expectSameReport(serial[m], parallel[m]);
        }
    }
}

TEST(DriverParallel, HardwareConcurrencyDefault)
{
    // numThreads = 0 resolves to hardware concurrency and must stay
    // deterministic regardless of what that is.
    std::string source = manyFunctionSource(8);
    driver::MatchingDriver serialDrv;
    ir::Module serialModule;
    auto serial = serialDrv.compileAndMatch(source, serialModule);

    driver::MatchingDriver drv;
    ir::Module module;
    auto parallel = drv.compileAndMatchParallel(source, module, 0);
    expectSameReport(serial, parallel);
}

TEST(DriverParallel, TransformsApplyAfterParallelMatch)
{
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatchParallel(b.source, module, 4);

    EXPECT_FALSE(report.replacements.empty());
    // The rewriting stage ran serially after the join and the module
    // is still valid IR.
    EXPECT_TRUE(ir::verifyModule(module).empty());
}

TEST(DriverParallel, SolverLimitsAreHonored)
{
    const auto &b = benchmarks::benchmarkByName("CG");
    driver::DriverOptions opts;
    opts.limits.maxAssignments = 1;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatchParallel(b.source, module, 4);
    EXPECT_EQ(report.matchCount(), 0u);
}

TEST(DriverParallel, EmptyModule)
{
    driver::MatchingDriver drv;
    ir::Module module;
    auto report = drv.runParallel(module, 4);
    EXPECT_EQ(report.matchCount(), 0u);
    EXPECT_TRUE(report.functions.empty());
    EXPECT_EQ(report.totals.assignments, 0u);
}
