/**
 * @file
 * Differential sweep over every legal (idiom class × backend)
 * lowering (docs/BACKENDS.md).
 *
 * For each idiom class and each legal (API, platform) target, force
 * the transform stage onto that target and run the full 21-program
 * differential verification harness: compile, match, rewrite, bind
 * the target's runtime handler, execute under both engines, and
 * require byte-identical watched heaps and return values against the
 * untransformed original. This is the proof obligation behind letting
 * the cost model choose freely — every alternative it can pick is
 * semantics-preserving, not just the historical host lowering.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "runtime/cost.h"

using namespace repro;

namespace {

/** Plan-kind strings the transform stage files under each class. */
std::vector<std::string>
kindsOf(idioms::IdiomClass cls)
{
    switch (cls) {
      case idioms::IdiomClass::SparseMatrixOp:
        return {"spmv"};
      case idioms::IdiomClass::MatrixOp:
        return {"gemm"};
      case idioms::IdiomClass::ScalarReduction:
        return {"reduce"};
      case idioms::IdiomClass::HistogramReduction:
        return {"histogram"};
      case idioms::IdiomClass::Stencil:
        return {"stencil1d", "stencil2d", "stencil3d"};
      case idioms::IdiomClass::Other:
        break;
    }
    return {};
}

/** Sweep every legal target of @p cls through the whole suite. */
void
sweepClass(idioms::IdiomClass cls)
{
    auto targets = runtime::legalTargets(cls);
    ASSERT_FALSE(targets.empty());
    for (const auto &target : targets) {
        driver::DriverOptions opts;
        for (const auto &kind : kindsOf(cls))
            opts.forcedBackends[kind] = target;
        driver::MatchingDriver drv(opts);
        for (const auto &v : drv.verifyTransformsParallel()) {
            EXPECT_TRUE(v.ok())
                << v.name << " under "
                << runtime::backendToken(target) << ": " << v.error;
        }
    }
}

} // namespace

TEST(BackendSweep, SparseMatrixOpAllTargets)
{
    sweepClass(idioms::IdiomClass::SparseMatrixOp);
}

TEST(BackendSweep, MatrixOpAllTargets)
{
    sweepClass(idioms::IdiomClass::MatrixOp);
}

TEST(BackendSweep, ScalarReductionAllTargets)
{
    sweepClass(idioms::IdiomClass::ScalarReduction);
}

TEST(BackendSweep, HistogramReductionAllTargets)
{
    sweepClass(idioms::IdiomClass::HistogramReduction);
}

TEST(BackendSweep, StencilAllTargets)
{
    sweepClass(idioms::IdiomClass::Stencil);
}
