#include <gtest/gtest.h>

#include "ir/irbuilder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

using namespace repro;
using namespace repro::ir;

TEST(Types, InterningGivesPointerEquality)
{
    TypeContext ctx;
    EXPECT_EQ(ctx.pointerTo(ctx.doubleTy()),
              ctx.pointerTo(ctx.doubleTy()));
    EXPECT_EQ(ctx.arrayOf(ctx.i32Ty(), 8), ctx.arrayOf(ctx.i32Ty(), 8));
    EXPECT_NE(ctx.arrayOf(ctx.i32Ty(), 8), ctx.arrayOf(ctx.i32Ty(), 9));
    EXPECT_NE(ctx.pointerTo(ctx.floatTy()),
              ctx.pointerTo(ctx.doubleTy()));
}

TEST(Types, SizeAndPrinting)
{
    TypeContext ctx;
    Type *arr = ctx.arrayOf(ctx.arrayOf(ctx.doubleTy(), 3), 2);
    EXPECT_EQ(arr->sizeInBytes(), 48u);
    EXPECT_EQ(arr->str(), "[2 x [3 x double]]");
    EXPECT_EQ(ctx.pointerTo(arr)->str(), "[2 x [3 x double]]*");
    EXPECT_EQ(ctx.parse("[2 x [3 x double]]*"), ctx.pointerTo(arr));
    EXPECT_EQ(ctx.parse("i64"), ctx.i64Ty());
    EXPECT_EQ(ctx.parse("garbage"), nullptr);
}

TEST(Values, UseListsAndRAUW)
{
    Module module;
    Function *f = module.createFunction(
        "f", module.types().i64Ty(),
        {module.types().i64Ty(), module.types().i64Ty()});
    IRBuilder b(module);
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *add = b.add(f->arg(0), f->arg(1), "s");
    Instruction *mul = b.mul(add, f->arg(0), "m");
    b.ret(mul);

    EXPECT_EQ(f->arg(0)->users().size(), 2u);
    EXPECT_EQ(add->users().size(), 1u);

    // Replace arg0 with arg1 everywhere.
    f->arg(0)->replaceAllUsesWith(f->arg(1));
    EXPECT_TRUE(f->arg(0)->unused());
    EXPECT_EQ(add->operand(0), f->arg(1));
    EXPECT_EQ(mul->operand(1), f->arg(1));
    EXPECT_EQ(f->arg(1)->users().size(), 3u);
}

TEST(Values, EraseRequiresNoUsers)
{
    Module module;
    Function *f = module.createFunction("f", module.types().voidTy(),
                                        {module.types().i64Ty()});
    IRBuilder b(module);
    b.setInsertPoint(f->createBlock("entry"));
    Instruction *dead = b.add(f->arg(0), b.i64(1));
    b.retVoid();
    EXPECT_NO_THROW(dead->eraseFromParent());
    EXPECT_EQ(f->entry()->size(), 1u);
}

TEST(Parser, RoundTripPreservesStructure)
{
    const char *text = R"(
define double @dot(double* %a, double* %b, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %inext, %body ]
  %acc = phi double [ 0.0, %entry ], [ %acc2, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %pa = getelementptr double, double* %a, i64 %i
  %va = load double, double* %pa
  %pb = getelementptr double, double* %b, i64 %i
  %vb = load double, double* %pb
  %prod = fmul double %va, %vb
  %acc2 = fadd double %acc, %prod
  %inext = add i64 %i, 1
  br label %header
exit:
  ret double %acc
}
)";
    Module m1;
    parseModuleOrDie(text, m1);
    EXPECT_TRUE(verifyModule(m1).empty());
    std::string printed1 = printModule(m1);

    // Parse the printer's output again: must be stable.
    Module m2;
    parseModuleOrDie(printed1, m2);
    EXPECT_TRUE(verifyModule(m2).empty());
    EXPECT_EQ(printed1, printModule(m2));

    Function *dot = m1.functionByName("dot");
    ASSERT_NE(dot, nullptr);
    EXPECT_EQ(dot->blocks().size(), 4u);
    EXPECT_EQ(dot->instructionCount(), 14u);
}

TEST(Parser, GlobalsAndCalls)
{
    const char *text = R"(
@table = global [4 x i32]

declare double @sqrt(double)

define double @f(i64 %i) {
entry:
  %p = getelementptr [4 x i32], [4 x i32]* @table, i64 0, i64 %i
  %v = load i32, i32* %p
  %w = sitofp i32 %v to double
  %r = call double @sqrt(double %w)
  ret double %r
}
)";
    Module m;
    parseModuleOrDie(text, m);
    EXPECT_TRUE(verifyModule(m).empty());
    EXPECT_NE(m.globalByName("table"), nullptr);
    EXPECT_TRUE(m.functionByName("sqrt")->isDeclaration());
}

TEST(Parser, ReportsUnknownValue)
{
    Module m;
    DiagEngine diags;
    EXPECT_FALSE(parseModule(R"(
define i32 @f() {
entry:
  ret i32 %nope
}
)",
                             m, diags));
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Verifier, CatchesBrokenIR)
{
    Module module;
    Function *f = module.createFunction("f", module.types().i32Ty(),
                                        {module.types().doubleTy()});
    IRBuilder b(module);
    b.setInsertPoint(f->createBlock("entry"));
    // Return type mismatch: returning a double from an i32 function.
    b.ret(f->arg(0));
    auto problems = verifyFunction(f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("ret type mismatch"),
              std::string::npos);
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module module;
    Function *f = module.createFunction("f", module.types().voidTy(),
                                        {});
    f->createBlock("entry");
    auto problems = verifyFunction(f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("no terminator"), std::string::npos);
}
