/**
 * @file
 * Golden cross-check of the bytecode execution engine
 * (interp/compiled.h) against the retained tree-walking reference
 * engine (Interpreter::runReference), plus the end-to-end
 * differential transform-verification harness
 * (MatchingDriver::verifyTransforms).
 *
 * The contract under test mirrors tests/test_solver_compiled.cpp on
 * the matching side: on every Table 1 suite program — transformed and
 * untransformed — the two engines must produce byte-identical final
 * heaps, return values and Profile counts (total, per instruction,
 * and per natural loop), and the transformed program must reproduce
 * the original program's watched outputs exactly. This is what makes
 * bytecode compilation a pure performance transformation and gives
 * every future PR end-to-end semantic coverage of
 * match -> transform -> bind -> execute.
 */
#include <cstring>
#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"
#include "interp/builtins.h"
#include "interp/compiled.h"
#include "interp/interpreter.h"

using namespace repro;
using interp::RuntimeValue;

namespace {

RuntimeValue I(int64_t v) { return RuntimeValue::makeInt(v); }
RuntimeValue F(double v) { return RuntimeValue::makeFP(v); }

/**
 * Run @p fn of @p src under both engines on fresh heaps and require
 * identical return values, heap sizes and profiles. Returns the
 * bytecode engine's result.
 */
RuntimeValue
runBoth(const char *src, const char *fn,
        const std::vector<RuntimeValue> &args)
{
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    ir::Function *func = module.functionByName(fn);

    interp::Memory refMem;
    interp::Interpreter ref(module, refMem);
    interp::registerMathBuiltins(ref);
    ref.enableProfile(true);
    RuntimeValue refOut = ref.runReference(func, args);

    interp::Memory fastMem;
    interp::Interpreter fast(module, fastMem);
    interp::registerMathBuiltins(fast);
    fast.enableProfile(true);
    RuntimeValue fastOut = fast.run(func, args);

    EXPECT_TRUE(RuntimeValue::bitsEqual(refOut, fastOut)) << fn;
    EXPECT_EQ(refMem.size(), fastMem.size()) << fn;
    EXPECT_EQ(ref.profile().totalSteps, fast.profile().totalSteps)
        << fn;
    EXPECT_EQ(ref.profile().counts, fast.profile().counts) << fn;
    return fastOut;
}

// ------------------------------------------------------ engine parity

TEST(CompiledInterp, ScalarArithmeticMatchesReference)
{
    const char *src = R"(
        long mix(long a, long b) {
            long x = (a * b) + (a / (b + 1)) - (a % (b + 2));
            long y = (a & b) | (a ^ 3);
            return (x << 2) + (y >> 1);
        }
    )";
    for (int64_t a : {-9, 0, 5, 1000})
        for (int64_t b : {1, 7, 42})
            runBoth(src, "mix", {I(a), I(b)});
}

TEST(CompiledInterp, FloatRoundingMatchesReference)
{
    const char *src = R"(
        float f(float a, float b) { return a * b + 0.1f; }
        double g(double a, double b) { return a * b + 0.1; }
    )";
    RuntimeValue r = runBoth(src, "f", {F(1.375), F(2.9375)});
    float expect = 1.375f * 2.9375f;
    expect += 0.1f;
    EXPECT_EQ(r.f, static_cast<double>(expect));
    runBoth(src, "g", {F(1.375), F(2.9375)});
}

TEST(CompiledInterp, PhiGroupsMoveInParallel)
{
    // The loop-carried swap makes the phi group order-sensitive: a
    // sequential (non-atomic) move would clobber one input before the
    // other read it.
    const char *src = R"(
        int swap(int n) {
            int a = 1;
            int b = 2;
            int i = 0;
            while (i < n) {
                int t = a;
                a = b;
                b = t;
                i = i + 1;
            }
            return a * 100 + b;
        }
    )";
    EXPECT_EQ(runBoth(src, "swap", {I(0)}).i, 102);
    EXPECT_EQ(runBoth(src, "swap", {I(1)}).i, 201);
    EXPECT_EQ(runBoth(src, "swap", {I(8)}).i, 102);
    EXPECT_EQ(runBoth(src, "swap", {I(9)}).i, 201);
}

TEST(CompiledInterp, MemoryAndGlobalsMatchReference)
{
    const char *src = R"(
        double grid[4][5];
        double f(int i, int j, int n) {
            int hist[8];
            for (int k = 0; k < 8; k++)
                hist[k] = 0;
            for (int k = 0; k < n; k++)
                hist[k % 8] += 1;
            grid[i][j] = 1.5;
            grid[i][j] += hist[3];
            return grid[i][j];
        }
    )";
    EXPECT_DOUBLE_EQ(runBoth(src, "f", {I(2), I(3), I(30)}).f, 5.5);
}

TEST(CompiledInterp, RecursionAndBuiltinsMatchReference)
{
    const char *src = R"(
        double fact(double n) {
            if (n <= 1.0) return 1.0;
            return n * fact(n - 1.0) + sqrt(n);
        }
    )";
    runBoth(src, "fact", {F(12.0)});
}

TEST(CompiledInterp, StepLimitTripsInBothEngines)
{
    const char *src = "void f() { while (1 > 0) { } }";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    for (bool reference : {true, false}) {
        interp::Memory mem;
        interp::Interpreter it(module, mem);
        it.setStepLimit(1000);
        ir::Function *func = module.functionByName("f");
        if (reference)
            EXPECT_THROW(it.runReference(func, {}), FatalError);
        else
            EXPECT_THROW(it.run(func, {}), FatalError);
    }
}

TEST(CompiledInterp, CompiledFunctionLayout)
{
    const char *src = R"(
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += i;
            return s;
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    ir::Function *func = module.functionByName("f");
    interp::CompiledFunction cf(*func);

    // Every instruction (phis included) has a profile index; the
    // bytecode only materializes the non-phi ones.
    EXPECT_EQ(cf.numProfiled(), func->instructionCount());
    size_t phis = 0;
    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(ir::Opcode::Phi))
                ++phis;
        }
    }
    EXPECT_GT(phis, 0u);
    EXPECT_EQ(cf.code().size(), func->instructionCount() - phis);
    // The argument occupies slot 0 by construction.
    EXPECT_GE(cf.numSlots(), 1u);
}

// ----------------------------------------- differential harness sweep

TEST(CompiledInterpDifferential, SuiteOriginalAndTransformed)
{
    driver::MatchingDriver drv;
    auto records = drv.verifyTransforms();
    ASSERT_EQ(records.size(), benchmarks::nasParboilSuite().size());

    size_t totalReplacements = 0;
    size_t totalLoops = 0;
    for (const auto &r : records) {
        EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
        EXPECT_GT(r.originalSteps, 0u) << r.name;
        EXPECT_GT(r.transformedSteps, 0u) << r.name;
        totalReplacements += r.replacements;
        totalLoops += r.loopsCompared;
    }
    // The sweep must have exercised real rewrites and real loops, not
    // vacuous comparisons.
    EXPECT_GT(totalReplacements, 0u);
    EXPECT_GT(totalLoops, 0u);
}

TEST(CompiledInterpDifferential, ParallelVerifyMatchesSerial)
{
    driver::MatchingDriver drv;
    auto serial = drv.verifyTransforms();
    auto parallel = drv.verifyTransformsParallel(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].error, parallel[i].error);
        EXPECT_EQ(serial[i].matches, parallel[i].matches);
        EXPECT_EQ(serial[i].replacements, parallel[i].replacements);
        EXPECT_EQ(serial[i].loopsCompared, parallel[i].loopsCompared);
        EXPECT_EQ(serial[i].originalSteps, parallel[i].originalSteps);
        EXPECT_EQ(serial[i].transformedSteps,
                  parallel[i].transformedSteps);
    }
}

} // namespace
