#include <gtest/gtest.h>
#include "frontend/compiler.h"
#include "interp/interpreter.h"
#include "ir/printer.h"

using namespace repro;

TEST(Smoke, DotProduct)
{
    const char *src = R"(
        double dot(double *a, double *b, int n) {
            double d = 0.0;
            for (int i = 0; i < n; i++)
                d = d + a[i] * b[i];
            return d;
        }
    )";
    ir::Module module;
    frontend::compileMiniCOrDie(src, module);
    std::string text = ir::printModule(module);
    fprintf(stderr, "%s\n", text.c_str());

    interp::Memory mem;
    interp::Interpreter interp(module, mem);
    uint64_t a = mem.allocate(4 * 8), b = mem.allocate(4 * 8);
    for (int i = 0; i < 4; ++i) {
        mem.store<double>(a + 8 * i, i + 1.0);
        mem.store<double>(b + 8 * i, 2.0);
    }
    auto r = interp.run(module.functionByName("dot"),
                        {interp::RuntimeValue::makeInt(a),
                         interp::RuntimeValue::makeInt(b),
                         interp::RuntimeValue::makeInt(4)});
    EXPECT_DOUBLE_EQ(r.f, 20.0);
}
