/**
 * @file
 * Backend selection: legality, ranking, policy threading, and the
 * wire/report surfaces (docs/BACKENDS.md).
 *
 * Covers the full selection stack: the legal-target tables and the
 * cost-model ranking (runtime/cost.h), the Fixed-policy byte-parity
 * guarantee (historical callee names, no rejected alternatives), the
 * CostModel policy flipping a large GEMM onto the dGPU with a
 * suffixed callee and a ranked alternative list, forced backends, the
 * cache-replay rule that selection always re-runs under the CURRENT
 * policy, differential execution of the staged backend handlers, and
 * the MATCH-line protocol keys.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/workload.h"
#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "runtime/cost.h"
#include "service/protocol.h"
#include "service/service.h"

using namespace repro;

namespace {

std::string
gemmSource(int n)
{
    const std::string N = std::to_string(n);
    return "void gemm_main(float *A, float *B, float *C,\n"
           "               float alpha, float beta) {\n"
           "    for (int mm = 0; mm < " + N + "; mm++) {\n"
           "        for (int nn = 0; nn < " + N + "; nn++) {\n"
           "            float c = 0.0f;\n"
           "            for (int i = 0; i < " + N + "; i++) {\n"
           "                float a = A[mm + i * " + N + "];\n"
           "                float b = B[nn + i * " + N + "];\n"
           "                c += a * b;\n"
           "            }\n"
           "            C[mm + nn * " + N + "] =\n"
           "                C[mm + nn * " + N + "] * beta + alpha * c;\n"
           "        }\n"
           "    }\n"
           "}\n";
}

const benchmarks::BenchmarkProgram &
suiteProgram(const std::string &name)
{
    for (const auto &b : benchmarks::nasParboilSuite()) {
        if (b.name == name)
            return b;
    }
    throw FatalError("no suite program named " + name);
}

} // namespace

// ----------------------------------------------------- cost layer

TEST(LegalTargets, CountsPerIdiomClass)
{
    using idioms::IdiomClass;
    EXPECT_EQ(runtime::legalTargets(IdiomClass::SparseMatrixOp).size(),
              6u);
    EXPECT_EQ(runtime::legalTargets(IdiomClass::MatrixOp).size(), 7u);
    EXPECT_EQ(runtime::legalTargets(IdiomClass::ScalarReduction).size(),
              3u);
    EXPECT_EQ(
        runtime::legalTargets(IdiomClass::HistogramReduction).size(),
        4u);
    EXPECT_EQ(runtime::legalTargets(IdiomClass::Stencil).size(), 4u);
    EXPECT_TRUE(runtime::legalTargets(IdiomClass::Other).empty());
}

TEST(LegalTargets, FixedTargetIsAlwaysLegal)
{
    using idioms::IdiomClass;
    for (IdiomClass cls :
         {IdiomClass::SparseMatrixOp, IdiomClass::MatrixOp,
          IdiomClass::ScalarReduction, IdiomClass::HistogramReduction,
          IdiomClass::Stencil}) {
        runtime::BackendTarget fixed = runtime::fixedTarget(cls);
        auto legal = runtime::legalTargets(cls);
        bool found = std::any_of(
            legal.begin(), legal.end(), [&](const auto &t) {
                return runtime::sameBackend(t, fixed);
            });
        EXPECT_TRUE(found) << "fixed target of class "
                           << static_cast<int>(cls)
                           << " is not a legal target";
        // The fixed targets are host-side lowerings: never the dGPU.
        EXPECT_NE(fixed.platform, runtime::Platform::DGPU);
    }
}

TEST(RankTargets, SmallGemmStaysOnHostLargeGemmFlips)
{
    analysis::WorkloadDescriptor small;
    small.tripCount = 8;
    small.flops = 2.0 * 8 * 8 * 8;
    small.bytes = 16.0 * 8 * 8 * 8;
    small.transferBytes = 3 * 8 * 8 * 4.0;

    auto ranked =
        runtime::rankTargets(idioms::IdiomClass::MatrixOp, small);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().platform, runtime::Platform::CPU);

    analysis::WorkloadDescriptor big;
    big.tripCount = 512;
    big.flops = 2.0 * 512 * 512 * 512;
    big.bytes = 16.0 * 512 * 512 * 512;
    big.transferBytes = 3 * 512 * 512 * 4.0;

    ranked = runtime::rankTargets(idioms::IdiomClass::MatrixOp, big);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().api, runtime::Api::CuBLAS);
    EXPECT_EQ(ranked.front().platform, runtime::Platform::DGPU);
    // Ranked ascending by predicted time.
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_LE(ranked[i - 1].predictedMs, ranked[i].predictedMs);
}

// ------------------------------------------------ policy threading

TEST(BackendPolicy, FixedKeepsHistoricalCalleesAndNoAlternatives)
{
    driver::DriverOptions opts;
    opts.applyTransforms = true; // policy defaults to Fixed
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(gemmSource(512), module);
    ASSERT_EQ(report.replacements.size(), 1u);
    const transform::Replacement &rep = report.replacements[0];
    EXPECT_EQ(rep.calleeName, "__hetero_gemm_f32");
    EXPECT_FALSE(rep.costModeled);
    EXPECT_TRUE(rep.rejected.empty());
    EXPECT_EQ(rep.target.api, runtime::Api::MKL);
    EXPECT_EQ(rep.target.platform, runtime::Platform::CPU);
}

TEST(BackendPolicy, CostModelFlipsLargeGemmToDgpu)
{
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(gemmSource(512), module);
    ASSERT_EQ(report.replacements.size(), 1u);
    const transform::Replacement &rep = report.replacements[0];
    EXPECT_TRUE(rep.costModeled);
    EXPECT_EQ(rep.target.api, runtime::Api::CuBLAS);
    EXPECT_EQ(rep.target.platform, runtime::Platform::DGPU);
    EXPECT_EQ(rep.calleeName, "__hetero_gemm_f32__cublas_gpu");
    // Every legal alternative is recorded, cost-ascending.
    EXPECT_EQ(rep.rejected.size(), 6u);
    EXPECT_GT(rep.target.predictedMs, 0.0);
    for (size_t i = 0; i < rep.rejected.size(); ++i) {
        EXPECT_GE(rep.rejected[i].predictedMs, rep.target.predictedMs);
        if (i > 0)
            EXPECT_LE(rep.rejected[i - 1].predictedMs,
                      rep.rejected[i].predictedMs);
    }
}

TEST(BackendPolicy, CostModelKeepsSmallGemmOnHost)
{
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(gemmSource(8), module);
    ASSERT_EQ(report.replacements.size(), 1u);
    const transform::Replacement &rep = report.replacements[0];
    EXPECT_TRUE(rep.costModeled);
    EXPECT_EQ(rep.target.platform, runtime::Platform::CPU);
    // Host choice == fixed target, so the callee keeps its classic
    // name and the runtime binder uses the byte-identical inline path.
    EXPECT_EQ(rep.calleeName, "__hetero_gemm_f32");
    EXPECT_FALSE(rep.rejected.empty());
}

TEST(BackendPolicy, ForcedBackendOverridesPolicy)
{
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    opts.forcedBackends["gemm"] =
        runtime::BackendTarget{runtime::Api::ClBLAS,
                               runtime::Platform::IGPU, 0.0};
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(gemmSource(512), module);
    ASSERT_EQ(report.replacements.size(), 1u);
    const transform::Replacement &rep = report.replacements[0];
    EXPECT_EQ(rep.target.api, runtime::Api::ClBLAS);
    EXPECT_EQ(rep.target.platform, runtime::Platform::IGPU);
    EXPECT_EQ(rep.calleeName, "__hetero_gemm_f32__clblas_igpu");
}

// ------------------------------------------------- cache interaction

TEST(BackendPolicy, CacheReplayRerunsSelectionUnderCurrentPolicy)
{
    // Warm the shared cache under Fixed...
    auto cache = std::make_shared<driver::MatchCache>();
    const std::string source = gemmSource(512);
    {
        driver::DriverOptions opts;
        opts.applyTransforms = true;
        opts.cache = cache;
        driver::MatchingDriver fixedDrv(opts);
        ir::Module module;
        auto report = fixedDrv.compileAndMatch(source, module);
        ASSERT_EQ(report.cacheMisses, 1u);
        ASSERT_EQ(report.replacements.size(), 1u);
        EXPECT_EQ(report.replacements[0].calleeName,
                  "__hetero_gemm_f32");
    }
    // ...then resubmit the same source under CostModel: the match is
    // replayed from the cache, but backend selection runs at transform
    // time against the CURRENT policy — the replay must yield the
    // cost-model choice, not the cached-era Fixed lowering.
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    opts.cache = cache;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    driver::MatchingDriver costDrv(opts);
    ir::Module module;
    auto report = costDrv.compileAndMatch(source, module);
    EXPECT_EQ(report.cacheHits, 1u);
    ASSERT_EQ(report.functions.size(), 1u);
    EXPECT_TRUE(report.functions[0].fromCache);
    ASSERT_EQ(report.replacements.size(), 1u);
    const transform::Replacement &rep = report.replacements[0];
    EXPECT_TRUE(rep.costModeled);
    EXPECT_EQ(rep.target.api, runtime::Api::CuBLAS);
    EXPECT_EQ(rep.calleeName, "__hetero_gemm_f32__cublas_gpu");
}

// ------------------------------------------- staged backend handlers

TEST(BackendExecution, ForcedDgpuGemmIsByteIdentical)
{
    driver::DriverOptions opts;
    opts.forcedBackends["gemm"] =
        runtime::BackendTarget{runtime::Api::CuBLAS,
                               runtime::Platform::DGPU, 0.0};
    driver::MatchingDriver drv(opts);
    auto v = drv.verifyTransform(suiteProgram("sgemm"));
    EXPECT_TRUE(v.ok()) << v.error;
    EXPECT_EQ(v.replacements, 1u);
}

TEST(BackendExecution, ForcedDgpuSpmvIsByteIdentical)
{
    driver::DriverOptions opts;
    opts.forcedBackends["spmv"] =
        runtime::BackendTarget{runtime::Api::CuSPARSE,
                               runtime::Platform::DGPU, 0.0};
    driver::MatchingDriver drv(opts);
    auto v = drv.verifyTransform(suiteProgram("spmv"));
    EXPECT_TRUE(v.ok()) << v.error;
    EXPECT_EQ(v.replacements, 1u);
}

TEST(BackendExecution, CostModelSuiteSweepIsByteIdentical)
{
    // The full 21-program differential harness under CostModel: every
    // program must still execute byte-identically even when the cost
    // layer re-homes its kernels.
    driver::DriverOptions opts;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    driver::MatchingDriver drv(opts);
    for (const auto &v : drv.verifyTransformsParallel()) {
        EXPECT_TRUE(v.ok()) << v.name << ": " << v.error;
    }
}

// ------------------------------------------------------ wire surface

TEST(Protocol, MatchLinesCarryBackendKeysOnlyUnderCostModel)
{
    const std::string source = gemmSource(512);
    {
        service::MatchService fixedSvc;
        auto outcome = fixedSvc.submit("m", source);
        ASSERT_TRUE(outcome.ok) << outcome.error;
        bool sawMatch = false;
        for (const auto &line :
             service::formatSubmitResponse(outcome)) {
            if (line.rfind("MATCH ", 0) != 0)
                continue;
            sawMatch = true;
            EXPECT_EQ(line.find("backend="), std::string::npos);
            EXPECT_EQ(line.find("cost_ms="), std::string::npos);
        }
        EXPECT_TRUE(sawMatch);
    }
    service::ServiceOptions opts;
    opts.backendPolicy = transform::BackendPolicy::CostModel;
    service::MatchService costSvc(opts);
    auto outcome = costSvc.submit("m", source);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    bool sawBackend = false;
    for (const auto &line : service::formatSubmitResponse(outcome)) {
        if (line.rfind("MATCH ", 0) != 0)
            continue;
        EXPECT_NE(line.find(" backend="), std::string::npos) << line;
        EXPECT_NE(line.find(" cost_ms="), std::string::npos) << line;
        if (line.find(" backend=cuBLAS@GPU") != std::string::npos) {
            sawBackend = true;
            EXPECT_NE(line.find(" alt="), std::string::npos) << line;
        }
    }
    EXPECT_TRUE(sawBackend);
}
