/**
 * @file
 * Tests of the batched MatchingDriver: end-to-end pipeline over the
 * quickstart / GEMM / SPMV sources, aggregate statistics, and the
 * guarantee that the per-function analysis cache produces matches
 * identical to stand-alone per-function solving.
 */
#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "driver/driver.h"
#include "frontend/compiler.h"
#include "idl/lower.h"
#include "ir/verifier.h"
#include "transform/transform.h"

using namespace repro;

namespace {

/** The running example of section 2.2 (quickstart.cpp). */
const char *kQuickstartSource = R"(
    int example(int a, int b, int c) {
        int d = a;
        return (a*b) + (c*d);
    }
)";

std::vector<std::string>
matchKeys(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<std::string> keys;
    for (const auto &m : matches)
        keys.push_back(idioms::matchFingerprint(m));
    return keys;
}

} // namespace

TEST(Driver, QuickstartFactorization)
{
    driver::MatchingDriver drv;
    ir::Module module;
    frontend::compileMiniCOrDie(kQuickstartSource, module);
    ir::Function *func = module.functionByName("example");

    auto matches = drv.matchOne(func, "FactorizationOpportunity");
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].solution.lookup("factor")->handle(), "%a");
    EXPECT_GT(drv.totals().assignments, 0u);
    EXPECT_GT(drv.totals().checks, 0u);
}

TEST(Driver, BatchStatsPopulated)
{
    const auto &gemm = benchmarks::benchmarkByName("sgemm");
    driver::MatchingDriver drv;
    ir::Module module;
    auto report = drv.compileAndMatch(gemm.source, module);

    ASSERT_FALSE(report.functions.empty());
    EXPECT_GT(report.matchCount(), 0u);
    EXPECT_GT(report.totals.assignments, 0u);
    EXPECT_GT(report.totals.checks, 0u);
    EXPECT_GT(report.totals.solutions, 0u);

    // Per-function stats sum to the report totals.
    solver::SolveStats sum;
    for (const auto &fr : report.functions)
        sum += fr.stats;
    EXPECT_EQ(sum.assignments, report.totals.assignments);
    EXPECT_EQ(sum.checks, report.totals.checks);
    EXPECT_EQ(sum.solutions, report.totals.solutions);

    // The driver's lifetime totals cover the batch.
    EXPECT_GE(drv.totals().assignments, report.totals.assignments);
}

TEST(Driver, CachedAnalysesMatchPerFunctionSolving)
{
    // GEMM (sgemm), SPMV (CG) and the stencil benchmark: the batched
    // driver with its analysis cache must produce byte-identical
    // match sets to fresh per-function detection.
    for (const char *name : {"sgemm", "CG", "stencil"}) {
        const auto &b = benchmarks::benchmarkByName(name);
        driver::MatchingDriver drv;
        ir::Module module;
        auto report = drv.compileAndMatch(b.source, module);

        std::vector<idioms::IdiomMatch> standalone;
        for (const auto &f : module.functions()) {
            if (f->isDeclaration())
                continue;
            idioms::IdiomDetector detector;
            auto matches = detector.detect(f.get());
            standalone.insert(standalone.end(), matches.begin(),
                              matches.end());
        }

        EXPECT_EQ(matchKeys(report.allMatches()),
                  matchKeys(standalone))
            << "driver/per-function mismatch on " << name;
    }
}

TEST(Driver, AnalysesAreCachedPerFunction)
{
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::MatchingDriver drv;
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);

    analysis::FunctionAnalyses &first = drv.analysesFor(func);
    analysis::FunctionAnalyses &second = drv.analysesFor(func);
    EXPECT_EQ(&first, &second);

    // Matching twice through the driver reuses the cache and still
    // yields the same matches.
    auto once = drv.matchFunction(func);
    auto twice = drv.matchFunction(func);
    EXPECT_EQ(matchKeys(once), matchKeys(twice));

    drv.invalidate(func);
    analysis::FunctionAnalyses &rebuilt = drv.analysesFor(func);
    auto after = matchKeys(drv.matchFunction(func));
    EXPECT_EQ(matchKeys(once), after);
    (void)rebuilt;
}

TEST(Driver, SolveProgramUsesCachedAnalyses)
{
    driver::MatchingDriver drv;
    ir::Module module;
    frontend::compileMiniCOrDie(kQuickstartSource, module);
    ir::Function *func = module.functionByName("example");

    auto lowered = idl::lowerIdiom(idioms::idiomLibrary(),
                                   "FactorizationOpportunity");
    auto outcome = drv.solveProgram(func, lowered);
    EXPECT_EQ(outcome.solutions.size(), 1u);
    EXPECT_GT(outcome.stats.assignments, 0u);
    EXPECT_EQ(drv.totals().assignments, outcome.stats.assignments);
}

TEST(Driver, TransformStageRewritesModule)
{
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::DriverOptions opts;
    opts.applyTransforms = true;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(b.source, module);

    EXPECT_FALSE(report.replacements.empty());
    // The rewritten module is still valid IR.
    EXPECT_TRUE(ir::verifyModule(module).empty());
}

TEST(Driver, CacheIsScopedPerModule)
{
    // One driver reused across module lifetimes must not serve
    // analyses built for a destroyed module's functions (addresses
    // can be recycled).
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::MatchingDriver drv;
    std::vector<std::string> first;
    {
        ir::Module moduleA;
        first = matchKeys(
            drv.compileAndMatch(b.source, moduleA).allMatches());
    }
    ir::Module moduleB;
    auto second =
        matchKeys(drv.compileAndMatch(b.source, moduleB).allMatches());
    EXPECT_EQ(first, second);
}

TEST(Driver, AnalysesRebuiltAfterInPlaceMutation)
{
    // The analysis cache is guarded by the function's contentHash():
    // mutating a function in place (here: the transform stage
    // replacing its GEMM nest with an API call) must make the next
    // analysesFor rebuild instead of serving stale dominators, loops
    // and candidate indices — with no invalidate() call in between.
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::MatchingDriver drv;
    ir::Module module;
    auto report = drv.compileAndMatch(b.source, module);
    ir::Function *func = module.functionByName(b.entry);
    ASSERT_NE(func, nullptr);

    const uint64_t hashBefore = func->contentHash();
    analysis::FunctionAnalyses &before = drv.analysesFor(func);
    const size_t loopsBefore = before.loopInfo().loops().size();
    const size_t valuesBefore =
        before.candidateIndex().universe().size();
    ASSERT_GT(loopsBefore, 0u);

    transform::Transformer transformer(module);
    auto replacements = transformer.applyAll(report.allMatches());
    ASSERT_FALSE(replacements.empty());
    ASSERT_TRUE(ir::verifyModule(module).empty());
    ASSERT_NE(func->contentHash(), hashBefore);

    analysis::FunctionAnalyses &after = drv.analysesFor(func);
    const size_t loopsAfter = after.loopInfo().loops().size();
    const size_t valuesAfter =
        after.candidateIndex().universe().size();
    // Replacing the loop nest with a call removes loops and shrinks
    // the value universe; stale analyses would report the old counts.
    EXPECT_LT(loopsAfter, loopsBefore);
    EXPECT_LT(valuesAfter, valuesBefore);

    // And the fresh analyses are themselves cached again.
    EXPECT_EQ(&after, &drv.analysesFor(func));
}

TEST(Driver, AnalysesStableWhileFunctionUnchanged)
{
    // The hash guard must not cause spurious rebuilds: repeated
    // analysesFor on an untouched function returns the same object.
    const auto &b = benchmarks::benchmarkByName("sgemm");
    driver::MatchingDriver drv;
    ir::Module module;
    frontend::compileMiniCOrDie(b.source, module);
    ir::Function *func = module.functionByName(b.entry);

    analysis::FunctionAnalyses &first = drv.analysesFor(func);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(&first, &drv.analysesFor(func));
}

TEST(Driver, SolverLimitsAreHonored)
{
    const auto &b = benchmarks::benchmarkByName("CG");
    driver::DriverOptions opts;
    opts.limits.maxAssignments = 1;
    driver::MatchingDriver drv(opts);
    ir::Module module;
    auto report = drv.compileAndMatch(b.source, module);
    // With an absurdly small budget nothing can be matched.
    EXPECT_EQ(report.matchCount(), 0u);
}
