/**
 * @file
 * Natural loop detection on top of the dominator tree.
 *
 * Used by the Polly-like and ICC-like baseline detectors and by the
 * coverage profiler; IDL itself describes loops structurally in the
 * idiom language.
 */
#ifndef ANALYSIS_LOOPS_H
#define ANALYSIS_LOOPS_H

#include <memory>
#include <set>
#include <vector>

#include "analysis/dominators.h"

namespace repro::analysis {

/** One natural loop: header plus body blocks, nested loops linked. */
struct Loop
{
    BasicBlock *header = nullptr;
    /** Source of the back edge (latch). */
    BasicBlock *latch = nullptr;
    std::set<BasicBlock *> blocks;
    Loop *parent = nullptr;
    std::vector<Loop *> children;
    int depth = 1;

    bool contains(const BasicBlock *bb) const
    {
        return blocks.count(const_cast<BasicBlock *>(bb)) > 0;
    }
    bool contains(const Instruction *inst) const
    {
        return contains(inst->parent());
    }

    /** Blocks inside the loop with a successor outside. */
    std::vector<BasicBlock *> exitingBlocks() const;

    /** Unique predecessor of the header outside the loop, if any. */
    BasicBlock *preheader() const;
};

/** All natural loops of a function. */
class LoopInfo
{
  public:
    LoopInfo(Function *func, const DomTree &dom);

    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return loops_;
    }

    /** Innermost loop containing @p bb; null if none. */
    Loop *loopFor(const BasicBlock *bb) const;

    /** Outermost loops only. */
    std::vector<Loop *> topLevel() const;

  private:
    std::vector<std::unique_ptr<Loop>> loops_;
};

} // namespace repro::analysis

#endif // ANALYSIS_LOOPS_H
