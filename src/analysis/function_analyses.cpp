#include "analysis/function_analyses.h"

namespace repro::analysis {

const Value *
basePointerOf(const Value *addr)
{
    while (addr->isInstruction()) {
        auto *inst = static_cast<const Instruction *>(addr);
        if (inst->is(ir::Opcode::GEP)) {
            addr = inst->operand(0);
        } else {
            break;
        }
    }
    return addr;
}

bool
FunctionAnalyses::hasControlDependenceEdge(const Instruction *branch,
                                           const Instruction *inst)
{
    if (!branch->isConditionalBranch())
        return false;
    const DomTree &pdt = postDomTree();
    const BasicBlock *target_bb = inst->parent();
    bool some_postdom = false;
    bool some_not = false;
    for (ir::BasicBlock *succ : branch->blockTargets()) {
        if (pdt.dominates(target_bb, succ))
            some_postdom = true;
        else
            some_not = true;
    }
    return some_postdom && some_not;
}

bool
FunctionAnalyses::hasMemoryDependenceEdge(const Instruction *a,
                                          const Instruction *b)
{
    auto addr_of = [](const Instruction *inst) -> const Value * {
        if (inst->is(ir::Opcode::Load))
            return inst->operand(0);
        if (inst->is(ir::Opcode::Store))
            return inst->operand(1);
        return nullptr;
    };
    const Value *aa = addr_of(a);
    const Value *ab = addr_of(b);
    if (!aa || !ab)
        return false;
    if (!a->is(ir::Opcode::Store) && !b->is(ir::Opcode::Store))
        return false; // two loads never conflict
    const Value *base_a = basePointerOf(aa);
    const Value *base_b = basePointerOf(ab);
    // Distinct allocas cannot alias; otherwise be conservative and
    // require identical base pointers to *rule out* a dependence only
    // when both are distinct function arguments is unsound, so report
    // a dependence unless the bases are provably distinct allocas.
    auto is_alloca = [](const Value *v) {
        return v->isInstruction() &&
               static_cast<const Instruction *>(v)->is(
                   ir::Opcode::Alloca);
    };
    if (is_alloca(base_a) && is_alloca(base_b) && base_a != base_b)
        return false;
    if (is_alloca(base_a) != is_alloca(base_b) &&
        (is_alloca(base_a) || is_alloca(base_b))) {
        // One side is function-local memory, the other is external.
        return false;
    }
    return true;
}

} // namespace repro::analysis
