#include "analysis/candidate_index.h"

#include <set>

namespace repro::analysis {

using ir::Constant;
using ir::Instruction;
using ir::Value;

const std::vector<const Value *> CandidateIndex::empty_;

void
CandidateIndex::add(Value *v)
{
    // Keep renumber()'s dense id sequence for the printable "%N"
    // handles of unnamed values — but only write function-owned
    // values (arguments, instructions). Constants and globals are
    // interned per module and shared across functions: their ids are
    // never read (Constant/GlobalVariable override handle()), and
    // writing them here would race between concurrent per-function
    // index builds.
    if (v->isArgument() || v->isInstruction())
        v->setId(static_cast<int>(universe_.size()));
    else
        sharedIndex_.emplace(v, static_cast<uint32_t>(universe_.size()));
    universe_.push_back(v);
    if (v->isInstruction()) {
        instructions_.push_back(v);
        byOpcode_[static_cast<const Instruction *>(v)->opcode()]
            .push_back(v);
    } else if (v->isConstant()) {
        constants_.push_back(v);
        if (static_cast<const Constant *>(v)->isZero())
            zeroConstants_.push_back(v);
    } else if (v->isArgument()) {
        arguments_.push_back(v);
    }
    if (v->isConstant() || v->isArgument() || v->isGlobal())
        compileTime_.push_back(v);
}

CandidateIndex::CandidateIndex(ir::Function *func)
{
    // Same traversal as Function::renumber().
    for (const auto &a : func->args())
        add(a.get());
    std::set<const Value *> const_seen;
    for (const auto &bb : func->blocks()) {
        for (const auto &inst : bb->insts()) {
            add(inst.get());
            for (Value *op : inst->operands()) {
                if ((op->isConstant() || op->isGlobal()) &&
                    const_seen.insert(op).second) {
                    add(op);
                }
            }
        }
    }

    // Operand-edge adjacency in Value::users() order, matching the
    // order the pre-index generator enumerated IsArgumentOf users.
    for (const Value *v : universe_) {
        for (const Instruction *user : v->users()) {
            size_t n = std::min(user->numOperands(), kMaxArgPositions);
            for (size_t pos = 0; pos < n; ++pos) {
                if (user->operand(pos) == v)
                    argUsers_[v][pos].push_back(user);
            }
        }
    }
}

} // namespace repro::analysis
