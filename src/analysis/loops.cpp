#include "analysis/loops.h"

#include <algorithm>
#include <deque>

namespace repro::analysis {

std::vector<BasicBlock *>
Loop::exitingBlocks() const
{
    std::vector<BasicBlock *> out;
    for (BasicBlock *bb : blocks) {
        for (BasicBlock *s : bb->successors()) {
            if (!contains(s)) {
                out.push_back(bb);
                break;
            }
        }
    }
    return out;
}

BasicBlock *
Loop::preheader() const
{
    BasicBlock *pre = nullptr;
    for (BasicBlock *p : header->predecessors()) {
        if (contains(p))
            continue;
        if (pre)
            return nullptr; // several outside predecessors
        pre = p;
    }
    return pre;
}

LoopInfo::LoopInfo(Function *func, const DomTree &dom)
{
    // Find back edges: latch -> header where header dominates latch.
    for (const auto &bb : func->blocks()) {
        for (BasicBlock *succ : bb->successors()) {
            if (!dom.dominates(succ, bb.get()))
                continue;
            auto loop = std::make_unique<Loop>();
            loop->header = succ;
            loop->latch = bb.get();
            // Collect the natural loop body by walking predecessors
            // from the latch until the header.
            loop->blocks.insert(succ);
            std::deque<BasicBlock *> queue;
            if (bb.get() != succ) {
                loop->blocks.insert(bb.get());
                queue.push_back(bb.get());
            }
            while (!queue.empty()) {
                BasicBlock *cur = queue.front();
                queue.pop_front();
                for (BasicBlock *p : cur->predecessors()) {
                    if (loop->blocks.insert(p).second)
                        queue.push_back(p);
                }
            }
            loops_.push_back(std::move(loop));
        }
    }

    // Merge loops sharing a header (multiple latches).
    for (size_t i = 0; i < loops_.size(); ++i) {
        for (size_t j = i + 1; j < loops_.size();) {
            if (loops_[i]->header == loops_[j]->header) {
                loops_[i]->blocks.insert(loops_[j]->blocks.begin(),
                                         loops_[j]->blocks.end());
                loops_.erase(loops_.begin() +
                             static_cast<ptrdiff_t>(j));
            } else {
                ++j;
            }
        }
    }

    // Establish nesting: the smallest strict superset is the parent.
    for (auto &inner : loops_) {
        Loop *best = nullptr;
        for (auto &outer : loops_) {
            if (outer.get() == inner.get())
                continue;
            if (!outer->contains(inner->header))
                continue;
            if (outer->blocks.size() <= inner->blocks.size())
                continue;
            if (!best || outer->blocks.size() < best->blocks.size())
                best = outer.get();
        }
        inner->parent = best;
        if (best)
            best->children.push_back(inner.get());
    }
    for (auto &loop : loops_) {
        int d = 1;
        for (Loop *p = loop->parent; p; p = p->parent)
            ++d;
        loop->depth = d;
    }
}

Loop *
LoopInfo::loopFor(const BasicBlock *bb) const
{
    Loop *best = nullptr;
    for (const auto &loop : loops_) {
        if (!loop->contains(bb))
            continue;
        if (!best || loop->blocks.size() < best->blocks.size())
            best = loop.get();
    }
    return best;
}

std::vector<Loop *>
LoopInfo::topLevel() const
{
    std::vector<Loop *> out;
    for (const auto &loop : loops_) {
        if (!loop->parent)
            out.push_back(loop.get());
    }
    return out;
}

} // namespace repro::analysis
