/**
 * @file
 * Per-function value indices backing the constraint solver's candidate
 * generation.
 *
 * Historically every solver::Solver construction re-walked the function
 * to rebuild the value universe and the opcode/constant/argument
 * buckets — once per (function, idiom) pair, and via
 * Function::renumber(), which also wrote ids into module-shared
 * constants (a data race once functions of one module are matched
 * concurrently). The CandidateIndex hoists that work into one pass
 * per function that touches only function-owned state: it assigns
 * the dense ids of arguments and instructions (so unnamed values
 * keep their printable "%N" handles) but never writes to the
 * module-interned constants and globals, making it safe to build and
 * query from parallel matching shards. It is cached inside
 * FunctionAnalyses so all idioms solved against a function share one
 * index.
 *
 * The traversal order deliberately replicates Function::renumber()
 * (arguments, then instructions in block order, module constants and
 * globals interleaved at first operand use) so candidate enumeration
 * order — and therefore solution order — is identical to the
 * pre-index solver.
 */
#ifndef ANALYSIS_CANDIDATE_INDEX_H
#define ANALYSIS_CANDIDATE_INDEX_H

#include <array>
#include <map>
#include <vector>

#include "ir/function.h"
#include "ir/instruction.h"

namespace repro::analysis {

/** Read-only value indices of one function. */
class CandidateIndex
{
  public:
    /** Operand positions indexed for usersAt (IDL "first".."fourth"). */
    static constexpr size_t kMaxArgPositions = 4;

    /** indexOf() result for values outside the universe. */
    static constexpr uint32_t npos = 0xffffffffu;

    /**
     * Build all indices in one pass. Writes only @p func's own
     * argument/instruction ids; module-shared values are untouched.
     */
    explicit CandidateIndex(ir::Function *func);

    /**
     * Every value of the function in renumber() order: arguments,
     * then instructions block by block, with constants and globals
     * inserted once each at their first operand use.
     */
    const std::vector<const ir::Value *> &universe() const
    {
        return universe_;
    }

    /** Instructions with opcode @p op, in universe order. */
    const std::vector<const ir::Value *> &opcode(ir::Opcode op) const
    {
        auto it = byOpcode_.find(op);
        return it == byOpcode_.end() ? empty_ : it->second;
    }

    /** All instructions, in universe order. */
    const std::vector<const ir::Value *> &instructions() const
    {
        return instructions_;
    }

    /** Constants used by the function, in first-use order. */
    const std::vector<const ir::Value *> &constants() const
    {
        return constants_;
    }

    /** The additive-identity subset of constants(). */
    const std::vector<const ir::Value *> &zeroConstants() const
    {
        return zeroConstants_;
    }

    /** Formal arguments, in declaration order. */
    const std::vector<const ir::Value *> &arguments() const
    {
        return arguments_;
    }

    /** Constants, arguments and globals, in universe order. */
    const std::vector<const ir::Value *> &compileTimeValues() const
    {
        return compileTime_;
    }

    /**
     * Dense universe position of @p v, or npos when @p v is not part
     * of this function's universe. O(1) for arguments/instructions
     * (their ids are the universe positions this index assigned);
     * a map probe for the module-shared constants and globals. Backs
     * the solver's epoch-stamped candidate deduplication.
     */
    uint32_t
    indexOf(const ir::Value *v) const
    {
        if (!v)
            return npos;
        if (v->isArgument() || v->isInstruction()) {
            int id = v->id();
            // Guard against ids rewritten by a later renumber().
            if (id >= 0 && static_cast<size_t>(id) < universe_.size() &&
                universe_[static_cast<size_t>(id)] == v) {
                return static_cast<uint32_t>(id);
            }
            return npos;
        }
        auto it = sharedIndex_.find(v);
        return it == sharedIndex_.end() ? npos : it->second;
    }

    /**
     * Operand-edge adjacency: the users of @p v that carry it at
     * 0-based operand position @p pos (pos < kMaxArgPositions), in
     * Value::users() order. Empty for unindexed values/positions.
     */
    const std::vector<const ir::Value *> &usersAt(const ir::Value *v,
                                                  size_t pos) const
    {
        if (pos >= kMaxArgPositions)
            return empty_;
        auto it = argUsers_.find(v);
        return it == argUsers_.end() ? empty_ : it->second[pos];
    }

  private:
    void add(ir::Value *v);

    std::vector<const ir::Value *> universe_;
    std::vector<const ir::Value *> instructions_;
    std::vector<const ir::Value *> constants_;
    std::vector<const ir::Value *> zeroConstants_;
    std::vector<const ir::Value *> arguments_;
    std::vector<const ir::Value *> compileTime_;
    std::map<ir::Opcode, std::vector<const ir::Value *>> byOpcode_;
    /** Universe positions of constants/globals (ids stay unwritten). */
    std::map<const ir::Value *, uint32_t> sharedIndex_;
    std::map<const ir::Value *,
             std::array<std::vector<const ir::Value *>,
                        kMaxArgPositions>>
        argUsers_;
    static const std::vector<const ir::Value *> empty_;
};

} // namespace repro::analysis

#endif // ANALYSIS_CANDIDATE_INDEX_H
