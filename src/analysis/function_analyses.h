/**
 * @file
 * Bundle of per-function analyses shared by the constraint solver, the
 * baseline detectors and the transformation phase.
 */
#ifndef ANALYSIS_FUNCTION_ANALYSES_H
#define ANALYSIS_FUNCTION_ANALYSES_H

#include <map>
#include <memory>

#include "analysis/candidate_index.h"
#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "analysis/workload.h"

namespace repro::analysis {

/** Lazily built analyses for one function. */
class FunctionAnalyses
{
  public:
    explicit FunctionAnalyses(Function *func) : func_(func) {}

    Function *function() const { return func_; }

    const DomTree &
    domTree()
    {
        if (!dom_)
            dom_ = std::make_unique<DomTree>(func_, false);
        return *dom_;
    }

    const DomTree &
    postDomTree()
    {
        if (!postDom_)
            postDom_ = std::make_unique<DomTree>(func_, true);
        return *postDom_;
    }

    const InstCFG &
    cfg()
    {
        if (!cfg_)
            cfg_ = std::make_unique<InstCFG>(func_);
        return *cfg_;
    }

    const LoopInfo &
    loopInfo()
    {
        if (!loops_)
            loops_ = std::make_unique<LoopInfo>(func_, domTree());
        return *loops_;
    }

    /**
     * The solver's candidate-generation indices (universe, opcode and
     * constant buckets, operand-edge adjacency). Built once per
     * function and shared by every idiom solved against it.
     */
    const CandidateIndex &
    candidateIndex()
    {
        if (!candidates_)
            candidates_ = std::make_unique<CandidateIndex>(func_);
        return *candidates_;
    }

    /**
     * Control dependence edge: @p branch is a conditional branch and
     * the execution of @p inst depends on its outcome (classic
     * post-dominance criterion).
     */
    bool hasControlDependenceEdge(const Instruction *branch,
                                  const Instruction *inst);

    /**
     * Conservative memory dependence edge between two memory accesses:
     * both touch memory and we cannot prove they use distinct base
     * pointers.
     */
    bool hasMemoryDependenceEdge(const Instruction *a,
                                 const Instruction *b);

    /**
     * Dynamic workload descriptors keyed by natural-loop header,
     * deposited by the driver after a profiled run of the original
     * program (MatchingDriver::profileWorkloads) and consumed by the
     * transform layer's backend cost model. Absent headers fall back
     * to the static estimate.
     */
    void
    setWorkload(const BasicBlock *header, WorkloadDescriptor wd)
    {
        workloads_[header] = wd;
    }

    const WorkloadDescriptor *
    workloadFor(const BasicBlock *header) const
    {
        auto it = workloads_.find(header);
        return it == workloads_.end() ? nullptr : &it->second;
    }

    bool hasWorkloads() const { return !workloads_.empty(); }

    /** Invalidate after the function is mutated. */
    void
    invalidate()
    {
        dom_.reset();
        postDom_.reset();
        cfg_.reset();
        loops_.reset();
        candidates_.reset();
        workloads_.clear();
    }

  private:
    Function *func_;
    std::unique_ptr<DomTree> dom_;
    std::unique_ptr<DomTree> postDom_;
    std::unique_ptr<InstCFG> cfg_;
    std::unique_ptr<LoopInfo> loops_;
    std::unique_ptr<CandidateIndex> candidates_;
    std::map<const BasicBlock *, WorkloadDescriptor> workloads_;
};

/**
 * Walk through GEPs and casts to the underlying base pointer of a
 * memory address (argument, global, alloca or unknown value).
 */
const Value *basePointerOf(const Value *addr);

} // namespace repro::analysis

#endif // ANALYSIS_FUNCTION_ANALYSES_H
