/**
 * @file
 * Per-call-site workload descriptors for the backend cost model.
 *
 * A WorkloadDescriptor summarizes what one matched loop nest does per
 * entry: trip counts, arithmetic, memory traffic and the footprint
 * that would have to be shipped to a discrete device. Descriptors are
 * built either from the interpreter's dynamic per-instruction profile
 * (Profile counts, exact) or from a static trip-count estimate
 * (constant loop bounds, default trip when unknown) so the cost layer
 * always has something to rank backends with (docs/BACKENDS.md).
 */
#ifndef ANALYSIS_WORKLOAD_H
#define ANALYSIS_WORKLOAD_H

#include <cstdint>
#include <functional>

#include "analysis/loops.h"

namespace repro::analysis {

/** What one entry of a matched loop nest costs. */
struct WorkloadDescriptor
{
    /** Trips of the nest's root loop per entry. */
    double tripCount = 0.0;
    /** Floating-point arithmetic per entry. */
    double flops = 0.0;
    /** Bytes loaded/stored per entry. */
    double bytes = 0.0;
    /** Distinct array footprint (per base pointer, max extent). */
    double transferBytes = 0.0;
    /** Entries of the nest per program run. */
    double invocations = 1.0;
    /** Built from a dynamic profile (else static estimate). */
    bool fromProfile = false;
};

/**
 * Dynamic execution count of an instruction; return 0 everywhere for
 * "no profile" (interp::Profile supplies the real thing — the getter
 * indirection keeps this layer interpreter-free).
 */
using InstCountFn = std::function<uint64_t(const ir::Instruction *)>;

/**
 * Estimate the workload of the loop nest rooted at @p loop. With a
 * non-null @p counts whose header count is non-zero the descriptor is
 * derived from the dynamic profile; otherwise from static constant
 * loop bounds (unknown bounds default to 64 trips).
 */
WorkloadDescriptor estimateWorkload(const LoopInfo &loops,
                                    const Loop *loop,
                                    const InstCountFn &counts);

} // namespace repro::analysis

#endif // ANALYSIS_WORKLOAD_H
