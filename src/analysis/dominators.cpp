#include "analysis/dominators.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace repro::analysis {

DomTree::DomTree(Function *func, bool post_dom)
    : func_(func), postDom_(post_dom)
{
    build();
    buildFrontiers();
}

int
DomTree::indexOf(const BasicBlock *bb) const
{
    auto it = nodeIndex_.find(bb);
    reproAssert(it != nodeIndex_.end(), "DomTree: foreign block");
    return it->second;
}

void
DomTree::build()
{
    const auto &blocks = func_->blocks();
    int n = static_cast<int>(blocks.size());
    for (int i = 0; i < n; ++i) {
        nodes_.push_back(blocks[i].get());
        nodeIndex_[blocks[i].get()] = i;
    }

    // Forward edges at block level.
    std::vector<std::vector<int>> succ(n + 1), pred(n + 1);
    for (int i = 0; i < n; ++i) {
        for (BasicBlock *s : blocks[i]->successors()) {
            succ[i].push_back(indexOf(s));
            pred[indexOf(s)].push_back(i);
        }
    }

    int num_nodes = n;
    if (!postDom_) {
        root_ = 0;
    } else {
        // Virtual exit node n: incoming from every block whose
        // terminator is a return.
        root_ = n;
        num_nodes = n + 1;
        for (int i = 0; i < n; ++i) {
            ir::Instruction *term = blocks[i]->terminator();
            if (term && term->is(ir::Opcode::Ret)) {
                succ[i].push_back(n);
                pred[n].push_back(i);
            }
        }
        std::swap(succ, pred); // reverse the CFG
    }

    // Reverse postorder from the root over `succ`.
    std::vector<int> order;
    std::vector<char> seen(num_nodes, 0);
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(root_, 0);
    seen[root_] = 1;
    while (!stack.empty()) {
        auto &[node, edge] = stack.back();
        if (edge < succ[node].size()) {
            int next = succ[node][edge++];
            if (!seen[next]) {
                seen[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());

    rpoNumber_.assign(num_nodes, -1);
    for (size_t i = 0; i < order.size(); ++i)
        rpoNumber_[order[i]] = static_cast<int>(i);

    idom_.assign(num_nodes, -1);
    idom_[root_] = root_;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoNumber_[a] > rpoNumber_[b])
                a = idom_[a];
            while (rpoNumber_[b] > rpoNumber_[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int node : order) {
            if (node == root_)
                continue;
            int new_idom = -1;
            for (int p : pred[node]) {
                if (idom_[p] == -1 || rpoNumber_[p] == -1)
                    continue;
                new_idom = new_idom == -1 ? p : intersect(p, new_idom);
            }
            if (new_idom != -1 && idom_[node] != new_idom) {
                idom_[node] = new_idom;
                changed = true;
            }
        }
    }

    preds_ = std::move(pred);
}

void
DomTree::buildFrontiers()
{
    int n = static_cast<int>(nodes_.size());
    frontiers_.assign(n, {});
    for (int b = 0; b < n; ++b) {
        if (preds_[b].size() < 2)
            continue;
        for (int p : preds_[b]) {
            if (idom_[p] == -1 || idom_[b] == -1)
                continue;
            int runner = p;
            while (runner != idom_[b] && runner != root_) {
                if (runner < n) {
                    auto &fr = frontiers_[runner];
                    BasicBlock *bb =
                        const_cast<BasicBlock *>(nodes_[b]);
                    if (std::find(fr.begin(), fr.end(), bb) == fr.end())
                        fr.push_back(bb);
                }
                if (idom_[runner] == -1)
                    break;
                runner = idom_[runner];
            }
        }
    }
}

BasicBlock *
DomTree::idom(const BasicBlock *bb) const
{
    int i = indexOf(bb);
    if (i == root_ || idom_[i] == -1)
        return nullptr;
    int d = idom_[i];
    if (d >= static_cast<int>(nodes_.size()))
        return nullptr; // virtual exit
    return const_cast<BasicBlock *>(nodes_[d]);
}

bool
DomTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    int ia = indexOf(a), ib = indexOf(b);
    if (idom_[ib] == -1 || rpoNumber_[ib] == -1)
        return false; // b unreachable
    int runner = ib;
    while (true) {
        if (runner == ia)
            return true;
        if (runner == root_ || idom_[runner] == -1)
            return false;
        int next = idom_[runner];
        if (next == runner)
            return runner == ia;
        runner = next;
    }
}

bool
DomTree::dominates(const Instruction *a, const Instruction *b) const
{
    if (a == b)
        return true;
    const BasicBlock *ba = a->parent();
    const BasicBlock *bb = b->parent();
    if (ba == bb) {
        int ia = ba->indexOf(a);
        int ib = bb->indexOf(b);
        return postDom_ ? ia >= ib : ia <= ib;
    }
    return postDom_ ? dominates(ba, bb) : dominates(ba, bb);
}

bool
DomTree::strictlyDominates(const Instruction *a,
                           const Instruction *b) const
{
    return a != b && dominates(a, b);
}

const std::vector<BasicBlock *> &
DomTree::frontier(const BasicBlock *bb) const
{
    return frontiers_[indexOf(bb)];
}

} // namespace repro::analysis
