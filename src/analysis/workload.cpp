#include "analysis/workload.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/function_analyses.h"
#include "ir/basic_block.h"
#include "ir/instruction.h"

namespace repro::analysis {

namespace {

using ir::Opcode;

/** Fallback trips when a loop bound cannot be derived statically. */
constexpr double kDefaultTrip = 64.0;

/** The nest: @p loop plus every loop nested inside it. */
void
collectNest(const Loop *loop, std::vector<const Loop *> &out)
{
    out.push_back(loop);
    for (const Loop *child : loop->children)
        collectNest(child, out);
}

const ir::Value *
stripCasts(const ir::Value *v)
{
    while (v && v->isInstruction()) {
        const auto *inst = static_cast<const ir::Instruction *>(v);
        if (inst->is(Opcode::SExt) || inst->is(Opcode::ZExt) ||
            inst->is(Opcode::Trunc))
            v = inst->operand(0);
        else
            break;
    }
    return v;
}

/** Header phi of @p loop reachable from @p v through casts/one add. */
const ir::Instruction *
headerPhiBehind(const ir::Value *v, const Loop *loop)
{
    v = stripCasts(v);
    if (!v || !v->isInstruction())
        return nullptr;
    const auto *inst = static_cast<const ir::Instruction *>(v);
    if (inst->is(Opcode::Phi) && inst->parent() == loop->header)
        return inst;
    // Rotated form: the comparison sees the already-incremented value.
    if (inst->is(Opcode::Add) || inst->is(Opcode::Sub)) {
        for (const ir::Value *op : inst->operands()) {
            const ir::Value *s = stripCasts(op);
            if (s && s->isInstruction()) {
                const auto *p = static_cast<const ir::Instruction *>(s);
                if (p->is(Opcode::Phi) && p->parent() == loop->header)
                    return p;
            }
        }
    }
    return nullptr;
}

/** Constant incoming value of @p phi from outside @p loop, if any. */
const ir::Constant *
constantInit(const ir::Instruction *phi, const Loop *loop)
{
    const auto &blocks = phi->incomingBlocks();
    for (size_t i = 0; i < phi->numOperands(); ++i) {
        if (i < blocks.size() && loop->contains(blocks[i]))
            continue;
        const ir::Value *v = stripCasts(phi->operand(i));
        if (v && v->isConstant())
            return static_cast<const ir::Constant *>(v);
        return nullptr;
    }
    return nullptr;
}

/**
 * Static per-entry trip estimate: a header comparison of the
 * induction phi against a constant, with a constant phi init, gives
 * bound - init; anything else defaults.
 */
double
staticTrip(const Loop *loop)
{
    const ir::Instruction *term = loop->header->terminator();
    if (!term || !term->isConditionalBranch())
        return kDefaultTrip;
    const ir::Value *cond = term->operand(0);
    if (!cond->isInstruction())
        return kDefaultTrip;
    const auto *cmp = static_cast<const ir::Instruction *>(cond);
    if (!cmp->is(Opcode::ICmp) || cmp->numOperands() != 2)
        return kDefaultTrip;
    for (int side = 0; side < 2; ++side) {
        const ir::Instruction *phi =
            headerPhiBehind(cmp->operand(side), loop);
        const ir::Value *bound = stripCasts(cmp->operand(1 - side));
        if (!phi || !bound || !bound->isConstant())
            continue;
        const ir::Constant *init = constantInit(phi, loop);
        if (!init || init->isFP())
            continue;
        const auto *b = static_cast<const ir::Constant *>(bound);
        if (b->isFP())
            continue;
        double trip = static_cast<double>(b->intValue()) -
                      static_cast<double>(init->intValue());
        if (trip < 0.0)
            trip = -trip;
        return std::max(trip, 1.0);
    }
    return kDefaultTrip;
}

/**
 * Which nest loops the address @p v depends on. Stops at nest-header
 * phis (recording the loop, then continuing through the phi's
 * out-of-loop init so e.g. a CSR inner bound rowstr[j] picks up the
 * row loop); traverses through loads into their address so
 * data-dependent subscripts like x[colidx[k]] resolve to k's loop.
 */
void
depLoops(const ir::Value *v,
         const std::map<const ir::BasicBlock *, const Loop *> &headers,
         std::set<const Loop *> &deps, std::set<const ir::Value *> &seen)
{
    if (!v || !seen.insert(v).second || !v->isInstruction())
        return;
    const auto *inst = static_cast<const ir::Instruction *>(v);
    if (inst->is(Opcode::Phi)) {
        auto it = headers.find(inst->parent());
        if (it == headers.end())
            return; // phi of some enclosing loop: out of scope
        if (!deps.insert(it->second).second)
            return;
        const auto &blocks = inst->incomingBlocks();
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            if (i < blocks.size() &&
                !it->second->contains(blocks[i]))
                depLoops(inst->operand(i), headers, deps, seen);
        }
        return;
    }
    if (inst->is(Opcode::Load)) {
        depLoops(inst->operand(0), headers, deps, seen);
        return;
    }
    for (const ir::Value *op : inst->operands())
        depLoops(op, headers, deps, seen);
}

bool
isFpArith(const ir::Instruction *inst)
{
    return inst->is(Opcode::FAdd) || inst->is(Opcode::FSub) ||
           inst->is(Opcode::FMul) || inst->is(Opcode::FDiv);
}

} // namespace

WorkloadDescriptor
estimateWorkload(const LoopInfo &loops, const Loop *loop,
                 const InstCountFn &counts)
{
    WorkloadDescriptor wd;

    std::vector<const Loop *> nest;
    collectNest(loop, nest);
    std::map<const ir::BasicBlock *, const Loop *> headers;
    for (const Loop *l : nest)
        headers[l->header] = l;

    // Dynamic header counts (0 everywhere = no profile).
    auto headerCount = [&](const Loop *l) -> double {
        const ir::Instruction *term = l->header->terminator();
        return counts && term
                   ? static_cast<double>(counts(term))
                   : 0.0;
    };
    double rootCount = headerCount(loop);
    wd.fromProfile = rootCount > 0.0;

    if (wd.fromProfile) {
        ir::BasicBlock *pre = loop->preheader();
        double entries =
            pre && pre->terminator()
                ? static_cast<double>(counts(pre->terminator()))
                : 1.0;
        wd.invocations = std::max(entries, 1.0);
    }

    // Per-entry trips of each nest loop (relative to its parent).
    std::map<const Loop *, double> trip;
    for (const Loop *l : nest) {
        if (wd.fromProfile) {
            double own = headerCount(l);
            double outer = l == loop ? wd.invocations
                                     : headerCount(l->parent);
            trip[l] = outer > 0.0 ? std::max(own / outer, 1.0) : 1.0;
        } else {
            trip[l] = staticTrip(l);
        }
    }
    wd.tripCount = trip[loop];

    // Arithmetic and traffic: exact profile sums when available,
    // otherwise block weight = product of enclosing nest trips.
    auto blockWeight = [&](const ir::BasicBlock *bb) {
        double w = 1.0;
        for (const Loop *l = loops.loopFor(bb); l;
             l = l->parent) {
            auto it = trip.find(l);
            if (it != trip.end())
                w *= it->second;
        }
        return w;
    };

    struct Access
    {
        const ir::Value *addr;
        double elemBytes;
    };
    std::vector<Access> accesses;

    for (const ir::BasicBlock *bb : loop->blocks) {
        double weight = wd.fromProfile ? 0.0 : blockWeight(bb);
        for (const auto &inst : bb->insts()) {
            double n = wd.fromProfile
                           ? static_cast<double>(counts(inst.get())) /
                                 wd.invocations
                           : weight;
            if (isFpArith(inst.get())) {
                wd.flops += n;
            } else if (inst->is(Opcode::Load)) {
                double sz = static_cast<double>(
                    inst->type()->sizeInBytes());
                wd.bytes += n * sz;
                accesses.push_back({inst->operand(0), sz});
            } else if (inst->is(Opcode::Store)) {
                double sz = static_cast<double>(
                    inst->operand(0)->type()->sizeInBytes());
                wd.bytes += n * sz;
                accesses.push_back({inst->operand(1), sz});
            }
        }
    }

    // Footprint: per distinct base pointer, the widest extent any
    // access implies — the product of the trips of the loops its
    // subscript depends on.
    std::map<const ir::Value *, double> extents;
    for (const Access &a : accesses) {
        std::set<const Loop *> deps;
        std::set<const ir::Value *> seen;
        depLoops(a.addr, headers, deps, seen);
        double elems = 1.0;
        for (const Loop *l : deps)
            elems *= trip[l];
        const ir::Value *base = basePointerOf(a.addr);
        double &slot = extents[base];
        slot = std::max(slot, elems * a.elemBytes);
    }
    for (const auto &kv : extents)
        wd.transferBytes += kv.second;

    return wd;
}

} // namespace repro::analysis
