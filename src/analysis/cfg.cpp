#include "analysis/cfg.h"

#include <deque>

namespace repro::analysis {

InstCFG::InstCFG(Function *func) : func_(func)
{
    for (const auto &bb : func->blocks()) {
        const auto &insts = bb->insts();
        for (size_t i = 0; i < insts.size(); ++i) {
            Instruction *inst = insts[i].get();
            if (i + 1 < insts.size()) {
                succ_[inst].push_back(insts[i + 1].get());
                pred_[insts[i + 1].get()].push_back(inst);
            } else {
                for (ir::BasicBlock *s : bb->successors()) {
                    if (s->empty())
                        continue;
                    succ_[inst].push_back(s->front());
                    pred_[s->front()].push_back(inst);
                }
            }
        }
    }
}

const std::vector<Instruction *> &
InstCFG::successors(const Instruction *inst) const
{
    auto it = succ_.find(inst);
    return it == succ_.end() ? empty_ : it->second;
}

const std::vector<Instruction *> &
InstCFG::predecessors(const Instruction *inst) const
{
    auto it = pred_.find(inst);
    return it == pred_.end() ? empty_ : it->second;
}

bool
InstCFG::hasEdge(const Instruction *a, const Instruction *b) const
{
    for (Instruction *s : successors(a)) {
        if (s == b)
            return true;
    }
    return false;
}

bool
InstCFG::pathExists(const Instruction *from, const Instruction *to,
                    const std::set<const Instruction *> &without) const
{
    std::deque<const Instruction *> queue;
    std::set<const Instruction *> seen;
    queue.push_back(from);
    seen.insert(from);
    while (!queue.empty()) {
        const Instruction *cur = queue.front();
        queue.pop_front();
        for (Instruction *next : successors(cur)) {
            if (next == to)
                return true;
            if (without.count(next) || !seen.insert(next).second)
                continue;
            queue.push_back(next);
        }
    }
    return false;
}

bool
dataPathExists(const Value *from, const Value *to,
               const std::set<const Value *> &without)
{
    if (from == to)
        return true;
    std::deque<const Value *> queue;
    std::set<const Value *> seen;
    queue.push_back(from);
    seen.insert(from);
    while (!queue.empty()) {
        const Value *cur = queue.front();
        queue.pop_front();
        for (Instruction *user : cur->users()) {
            if (user == to)
                return true;
            if (without.count(user) || !seen.insert(user).second)
                continue;
            queue.push_back(user);
        }
    }
    return false;
}

bool
anyFlowPathExists(const InstCFG &cfg, const Value *from, const Value *to,
                  const std::set<const Value *> &without)
{
    std::deque<const Value *> queue;
    std::set<const Value *> seen;
    queue.push_back(from);
    seen.insert(from);

    auto visit = [&](Value *next) -> bool {
        if (next == to)
            return true;
        if (without.count(next) || !seen.insert(next).second)
            return false;
        queue.push_back(next);
        return false;
    };

    while (!queue.empty()) {
        const Value *cur = queue.front();
        queue.pop_front();
        for (Instruction *user : cur->users()) {
            if (visit(user))
                return true;
        }
        if (cur->isInstruction()) {
            auto *inst = static_cast<const Instruction *>(cur);
            for (Instruction *next : cfg.successors(inst)) {
                if (visit(next))
                    return true;
            }
        }
    }
    return false;
}

} // namespace repro::analysis
