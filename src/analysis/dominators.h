/**
 * @file
 * Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
 * algorithm) with instruction-granularity queries.
 *
 * IDL evaluates control flow "on the granularity of instructions"
 * (section 3 of the paper); block-level trees are refined with
 * intra-block instruction order.
 */
#ifndef ANALYSIS_DOMINATORS_H
#define ANALYSIS_DOMINATORS_H

#include <map>
#include <vector>

#include "ir/function.h"

namespace repro::analysis {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;

/**
 * A dominator tree over the CFG of one function. With @p post_dom set,
 * the tree is computed on the reversed CFG (a virtual exit node joins
 * every returning block), yielding post-dominance.
 */
class DomTree
{
  public:
    DomTree(Function *func, bool post_dom);

    bool isPostDom() const { return postDom_; }

    /** Immediate dominator block; null for the root. */
    BasicBlock *idom(const BasicBlock *bb) const;

    /** Block-level (post-)dominance, reflexive. */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /** Instruction-level (post-)dominance, reflexive. */
    bool dominates(const Instruction *a, const Instruction *b) const;

    /** Non-reflexive variant. */
    bool strictlyDominates(const Instruction *a,
                           const Instruction *b) const;

    /** Dominance frontier of @p bb (used by mem2reg / control deps). */
    const std::vector<BasicBlock *> &frontier(const BasicBlock *bb) const;

    Function *function() const { return func_; }

  private:
    int indexOf(const BasicBlock *bb) const;
    void build();
    void buildFrontiers();

    Function *func_;
    bool postDom_;
    // Node 0..N-1 are blocks in function order; node N is the virtual
    // root used for post-dominance when several blocks return.
    std::vector<const BasicBlock *> nodes_;
    std::map<const BasicBlock *, int> nodeIndex_;
    std::vector<int> idom_;
    std::vector<std::vector<int>> preds_;
    std::vector<int> rpoNumber_;
    std::vector<std::vector<BasicBlock *>> frontiers_;
    int root_ = 0;
};

} // namespace repro::analysis

#endif // ANALYSIS_DOMINATORS_H
