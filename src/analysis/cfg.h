/**
 * @file
 * Instruction-granularity control flow graph and path queries.
 *
 * IDL has no notion of basic blocks: control flow constraints connect
 * instructions directly. This class materializes that graph once per
 * function and answers the reachability-style atomic constraints
 * ("has control flow to", "all control flow from A to B passes
 * through C").
 */
#ifndef ANALYSIS_CFG_H
#define ANALYSIS_CFG_H

#include <map>
#include <set>
#include <vector>

#include "ir/function.h"

namespace repro::analysis {

using ir::Function;
using ir::Instruction;
using ir::Value;

/** Instruction-level CFG with cached adjacency. */
class InstCFG
{
  public:
    explicit InstCFG(Function *func);

    Function *function() const { return func_; }

    const std::vector<Instruction *> &
    successors(const Instruction *inst) const;

    const std::vector<Instruction *> &
    predecessors(const Instruction *inst) const;

    /** Direct control flow edge a -> b. */
    bool hasEdge(const Instruction *a, const Instruction *b) const;

    /**
     * True if some control flow path from @p from to @p to avoids all
     * instructions in @p without (path interior and endpoints are not
     * allowed to pass through a member of @p without; the endpoints
     * themselves are exempt).
     */
    bool pathExists(const Instruction *from, const Instruction *to,
                    const std::set<const Instruction *> &without) const;

  private:
    Function *func_;
    std::map<const Instruction *, std::vector<Instruction *>> succ_;
    std::map<const Instruction *, std::vector<Instruction *>> pred_;
    std::vector<Instruction *> empty_;
};

/**
 * Data-flow path query over SSA def-use edges: does a chain of uses
 * lead from @p from to @p to without passing through any of
 * @p without?
 */
bool dataPathExists(const Value *from, const Value *to,
                    const std::set<const Value *> &without);

/**
 * Combined query over both the def-use graph and the instruction CFG
 * ("all flow ... is killed by ..." with no data/control qualifier).
 */
bool anyFlowPathExists(const InstCFG &cfg, const Value *from,
                       const Value *to,
                       const std::set<const Value *> &without);

} // namespace repro::analysis

#endif // ANALYSIS_CFG_H
