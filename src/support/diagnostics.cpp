#include "support/diagnostics.h"

#include <sstream>

namespace repro {

std::string
SourceLoc::str() const
{
    std::ostringstream os;
    os << line << ":" << column;
    return os.str();
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    switch (kind) {
      case DiagKind::Error: os << "error"; break;
      case DiagKind::Warning: os << "warning"; break;
      case DiagKind::Note: os << "note"; break;
    }
    if (loc.valid())
        os << " at " << loc.str();
    os << ": " << message;
    return os.str();
}

void
DiagEngine::error(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({DiagKind::Error, loc, msg});
    ++numErrors_;
}

void
DiagEngine::warning(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({DiagKind::Warning, loc, msg});
}

void
DiagEngine::note(SourceLoc loc, const std::string &msg)
{
    diags_.push_back({DiagKind::Note, loc, msg});
}

std::string
DiagEngine::dump() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

void
DiagEngine::clear()
{
    diags_.clear();
    numErrors_ = 0;
}

} // namespace repro
