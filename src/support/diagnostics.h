/**
 * @file
 * Diagnostics support: source locations and structured error reporting
 * shared by the MiniC frontend, the IR parser, and the IDL compiler.
 */
#ifndef SUPPORT_DIAGNOSTICS_H
#define SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace repro {

/** A line/column position inside a named source buffer. */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a reported diagnostic. */
enum class DiagKind
{
    Error,
    Warning,
    Note,
};

/** One diagnostic message attached to a source location. */
struct Diagnostic
{
    DiagKind kind = DiagKind::Error;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Accumulates diagnostics during a compilation phase.
 *
 * All front ends in this project report problems through a DiagEngine so
 * that tests can assert on structured diagnostics instead of scraping
 * stderr.
 */
class DiagEngine
{
  public:
    void error(SourceLoc loc, const std::string &msg);
    void warning(SourceLoc loc, const std::string &msg);
    void note(SourceLoc loc, const std::string &msg);

    bool hasErrors() const { return numErrors_ > 0; }
    int numErrors() const { return numErrors_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** Render every diagnostic, one per line. */
    std::string dump() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    int numErrors_ = 0;
};

/**
 * Exception thrown for conditions that indicate a bug in this library
 * rather than bad user input (gem5's panic() analogue).
 */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what)
    {}
};

/**
 * Exception thrown when user input (source text, IDL program, malformed
 * IR) cannot be processed further (gem5's fatal() analogue).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Abort with an InternalError if @p cond does not hold. */
inline void
reproAssert(bool cond, const char *msg)
{
    if (!cond)
        throw InternalError(msg);
}

} // namespace repro

#endif // SUPPORT_DIAGNOSTICS_H
