#include "support/string_utils.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace repro {

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
joinStrings(const std::vector<std::string> &parts, const std::string &sep)
{
    std::ostringstream os;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            os << sep;
        os << parts[i];
    }
    return os.str();
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
trimString(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    if (from.empty())
        return s;
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace repro
