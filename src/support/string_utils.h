/**
 * @file
 * Small string helpers used across the project.
 */
#ifndef SUPPORT_STRING_UTILS_H
#define SUPPORT_STRING_UTILS_H

#include <string>
#include <vector>

namespace repro {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> splitString(const std::string &s, char sep);

/** Join @p parts with @p sep between fields. */
std::string joinStrings(const std::vector<std::string> &parts,
                        const std::string &sep);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Strip leading and trailing whitespace. */
std::string trimString(const std::string &s);

/** Replace every occurrence of @p from in @p s with @p to. */
std::string replaceAll(std::string s, const std::string &from,
                       const std::string &to);

/** Format a double with a fixed number of decimals. */
std::string formatDouble(double v, int decimals);

} // namespace repro

#endif // SUPPORT_STRING_UTILS_H
