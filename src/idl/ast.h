/**
 * @file
 * AST of the Idiom Description Language (IDL).
 *
 * The grammar follows Figure 7 of the paper. Two documented extensions
 * support the reconstructed building-block idioms:
 *  - "{a} has data flow path to {b}" (transitive def-use reachability);
 *  - "all data flow into {out} inside {region} is killed by {list}"
 *    (kernel-function closure, the workhorse behind KernelFunction);
 *  - "[*]" inside a varlist expands to every element bound by a
 *    collect.
 */
#ifndef IDL_AST_H
#define IDL_AST_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace repro::idl {

/** An integer calculation: parameter references, literals, +/-. */
struct Calc
{
    /** Sequence of (+1|-1, term) where a term is a name or literal. */
    struct Term
    {
        int sign = 1;
        bool isName = false;
        std::string name;
        int64_t literal = 0;
    };
    std::vector<Term> terms;
};

/**
 * A variable reference: path components with optional index
 * calculations, e.g. {read[i].value} or {inner.iterator}.
 */
struct VarRef
{
    struct Component
    {
        std::string name;
        bool hasIndex = false;
        Calc index;
        bool wildcard = false; ///< "[*]" in varlists
        bool hasRange = false; ///< "[a..b]" in varlists
        Calc rangeBegin;
        Calc rangeEnd;
    };
    std::vector<Component> components;
};

/** Kinds of atomic constraints. */
enum class AtomicKind
{
    IsIntegerType,
    IsFloatType,
    IsPointerType,
    IsConstantZero,   ///< "... constant zero" suffix forms
    IsUnused,
    IsConstant,
    IsCompileTimeValue,
    IsArgument,
    IsInstruction,
    IsOpcode,         ///< payload: opcode name
    Same,
    NotSame,
    HasDataFlowTo,
    HasControlFlowTo,
    HasControlDominanceTo,
    HasDependenceEdgeTo,
    HasDataFlowPathTo, ///< extension
    IsArgumentOf,      ///< payload: argument position 1..4
    ReachesPhiFrom,
    Dominates,         ///< flags: strict / postdom / negated / kind
    AllFlowPassesThrough,
    FlowKilledBy,
    KernelClosure,     ///< extension
};

/** Flow kind qualifier on dominance / path atomics. */
enum class FlowKind
{
    Any,
    Data,
    Control,
};

struct Constraint;
using ConstraintPtr = std::unique_ptr<Constraint>;

/** One node of a constraint formula. */
struct Constraint
{
    enum class Kind
    {
        Atomic,
        Conjunction,
        Disjunction,
        Inherit,
        ForAll,
        ForSome,
        ForOne,
        If,
        Rename,  ///< also implements rebase via prefix
        Collect,
    };

    Kind kind;
    SourceLoc loc;

    // Atomic.
    AtomicKind atomic = AtomicKind::Same;
    std::vector<VarRef> vars;       ///< positional variable operands
    std::vector<std::vector<VarRef>> varLists; ///< for list atomics
    std::string opcodeName;         ///< IsOpcode
    int argPosition = 0;            ///< IsArgumentOf
    bool negated = false;           ///< Dominates "does not"
    bool strict = false;            ///< Dominates "strictly"
    bool postDom = false;           ///< "post dominates"
    FlowKind flow = FlowKind::Any;

    // Conjunction / Disjunction children; single child for wrappers.
    std::vector<ConstraintPtr> children;

    // Inherit.
    std::string inheritName;
    std::vector<std::pair<std::string, Calc>> inheritParams;

    // ForAll / ForSome / ForOne / Collect index parameter.
    std::string indexName;
    Calc rangeBegin;
    Calc rangeEnd;   ///< exclusive; also ForOne single value
    int collectMax = 16;

    // If.
    Calc ifLeft;
    Calc ifRight;

    // Rename / rebase: inner-name -> outer-name prefix map and
    // optional rebase prefix ("at {p}").
    std::vector<std::pair<VarRef, VarRef>> renames; ///< (outer, inner)
    VarRef rebasePrefix;
    bool hasRebase = false;

    explicit Constraint(Kind k) : kind(k) {}
};

/** A named, optionally parameterized idiom specification. */
struct ConstraintDef
{
    std::string name;
    /** Template parameters with default values (C++-template style). */
    std::vector<std::pair<std::string, int64_t>> params;
    ConstraintPtr body;
};

/** A parsed IDL program: an ordered set of definitions. */
struct IdlProgram
{
    std::vector<std::unique_ptr<ConstraintDef>> defs;
    std::map<std::string, ConstraintDef *> byName;

    const ConstraintDef *
    lookup(const std::string &name) const
    {
        auto it = byName.find(name);
        return it == byName.end() ? nullptr : it->second;
    }
};

} // namespace repro::idl

#endif // IDL_AST_H
