/**
 * @file
 * IDL lowering: compiles a named constraint definition into the flat
 * representation of solver/constraint.h (section 4.4 of the paper).
 */
#ifndef IDL_LOWER_H
#define IDL_LOWER_H

#include <map>
#include <string>

#include "idl/ast.h"
#include "solver/constraint.h"

namespace repro::idl {

/**
 * Lower the definition @p name from @p program. Optional @p params
 * override template parameter defaults. Throws FatalError on unknown
 * names or malformed programs.
 */
solver::ConstraintProgram
lowerIdiom(const IdlProgram &program, const std::string &name,
           const std::map<std::string, int64_t> &params = {});

} // namespace repro::idl

#endif // IDL_LOWER_H
