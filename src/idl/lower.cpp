#include "idl/lower.h"

#include <set>
#include <sstream>

#include "support/string_utils.h"

namespace repro::idl {

using solver::Node;
using solver::NodePtr;

namespace {

/** Lowering environment: template parameters and the collect marker. */
struct Env
{
    std::map<std::string, int64_t> values;
    std::set<std::string> markers; ///< collect indices -> '#'
};

/** Evaluate a calculation; returns false if it names a marker. */
bool
evalCalc(const Calc &calc, const Env &env, int64_t &out,
         const std::string &context)
{
    int64_t acc = 0;
    for (const auto &term : calc.terms) {
        int64_t v;
        if (term.isName) {
            if (env.markers.count(term.name))
                return false;
            auto it = env.values.find(term.name);
            if (it == env.values.end()) {
                throw FatalError("IDL lowering: unknown parameter '" +
                                 term.name + "' in " + context);
            }
            v = it->second;
        } else {
            v = term.literal;
        }
        acc += term.sign * v;
    }
    out = acc;
    return true;
}

/** Flatten a VarRef into a variable name string under @p env. */
std::string
flattenVar(const VarRef &ref, const Env &env)
{
    std::ostringstream os;
    for (size_t i = 0; i < ref.components.size(); ++i) {
        if (i)
            os << ".";
        const auto &comp = ref.components[i];
        os << comp.name;
        if (comp.wildcard) {
            os << "[*]";
        } else if (comp.hasIndex) {
            int64_t v;
            if (evalCalc(comp.index, env, v, comp.name)) {
                os << "[" << v << "]";
            } else {
                os << "[#]";
            }
        }
    }
    return os.str();
}

/** Flatten one varlist entry; ranges expand into several names. */
void
flattenListEntry(const VarRef &ref, const Env &env,
                 std::vector<std::string> &out)
{
    // Find a range component, if any.
    int range_at = -1;
    for (size_t i = 0; i < ref.components.size(); ++i) {
        if (ref.components[i].hasRange) {
            range_at = static_cast<int>(i);
            break;
        }
    }
    if (range_at < 0) {
        out.push_back(flattenVar(ref, env));
        return;
    }
    const auto &comp = ref.components[range_at];
    int64_t lo, hi;
    if (!evalCalc(comp.rangeBegin, env, lo, comp.name) ||
        !evalCalc(comp.rangeEnd, env, hi, comp.name)) {
        throw FatalError("IDL lowering: range bounds cannot use a "
                         "collect index");
    }
    for (int64_t k = lo; k < hi; ++k) {
        VarRef copy = ref;
        copy.components[range_at].hasRange = false;
        copy.components[range_at].hasIndex = true;
        Calc c;
        Calc::Term t;
        t.literal = k;
        c.terms.push_back(t);
        copy.components[range_at].index = c;
        out.push_back(flattenVar(copy, env));
    }
}

/**
 * Apply a rename/rebase mapping to a flattened variable name.
 *
 * Each rename pair maps an inner name (prefix) to an outer name;
 * longest inner prefix wins. Unmatched names get the rebase prefix if
 * present, otherwise stay unchanged.
 */
class NameMap
{
  public:
    NameMap(const std::vector<std::pair<VarRef, VarRef>> &renames,
            bool has_rebase, const VarRef &rebase_prefix,
            const Env &env)
    {
        for (const auto &[outer, inner] : renames)
            pairs_.emplace_back(flattenVar(inner, env),
                                flattenVar(outer, env));
        hasRebase_ = has_rebase;
        if (has_rebase)
            prefix_ = flattenVar(rebase_prefix, env);
    }

    std::string
    apply(const std::string &name) const
    {
        const std::pair<std::string, std::string> *best = nullptr;
        for (const auto &p : pairs_) {
            const std::string &inner = p.first;
            bool match =
                name == inner ||
                (name.size() > inner.size() &&
                 name.compare(0, inner.size(), inner) == 0 &&
                 (name[inner.size()] == '.' ||
                  name[inner.size()] == '['));
            if (match && (!best || inner.size() > best->first.size()))
                best = &p;
        }
        if (best)
            return best->second + name.substr(best->first.size());
        if (hasRebase_)
            return prefix_ + "." + name;
        return name;
    }

  private:
    std::vector<std::pair<std::string, std::string>> pairs_;
    bool hasRebase_ = false;
    std::string prefix_;
};

void
applyNameMap(Node &node, const NameMap &map)
{
    for (auto &v : node.vars)
        v = map.apply(v);
    for (auto &list : node.varLists) {
        for (auto &v : list)
            v = map.apply(v);
    }
    for (auto &child : node.children)
        applyNameMap(*child, map);
    if (node.collectBody)
        applyNameMap(*node.collectBody, map);
}

/** The lowering engine. */
class Lowerer
{
  public:
    explicit Lowerer(const IdlProgram &program) : program_(program) {}

    NodePtr
    lowerDef(const ConstraintDef &def, Env env, int depth)
    {
        if (depth > 32) {
            throw FatalError(
                "IDL lowering: inheritance depth exceeded (cycle?)");
        }
        return lower(*def.body, env, depth);
    }

    NodePtr
    lower(const Constraint &c, const Env &env, int depth)
    {
        switch (c.kind) {
          case Constraint::Kind::Atomic: {
            auto node = std::make_unique<Node>();
            node->kind = Node::Kind::Atomic;
            node->loc = c.loc;
            node->atomic = c.atomic;
            node->opcodeName = c.opcodeName;
            node->argPosition = c.argPosition;
            node->negated = c.negated;
            node->strict = c.strict;
            node->postDom = c.postDom;
            node->flow = c.flow;
            for (const auto &v : c.vars)
                node->vars.push_back(flattenVar(v, env));
            for (const auto &list : c.varLists) {
                std::vector<std::string> flat;
                for (const auto &v : list)
                    flattenListEntry(v, env, flat);
                node->varLists.push_back(std::move(flat));
            }
            return node;
          }
          case Constraint::Kind::Conjunction:
          case Constraint::Kind::Disjunction: {
            auto node = std::make_unique<Node>();
            node->kind = c.kind == Constraint::Kind::Conjunction
                             ? Node::Kind::And
                             : Node::Kind::Or;
            node->loc = c.loc;
            for (const auto &child : c.children)
                node->children.push_back(lower(*child, env, depth));
            return node;
          }
          case Constraint::Kind::Inherit: {
            const ConstraintDef *def = program_.lookup(c.inheritName);
            if (!def) {
                throw FatalError("IDL lowering: unknown idiom '" +
                                 c.inheritName + "'");
            }
            Env inner;
            for (const auto &[pname, pdefault] : def->params)
                inner.values[pname] = pdefault;
            for (const auto &[pname, calc] : c.inheritParams) {
                int64_t v;
                if (!evalCalc(calc, env, v, c.inheritName)) {
                    throw FatalError("IDL lowering: collect index in "
                                     "inherit parameter");
                }
                inner.values[pname] = v;
            }
            // Collect markers remain visible inside inherited
            // definitions so that "at {read[i]}" works under collect.
            inner.markers = env.markers;
            return lowerDef(*def, inner, depth + 1);
          }
          case Constraint::Kind::ForAll:
          case Constraint::Kind::ForSome: {
            int64_t lo, hi;
            if (!evalCalc(c.rangeBegin, env, lo, "range") ||
                !evalCalc(c.rangeEnd, env, hi, "range")) {
                throw FatalError(
                    "IDL lowering: collect index in range bounds");
            }
            auto node = std::make_unique<Node>();
            node->kind = c.kind == Constraint::Kind::ForAll
                             ? Node::Kind::And
                             : Node::Kind::Or;
            node->loc = c.loc;
            for (int64_t i = lo; i < hi; ++i) {
                Env inner = env;
                inner.values[c.indexName] = i;
                inner.markers.erase(c.indexName);
                node->children.push_back(
                    lower(*c.children[0], inner, depth));
            }
            return node;
          }
          case Constraint::Kind::ForOne: {
            int64_t v;
            if (!evalCalc(c.rangeEnd, env, v, "for")) {
                throw FatalError(
                    "IDL lowering: collect index in 'for' binding");
            }
            Env inner = env;
            inner.values[c.indexName] = v;
            inner.markers.erase(c.indexName);
            return lower(*c.children[0], inner, depth);
          }
          case Constraint::Kind::If: {
            int64_t l, r;
            if (!evalCalc(c.ifLeft, env, l, "if") ||
                !evalCalc(c.ifRight, env, r, "if")) {
                throw FatalError(
                    "IDL lowering: collect index in 'if' condition");
            }
            return lower(*c.children[l == r ? 0 : 1], env, depth);
          }
          case Constraint::Kind::Rename: {
            NodePtr inner = lower(*c.children[0], env, depth);
            NameMap map(c.renames, c.hasRebase, c.rebasePrefix, env);
            applyNameMap(*inner, map);
            return inner;
          }
          case Constraint::Kind::Collect: {
            auto node = std::make_unique<Node>();
            node->kind = Node::Kind::Collect;
            node->loc = c.loc;
            node->collectMax = c.collectMax;
            Env inner = env;
            inner.values.erase(c.indexName);
            inner.markers.insert(c.indexName);
            node->collectBody = lower(*c.children[0], inner, depth);
            return node;
          }
        }
        throw FatalError("IDL lowering: unhandled node");
    }

  private:
    const IdlProgram &program_;
};

} // namespace

solver::ConstraintProgram
lowerIdiom(const IdlProgram &program, const std::string &name,
           const std::map<std::string, int64_t> &params)
{
    const ConstraintDef *def = program.lookup(name);
    if (!def)
        throw FatalError("IDL lowering: unknown idiom '" + name + "'");
    Env env;
    for (const auto &[pname, pdefault] : def->params)
        env.values[pname] = pdefault;
    for (const auto &[pname, value] : params)
        env.values[pname] = value;
    Lowerer lowerer(program);
    solver::ConstraintProgram out;
    out.name = name;
    out.root = lowerer.lowerDef(*def, env, 0);
    return out;
}

} // namespace repro::idl
