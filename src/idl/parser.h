/**
 * @file
 * Parser for the Idiom Description Language (grammar of Figure 7).
 */
#ifndef IDL_PARSER_H
#define IDL_PARSER_H

#include <memory>
#include <string>

#include "idl/ast.h"

namespace repro::idl {

/**
 * Parse an IDL source buffer (one or more "Constraint ... End"
 * definitions). Definitions may inherit from earlier ones; resolution
 * happens at lowering time.
 */
std::unique_ptr<IdlProgram> parseIdl(const std::string &source,
                                     DiagEngine &diags);

/** Throwing wrapper for embedded, known-good library sources. */
std::unique_ptr<IdlProgram> parseIdlOrDie(const std::string &source);

/** Parse and append definitions into an existing program. */
bool parseIdlInto(const std::string &source, IdlProgram &program,
                  DiagEngine &diags);

} // namespace repro::idl

#endif // IDL_PARSER_H
