#include "idl/parser.h"

#include <cctype>
#include <map>

#include "support/string_utils.h"

namespace repro::idl {

namespace {

/** Token kinds of IDL. */
enum class IdlTok
{
    End,
    Word,   ///< keyword-ish identifier
    Var,    ///< brace-enclosed variable or variable list
    Number,
    Punct,  ///< ( ) = , ..
};

struct Token
{
    IdlTok kind = IdlTok::End;
    std::string text;
    SourceLoc loc;
};

std::vector<Token>
lex(const std::string &source, DiagEngine &diags)
{
    std::vector<Token> out;
    size_t pos = 0;
    int line = 1, col = 1;
    auto advance = [&](size_t n) {
        for (size_t i = 0; i < n && pos < source.size(); ++i) {
            if (source[pos] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
            ++pos;
        }
    };
    while (pos < source.size()) {
        char c = source[pos];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        if (c == '#') {
            while (pos < source.size() && source[pos] != '\n')
                advance(1);
            continue;
        }
        SourceLoc loc{line, col};
        if (c == '{') {
            // Scan for the closing '}' ourselves (a naive find('}')
            // would swallow a nested '{' into the variable name and
            // lose its position). advance() keeps line/col exact even
            // when the brace variable spans multiple lines.
            advance(1); // consume '{'
            size_t start = pos;
            while (pos < source.size() && source[pos] != '}' &&
                   source[pos] != '{') {
                advance(1);
            }
            if (pos >= source.size()) {
                diags.error(loc,
                            "unterminated '{' variable in IDL source "
                            "(opened at " + loc.str() + ")");
                continue;
            }
            if (source[pos] == '{') {
                diags.error(
                    SourceLoc{line, col},
                    "nested '{' inside the brace variable opened at " +
                        loc.str());
                // Recover by re-lexing from the nested brace: it
                // starts a fresh variable token, so one malformed
                // brace yields one diagnostic, not a cascade.
                continue;
            }
            out.push_back({IdlTok::Var,
                           source.substr(start, pos - start), loc});
            advance(1); // consume '}'
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos;
            while (pos < source.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(source[pos])) ||
                    source[pos] == '_')) {
                advance(1);
            }
            out.push_back({IdlTok::Word,
                           source.substr(start, pos - start), loc});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = pos;
            while (pos < source.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(source[pos]))) {
                advance(1);
            }
            out.push_back({IdlTok::Number,
                           source.substr(start, pos - start), loc});
            continue;
        }
        if (source.compare(pos, 2, "..") == 0) {
            out.push_back({IdlTok::Punct, "..", loc});
            advance(2);
            continue;
        }
        if (c == '(' || c == ')' || c == '=' || c == ',' || c == '+' ||
            c == '-') {
            out.push_back({IdlTok::Punct, std::string(1, c), loc});
            advance(1);
            continue;
        }
        diags.error(loc, std::string("unexpected character '") + c +
                             "' in IDL source");
        advance(1);
    }
    out.push_back({IdlTok::End, "", {line, col}});
    return out;
}

/** Parse a calculation expression from a raw string, e.g. "N-1". */
Calc
parseCalcText(const std::string &text, SourceLoc loc, DiagEngine &diags)
{
    Calc calc;
    size_t pos = 0;
    int sign = 1;
    bool expect_term = true;
    auto skip = [&]() {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    };
    while (true) {
        skip();
        if (pos >= text.size())
            break;
        char c = text[pos];
        if (!expect_term && (c == '+' || c == '-')) {
            sign = c == '+' ? 1 : -1;
            ++pos;
            expect_term = true;
            continue;
        }
        Calc::Term term;
        term.sign = sign;
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = pos;
            while (pos < text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
            term.literal = std::stoll(text.substr(start, pos - start));
        } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_') {
            size_t start = pos;
            while (pos < text.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(text[pos])) ||
                    text[pos] == '_')) {
                ++pos;
            }
            term.isName = true;
            term.name = text.substr(start, pos - start);
        } else {
            diags.error(loc, "bad calculation '" + text + "'");
            break;
        }
        calc.terms.push_back(term);
        sign = 1;
        expect_term = false;
    }
    if (calc.terms.empty()) {
        Calc::Term zero;
        calc.terms.push_back(zero);
    }
    return calc;
}

/** Parse a variable path like "read[i].value" or "x[0..n]". */
VarRef
parseVarText(const std::string &text, SourceLoc loc, DiagEngine &diags)
{
    VarRef ref;
    size_t pos = 0;
    while (pos < text.size()) {
        VarRef::Component comp;
        size_t start = pos;
        while (pos < text.size() && text[pos] != '.' &&
               text[pos] != '[') {
            ++pos;
        }
        comp.name = trimString(text.substr(start, pos - start));
        while (pos < text.size() && text[pos] == '[') {
            size_t close = text.find(']', pos);
            if (close == std::string::npos) {
                diags.error(loc, "unbalanced '[' in variable '" + text +
                                     "'");
                return ref;
            }
            std::string inner =
                trimString(text.substr(pos + 1, close - pos - 1));
            if (inner == "*") {
                comp.wildcard = true;
            } else if (inner.find("..") != std::string::npos) {
                size_t dots = inner.find("..");
                comp.hasRange = true;
                comp.rangeBegin = parseCalcText(inner.substr(0, dots),
                                                loc, diags);
                comp.rangeEnd = parseCalcText(inner.substr(dots + 2),
                                              loc, diags);
            } else {
                comp.hasIndex = true;
                comp.index = parseCalcText(inner, loc, diags);
            }
            pos = close + 1;
            // Only one bracket group per component is used by the
            // library; further brackets start a fresh component.
            break;
        }
        ref.components.push_back(comp);
        if (pos < text.size() && text[pos] == '.')
            ++pos;
    }
    return ref;
}

/** Split a brace token on top-level commas (variable lists). */
std::vector<VarRef>
parseVarListText(const std::string &text, SourceLoc loc,
                 DiagEngine &diags)
{
    std::vector<VarRef> out;
    for (const std::string &piece : splitString(text, ',')) {
        std::string t = trimString(piece);
        if (!t.empty())
            out.push_back(parseVarText(t, loc, diags));
    }
    return out;
}

/** The recursive-descent IDL parser. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagEngine &diags)
        : tokens_(std::move(tokens)), diags_(diags)
    {}

    bool
    parseInto(IdlProgram &program)
    {
        try {
            while (!peek().text.empty() || peek().kind != IdlTok::End) {
                if (peek().kind == IdlTok::End)
                    break;
                parseDefinition(program);
            }
        } catch (const FatalError &) {
            return false;
        }
        return !diags_.hasErrors();
    }

  private:
    const Token &peek(int ahead = 0) const
    {
        size_t i = pos_ + static_cast<size_t>(ahead);
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    Token
    next()
    {
        Token t = peek();
        if (pos_ < tokens_.size() - 1)
            ++pos_;
        return t;
    }

    bool
    acceptWord(const std::string &w)
    {
        if (peek().kind == IdlTok::Word && peek().text == w) {
            next();
            return true;
        }
        return false;
    }

    bool
    acceptPunct(const std::string &p)
    {
        if (peek().kind == IdlTok::Punct && peek().text == p) {
            next();
            return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const std::string &msg)
    {
        diags_.error(peek().loc, msg + " (near '" + peek().text + "')");
        throw FatalError("IDL parse error");
    }

    void
    expectWord(const std::string &w)
    {
        if (!acceptWord(w))
            fail("expected '" + w + "'");
    }

    void
    expectPunct(const std::string &p)
    {
        if (!acceptPunct(p))
            fail("expected '" + p + "'");
    }

    VarRef
    expectVar()
    {
        if (peek().kind != IdlTok::Var)
            fail("expected a {variable}");
        Token t = next();
        return parseVarText(t.text, t.loc, diags_);
    }

    std::vector<VarRef>
    expectVarList()
    {
        if (peek().kind != IdlTok::Var)
            fail("expected a {variable list}");
        Token t = next();
        return parseVarListText(t.text, t.loc, diags_);
    }

    Calc
    parseCalc()
    {
        // Calculations in token position: name/number with +/- chains.
        std::string text;
        bool expect_term = true;
        while (true) {
            const Token &t = peek();
            if (expect_term &&
                (t.kind == IdlTok::Word || t.kind == IdlTok::Number)) {
                text += t.text;
                next();
                expect_term = false;
                continue;
            }
            if (!expect_term && t.kind == IdlTok::Punct &&
                (t.text == "+" || t.text == "-")) {
                text += t.text;
                next();
                expect_term = true;
                continue;
            }
            break;
        }
        if (text.empty())
            fail("expected a calculation");
        return parseCalcText(text, peek().loc, diags_);
    }

    void
    parseDefinition(IdlProgram &program)
    {
        expectWord("Constraint");
        if (peek().kind != IdlTok::Word)
            fail("expected constraint name");
        auto def = std::make_unique<ConstraintDef>();
        def->name = next().text;
        // A '(' right after the name is a parameter list only when it
        // looks like "Word =", "Word ," or "Word )"; otherwise it
        // opens the constraint body.
        bool has_params =
            peek().kind == IdlTok::Punct && peek().text == "(" &&
            peek(1).kind == IdlTok::Word &&
            peek(2).kind == IdlTok::Punct &&
            (peek(2).text == "=" || peek(2).text == "," ||
             peek(2).text == ")");
        if (has_params && acceptPunct("(")) {
            do {
                if (peek().kind != IdlTok::Word)
                    fail("expected parameter name");
                std::string pname = next().text;
                int64_t defval = 0;
                if (acceptPunct("=")) {
                    if (peek().kind != IdlTok::Number)
                        fail("expected parameter default");
                    defval = std::stoll(next().text);
                }
                def->params.emplace_back(pname, defval);
            } while (acceptPunct(","));
            expectPunct(")");
        }
        def->body = parseConstraint();
        expectWord("End");
        program.byName[def->name] = def.get();
        program.defs.push_back(std::move(def));
    }

    ConstraintPtr
    parseConstraint()
    {
        ConstraintPtr c = parsePrimary();
        // Postfix chain: for all / for some / for / with / at.
        while (true) {
            if (peek().kind == IdlTok::Word && peek().text == "for") {
                next();
                if (acceptWord("all")) {
                    c = parseRangeWrap(Constraint::Kind::ForAll,
                                       std::move(c));
                } else if (acceptWord("some")) {
                    c = parseRangeWrap(Constraint::Kind::ForSome,
                                       std::move(c));
                } else {
                    // forone: for s = calc
                    auto node = std::make_unique<Constraint>(
                        Constraint::Kind::ForOne);
                    node->loc = peek().loc;
                    if (peek().kind != IdlTok::Word)
                        fail("expected index name after 'for'");
                    node->indexName = next().text;
                    expectPunct("=");
                    node->rangeEnd = parseCalc();
                    node->children.push_back(std::move(c));
                    c = std::move(node);
                }
                continue;
            }
            if (peek().kind == IdlTok::Word &&
                (peek().text == "with" || peek().text == "at")) {
                auto node = std::make_unique<Constraint>(
                    Constraint::Kind::Rename);
                node->loc = peek().loc;
                if (acceptWord("with")) {
                    while (true) {
                        VarRef outer = expectVar();
                        expectWord("as");
                        VarRef inner = expectVar();
                        node->renames.emplace_back(outer, inner);
                        // Continue only on "and {var} as".
                        if (peek().kind == IdlTok::Word &&
                            peek().text == "and" &&
                            peek(1).kind == IdlTok::Var &&
                            peek(2).kind == IdlTok::Word &&
                            peek(2).text == "as") {
                            next(); // and
                            continue;
                        }
                        break;
                    }
                }
                if (acceptWord("at")) {
                    node->hasRebase = true;
                    node->rebasePrefix = expectVar();
                }
                if (node->renames.empty() && !node->hasRebase)
                    fail("expected rename pairs or 'at'");
                node->children.push_back(std::move(c));
                c = std::move(node);
                continue;
            }
            break;
        }
        return c;
    }

    ConstraintPtr
    parseRangeWrap(Constraint::Kind kind, ConstraintPtr inner)
    {
        auto node = std::make_unique<Constraint>(kind);
        node->loc = peek().loc;
        if (peek().kind != IdlTok::Word)
            fail("expected index name");
        node->indexName = next().text;
        expectPunct("=");
        node->rangeBegin = parseCalc();
        expectPunct("..");
        node->rangeEnd = parseCalc();
        node->children.push_back(std::move(inner));
        return node;
    }

    ConstraintPtr
    parsePrimary()
    {
        const Token &t = peek();
        if (t.kind == IdlTok::Punct && t.text == "(") {
            next();
            std::vector<ConstraintPtr> items;
            items.push_back(parseConstraint());
            bool is_or = false, is_and = false;
            while (true) {
                if (acceptWord("and")) {
                    is_and = true;
                } else if (acceptWord("or")) {
                    is_or = true;
                } else {
                    break;
                }
                items.push_back(parseConstraint());
            }
            expectPunct(")");
            if (is_and && is_or)
                fail("mixed and/or without parentheses");
            if (items.size() == 1)
                return std::move(items[0]);
            auto node = std::make_unique<Constraint>(
                is_or ? Constraint::Kind::Disjunction
                      : Constraint::Kind::Conjunction);
            node->loc = t.loc;
            node->children = std::move(items);
            return node;
        }
        if (t.kind == IdlTok::Word && t.text == "inherits") {
            next();
            auto node =
                std::make_unique<Constraint>(Constraint::Kind::Inherit);
            node->loc = t.loc;
            if (peek().kind != IdlTok::Word)
                fail("expected constraint name after 'inherits'");
            node->inheritName = next().text;
            if (acceptPunct("(")) {
                do {
                    if (peek().kind != IdlTok::Word)
                        fail("expected parameter name");
                    std::string pname = next().text;
                    expectPunct("=");
                    node->inheritParams.emplace_back(pname,
                                                     parseCalc());
                } while (acceptPunct(","));
                expectPunct(")");
            }
            return node;
        }
        if (t.kind == IdlTok::Word && t.text == "collect") {
            next();
            auto node =
                std::make_unique<Constraint>(Constraint::Kind::Collect);
            node->loc = t.loc;
            if (peek().kind != IdlTok::Word)
                fail("expected index name after 'collect'");
            node->indexName = next().text;
            if (peek().kind == IdlTok::Number)
                node->collectMax = std::stoi(next().text);
            node->children.push_back(parseConstraint());
            return node;
        }
        if (t.kind == IdlTok::Word && t.text == "if") {
            next();
            auto node =
                std::make_unique<Constraint>(Constraint::Kind::If);
            node->loc = t.loc;
            node->ifLeft = parseCalc();
            expectPunct("=");
            node->ifRight = parseCalc();
            expectWord("then");
            node->children.push_back(parseConstraint());
            expectWord("else");
            node->children.push_back(parseConstraint());
            expectWord("endif");
            return node;
        }
        if (t.kind == IdlTok::Word && t.text == "all") {
            return parseAllAtomic();
        }
        if (t.kind == IdlTok::Var) {
            return parseVarAtomic();
        }
        fail("expected a constraint");
    }

    ConstraintPtr
    makeAtomic(AtomicKind kind)
    {
        auto node = std::make_unique<Constraint>(Constraint::Kind::Atomic);
        node->loc = peek().loc;
        node->atomic = kind;
        return node;
    }

    ConstraintPtr
    parseAllAtomic()
    {
        expectWord("all");
        FlowKind flow = FlowKind::Any;
        if (acceptWord("data"))
            flow = FlowKind::Data;
        else if (acceptWord("control"))
            flow = FlowKind::Control;
        expectWord("flow");
        if (acceptWord("into")) {
            // Extension: all data flow into {out} inside {region}
            // is killed by {list}.
            auto node = makeAtomic(AtomicKind::KernelClosure);
            node->flow = flow;
            node->vars.push_back(expectVar());
            expectWord("inside");
            node->vars.push_back(expectVar());
            expectWord("is");
            expectWord("killed");
            expectWord("by");
            node->varLists.push_back(expectVarList());
            return node;
        }
        expectWord("from");
        if (peek().kind != IdlTok::Var)
            fail("expected variable (list)");
        Token from_tok = next();
        auto from_list =
            parseVarListText(from_tok.text, from_tok.loc, diags_);
        expectWord("to");
        Token to_tok = next();
        auto to_list = parseVarListText(to_tok.text, to_tok.loc, diags_);
        if (acceptWord("passes")) {
            expectWord("through");
            auto node = makeAtomic(AtomicKind::AllFlowPassesThrough);
            node->flow = flow;
            if (from_list.size() != 1 || to_list.size() != 1)
                fail("passes-through expects single variables");
            node->vars.push_back(from_list[0]);
            node->vars.push_back(to_list[0]);
            node->vars.push_back(expectVar());
            return node;
        }
        expectWord("is");
        expectWord("killed");
        expectWord("by");
        auto node = makeAtomic(AtomicKind::FlowKilledBy);
        node->flow = flow;
        node->varLists.push_back(std::move(from_list));
        node->varLists.push_back(std::move(to_list));
        node->varLists.push_back(expectVarList());
        return node;
    }

    ConstraintPtr
    parseVarAtomic()
    {
        VarRef subject = expectVar();
        if (acceptWord("is")) {
            return parseIsAtomic(subject);
        }
        if (acceptWord("has")) {
            AtomicKind kind;
            if (acceptWord("data")) {
                expectWord("flow");
                if (acceptWord("path")) {
                    kind = AtomicKind::HasDataFlowPathTo;
                } else {
                    kind = AtomicKind::HasDataFlowTo;
                }
            } else if (acceptWord("control")) {
                if (acceptWord("dominance")) {
                    kind = AtomicKind::HasControlDominanceTo;
                } else {
                    expectWord("flow");
                    kind = AtomicKind::HasControlFlowTo;
                }
            } else if (acceptWord("dependence")) {
                expectWord("edge");
                kind = AtomicKind::HasDependenceEdgeTo;
            } else {
                fail("expected flow kind after 'has'");
            }
            expectWord("to");
            auto node = makeAtomic(kind);
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            return node;
        }
        if (acceptWord("reaches")) {
            expectWord("phi");
            expectWord("node");
            auto node = makeAtomic(AtomicKind::ReachesPhiFrom);
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            expectWord("from");
            node->vars.push_back(expectVar());
            return node;
        }
        // Dominance family (optionally negated / strict / kinded).
        bool negated = false, strict = false, post = false;
        FlowKind flow = FlowKind::Any;
        if (acceptWord("does")) {
            expectWord("not");
            negated = true;
        }
        if (acceptWord("strictly"))
            strict = true;
        if (acceptWord("data")) {
            expectWord("flow");
            flow = FlowKind::Data;
        } else if (acceptWord("control")) {
            expectWord("flow");
            flow = FlowKind::Control;
        }
        if (acceptWord("post"))
            post = true;
        if (acceptWord("dominates")) {
            auto node = makeAtomic(AtomicKind::Dominates);
            node->negated = negated;
            node->strict = strict;
            node->postDom = post;
            node->flow = flow;
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            return node;
        }
        fail("expected an atomic constraint");
    }

    ConstraintPtr
    parseIsAtomic(const VarRef &subject)
    {
        // {x} is not the same as {y}
        if (acceptWord("not")) {
            expectWord("the");
            expectWord("same");
            expectWord("as");
            auto node = makeAtomic(AtomicKind::NotSame);
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            return node;
        }
        if (acceptWord("the")) {
            expectWord("same");
            expectWord("as");
            auto node = makeAtomic(AtomicKind::Same);
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            return node;
        }
        static const std::map<std::string, int> positions = {
            {"first", 1}, {"second", 2}, {"third", 3}, {"fourth", 4}};
        if (peek().kind == IdlTok::Word &&
            positions.count(peek().text)) {
            int position = positions.at(next().text);
            expectWord("argument");
            expectWord("of");
            auto node = makeAtomic(AtomicKind::IsArgumentOf);
            node->argPosition = position;
            node->vars.push_back(subject);
            node->vars.push_back(expectVar());
            return node;
        }
        if (acceptWord("a")) {
            if (acceptWord("constant")) {
                auto node = makeAtomic(AtomicKind::IsConstant);
                node->vars.push_back(subject);
                return node;
            }
            expectWord("compile");
            expectWord("time");
            expectWord("value");
            auto node = makeAtomic(AtomicKind::IsCompileTimeValue);
            node->vars.push_back(subject);
            return node;
        }
        if (acceptWord("an")) {
            if (acceptWord("argument")) {
                auto node = makeAtomic(AtomicKind::IsArgument);
                node->vars.push_back(subject);
                return node;
            }
            expectWord("instruction");
            auto node = makeAtomic(AtomicKind::IsInstruction);
            node->vars.push_back(subject);
            return node;
        }
        if (acceptWord("unused")) {
            auto node = makeAtomic(AtomicKind::IsUnused);
            node->vars.push_back(subject);
            return node;
        }
        static const std::map<std::string, AtomicKind> typeAtoms = {
            {"integer", AtomicKind::IsIntegerType},
            {"float", AtomicKind::IsFloatType},
            {"pointer", AtomicKind::IsPointerType},
        };
        if (peek().kind == IdlTok::Word && typeAtoms.count(peek().text)) {
            // Could still be an opcode like "fadd"; type words are not
            // opcodes, so this is unambiguous.
            AtomicKind kind = typeAtoms.at(next().text);
            bool zero = false;
            if (acceptWord("constant")) {
                expectWord("zero");
                zero = true;
            }
            auto node = makeAtomic(zero ? AtomicKind::IsConstantZero
                                        : kind);
            if (zero) {
                // Remember the base type through the flow field; the
                // evaluator only needs "is it the right zero".
                node->opcodeName =
                    kind == AtomicKind::IsIntegerType ? "integer"
                    : kind == AtomicKind::IsFloatType ? "float"
                                                      : "pointer";
            }
            node->vars.push_back(subject);
            return node;
        }
        // "{x} is <opcode> instruction".
        if (peek().kind != IdlTok::Word)
            fail("expected opcode name");
        std::string opcode = next().text;
        expectWord("instruction");
        auto node = makeAtomic(AtomicKind::IsOpcode);
        node->opcodeName = opcode;
        node->vars.push_back(subject);
        return node;
    }

    std::vector<Token> tokens_;
    DiagEngine &diags_;
    size_t pos_ = 0;
};

} // namespace

std::unique_ptr<IdlProgram>
parseIdl(const std::string &source, DiagEngine &diags)
{
    auto program = std::make_unique<IdlProgram>();
    if (!parseIdlInto(source, *program, diags))
        return nullptr;
    return program;
}

bool
parseIdlInto(const std::string &source, IdlProgram &program,
             DiagEngine &diags)
{
    std::vector<Token> tokens = lex(source, diags);
    if (diags.hasErrors())
        return false;
    Parser parser(std::move(tokens), diags);
    return parser.parseInto(program);
}

std::unique_ptr<IdlProgram>
parseIdlOrDie(const std::string &source)
{
    DiagEngine diags;
    auto program = parseIdl(source, diags);
    if (!program)
        throw FatalError("IDL parse failed:\n" + diags.dump());
    return program;
}

} // namespace repro::idl
