#include "idl/check.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "idl/lower.h"
#include "solver/compiled.h"
#include "solver/constraint.h"

namespace repro::idl {

std::string
CheckDiag::str() const
{
    std::ostringstream os;
    os << "rule=" << rule << " idiom=" << idiom;
    if (loc.valid())
        os << " line=" << loc.line << " col=" << loc.column;
    os << ": " << message;
    return os.str();
}

bool
CheckReport::ok() const
{
    return errorCount() == 0;
}

size_t
CheckReport::errorCount() const
{
    size_t n = 0;
    for (const auto &d : diags) {
        if (d.severity == CheckSeverity::Error)
            ++n;
    }
    return n;
}

size_t
CheckReport::warningCount() const
{
    return diags.size() - errorCount();
}

bool
CheckReport::hasRule(const std::string &rule) const
{
    for (const auto &d : diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

std::string
CheckReport::str() const
{
    std::ostringstream os;
    for (const auto &d : diags)
        os << d.str() << "\n";
    return os.str();
}

namespace {

void
emit(CheckReport &report, const std::string &rule, CheckSeverity sev,
     const std::string &idiom, SourceLoc loc, const std::string &msg)
{
    CheckDiag d;
    d.rule = rule;
    d.severity = sev;
    d.idiom = idiom;
    d.loc = loc;
    d.message = msg;
    report.diags.push_back(std::move(d));
}

// --------------------------------------------------------- AST layer

/** AST checks over one definition: name payloads that the solver would
 *  otherwise resolve lazily (and silently) at solve time. */
void
checkAst(const IdlProgram &program, const ConstraintDef &def,
         const Constraint &c, CheckReport &report)
{
    if (c.kind == Constraint::Kind::Atomic &&
        c.atomic == AtomicKind::IsOpcode &&
        !solver::knownOpcodeName(c.opcodeName)) {
        emit(report, "unknown-opcode", CheckSeverity::Error, def.name,
             c.loc,
             "unknown opcode '" + c.opcodeName +
                 "' in 'is ... instruction' atomic; this constraint "
                 "can never match");
    }
    if (c.kind == Constraint::Kind::Inherit) {
        const ConstraintDef *target = program.lookup(c.inheritName);
        if (!target) {
            emit(report, "unknown-idiom", CheckSeverity::Error,
                 def.name, c.loc,
                 "inherit of undefined constraint '" + c.inheritName +
                     "'");
        } else {
            for (const auto &[pname, calc] : c.inheritParams) {
                (void)calc;
                bool declared = std::any_of(
                    target->params.begin(), target->params.end(),
                    [&](const auto &p) { return p.first == pname; });
                if (!declared) {
                    emit(report, "unknown-param",
                         CheckSeverity::Warning, def.name, c.loc,
                         "inherit parameter '" + pname +
                             "' is not declared by '" +
                             c.inheritName + "'");
                }
            }
        }
    }
    for (const auto &child : c.children)
        checkAst(program, def, *child, report);
}

// ----------------------------------------------------- lowered layer

/** Collapse every index form — "[3]", "[#]", "[*]" — to "[]" so that
 *  collect families and their expansions unify for binding analysis. */
std::string
normalizeVar(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (size_t i = 0; i < name.size(); ++i) {
        if (name[i] == '[') {
            out += "[]";
            while (i < name.size() && name[i] != ']')
                ++i;
        } else {
            out += name[i];
        }
    }
    return out;
}

bool
containsMarker(const solver::Node &node)
{
    for (const auto &v : node.vars) {
        if (v.find("[#]") != std::string::npos)
            return true;
    }
    for (const auto &list : node.varLists) {
        for (const auto &v : list) {
            if (v.find("[#]") != std::string::npos)
                return true;
        }
    }
    for (const auto &child : node.children) {
        if (containsMarker(*child))
            return true;
    }
    return node.collectBody && containsMarker(*node.collectBody);
}

/** Structural signature for duplicate-atomic detection. */
std::string
atomSignature(const solver::Node &node)
{
    std::ostringstream os;
    os << static_cast<int>(node.atomic) << "|" << node.opcodeName
       << "|" << node.argPosition << "|" << node.negated
       << node.strict << node.postDom << static_cast<int>(node.flow);
    for (const auto &v : node.vars)
        os << "|" << v;
    for (const auto &list : node.varLists) {
        os << "|L";
        for (const auto &v : list)
            os << "," << v;
    }
    return os.str();
}

/** Semantic checks over the lowered tree of one solved root idiom. */
class LoweredChecker
{
  public:
    LoweredChecker(const std::string &idiom, CheckReport &report,
                   const std::set<std::string> &exports)
        : idiom_(idiom), report_(report), exports_(exports)
    {}

    void
    run(const solver::Node &root)
    {
        gather(root, false);
        for (const auto &[node, in_collect] : atoms_)
            checkAtom(*node, in_collect);
        checkBindings();
    }

  private:
    void
    error(const std::string &rule, SourceLoc loc,
          const std::string &msg)
    {
        emit(report_, rule, CheckSeverity::Error, idiom_, loc, msg);
    }

    void
    warning(const std::string &rule, SourceLoc loc,
            const std::string &msg)
    {
        emit(report_, rule, CheckSeverity::Warning, idiom_, loc, msg);
    }

    void
    gather(const solver::Node &node, bool in_collect)
    {
        switch (node.kind) {
          case solver::Node::Kind::Atomic:
            atoms_.emplace_back(&node, in_collect);
            return;
          case solver::Node::Kind::And: {
            std::map<std::string, const solver::Node *> seen;
            for (const auto &child : node.children) {
                if (child->kind == solver::Node::Kind::Atomic) {
                    auto [it, inserted] = seen.emplace(
                        atomSignature(*child), child.get());
                    if (!inserted) {
                        warning("duplicate-atomic", child->loc,
                                "atomic repeats an identical sibling "
                                "constraint");
                    }
                }
                gather(*child, in_collect);
            }
            return;
          }
          case solver::Node::Kind::Or:
            for (const auto &child : node.children)
                gather(*child, in_collect);
            return;
          case solver::Node::Kind::Collect:
            if (!node.collectBody ||
                !containsMarker(*node.collectBody)) {
                error("collect-no-marker", node.loc,
                      "collect body never uses its index; the "
                      "collection is degenerate");
            }
            if (node.collectBody)
                gather(*node.collectBody, true);
            return;
        }
    }

    void
    checkAtom(const solver::Node &node, bool in_collect)
    {
        for (const auto &v : node.vars) {
            if (v.find("[*]") != std::string::npos) {
                error("wildcard-misplaced", node.loc,
                      "'[*]' in positional operand '" + v +
                          "'; wildcards are only valid inside "
                          "variable lists");
            }
            if (!in_collect && v.find("[#]") != std::string::npos) {
                error("marker-outside-collect", node.loc,
                      "collect index template in '" + v +
                          "' outside any collect body");
            }
        }
        if (!in_collect) {
            for (const auto &list : node.varLists) {
                for (const auto &v : list) {
                    if (v.find("[#]") != std::string::npos) {
                        error("marker-outside-collect", node.loc,
                              "collect index template in '" + v +
                                  "' outside any collect body");
                    }
                }
            }
        }
        // Trivially-decided atomics over a variable and itself.
        if (node.vars.size() >= 2 && node.vars[0] == node.vars[1]) {
            if (node.atomic == AtomicKind::NotSame) {
                error("unsat-atomic", node.loc,
                      "'{" + node.vars[0] +
                          "} is not the same as' itself can never "
                          "hold");
            } else if (node.atomic == AtomicKind::Same) {
                warning("trivial-atomic", node.loc,
                        "'{" + node.vars[0] +
                            "} is the same as' itself always holds");
            } else if (node.atomic == AtomicKind::Dominates &&
                       node.flow == FlowKind::Any) {
                // Plain dominance is reflexive: strict self-dominance
                // is false, negated non-strict self-dominance too.
                if (node.strict && !node.negated) {
                    error("unsat-atomic", node.loc,
                          "'{" + node.vars[0] +
                              "}' cannot strictly dominate itself");
                } else if (!node.strict && node.negated) {
                    error("unsat-atomic", node.loc,
                          "'{" + node.vars[0] +
                              "}' always dominates itself");
                }
            }
        }
    }

    /**
     * Generator-reachability fixpoint mirroring the solver's
     * genCandidates table: a variable participates in a solution only
     * if some chain of generating atomics can enumerate it.
     * Or-branches are treated optimistically (union), index forms are
     * normalized into families, so anything unreachable here is
     * unreachable in every schedule — error tier.
     */
    void
    checkBindings()
    {
        std::set<std::string> mentioned;
        std::map<std::string, int> occurrences;
        std::map<std::string, SourceLoc> firstLoc;
        auto note = [&](const std::string &raw, SourceLoc loc) {
            std::string v = normalizeVar(raw);
            mentioned.insert(v);
            ++occurrences[v];
            firstLoc.emplace(v, loc);
        };
        for (const auto &[node, in_collect] : atoms_) {
            (void)in_collect;
            for (const auto &v : node->vars)
                note(v, node->loc);
            for (const auto &list : node->varLists) {
                for (const auto &v : list)
                    note(v, node->loc);
            }
        }

        std::set<std::string> bound;
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &[node, in_collect] : atoms_) {
                (void)in_collect;
                auto var = [&](size_t i) {
                    return normalizeVar(node->vars[i]);
                };
                auto bind = [&](const std::string &v) {
                    changed |= bound.insert(v).second;
                };
                auto isBound = [&](size_t i) {
                    return bound.count(var(i)) != 0;
                };
                switch (node->atomic) {
                  case AtomicKind::IsOpcode:
                  case AtomicKind::IsInstruction:
                  case AtomicKind::IsArgument:
                  case AtomicKind::IsConstant:
                  case AtomicKind::IsConstantZero:
                  case AtomicKind::IsCompileTimeValue:
                    if (!node->vars.empty())
                        bind(var(0));
                    break;
                  case AtomicKind::Same:
                  case AtomicKind::IsArgumentOf:
                  case AtomicKind::HasDataFlowTo:
                  case AtomicKind::HasControlFlowTo:
                    if (node->vars.size() == 2) {
                        if (isBound(0))
                            bind(var(1));
                        if (isBound(1))
                            bind(var(0));
                    }
                    break;
                  case AtomicKind::ReachesPhiFrom:
                    if (node->vars.size() == 3) {
                        if (isBound(1)) {
                            bind(var(0));
                            bind(var(2));
                        }
                        if (isBound(0))
                            bind(var(1));
                    }
                    break;
                  default:
                    break; // checker-only atomics bind nothing
                }
            }
        }

        for (const auto &v : mentioned) {
            if (!bound.count(v)) {
                error("unbound-var", firstLoc[v],
                      "no generating atomic can ever bind '" + v +
                          "'; the solver will defer this goal "
                          "forever and the idiom cannot match");
            } else if (occurrences[v] == 1 && !isExported(v)) {
                warning("unused-var", firstLoc[v],
                        "'" + v +
                            "' appears in a single atomic and "
                            "constrains nothing else");
            }
        }
    }

    /**
     * Variables whose terminal component names a rewrite-ABI slot are
     * bound so the transformation stage can read them out of the
     * solution; a single mention is their purpose, not a defect.
     */
    bool
    isExported(const std::string &v) const
    {
        size_t dot = v.rfind('.');
        std::string leaf =
            dot == std::string::npos ? v : v.substr(dot + 1);
        return exports_.count(leaf) != 0;
    }

    std::string idiom_;
    CheckReport &report_;
    const std::set<std::string> &exports_;
    std::vector<std::pair<const solver::Node *, bool>> atoms_;
};

} // namespace

CheckReport
checkProgram(const IdlProgram &program,
             const std::vector<std::string> &roots,
             const std::vector<std::string> &exportedLeaves)
{
    CheckReport report;
    std::set<std::string> exports(exportedLeaves.begin(),
                                  exportedLeaves.end());
    for (const auto &def : program.defs)
        checkAst(program, *def, *def->body, report);
    for (const auto &root : roots) {
        if (!program.lookup(root)) {
            emit(report, "unknown-idiom", CheckSeverity::Error, root,
                 SourceLoc{},
                 "root idiom '" + root + "' is not defined");
            continue;
        }
        try {
            solver::ConstraintProgram lowered =
                lowerIdiom(program, root);
            LoweredChecker(root, report, exports).run(*lowered.root);
        } catch (const FatalError &err) {
            emit(report, "lower-failed", CheckSeverity::Error, root,
                 SourceLoc{}, err.what());
        }
    }
    return report;
}

CheckReport
checkProgram(const IdlProgram &program,
             const std::vector<std::string> &roots)
{
    return checkProgram(program, roots, {});
}

CheckReport
checkProgram(const IdlProgram &program)
{
    std::vector<std::string> roots;
    for (const auto &def : program.defs)
        roots.push_back(def->name);
    return checkProgram(program, roots);
}

void
checkProgramOrThrow(const IdlProgram &program,
                    const std::vector<std::string> &roots,
                    const std::string &origin,
                    const std::vector<std::string> &exportedLeaves)
{
    CheckReport report = checkProgram(program, roots, exportedLeaves);
    if (!report.ok()) {
        throw FatalError(origin + " failed IDL semantic analysis (" +
                         std::to_string(report.errorCount()) +
                         " errors):\n" + report.str());
    }
}

} // namespace repro::idl
