/**
 * @file
 * Semantic analyzer ("lint") for IDL constraint programs.
 *
 * The solver resolves opcode names and schedules variable generators
 * lazily, so a typo'd opcode or a variable no atomic can ever generate
 * does not fail — the idiom just never matches anything. This analyzer
 * surfaces those defects at load time, with the offending atom's
 * SourceLoc, in two layers:
 *
 *  - AST checks over every definition: unknown opcode names in
 *    "is <op> instruction" atomics ("unknown-opcode"), inherit of an
 *    undefined idiom ("unknown-idiom"), inherit parameters the target
 *    does not declare ("unknown-param", warning);
 *  - lowered-tree checks per solved root idiom: variables no generator
 *    chain can ever bind given the solver's generator set
 *    ("unbound-var"), variables mentioned exactly once and therefore
 *    constraining nothing ("unused-var", warning), collect bodies that
 *    never use the "[#]" index template ("collect-no-marker"), "[#]"
 *    escaping its collect and "[*]" in a positional operand
 *    ("marker-outside-collect", "wildcard-misplaced"), duplicate
 *    atomics under one conjunction ("duplicate-atomic", warning) and
 *    trivially-unsatisfiable / trivially-true atomics ("unsat-atomic",
 *    "trivial-atomic" warning).
 *
 * Severity is tiered: errors mean the idiom (or part of it) cannot
 * match anything and loading should fail; warnings are kept advisory.
 * idioms::idiomLibrary() runs checkProgramOrThrow over the shipped
 * library, so a defective idiom fails fast at first use, and
 * tools/repro_lint reports the same diagnostics as JSON for CI.
 */
#ifndef IDL_CHECK_H
#define IDL_CHECK_H

#include <string>
#include <vector>

#include "idl/ast.h"

namespace repro::idl {

/** Severity tier of one lint diagnostic. */
enum class CheckSeverity
{
    Error,
    Warning,
};

/** One structured lint finding. */
struct CheckDiag
{
    /** Stable rule id, e.g. "unknown-opcode" (see file comment). */
    std::string rule;
    CheckSeverity severity = CheckSeverity::Error;
    /** Constraint definition (or solved root) the finding is in. */
    std::string idiom;
    /** Source position of the offending construct; may be invalid for
     *  findings synthesized from lowered nodes without provenance. */
    SourceLoc loc;
    std::string message;

    /** "rule=<id> idiom=<name> line=<l> col=<c>: <message>". */
    std::string str() const;
};

/** All findings of one analysis run. */
struct CheckReport
{
    std::vector<CheckDiag> diags;

    /** True when no error-tier diagnostic was produced. */
    bool ok() const;
    size_t errorCount() const;
    size_t warningCount() const;
    /** True when some diagnostic carries @p rule. */
    bool hasRule(const std::string &rule) const;
    /** Render every diagnostic, one per line. */
    std::string str() const;
};

/**
 * Analyze @p program. AST checks run over every definition; lowered
 * checks run over each name in @p roots (the idioms actually handed to
 * the solver — helper definitions legitimately leave variables for
 * their includers to bind, so only roots are held to the
 * all-variables-generatable standard).
 *
 * @p exportedLeaves suppresses "unused-var" for variables whose
 * terminal component (after the last '.') names one of the entries:
 * such variables are bound for EXPORT — the transformation stage reads
 * them out of the solution (loop bounds, base pointers, initial
 * values) — so appearing in a single atomic is their job, not a
 * defect. The shipped library passes idioms::rewriteAbiVarLeaves().
 */
CheckReport checkProgram(const IdlProgram &program,
                         const std::vector<std::string> &roots,
                         const std::vector<std::string> &exportedLeaves);

CheckReport checkProgram(const IdlProgram &program,
                         const std::vector<std::string> &roots);

/** Convenience: every definition is its own root. */
CheckReport checkProgram(const IdlProgram &program);

/**
 * Gate helper: run checkProgram and throw FatalError naming @p origin
 * when any error-tier diagnostic is found.
 */
void checkProgramOrThrow(const IdlProgram &program,
                         const std::vector<std::string> &roots,
                         const std::string &origin,
                         const std::vector<std::string> &exportedLeaves =
                             {});

} // namespace repro::idl

#endif // IDL_CHECK_H
