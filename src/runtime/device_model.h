/**
 * @file
 * Analytic device performance model.
 *
 * The paper evaluates on an AMD A10-7850K (multicore CPU + integrated
 * R7 GPU) and an NVIDIA GTX Titan X. This model substitutes for that
 * hardware (see DESIGN.md section 2): execution time is a roofline
 * estimate — max(compute, memory) plus kernel launch and PCIe
 * transfer terms — scaled by a per-(API, idiom class, platform)
 * efficiency factor. Absolute numbers are calibrated against Table 3
 * of the paper; the reproduction target is the *shape*: which API and
 * device wins each benchmark, and where data transfer flips the
 * outcome.
 */
#ifndef RUNTIME_DEVICE_MODEL_H
#define RUNTIME_DEVICE_MODEL_H

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "idioms/library.h"

namespace repro::runtime {

/** Execution platforms of the paper's evaluation. */
enum class Platform
{
    CPU,  ///< 4-module AMD A10-7850K, multicore + SIMD
    IGPU, ///< Radeon R7, same die, shared memory
    DGPU, ///< NVIDIA GTX Titan X over PCIe
};

/** Display name of @p p ("CPU", "iGPU", "dGPU"). */
const char *platformName(Platform p);

/** All platforms, in Table 3 column order. */
std::vector<Platform> allPlatforms();

/** Heterogeneous APIs targeted by the transformation (section 5). */
enum class Api
{
    MKL,      ///< CPU BLAS / sparse
    LibSPMV,  ///< custom sparse library for the Parboil format
    Halide,   ///< stencil DSL, CPU schedules
    ClBLAS,   ///< OpenCL BLAS (iGPU)
    CLBlast,  ///< OpenCL BLAS (iGPU)
    Lift,     ///< rewrite-based data-parallel DSL (all platforms)
    ClSPARSE, ///< OpenCL sparse (iGPU)
    CuSPARSE, ///< CUDA sparse (dGPU)
    CuBLAS,   ///< CUDA BLAS (dGPU)
};

/** Display name of @p api as printed in Table 3. */
const char *apiName(Api api);

/** All APIs, in Table 3 row order. */
std::vector<Api> allApis();

/** Which platform an API runs on. */
Platform apiPlatform(Api api);

/** Can @p api implement idiom class @p cls? */
bool apiSupports(Api api, idioms::IdiomClass cls);

/** Workload descriptor for one accelerated region. */
struct WorkProfile
{
    double flops = 0;          ///< arithmetic per invocation
    double bytes = 0;          ///< memory traffic per invocation
    double transferBytes = 0;  ///< data shipped to/from the device
    int invocations = 1;       ///< region executions per program run
    /** The region sits in an iterative solver whose data can stay
     *  resident on the device (lazy copying, section 8.3). */
    bool lazyCopyApplicable = false;
    /** Fraction of sequential runtime the idioms cover (Figure 17);
     *  the remainder stays serial (Amdahl). */
    double offloadFraction = 1.0;
    /** Kernel parallelizability (divergence, atomics density). */
    double parallel = 1.0;
    /** APIs that can express this benchmark's idiom (the populated
     *  cells of its Table 3 row). Empty = every supporting API. */
    std::set<Api> allowedApis;
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
};

/** Hardware parameters of one platform. */
struct DeviceParams
{
    double gflops;         ///< peak compute, GF/s
    double bandwidthGBs;   ///< memory bandwidth, GB/s
    double pcieGBs;        ///< host link bandwidth (0 = shared memory)
    double launchUs;       ///< per-invocation launch overhead
    double pcieLatencyUs;  ///< fixed DMA/sync cost per transfer
};

/** Hardware parameters of platform @p p (calibrated to the paper). */
const DeviceParams &deviceParams(Platform p);

/** Efficiency of @p api for idiom class @p cls on platform @p p. */
double apiEfficiency(Api api, idioms::IdiomClass cls, Platform p);

/**
 * Modeled execution time in milliseconds for running @p work through
 * @p api. With @p lazy_copy, redundant per-invocation transfers are
 * elided when the profile allows it.
 */
double modelTimeMs(const WorkProfile &work, Api api, bool lazy_copy);

/** Modeled single-core sequential execution time (the baseline). */
double sequentialTimeMs(const WorkProfile &work);

/**
 * Modeled time of the handwritten parallel references shipped with
 * the benchmark suites (Figure 19): OpenMP on the CPU, OpenCL on the
 * dGPU. @p algorithmic_speedup reflects reference implementations
 * that use different algorithms (EP, IS, MG, tpacf).
 */
double referenceOpenMpMs(const WorkProfile &work,
                         double algorithmic_speedup);
double referenceOpenClMs(const WorkProfile &work,
                         double algorithmic_speedup);

/**
 * Is (@p api on platform @p p) a legal lowering for idiom class
 * @p cls?  Encodes Table 3's populated cells: the API must support
 * the class, must be able to run on the platform (vendor libraries
 * are pinned to their home device; Lift and libSPMV are portable),
 * and Halide's GPU backend is excluded (section 8.3).
 */
bool apiAvailableOn(Platform p, Api api, idioms::IdiomClass cls);

/**
 * Modeled time for @p api on platform @p p; std::nullopt when the API
 * does not support the idiom class or cannot run on that platform
 * (Table 3's empty cells).
 */
std::optional<double> apiTimeOn(Platform p, Api api,
                                const WorkProfile &work,
                                bool lazy_copy);

/** Best API/time for a class on a given platform. */
struct BestChoice
{
    Api api;
    double timeMs;
};
std::optional<BestChoice> bestApiOn(Platform p, const WorkProfile &work,
                                    bool lazy_copy);

} // namespace repro::runtime

#endif // RUNTIME_DEVICE_MODEL_H
