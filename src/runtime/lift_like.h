/**
 * @file
 * A miniature Lift: functional data-parallel patterns (zip, map,
 * reduce, transpose, slide) with an evaluator and a pseudo-OpenCL
 * code generator.
 *
 * Stands in for the Lift code generator of Steuwer et al. (CGO'17)
 * that the paper uses as a DSL backend: matched reductions, stencils
 * and linear algebra idioms are rebuilt as Lift expressions
 * (Figure 15 shows gemm_in_lift) and "compiled" for the device model.
 */
#ifndef RUNTIME_LIFT_LIKE_H
#define RUNTIME_LIFT_LIKE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace repro::runtime::lift {

/** A Lift value: a scalar or a nested array. */
class Value
{
  public:
    Value() = default;
    explicit Value(double scalar) : scalar_(scalar), isScalar_(true) {}
    explicit Value(std::vector<Value> items)
        : items_(std::move(items))
    {}

    /** 1D array value from a flat vector. */
    static Value fromVector(const std::vector<double> &data);

    /** 2D array value (rows of cols) from row-major flat data. */
    static Value fromMatrix(const std::vector<double> &data,
                            size_t rows, size_t cols);

    bool isScalar() const { return isScalar_; }
    double scalar() const { return scalar_; }
    const std::vector<Value> &items() const { return items_; }
    size_t size() const { return items_.size(); }

    /** Flatten a 1D array of scalars back into a vector. */
    std::vector<double> toVector() const;

  private:
    double scalar_ = 0.0;
    std::vector<Value> items_;
    bool isScalar_ = false;
};

/** A scalar function usable inside map/reduce. */
using Fn1 = std::function<Value(const Value &)>;
using Fn2 = std::function<Value(const Value &, const Value &)>;

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/** One node of a Lift expression. */
class Expr
{
  public:
    enum class Kind
    {
        Input,
        Zip,
        Map,
        Reduce,
        Transpose,
        Slide,
        Join,
    };

    Kind kind;
    std::string label;           ///< for codegen output
    Value input;                 ///< Input
    std::vector<ExprPtr> args;   ///< children
    Fn1 mapFn;
    Fn2 reduceFn;
    Value reduceInit;
    size_t slideSize = 0;
    size_t slideStep = 1;

    explicit Expr(Kind k) : kind(k) {}
};

// Constructors (the Lift surface language).
/** Leaf holding a concrete value. */
ExprPtr input(Value v, std::string label = "in");
/** Elementwise pairing of two equal-length arrays. */
ExprPtr zip(ExprPtr a, ExprPtr b);
/** Apply @p fn to every element. */
ExprPtr map(Fn1 fn, ExprPtr e, std::string label = "f");
/** Fold @p e with @p fn starting from @p init. */
ExprPtr reduce(Fn2 fn, Value init, ExprPtr e,
               std::string label = "op");
/** Swap the two outermost array dimensions. */
ExprPtr transpose(ExprPtr e);
/** Sliding window (the Lift stencil primitive). */
ExprPtr slide(size_t size, size_t step, ExprPtr e);
/** Flatten one level of array nesting. */
ExprPtr join(ExprPtr e);

/** Evaluate an expression tree. */
Value eval(const ExprPtr &expr);

/**
 * Render the expression as pseudo-OpenCL (what Lift's rewrite-based
 * compiler would emit), for inspection and examples.
 */
std::string generateOpenCl(const ExprPtr &expr,
                           const std::string &kernel_name);

/** The gemm_in_lift composition of Figure 15. */
Value gemmInLift(const std::vector<double> &a,
                 const std::vector<double> &b,
                 const std::vector<double> &c, size_t m, size_t n,
                 size_t k, double alpha, double beta);

} // namespace repro::runtime::lift

#endif // RUNTIME_LIFT_LIKE_H
