/**
 * @file
 * Backend cost layer: turns the analytic device model into a per-call-
 * site ranking of legal (API, platform) lowerings.
 *
 * The transform stack plans every matched idiom against all legal
 * backend targets; this layer predicts each target's execution time
 * from a workload descriptor (trip counts, flops, bytes moved —
 * analysis/workload.h) including host-device transfer, and ranks the
 * alternatives so RewriteEngine can pick the winner. Under the
 * default BackendPolicy::Fixed the fixedTarget() of each class is the
 * historical single-target behavior, byte-for-byte (docs/BACKENDS.md).
 */
#ifndef RUNTIME_COST_H
#define RUNTIME_COST_H

#include <string>
#include <vector>

#include "analysis/workload.h"
#include "runtime/device_model.h"

namespace repro::runtime {

/** One candidate lowering of a matched idiom. */
struct BackendTarget
{
    Api api = Api::MKL;
    Platform platform = Platform::CPU;
    /** Modeled time for the call site's workload, milliseconds. */
    double predictedMs = 0.0;
};

/** Same (api, platform) pair, costs ignored. */
inline bool
sameBackend(const BackendTarget &a, const BackendTarget &b)
{
    return a.api == b.api && a.platform == b.platform;
}

/**
 * Every legal (API, platform) lowering of idiom class @p cls — the
 * populated cells of its Table 3 row — in deterministic (API-major)
 * order. Empty for classes no backend implements.
 */
std::vector<BackendTarget> legalTargets(idioms::IdiomClass cls);

/**
 * The historical single-target lowering of @p cls: the host backend
 * the Transformer hard-wired before backend selection existed. This
 * is what BackendPolicy::Fixed always picks.
 */
BackendTarget fixedTarget(idioms::IdiomClass cls);

/**
 * Modeled execution time of @p cls's workload @p wd through @p api on
 * platform @p p, milliseconds, including transfer. Negative when the
 * combination is illegal.
 */
double predictMs(Platform p, Api api,
                 const analysis::WorkloadDescriptor &wd,
                 idioms::IdiomClass cls);

/**
 * All legal targets of @p cls with predicted costs for @p wd, sorted
 * ascending by cost (ties keep legalTargets order).
 */
std::vector<BackendTarget>
rankTargets(idioms::IdiomClass cls,
            const analysis::WorkloadDescriptor &wd);

/** Human/wire token, e.g. "cuBLAS@GPU" (no spaces). */
std::string backendToken(const BackendTarget &t);

/** Identifier-safe lowercase symbol, e.g. "cublas_gpu". */
std::string backendSymbol(const BackendTarget &t);

} // namespace repro::runtime

#endif // RUNTIME_COST_H
