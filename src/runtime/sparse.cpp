#include "runtime/sparse.h"

namespace repro::runtime::sparse {

void
csrmv(int64_t row_begin, int64_t row_end, const int32_t *rowstr,
      const int32_t *colidx, const double *a, const double *z,
      double *r)
{
    for (int64_t j = row_begin; j < row_end; ++j) {
        double d = 0.0;
        for (int32_t k = rowstr[j]; k < rowstr[j + 1]; ++k)
            d += a[k] * z[colidx[k]];
        r[j] = d;
    }
}

void
csrmv(const CsrMatrix &m, const double *z, double *r)
{
    csrmv(0, m.rows, m.rowstr.data(), m.colidx.data(),
          m.values.data(), z, r);
}

CsrMatrix
makeBandedMatrix(int64_t n, int band, unsigned seed)
{
    CsrMatrix m;
    m.rows = n;
    m.cols = n;
    m.rowstr.push_back(0);
    unsigned state = seed * 2654435761u + 1;
    auto rnd = [&]() {
        state = state * 1664525u + 1013904223u;
        return (state >> 8) & 0xffff;
    };
    for (int64_t i = 0; i < n; ++i) {
        for (int d = -band; d <= band; ++d) {
            int64_t j = i + d;
            if (j < 0 || j >= n)
                continue;
            // Drop some entries pseudo-randomly for irregularity.
            if (d != 0 && rnd() % 3 == 0)
                continue;
            m.colidx.push_back(static_cast<int32_t>(j));
            m.values.push_back(1.0 + (rnd() % 100) / 100.0);
        }
        m.rowstr.push_back(static_cast<int32_t>(m.colidx.size()));
    }
    return m;
}

void
ellmv(int64_t rows, int64_t max_nz, const int32_t *indices,
      const double *data, const double *x, double *y)
{
    for (int64_t i = 0; i < rows; ++i) {
        double acc = 0.0;
        for (int64_t k = 0; k < max_nz; ++k) {
            int32_t col = indices[k * rows + i];
            if (col >= 0)
                acc += data[k * rows + i] * x[col];
        }
        y[i] = acc;
    }
}

} // namespace repro::runtime::sparse
