#include "runtime/blas.h"

namespace repro::runtime::blas {

namespace {

template <typename T>
void
gemmImpl(T *c, int64_t c0, int64_t c1, const T *a, int64_t a0,
         int64_t a2, const T *b, int64_t b1, int64_t b2, int64_t m,
         int64_t n, int64_t kk, T alpha, T beta)
{
    for (int64_t i0 = 0; i0 < m; ++i0) {
        for (int64_t i1 = 0; i1 < n; ++i1) {
            T acc = 0;
            for (int64_t k = 0; k < kk; ++k)
                acc += a[i0 * a0 + k * a2] * b[i1 * b1 + k * b2];
            T &out = c[i0 * c0 + i1 * c1];
            out = beta * out + alpha * acc;
        }
    }
}

} // namespace

void
gemm(double *c, int64_t c0, int64_t c1, const double *a, int64_t a0,
     int64_t a2, const double *b, int64_t b1, int64_t b2, int64_t m,
     int64_t n, int64_t kk, double alpha, double beta)
{
    gemmImpl(c, c0, c1, a, a0, a2, b, b1, b2, m, n, kk, alpha, beta);
}

void
sgemm(float *c, int64_t c0, int64_t c1, const float *a, int64_t a0,
      int64_t a2, const float *b, int64_t b1, int64_t b2, int64_t m,
      int64_t n, int64_t kk, float alpha, float beta)
{
    gemmImpl(c, c0, c1, a, a0, a2, b, b1, b2, m, n, kk, alpha, beta);
}

void
gemv(double *y, const double *a, int64_t lda, const double *x,
     int64_t m, int64_t n, double alpha, double beta)
{
    for (int64_t i = 0; i < m; ++i) {
        double acc = 0;
        for (int64_t j = 0; j < n; ++j)
            acc += a[i * lda + j] * x[j];
        y[i] = beta * y[i] + alpha * acc;
    }
}

double
dot(const double *x, const double *y, int64_t n)
{
    double acc = 0;
    for (int64_t i = 0; i < n; ++i)
        acc += x[i] * y[i];
    return acc;
}

void
axpy(double *y, const double *x, double a, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

} // namespace repro::runtime::blas
