#include "runtime/cost.h"

#include <algorithm>
#include <cctype>

namespace repro::runtime {

using idioms::IdiomClass;

std::vector<BackendTarget>
legalTargets(IdiomClass cls)
{
    std::vector<BackendTarget> targets;
    for (Api api : allApis())
        for (Platform p : allPlatforms())
            if (apiAvailableOn(p, api, cls))
                targets.push_back(BackendTarget{api, p, 0.0});
    return targets;
}

BackendTarget
fixedTarget(IdiomClass cls)
{
    switch (cls) {
      case IdiomClass::SparseMatrixOp:
        return {Api::MKL, Platform::CPU, 0.0};
      case IdiomClass::MatrixOp:
        return {Api::MKL, Platform::CPU, 0.0};
      case IdiomClass::ScalarReduction:
        return {Api::Lift, Platform::CPU, 0.0};
      case IdiomClass::HistogramReduction:
        return {Api::Lift, Platform::CPU, 0.0};
      case IdiomClass::Stencil:
        return {Api::Halide, Platform::CPU, 0.0};
      case IdiomClass::Other:
        break;
    }
    return {Api::MKL, Platform::CPU, 0.0};
}

double
predictMs(Platform p, Api api, const analysis::WorkloadDescriptor &wd,
          IdiomClass cls)
{
    WorkProfile work;
    work.flops = wd.flops;
    work.bytes = wd.bytes;
    work.transferBytes = wd.transferBytes;
    work.invocations =
        std::max(1, static_cast<int>(wd.invocations + 0.5));
    work.offloadFraction = 1.0;
    work.cls = cls;
    std::optional<double> t = apiTimeOn(p, api, work, false);
    return t ? *t : -1.0;
}

std::vector<BackendTarget>
rankTargets(IdiomClass cls, const analysis::WorkloadDescriptor &wd)
{
    std::vector<BackendTarget> ranked = legalTargets(cls);
    for (BackendTarget &t : ranked)
        t.predictedMs = predictMs(t.platform, t.api, wd, cls);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const BackendTarget &a, const BackendTarget &b) {
                         return a.predictedMs < b.predictedMs;
                     });
    return ranked;
}

std::string
backendToken(const BackendTarget &t)
{
    return std::string(apiName(t.api)) + "@" +
           platformName(t.platform);
}

std::string
backendSymbol(const BackendTarget &t)
{
    std::string sym = backendToken(t);
    std::string out;
    for (char c : sym) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    return out;
}

} // namespace repro::runtime
