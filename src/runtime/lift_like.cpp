#include "runtime/lift_like.h"

#include <sstream>

#include "support/diagnostics.h"

namespace repro::runtime::lift {

Value
Value::fromVector(const std::vector<double> &data)
{
    std::vector<Value> items;
    items.reserve(data.size());
    for (double d : data)
        items.emplace_back(d);
    return Value(std::move(items));
}

Value
Value::fromMatrix(const std::vector<double> &data, size_t rows,
                  size_t cols)
{
    reproAssert(data.size() == rows * cols,
                "fromMatrix: size mismatch");
    std::vector<Value> out;
    out.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
        std::vector<Value> row;
        row.reserve(cols);
        for (size_t j = 0; j < cols; ++j)
            row.emplace_back(data[i * cols + j]);
        out.emplace_back(std::move(row));
    }
    return Value(std::move(out));
}

std::vector<double>
Value::toVector() const
{
    std::vector<double> out;
    out.reserve(items_.size());
    for (const Value &v : items_) {
        reproAssert(v.isScalar(), "toVector: nested value");
        out.push_back(v.scalar());
    }
    return out;
}

ExprPtr
input(Value v, std::string label)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Input);
    e->input = std::move(v);
    e->label = std::move(label);
    return e;
}

ExprPtr
zip(ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Zip);
    e->args = {std::move(a), std::move(b)};
    return e;
}

ExprPtr
map(Fn1 fn, ExprPtr arg, std::string label)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Map);
    e->mapFn = std::move(fn);
    e->args = {std::move(arg)};
    e->label = std::move(label);
    return e;
}

ExprPtr
reduce(Fn2 fn, Value init, ExprPtr arg, std::string label)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Reduce);
    e->reduceFn = std::move(fn);
    e->reduceInit = std::move(init);
    e->args = {std::move(arg)};
    e->label = std::move(label);
    return e;
}

ExprPtr
transpose(ExprPtr arg)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Transpose);
    e->args = {std::move(arg)};
    return e;
}

ExprPtr
slide(size_t size, size_t step, ExprPtr arg)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Slide);
    e->slideSize = size;
    e->slideStep = step;
    e->args = {std::move(arg)};
    return e;
}

ExprPtr
join(ExprPtr arg)
{
    auto e = std::make_shared<Expr>(Expr::Kind::Join);
    e->args = {std::move(arg)};
    return e;
}

Value
eval(const ExprPtr &expr)
{
    switch (expr->kind) {
      case Expr::Kind::Input:
        return expr->input;
      case Expr::Kind::Zip: {
        Value a = eval(expr->args[0]);
        Value b = eval(expr->args[1]);
        reproAssert(a.size() == b.size(), "zip: length mismatch");
        std::vector<Value> out;
        out.reserve(a.size());
        for (size_t i = 0; i < a.size(); ++i) {
            out.emplace_back(std::vector<Value>{a.items()[i],
                                                b.items()[i]});
        }
        return Value(std::move(out));
      }
      case Expr::Kind::Map: {
        Value v = eval(expr->args[0]);
        std::vector<Value> out;
        out.reserve(v.size());
        for (const Value &item : v.items())
            out.push_back(expr->mapFn(item));
        return Value(std::move(out));
      }
      case Expr::Kind::Reduce: {
        Value v = eval(expr->args[0]);
        Value acc = expr->reduceInit;
        for (const Value &item : v.items())
            acc = expr->reduceFn(acc, item);
        return acc;
      }
      case Expr::Kind::Transpose: {
        Value v = eval(expr->args[0]);
        if (v.size() == 0)
            return v;
        size_t cols = v.items()[0].size();
        std::vector<Value> out;
        out.reserve(cols);
        for (size_t j = 0; j < cols; ++j) {
            std::vector<Value> row;
            row.reserve(v.size());
            for (size_t i = 0; i < v.size(); ++i)
                row.push_back(v.items()[i].items()[j]);
            out.emplace_back(std::move(row));
        }
        return Value(std::move(out));
      }
      case Expr::Kind::Slide: {
        Value v = eval(expr->args[0]);
        std::vector<Value> out;
        for (size_t start = 0;
             start + expr->slideSize <= v.size();
             start += expr->slideStep) {
            std::vector<Value> window(
                v.items().begin() + static_cast<ptrdiff_t>(start),
                v.items().begin() +
                    static_cast<ptrdiff_t>(start + expr->slideSize));
            out.emplace_back(std::move(window));
        }
        return Value(std::move(out));
      }
      case Expr::Kind::Join: {
        Value v = eval(expr->args[0]);
        std::vector<Value> out;
        for (const Value &row : v.items()) {
            for (const Value &item : row.items())
                out.push_back(item);
        }
        return Value(std::move(out));
      }
    }
    throw InternalError("lift eval: unhandled node");
}

namespace {

void
renderExpr(const ExprPtr &expr, std::ostringstream &os, int indent)
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (expr->kind) {
      case Expr::Kind::Input:
        os << pad << expr->label;
        break;
      case Expr::Kind::Zip:
        os << pad << "zip(\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ",\n";
        renderExpr(expr->args[1], os, indent + 1);
        os << ")";
        break;
      case Expr::Kind::Map:
        os << pad << "mapGlobal(" << expr->label << ",\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ")";
        break;
      case Expr::Kind::Reduce:
        os << pad << "reduceSeq(" << expr->label << ", init,\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ")";
        break;
      case Expr::Kind::Transpose:
        os << pad << "transpose(\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ")";
        break;
      case Expr::Kind::Slide:
        os << pad << "slide(" << expr->slideSize << ", "
           << expr->slideStep << ",\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ")";
        break;
      case Expr::Kind::Join:
        os << pad << "join(\n";
        renderExpr(expr->args[0], os, indent + 1);
        os << ")";
        break;
    }
}

} // namespace

std::string
generateOpenCl(const ExprPtr &expr, const std::string &kernel_name)
{
    std::ostringstream os;
    os << "// OpenCL generated by mini-Lift (rewrite rules applied: "
          "mapGlobal, reduceSeq)\n";
    os << "__kernel void " << kernel_name
       << "(__global const float *in, __global float *out) {\n";
    os << "  // pattern tree:\n";
    std::ostringstream tree;
    renderExpr(expr, tree, 1);
    for (const auto &line : std::vector<std::string>{tree.str()})
        os << "  //" << line << "\n";
    os << "  const size_t gid = get_global_id(0);\n";
    os << "  // ... pattern-specific body elided ...\n";
    os << "}\n";
    return os.str();
}

Value
gemmInLift(const std::vector<double> &a, const std::vector<double> &b,
           const std::vector<double> &c, size_t m, size_t n, size_t k,
           double alpha, double beta)
{
    // Figure 15: map over rows of A zipped with rows of C; inside,
    // map over columns of B zipped with c elements; dot product via
    // zip/map/reduce.
    Fn1 mult = [](const Value &pair) {
        return Value(pair.items()[0].scalar() *
                     pair.items()[1].scalar());
    };
    Fn2 add = [](const Value &x, const Value &y) {
        return Value(x.scalar() + y.scalar());
    };

    ExprPtr A = input(Value::fromMatrix(a, m, k), "A");
    ExprPtr C = input(Value::fromMatrix(c, m, n), "C");
    Value Bt = eval(transpose(input(Value::fromMatrix(b, k, n), "B")));

    Value Av = eval(A);
    Value Cv = eval(C);
    std::vector<Value> out_rows;
    for (size_t i = 0; i < m; ++i) {
        const Value &a_row = Av.items()[i];
        const Value &c_row = Cv.items()[i];
        std::vector<Value> out_row;
        for (size_t j = 0; j < n; ++j) {
            ExprPtr dotExpr = reduce(
                add, Value(0.0),
                map(mult,
                    zip(input(a_row, "a_row"),
                        input(Bt.items()[j], "b_col")),
                    "mult"),
                "add");
            double ab = eval(dotExpr).scalar();
            out_row.emplace_back(alpha * ab +
                                 beta * c_row.items()[j].scalar());
        }
        out_rows.emplace_back(std::move(out_row));
    }
    return Value(std::move(out_rows));
}

} // namespace repro::runtime::lift
