#include "runtime/device_model.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace repro::runtime {

using idioms::IdiomClass;

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::CPU: return "CPU";
      case Platform::IGPU: return "iGPU";
      case Platform::DGPU: return "GPU";
    }
    return "?";
}

std::vector<Platform>
allPlatforms()
{
    return {Platform::CPU, Platform::IGPU, Platform::DGPU};
}

const char *
apiName(Api api)
{
    switch (api) {
      case Api::MKL: return "MKL";
      case Api::LibSPMV: return "libSPMV";
      case Api::Halide: return "Halide";
      case Api::ClBLAS: return "clBLAS";
      case Api::CLBlast: return "CLBlast";
      case Api::Lift: return "Lift";
      case Api::ClSPARSE: return "clSPARSE";
      case Api::CuSPARSE: return "cuSPARSE";
      case Api::CuBLAS: return "cuBLAS";
    }
    return "?";
}

std::vector<Api>
allApis()
{
    return {Api::MKL,     Api::LibSPMV,  Api::Halide,
            Api::ClBLAS,  Api::CLBlast,  Api::Lift,
            Api::ClSPARSE, Api::CuSPARSE, Api::CuBLAS};
}

Platform
apiPlatform(Api api)
{
    switch (api) {
      case Api::MKL:
      case Api::Halide:
        return Platform::CPU;
      case Api::ClBLAS:
      case Api::CLBlast:
      case Api::ClSPARSE:
        return Platform::IGPU;
      case Api::CuSPARSE:
      case Api::CuBLAS:
        return Platform::DGPU;
      case Api::LibSPMV:
      case Api::Lift:
        // Multi-platform APIs; apiTimeOn accepts any platform.
        return Platform::CPU;
    }
    return Platform::CPU;
}

bool
apiSupports(Api api, IdiomClass cls)
{
    switch (api) {
      case Api::MKL:
        return cls == IdiomClass::MatrixOp ||
               cls == IdiomClass::SparseMatrixOp;
      case Api::LibSPMV:
        return cls == IdiomClass::SparseMatrixOp;
      case Api::Halide:
        // Halide pipelines cover stencils and the scatter/histogram
        // patterns on the CPU; its GPU backend produced no valid code
        // in the paper's evaluation.
        return cls == IdiomClass::Stencil ||
               cls == IdiomClass::HistogramReduction;
      case Api::ClBLAS:
      case Api::CLBlast:
      case Api::CuBLAS:
        return cls == IdiomClass::MatrixOp;
      case Api::ClSPARSE:
      case Api::CuSPARSE:
        return cls == IdiomClass::SparseMatrixOp;
      case Api::Lift:
        return cls == IdiomClass::ScalarReduction ||
               cls == IdiomClass::HistogramReduction ||
               cls == IdiomClass::Stencil ||
               cls == IdiomClass::MatrixOp;
    }
    return false;
}

const DeviceParams &
deviceParams(Platform p)
{
    // AMD A10-7850K (4 cores, AVX) with DDR3; Radeon R7 on the same
    // die (shared memory, heavyweight OpenCL dispatch through the
    // 2016-era Catalyst driver); GTX Titan X over PCIe 3.0.
    static const DeviceParams cpu{110.0, 21.0, 0.0, 2.0, 0.0};
    static const DeviceParams igpu{737.0, 21.0, 0.0, 150.0, 0.0};
    static const DeviceParams dgpu{6100.0, 336.0, 11.0, 12.0, 45.0};
    switch (p) {
      case Platform::CPU: return cpu;
      case Platform::IGPU: return igpu;
      case Platform::DGPU: return dgpu;
    }
    return cpu;
}

double
apiEfficiency(Api api, IdiomClass cls, Platform p)
{
    // Calibrated against Table 3 (see EXPERIMENTS.md): vendor
    // libraries approach roofline on their home platform; the
    // portable code generators trade efficiency for generality, with
    // per-platform quality differences the paper measures.
    switch (api) {
      case Api::MKL:
        return cls == IdiomClass::MatrixOp ? 0.70 : 0.32;
      case Api::LibSPMV:
        switch (p) {
          case Platform::CPU: return 0.50;
          case Platform::IGPU: return 0.95;
          case Platform::DGPU: return 0.47;
        }
        return 0.5;
      case Api::Halide:
        return cls == IdiomClass::Stencil ? 0.35 : 0.45;
      case Api::ClBLAS:
        return 0.38;
      case Api::CLBlast:
        return 0.29;
      case Api::ClSPARSE:
        return 0.74;
      case Api::CuSPARSE:
        return 0.39;
      case Api::CuBLAS:
        return 0.45;
      case Api::Lift:
        switch (cls) {
          case IdiomClass::MatrixOp:
            return p == Platform::CPU    ? 0.027
                   : p == Platform::IGPU ? 0.36
                                         : 0.20;
          case IdiomClass::Stencil:
            return p == Platform::CPU    ? 0.30
                   : p == Platform::IGPU ? 0.90
                                         : 0.50;
          case IdiomClass::HistogramReduction:
            return p == Platform::CPU    ? 0.12
                   : p == Platform::IGPU ? 0.48
                                         : 0.30;
          default:
            return 0.50;
        }
    }
    return 0.3;
}

double
sequentialTimeMs(const WorkProfile &work)
{
    // One core, modest ILP, no SIMD; the idiom region accounts for
    // offloadFraction of the whole program.
    double gflops = 2.4;
    double bw = 8.0;
    double compute_s = work.flops / (gflops * 1e9);
    double memory_s = work.bytes / (bw * 1e9);
    double idiom_ms =
        std::max(compute_s, memory_s) * 1e3 * work.invocations;
    return idiom_ms / std::max(work.offloadFraction, 1e-6);
}

namespace {

/** Full modeled time on platform @p p via an API with efficiency
 *  @p base_eff. */
double
timeOn(const WorkProfile &work, Platform p, double base_eff,
       bool lazy_copy)
{
    const DeviceParams &dev = deviceParams(p);
    double eff =
        std::min(0.99, std::max(1e-4, base_eff * work.parallel));
    double compute_s = work.flops / (dev.gflops * 1e9 * eff);
    double memory_s = work.bytes / (dev.bandwidthGBs * 1e9 * eff);
    double kernel_ms = std::max(compute_s, memory_s) * 1e3;
    double launch_ms = dev.launchUs * 1e-3;
    double per_inv = kernel_ms + launch_ms;

    double transfer_ms = 0.0;
    if (dev.pcieGBs > 0.0) {
        transfer_ms =
            work.transferBytes / (dev.pcieGBs * 1e9) * 1e3 +
            dev.pcieLatencyUs * 1e-3;
    } else if (p == Platform::IGPU) {
        // Shared-memory iGPU: buffer mapping costs a fraction of a
        // copy.
        transfer_ms =
            work.transferBytes / (dev.bandwidthGBs * 1e9) * 1e3 * 0.2;
    }

    double serial_ms =
        sequentialTimeMs(work) * (1.0 - work.offloadFraction);

    double accel_ms;
    if (lazy_copy && work.lazyCopyApplicable) {
        // Data stays resident across invocations: one round trip.
        accel_ms = per_inv * work.invocations + transfer_ms;
    } else {
        accel_ms = (per_inv + transfer_ms) * work.invocations;
    }
    return serial_ms + accel_ms;
}

} // namespace

double
modelTimeMs(const WorkProfile &work, Api api, bool lazy_copy)
{
    Platform p = apiPlatform(api);
    return timeOn(work, p, apiEfficiency(api, work.cls, p), lazy_copy);
}

bool
apiAvailableOn(Platform p, Api api, IdiomClass cls)
{
    if (!apiSupports(api, cls))
        return false;
    bool runs_here = apiPlatform(api) == p || api == Api::Lift ||
                     api == Api::LibSPMV;
    if (!runs_here)
        return false;
    if (api == Api::Halide && p != Platform::CPU)
        return false; // Halide GPU codegen failed (section 8.3)
    return true;
}

std::optional<double>
apiTimeOn(Platform p, Api api, const WorkProfile &work, bool lazy_copy)
{
    if (!apiAvailableOn(p, api, work.cls))
        return std::nullopt;
    if (!work.allowedApis.empty() && !work.allowedApis.count(api))
        return std::nullopt;
    return timeOn(work, p, apiEfficiency(api, work.cls, p),
                  lazy_copy);
}

std::optional<BestChoice>
bestApiOn(Platform p, const WorkProfile &work, bool lazy_copy)
{
    std::optional<BestChoice> best;
    for (Api api : allApis()) {
        auto t = apiTimeOn(p, api, work, lazy_copy);
        if (t && (!best || *t < best->timeMs))
            best = BestChoice{api, *t};
    }
    return best;
}

double
referenceOpenMpMs(const WorkProfile &work, double algorithmic_speedup)
{
    // Handwritten OpenMP: four cores, decent vectorization, whole
    // program parallelized when the reference changes the algorithm.
    double t = timeOn(work, Platform::CPU, 0.55, true);
    return t / std::max(algorithmic_speedup, 1e-9);
}

double
referenceOpenClMs(const WorkProfile &work, double algorithmic_speedup)
{
    double t = timeOn(work, Platform::DGPU, 0.55, true);
    return t / std::max(algorithmic_speedup, 1e-9);
}

} // namespace repro::runtime
