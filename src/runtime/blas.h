/**
 * @file
 * Dense linear algebra reference implementations.
 *
 * These play the role of the vendor BLAS libraries the paper targets
 * (MKL, cuBLAS, clBLAS, CLBlast): the transformation replaces matched
 * GEMM loop nests with calls into this library, and the device model
 * attributes per-API performance. The implementation runs on the
 * host, so every transformed benchmark stays executable and testable.
 */
#ifndef RUNTIME_BLAS_H
#define RUNTIME_BLAS_H

#include <cstdint>

namespace repro::runtime::blas {

/**
 * Generalized matrix multiply over strided storage:
 *
 *   C[i0*c0 + i1*c1] = beta * C[...] + alpha *
 *       sum_k A[i0*a0 + k*a2] * B[i1*b1 + k*b2]
 *
 * for i0 in [0,m), i1 in [0,n), k in [0,kk). The six element strides
 * express row/column major layouts and transposed operands, matching
 * what MatrixRead/MatrixStore solutions provide.
 */
void gemm(double *c, int64_t c0, int64_t c1, const double *a,
          int64_t a0, int64_t a2, const double *b, int64_t b1,
          int64_t b2, int64_t m, int64_t n, int64_t kk, double alpha,
          double beta);

/** Single-precision gemm() (the cblas_sgemm analogue). */
void sgemm(float *c, int64_t c0, int64_t c1, const float *a,
           int64_t a0, int64_t a2, const float *b, int64_t b1,
           int64_t b2, int64_t m, int64_t n, int64_t kk, float alpha,
           float beta);

/** y = alpha*A*x + beta*y with row stride lda. */
void gemv(double *y, const double *a, int64_t lda, const double *x,
          int64_t m, int64_t n, double alpha, double beta);

/** Dot product. */
double dot(const double *x, const double *y, int64_t n);

/** y = a*x + y. */
void axpy(double *y, const double *x, double a, int64_t n);

} // namespace repro::runtime::blas

#endif // RUNTIME_BLAS_H
