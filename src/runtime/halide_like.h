/**
 * @file
 * A miniature Halide: pure grid functions with clamped input
 * accesses, a separate schedule, and a CPU realizer.
 *
 * Stands in for the Halide compiler (Ragan-Kelley et al., PLDI'13)
 * the paper targets for stencil idioms. The functional description
 * (what each output pixel is) is separated from the schedule (tiling,
 * parallelization, vectorization) exactly as in Halide; the schedule
 * feeds the device model rather than actual codegen.
 */
#ifndef RUNTIME_HALIDE_LIKE_H
#define RUNTIME_HALIDE_LIKE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace repro::runtime::halide {

/** A dense n-dimensional buffer of doubles. */
struct Buffer
{
    std::vector<int64_t> dims; ///< outermost first
    std::vector<double> data;

    /** Zero-initialized buffer of the given shape. */
    static Buffer make(std::vector<int64_t> dims);

    /** Flat index of @p pos with clamp-to-edge boundary handling. */
    int64_t
    index(const std::vector<int64_t> &pos) const
    {
        int64_t idx = 0;
        for (size_t d = 0; d < dims.size(); ++d) {
            int64_t p = pos[d];
            if (p < 0)
                p = 0;
            if (p >= dims[d])
                p = dims[d] - 1; // clamp-to-edge boundary
            idx = idx * dims[d] + p;
        }
        return idx;
    }

    /** Element at @p pos (clamped). */
    double at(const std::vector<int64_t> &pos) const
    {
        return data[static_cast<size_t>(index(pos))];
    }
};

class ExprNode;
using Expr = std::shared_ptr<ExprNode>;

/** Expression over grid coordinates. */
class ExprNode
{
  public:
    enum class Kind
    {
        Const,
        InputAccess, ///< input buffer at (x+dx, y+dy, ...)
        Add,
        Sub,
        Mul,
        Div,
    };

    Kind kind;
    double constant = 0.0;
    int inputIndex = 0;
    std::vector<int64_t> offsets;
    Expr lhs, rhs;

    explicit ExprNode(Kind k) : kind(k) {}
};

/** Constant-valued expression. */
Expr constant(double v);
/** Access input @p input_index displaced by @p offsets. */
Expr inputAt(int input_index, std::vector<int64_t> offsets);
/** Pointwise arithmetic over expressions. */
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);

/** Recorded scheduling directives (cost model only). */
struct Schedule
{
    int tileX = 0;
    int tileY = 0;
    bool parallelOuter = false;
    int vectorWidth = 1;

    /** Human-readable schedule summary for examples/benches. */
    std::string str() const;
};

/** A pure grid function: out(pos) = expr(inputs, pos). */
class Func
{
  public:
    explicit Func(std::string name) : name_(std::move(name)) {}

    /** Set the pure definition: out(pos) = @p body evaluated at pos. */
    void define(Expr body) { body_ = std::move(body); }

    /** Mutable scheduling directives (cost model only). */
    Schedule &schedule() { return schedule_; }

    /** Evaluate over the full grid of @p shape. */
    Buffer realize(const std::vector<int64_t> &shape,
                   const std::vector<const Buffer *> &inputs) const;

    /** Pseudo-C code for inspection. */
    std::string compileToSource() const;

    const std::string &name() const { return name_; }

  private:
    double evalAt(const Expr &e,
                  const std::vector<const Buffer *> &inputs,
                  const std::vector<int64_t> &pos) const;

    std::string name_;
    Expr body_;
    Schedule schedule_;
};

} // namespace repro::runtime::halide

#endif // RUNTIME_HALIDE_LIKE_H
