/**
 * @file
 * Sparse linear algebra reference implementations (the cuSPARSE /
 * clSPARSE / libSPMV stand-ins of section 5.1).
 */
#ifndef RUNTIME_SPARSE_H
#define RUNTIME_SPARSE_H

#include <cstdint>
#include <vector>

namespace repro::runtime::sparse {

/** A matrix in Compressed Sparse Row format. */
struct CsrMatrix
{
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<int32_t> rowstr; ///< rows+1 entries
    std::vector<int32_t> colidx;
    std::vector<double> values;

    int64_t nnz() const { return static_cast<int64_t>(values.size()); }
};

/**
 * r = A * z over CSR arrays (the cusparseDcsrmv analogue of
 * Figure 6). Raw-pointer interface so the interpreter binder can call
 * straight into heap memory.
 */
void csrmv(int64_t row_begin, int64_t row_end, const int32_t *rowstr,
           const int32_t *colidx, const double *a, const double *z,
           double *r);

/** Convenience overload for CsrMatrix. */
void csrmv(const CsrMatrix &m, const double *z, double *r);

/**
 * Build a synthetic banded sparse matrix (used by benchmarks where
 * the paper uses NAS-generated matrices).
 */
CsrMatrix makeBandedMatrix(int64_t n, int band, unsigned seed);

/**
 * The "libSPMV" custom kernel of section 8.3: the Parboil spmv
 * benchmark uses a padded JDS-like format; this implements the same
 * gather over a transposed-ELL layout.
 */
void ellmv(int64_t rows, int64_t max_nz, const int32_t *indices,
           const double *data, const double *x, double *y);

} // namespace repro::runtime::sparse

#endif // RUNTIME_SPARSE_H
