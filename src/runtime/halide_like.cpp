#include "runtime/halide_like.h"

#include <sstream>

#include "support/diagnostics.h"

namespace repro::runtime::halide {

Buffer
Buffer::make(std::vector<int64_t> dims)
{
    Buffer b;
    b.dims = std::move(dims);
    int64_t total = 1;
    for (int64_t d : b.dims)
        total *= d;
    b.data.assign(static_cast<size_t>(total), 0.0);
    return b;
}

Expr
constant(double v)
{
    auto e = std::make_shared<ExprNode>(ExprNode::Kind::Const);
    e->constant = v;
    return e;
}

Expr
inputAt(int input_index, std::vector<int64_t> offsets)
{
    auto e = std::make_shared<ExprNode>(ExprNode::Kind::InputAccess);
    e->inputIndex = input_index;
    e->offsets = std::move(offsets);
    return e;
}

namespace {

Expr
binary(ExprNode::Kind kind, Expr a, Expr b)
{
    auto e = std::make_shared<ExprNode>(kind);
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
}

} // namespace

Expr
operator+(Expr a, Expr b)
{
    return binary(ExprNode::Kind::Add, std::move(a), std::move(b));
}
Expr
operator-(Expr a, Expr b)
{
    return binary(ExprNode::Kind::Sub, std::move(a), std::move(b));
}
Expr
operator*(Expr a, Expr b)
{
    return binary(ExprNode::Kind::Mul, std::move(a), std::move(b));
}
Expr
operator/(Expr a, Expr b)
{
    return binary(ExprNode::Kind::Div, std::move(a), std::move(b));
}

std::string
Schedule::str() const
{
    std::ostringstream os;
    os << "schedule{";
    if (tileX > 0)
        os << " tile(" << tileX << "," << tileY << ")";
    if (parallelOuter)
        os << " parallel(y)";
    if (vectorWidth > 1)
        os << " vectorize(x," << vectorWidth << ")";
    os << " }";
    return os.str();
}

double
Func::evalAt(const Expr &e, const std::vector<const Buffer *> &inputs,
             const std::vector<int64_t> &pos) const
{
    switch (e->kind) {
      case ExprNode::Kind::Const:
        return e->constant;
      case ExprNode::Kind::InputAccess: {
        const Buffer *buf = inputs[static_cast<size_t>(e->inputIndex)];
        std::vector<int64_t> shifted = pos;
        for (size_t d = 0; d < shifted.size() && d < e->offsets.size();
             ++d) {
            shifted[d] += e->offsets[d];
        }
        return buf->at(shifted);
      }
      case ExprNode::Kind::Add:
        return evalAt(e->lhs, inputs, pos) + evalAt(e->rhs, inputs, pos);
      case ExprNode::Kind::Sub:
        return evalAt(e->lhs, inputs, pos) - evalAt(e->rhs, inputs, pos);
      case ExprNode::Kind::Mul:
        return evalAt(e->lhs, inputs, pos) * evalAt(e->rhs, inputs, pos);
      case ExprNode::Kind::Div:
        return evalAt(e->lhs, inputs, pos) / evalAt(e->rhs, inputs, pos);
    }
    throw InternalError("halide eval: unhandled node");
}

Buffer
Func::realize(const std::vector<int64_t> &shape,
              const std::vector<const Buffer *> &inputs) const
{
    reproAssert(body_ != nullptr, "Func::realize without definition");
    Buffer out = Buffer::make(shape);
    std::vector<int64_t> pos(shape.size(), 0);
    size_t total = out.data.size();
    for (size_t linear = 0; linear < total; ++linear) {
        size_t rem = linear;
        for (size_t d = shape.size(); d > 0; --d) {
            pos[d - 1] = static_cast<int64_t>(
                rem % static_cast<size_t>(shape[d - 1]));
            rem /= static_cast<size_t>(shape[d - 1]);
        }
        out.data[linear] = evalAt(body_, inputs, pos);
    }
    return out;
}

namespace {

void
renderExpr(const Expr &e, std::ostringstream &os)
{
    switch (e->kind) {
      case ExprNode::Kind::Const:
        os << e->constant;
        break;
      case ExprNode::Kind::InputAccess: {
        os << "in" << e->inputIndex << "(";
        for (size_t d = 0; d < e->offsets.size(); ++d) {
            if (d)
                os << ", ";
            os << "xyz"[d % 3];
            if (e->offsets[d] > 0)
                os << "+" << e->offsets[d];
            else if (e->offsets[d] < 0)
                os << e->offsets[d];
        }
        os << ")";
        break;
      }
      case ExprNode::Kind::Add:
      case ExprNode::Kind::Sub:
      case ExprNode::Kind::Mul:
      case ExprNode::Kind::Div: {
        const char *op =
            e->kind == ExprNode::Kind::Add   ? " + "
            : e->kind == ExprNode::Kind::Sub ? " - "
            : e->kind == ExprNode::Kind::Mul ? " * "
                                             : " / ";
        os << "(";
        renderExpr(e->lhs, os);
        os << op;
        renderExpr(e->rhs, os);
        os << ")";
        break;
      }
    }
}

} // namespace

std::string
Func::compileToSource() const
{
    std::ostringstream os;
    os << "// mini-Halide lowering of Func '" << name_ << "' with "
       << schedule_.str() << "\n";
    os << name_ << "(x, y, z) = ";
    if (body_)
        renderExpr(body_, os);
    os << ";\n";
    return os.str();
}

} // namespace repro::runtime::halide
