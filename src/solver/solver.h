/**
 * @file
 * Backtracking constraint solver over SSA IR values.
 *
 * This is the reproduction of the solver the paper bases on Ginsbach &
 * O'Boyle (CGO'17): given a lowered idiom formula, it enumerates every
 * assignment of constraint variables to IR values that satisfies the
 * formula. Candidate generation exploits the structure of atomics
 * (operand edges, opcode indices, phi incomings) so the search space
 * is pruned aggressively.
 *
 * The search runs on the slot-addressed CompiledProgram form
 * (solver/compiled.h): bindings are a flat vector indexed by interned
 * variable slots, atomic readiness is tracked by per-node unbound
 * counters, and the goal list is an index schedule over the node
 * arrays — no strings, maps or goal-vector copies on the hot path.
 * Name-keyed Solution objects are materialized only when a search
 * finishes, so every downstream consumer (transform, binder, benches)
 * keeps its API. The pre-compilation engine survives as
 * solveAllReference(), the golden reference the compiled engine is
 * cross-checked against (search order, solution sets and SolveStats
 * are byte-identical by construction — see
 * tests/test_solver_compiled.cpp).
 */
#ifndef SOLVER_SOLVER_H
#define SOLVER_SOLVER_H

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "solver/compiled.h"
#include "solver/constraint.h"

namespace repro::solver {

/** One satisfying assignment: variable name -> IR value. */
struct Solution
{
    std::map<std::string, const ir::Value *> bindings;

    const ir::Value *
    lookup(const std::string &name) const
    {
        auto it = bindings.find(name);
        return it == bindings.end() ? nullptr : it->second;
    }

    /**
     * All bindings whose name matches prefix "p[k]suffix" pattern,
     * probing k = 0, 1, ... until the first gap. One key buffer is
     * reused across probes (no per-index string assembly beyond the
     * index digits), and the failing key is built exactly once.
     */
    std::vector<const ir::Value *>
    lookupArray(const std::string &pattern) const;

    std::string str() const;
};

/** Search effort counters (reported by bench_solver / Table 2). */
struct SolveStats
{
    uint64_t assignments = 0; ///< variable assignments tried
    uint64_t checks = 0;      ///< atomic evaluations
    uint64_t solutions = 0;
    uint64_t rotations = 0;   ///< stuck goals moved to the back
    uint64_t dedupHits = 0;   ///< duplicate candidates skipped

    SolveStats &
    operator+=(const SolveStats &other)
    {
        assignments += other.assignments;
        checks += other.checks;
        solutions += other.solutions;
        rotations += other.rotations;
        dedupHits += other.dedupHits;
        return *this;
    }
};

/**
 * How a solve ended. Search-budget exhaustion is a *normal, degradable
 * outcome* for a combinatorial matcher serving interactive traffic —
 * not an internal failure — so exceeding a limit never throws out of
 * the solver: the search stops, keeps every solution found so far,
 * and reports why it stopped through this status.
 */
enum class SolveStatus : uint8_t
{
    Complete,         ///< the search space was exhausted
    BudgetExhausted,  ///< stopped at SolverLimits::maxAssignments
    DeadlineExceeded, ///< stopped at SolverLimits::deadline
};

/** Wire/report token of a status: "", "budget", "deadline". */
const char *solveStatusToken(SolveStatus status);

/** The worse of two statuses (deadline > budget > complete). */
SolveStatus worseStatus(SolveStatus a, SolveStatus b);

/** Tunable limits protecting against pathological formulas. */
struct SolverLimits
{
    uint64_t maxAssignments = 20'000'000;
    size_t maxSolutions = 4096;

    /**
     * Absolute wall-clock deadline; the zero-initialized time_point
     * (the default) means none. Checked on entry to every search and
     * then once per kDeadlineCheckStride assignments, so the overhead
     * of reading the clock never touches the per-assignment hot path
     * and a deadline-free solve stays byte-identical in behavior and
     * stats. An already-expired deadline aborts before any search
     * work, which makes deadline tests deterministic.
     */
    std::chrono::steady_clock::time_point deadline{};

    /** Assignments between deadline probes (power of two). */
    static constexpr uint64_t kDeadlineCheckStride = 1024;

    bool
    hasDeadline() const
    {
        return deadline != std::chrono::steady_clock::time_point{};
    }

    /** Helper: deadline @p millis from now (0 = none). */
    static SolverLimits
    withDeadline(SolverLimits base, uint64_t millis)
    {
        if (millis > 0) {
            base.deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(millis);
        }
        return base;
    }
};

/**
 * Solves one idiom against one function.
 *
 * Construction is cheap: the value universe and candidate buckets
 * live in the analyses' CandidateIndex, built once per function and
 * shared by every Solver (one per idiom) created against it. Solving
 * touches no state outside the function's own analyses (index
 * construction assigns the function's argument/instruction ids;
 * nothing module-shared is written), so functions of one module can
 * be solved concurrently as long as each function's FunctionAnalyses
 * is owned by a single thread. The CompiledProgram is immutable and
 * may be shared across those threads (idioms::compiledIdiomOrNull).
 */
class Solver
{
  public:
    Solver(ir::Function *func, analysis::FunctionAnalyses &analyses);

    /**
     * Enumerate all solutions of the pre-compiled @p program — the
     * hot path every cached library idiom takes.
     */
    std::vector<Solution> solveAll(const CompiledProgram &program,
                                   const SolverLimits &limits = {});

    /**
     * Enumerate all solutions of @p program, compiling it first.
     * Convenience for one-off programs (custom idioms, ablations that
     * perturb the lowered tree before solving).
     */
    std::vector<Solution> solveAll(const ConstraintProgram &program,
                                   const SolverLimits &limits = {});

    /**
     * The pre-compilation engine: name-keyed bindings, goal-vector
     * copies, per-call opcode resolution. Kept as the golden
     * reference for the compiled engine — solution strings and
     * SolveStats must match solveAll() byte for byte on any program.
     */
    std::vector<Solution>
    solveAllReference(const ConstraintProgram &program,
                      const SolverLimits &limits = {});

    const SolveStats &stats() const { return stats_; }

    /**
     * How the most recent solveAll/solveAllReference call ended.
     * Complete until the first solve; sticky per call (each solve
     * overwrites it).
     */
    SolveStatus lastStatus() const { return lastStatus_; }

  private:
    ir::Function *func_;
    analysis::FunctionAnalyses &analyses_;
    const analysis::CandidateIndex &index_;
    SolveStats stats_;
    SolveStatus lastStatus_ = SolveStatus::Complete;
};

} // namespace repro::solver

#endif // SOLVER_SOLVER_H
