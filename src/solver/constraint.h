/**
 * @file
 * Lowered constraint representation consumed by the backtracking
 * solver.
 *
 * The IDL compiler (idl/lower.h) eliminates inheritance, for all / for
 * some, if, rename and rebase, leaving conjunctions, disjunctions,
 * atomics over flattened variable names, and collect nodes whose body
 * carries a '#' marker in place of the collect index.
 */
#ifndef SOLVER_CONSTRAINT_H
#define SOLVER_CONSTRAINT_H

#include <memory>
#include <string>
#include <vector>

#include "idl/ast.h"

namespace repro::solver {

/** One node of a lowered constraint formula. */
struct Node
{
    enum class Kind
    {
        And,
        Or,
        Atomic,
        Collect,
    };

    Kind kind = Kind::And;

    /** Source position of the originating IDL constraint (invalid for
     *  synthesized nodes); carried through lowering so semantic lint
     *  diagnostics over the lowered tree can point at source. */
    SourceLoc loc;

    // Atomic payload (field meanings as in idl::Constraint).
    idl::AtomicKind atomic = idl::AtomicKind::Same;
    std::string opcodeName;
    int argPosition = 0;
    bool negated = false;
    bool strict = false;
    bool postDom = false;
    idl::FlowKind flow = idl::FlowKind::Any;
    /** Flattened positional variable names. */
    std::vector<std::string> vars;
    /** Flattened variable lists; entries may contain "[*]". */
    std::vector<std::vector<std::string>> varLists;

    // And / Or.
    std::vector<std::unique_ptr<Node>> children;

    // Collect.
    int collectMax = 16;
    std::unique_ptr<Node> collectBody; ///< names contain '#'

    /** Render for debugging / golden tests. */
    std::string str(int indent = 0) const;
};

using NodePtr = std::unique_ptr<Node>;

/** A fully lowered idiom ready for solving. */
struct ConstraintProgram
{
    std::string name;
    NodePtr root;
};

} // namespace repro::solver

#endif // SOLVER_CONSTRAINT_H
