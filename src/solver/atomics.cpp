#include "solver/atomics.h"

#include <algorithm>
#include <set>

#include "support/string_utils.h"

namespace repro::solver {

using analysis::FunctionAnalyses;
using idl::AtomicKind;
using idl::FlowKind;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

const Instruction *
asInst(const Value *v)
{
    return v && v->isInstruction() ? static_cast<const Instruction *>(v)
                                   : nullptr;
}

/** Direct control flow edge a -> b at instruction granularity. */
bool
hasControlEdge(AtomContext &ctx, const Instruction *a,
               const Instruction *b)
{
    return ctx.analyses->cfg().hasEdge(a, b);
}

/** Direct data flow edge a -> b (a is an operand of b). */
bool
hasDataEdge(const Value *a, const Instruction *b)
{
    if (!b)
        return false;
    for (const Value *op : b->operands()) {
        if (op == a)
            return true;
    }
    return false;
}

/**
 * Kernel-closure check (the "all data flow into X inside R is killed
 * by ..." extension). See DESIGN.md: inputs of the computation of
 * @p out that live inside the region rooted at @p begin must all be
 * listed in @p allowed; values defined outside the region (loop
 * invariants), constants and arguments are implicitly available.
 */
bool
evalKernelClosure(AtomContext &ctx, const Value *out,
                  const Instruction *begin,
                  const std::set<const Value *> &allowed)
{
    if (!begin)
        return false;
    const analysis::DomTree &dom = ctx.analyses->domTree();
    auto in_region = [&](const Instruction *inst) {
        return dom.dominates(begin, inst);
    };

    std::vector<const Value *> stack{out};
    std::set<const Value *> seen{out};
    while (!stack.empty()) {
        const Value *v = stack.back();
        stack.pop_back();
        if (allowed.count(v))
            continue;
        if (v->isConstant() || v->isArgument() || v->isGlobal())
            continue;
        const Instruction *inst = asInst(v);
        if (!inst)
            return false;
        if (!in_region(inst)) {
            // Values defined before the region are available as
            // call-time parameters — except phis, which are loop
            // carried (e.g. the iterator) and must be listed
            // explicitly to be kernel inputs.
            if (inst->is(Opcode::Phi))
                return false;
            continue;
        }
        switch (inst->opcode()) {
          case Opcode::Load:
            // Unlisted memory reads inside the kernel are not well
            // behaved.
            return false;
          case Opcode::Phi:
            // In-region merges act as selects: recurse through all
            // incoming values (their conditions are checked at
            // transformation time).
            break;
          case Opcode::Call:
            if (!inst->callee()->isDeclaration())
                return false; // only pure builtins allowed
            break;
          case Opcode::Store:
          case Opcode::Br:
          case Opcode::Ret:
          case Opcode::Alloca:
            return false;
          default:
            break;
        }
        for (const Value *op : inst->operands()) {
            if (seen.insert(op).second)
                stack.push_back(op);
        }
    }
    return true;
}

/**
 * Data-flow dominance: every backward chain from @p b ends at leaves
 * (constants/arguments/loads) only after passing @p a.
 */
bool
dataFlowDominates(const Value *a, const Value *b)
{
    if (a == b)
        return true;
    const Instruction *inst = asInst(b);
    if (!inst)
        return false;
    std::vector<const Value *> stack{b};
    std::set<const Value *> seen{b};
    while (!stack.empty()) {
        const Value *v = stack.back();
        stack.pop_back();
        const Instruction *vi = asInst(v);
        if (!vi)
            return false; // reached a leaf without meeting a
        for (const Value *op : vi->operands()) {
            if (op == a)
                continue;
            if (seen.insert(op).second)
                stack.push_back(op);
        }
        if (vi->numOperands() == 0 && v != b)
            return false;
    }
    return true;
}

/**
 * The shared evaluation core. @p get(i) yields the bound value of
 * positional variable i (nullptr when unbound); @p getList(j) yields
 * the expanded j-th variable list. Both views instantiate this with
 * their own accessors, so slot and name resolution differ while the
 * semantics cannot drift apart.
 */
template <typename GetFn, typename ListFn>
bool
evalAtomicImpl(const AtomicTraits &t, GetFn get, ListFn getList,
               AtomContext &ctx)
{
    switch (t.atomic) {
      case AtomicKind::IsIntegerType:
        return get(0) && get(0)->type()->isInteger();
      case AtomicKind::IsFloatType:
        return get(0) && get(0)->type()->isFloatingPoint();
      case AtomicKind::IsPointerType:
        return get(0) && get(0)->type()->isPointer();
      case AtomicKind::IsConstantZero: {
        const Value *v = get(0);
        if (!v || !v->isConstant())
            return false;
        const auto *c = static_cast<const ir::Constant *>(v);
        if (!c->isZero())
            return false;
        if (t.zero == ZeroKind::Integer)
            return c->type()->isInteger();
        if (t.zero == ZeroKind::Float)
            return c->type()->isFloatingPoint();
        return c->type()->isPointer();
      }
      case AtomicKind::IsUnused:
        return get(0) && get(0)->unused();
      case AtomicKind::IsConstant:
        return get(0) && get(0)->isConstant();
      case AtomicKind::IsCompileTimeValue:
        return get(0) && (get(0)->isConstant() ||
                          get(0)->isArgument() || get(0)->isGlobal());
      case AtomicKind::IsArgument:
        return get(0) && get(0)->isArgument();
      case AtomicKind::IsInstruction:
        return get(0) && get(0)->isInstruction();
      case AtomicKind::IsOpcode: {
        const Instruction *inst = asInst(get(0));
        if (!inst || !t.opcodeKnown)
            return false;
        return inst->opcode() == t.opcode;
      }
      case AtomicKind::Same:
        return get(0) && get(0) == get(1);
      case AtomicKind::NotSame:
        return get(0) && get(1) && get(0) != get(1);
      case AtomicKind::HasDataFlowTo:
        return get(0) && hasDataEdge(get(0), asInst(get(1)));
      case AtomicKind::HasDataFlowPathTo:
        return get(0) && get(1) &&
               analysis::dataPathExists(get(0), get(1), {});
      case AtomicKind::HasControlFlowTo: {
        const Instruction *a = asInst(get(0));
        const Instruction *b = asInst(get(1));
        return a && b && hasControlEdge(ctx, a, b);
      }
      case AtomicKind::HasControlDominanceTo: {
        const Instruction *a = asInst(get(0));
        const Instruction *b = asInst(get(1));
        return a && b && ctx.analyses->hasControlDependenceEdge(a, b);
      }
      case AtomicKind::HasDependenceEdgeTo: {
        const Instruction *a = asInst(get(0));
        const Instruction *b = asInst(get(1));
        return a && b && ctx.analyses->hasMemoryDependenceEdge(a, b);
      }
      case AtomicKind::IsArgumentOf: {
        const Instruction *b = asInst(get(1));
        if (!b || !get(0))
            return false;
        size_t pos = static_cast<size_t>(t.argPosition - 1);
        return pos < b->numOperands() && b->operand(pos) == get(0);
      }
      case AtomicKind::ReachesPhiFrom: {
        const Instruction *phi = asInst(get(1));
        const Instruction *branch = asInst(get(2));
        const Value *v = get(0);
        if (!phi || !branch || !v || !phi->is(Opcode::Phi))
            return false;
        for (size_t i = 0; i < phi->numOperands(); ++i) {
            if (phi->operand(i) == v &&
                phi->incomingBlocks()[i]->terminator() == branch) {
                return true;
            }
        }
        return false;
      }
      case AtomicKind::Dominates: {
        const Value *a = get(0);
        const Value *b = get(1);
        if (!a || !b)
            return false;
        bool result;
        if (t.flow == FlowKind::Data) {
            result = dataFlowDominates(a, b);
            if (t.strict && a == b)
                result = false;
        } else {
            const Instruction *ia = asInst(a);
            const Instruction *ib = asInst(b);
            if (!ia || !ib)
                return false;
            const analysis::DomTree &tree =
                t.postDom ? ctx.analyses->postDomTree()
                          : ctx.analyses->domTree();
            result = t.strict ? tree.strictlyDominates(ia, ib)
                              : tree.dominates(ia, ib);
        }
        return t.negated ? !result : result;
      }
      case AtomicKind::AllFlowPassesThrough: {
        const Value *a = get(0);
        const Value *b = get(1);
        const Value *c = get(2);
        if (!a || !b || !c)
            return false;
        if (a == c || b == c)
            return true;
        if (t.flow == FlowKind::Control) {
            const Instruction *ia = asInst(a);
            const Instruction *ib = asInst(b);
            const Instruction *ic = asInst(c);
            if (!ia || !ib || !ic)
                return false;
            return !ctx.analyses->cfg().pathExists(ia, ib, {ic});
        }
        if (t.flow == FlowKind::Data)
            return !analysis::dataPathExists(a, b, {c});
        return !analysis::anyFlowPathExists(ctx.analyses->cfg(), a, b,
                                            {c});
      }
      case AtomicKind::FlowKilledBy: {
        auto froms = getList(0);
        auto tos = getList(1);
        auto kills = getList(2);
        std::set<const Value *> kill_set(kills.begin(), kills.end());
        for (const Value *a : froms) {
            for (const Value *b : tos) {
                if (kill_set.count(a) || kill_set.count(b))
                    continue;
                bool path;
                if (t.flow == FlowKind::Data) {
                    path = analysis::dataPathExists(a, b, kill_set);
                } else {
                    path = analysis::anyFlowPathExists(
                        ctx.analyses->cfg(), a, b, kill_set);
                }
                if (path)
                    return false;
            }
        }
        return true;
      }
      case AtomicKind::KernelClosure: {
        const Value *out = get(0);
        const Instruction *begin = asInst(get(1));
        if (!out)
            return false;
        auto allowed_vec = getList(0);
        std::set<const Value *> allowed(allowed_vec.begin(),
                                        allowed_vec.end());
        return evalKernelClosure(ctx, out, begin, allowed);
      }
    }
    return false;
}

/**
 * The shared generation core. Returns nullptr when the atomic cannot
 * generate; otherwise a pointer to a CandidateIndex bucket (borrowed)
 * or to @p scratch (overwritten by this call).
 */
template <typename GetFn>
const std::vector<const Value *> *
genCandidatesImpl(const AtomicTraits &t, size_t var_index, GetFn get,
                  AtomContext &ctx,
                  std::vector<const Value *> &scratch)
{
    scratch.clear();

    switch (t.atomic) {
      case AtomicKind::IsOpcode:
        if (!t.opcodeKnown)
            return &scratch; // unknown opcode: empty set
        return &ctx.index->opcode(t.opcode);
      case AtomicKind::IsInstruction:
        return &ctx.index->instructions();
      case AtomicKind::IsArgument:
        return &ctx.index->arguments();
      case AtomicKind::IsConstant:
        return &ctx.index->constants();
      case AtomicKind::IsConstantZero:
        return &ctx.index->zeroConstants();
      case AtomicKind::IsCompileTimeValue:
        return &ctx.index->compileTimeValues();
      case AtomicKind::Same: {
        const Value *other = get(var_index == 0 ? 1 : 0);
        if (other) {
            scratch.push_back(other);
            return &scratch;
        }
        return nullptr;
      }
      case AtomicKind::IsArgumentOf: {
        if (var_index == 0) {
            const Instruction *b = asInst(get(1));
            if (!b)
                return nullptr;
            size_t pos = static_cast<size_t>(t.argPosition - 1);
            if (pos < b->numOperands())
                scratch.push_back(b->operand(pos));
            return &scratch;
        }
        const Value *a = get(0);
        if (!a)
            return nullptr;
        // Operand-edge adjacency: users holding {a} at the wanted
        // position were indexed up front.
        size_t pos = static_cast<size_t>(t.argPosition - 1);
        return &ctx.index->usersAt(a, pos);
      }
      case AtomicKind::HasDataFlowTo: {
        if (var_index == 0) {
            const Instruction *b = asInst(get(1));
            if (!b)
                return nullptr;
            for (const Value *op : b->operands())
                scratch.push_back(op);
            return &scratch;
        }
        const Value *a = get(0);
        if (!a)
            return nullptr;
        for (const Instruction *user : a->users())
            scratch.push_back(user);
        return &scratch;
      }
      case AtomicKind::HasControlFlowTo: {
        if (var_index == 0) {
            const Instruction *b = asInst(get(1));
            if (!b)
                return nullptr;
            for (const Instruction *p :
                 ctx.analyses->cfg().predecessors(b)) {
                scratch.push_back(p);
            }
            return &scratch;
        }
        const Instruction *a = asInst(get(0));
        if (!a)
            return nullptr;
        for (const Instruction *s : ctx.analyses->cfg().successors(a))
            scratch.push_back(s);
        return &scratch;
      }
      case AtomicKind::ReachesPhiFrom: {
        const Instruction *phi = asInst(get(1));
        if (var_index == 0) {
            if (!phi || !phi->is(Opcode::Phi))
                return nullptr;
            const Value *branch = get(2);
            for (size_t i = 0; i < phi->numOperands(); ++i) {
                if (!branch ||
                    phi->incomingBlocks()[i]->terminator() == branch) {
                    scratch.push_back(phi->operand(i));
                }
            }
            return &scratch;
        }
        if (var_index == 1) {
            const Value *v = get(0);
            if (!v)
                return nullptr;
            for (const Instruction *user : v->users()) {
                if (user->is(Opcode::Phi))
                    scratch.push_back(user);
            }
            return &scratch;
        }
        // var_index == 2: the incoming branch.
        if (!phi || !phi->is(Opcode::Phi))
            return nullptr;
        const Value *v = get(0);
        for (size_t i = 0; i < phi->numOperands(); ++i) {
            if (!v || phi->operand(i) == v) {
                if (const Instruction *term =
                        phi->incomingBlocks()[i]->terminator()) {
                    scratch.push_back(term);
                }
            }
        }
        return &scratch;
      }
      default:
        return nullptr;
    }
}

/** Expand compiled variable list @p j of @p node against @p bound. */
std::vector<const Value *>
expandCompiledList(const CompiledProgram &prog, const CompiledNode &node,
                   size_t j, const SlotBindings &bound)
{
    std::vector<const Value *> out;
    const CompiledList &cl =
        prog.lists()[node.listsBegin + static_cast<uint32_t>(j)];
    for (uint32_t i = cl.begin; i < cl.end; ++i) {
        const ListEntry &e = prog.listEntries()[i];
        if (!e.wildcard) {
            if (const Value *v = bound[e.id])
                out.push_back(v);
            continue;
        }
        for (uint32_t slot : prog.wildcardRun(e.id)) {
            const Value *v = bound[slot];
            if (!v)
                break;
            out.push_back(v);
        }
    }
    return out;
}

} // namespace

// ------------------------------------------------- slot-indexed view

bool
evalAtomic(const CompiledProgram &prog, const CompiledNode &node,
           const SlotBindings &bound, AtomContext &ctx)
{
    auto get = [&](size_t i) -> const Value * {
        return bound[prog.varSlot(node, i)];
    };
    auto getList = [&](size_t j) {
        return expandCompiledList(prog, node, j, bound);
    };
    return evalAtomicImpl(node.traits, get, getList, ctx);
}

const std::vector<const Value *> *
genCandidates(const CompiledProgram &prog, const CompiledNode &node,
              size_t var_index, const SlotBindings &bound,
              AtomContext &ctx, std::vector<const Value *> &scratch)
{
    auto get = [&](size_t i) -> const Value * {
        return bound[prog.varSlot(node, i)];
    };
    return genCandidatesImpl(node.traits, var_index, get, ctx, scratch);
}

// -------------------------------------------------- name-keyed view

std::vector<const Value *>
expandVarList(const std::vector<std::string> &names,
              const Bindings &bound)
{
    std::vector<const Value *> out;
    for (const std::string &name : names) {
        size_t star = name.find("[*]");
        if (star == std::string::npos) {
            auto it = bound.find(name);
            if (it != bound.end())
                out.push_back(it->second);
            continue;
        }
        for (int k = 0;; ++k) {
            std::string expanded = name.substr(0, star) + "[" +
                                   std::to_string(k) + "]" +
                                   name.substr(star + 3);
            auto it = bound.find(expanded);
            if (it == bound.end())
                break;
            out.push_back(it->second);
        }
    }
    return out;
}

bool
isDeferredAtomic(const Node &node)
{
    if (node.atomic == AtomicKind::KernelClosure ||
        node.atomic == AtomicKind::FlowKilledBy) {
        return true;
    }
    for (const auto &list : node.varLists) {
        for (const auto &name : list) {
            if (name.find("[*]") != std::string::npos)
                return true;
        }
    }
    return false;
}

bool
evalAtomic(const Node &node, const Bindings &bound, AtomContext &ctx)
{
    auto get = [&](size_t i) -> const Value * {
        auto it = bound.find(node.vars[i]);
        return it == bound.end() ? nullptr : it->second;
    };
    auto getList = [&](size_t j) {
        return expandVarList(node.varLists[j], bound);
    };
    return evalAtomicImpl(resolveAtomicTraits(node), get, getList, ctx);
}

std::optional<std::vector<const Value *>>
genCandidates(const Node &node, size_t var_index, const Bindings &bound,
              AtomContext &ctx)
{
    auto get = [&](size_t i) -> const Value * {
        auto it = bound.find(node.vars[i]);
        return it == bound.end() ? nullptr : it->second;
    };
    std::vector<const Value *> scratch;
    const std::vector<const Value *> *r = genCandidatesImpl(
        resolveAtomicTraits(node), var_index, get, ctx, scratch);
    if (!r)
        return std::nullopt;
    return *r;
}

} // namespace repro::solver
