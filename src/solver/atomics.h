/**
 * @file
 * Evaluation and candidate generation for IDL atomic constraints.
 *
 * Two views share one evaluation core:
 *
 *  - The **slot-indexed** view (CompiledProgram/CompiledNode +
 *    SlotBindings) is the solver's hot path: variable access is a
 *    vector index, opcode and zero-kind payloads are pre-resolved,
 *    and list expansion walks pre-computed slot runs. Candidate
 *    generation can return a borrowed pointer into the
 *    CandidateIndex buckets, avoiding the per-generation copy.
 *
 *  - The **name-keyed** view (Node + Bindings) is retained as the
 *    golden reference the compiled engine is cross-checked against
 *    (tests/test_solver_compiled.cpp); it resolves names and opcode
 *    strings on every call, exactly like the pre-compilation solver.
 */
#ifndef SOLVER_ATOMICS_H
#define SOLVER_ATOMICS_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "solver/compiled.h"
#include "solver/constraint.h"

namespace repro::solver {

/** Current partial assignment of the reference (name-keyed) engine. */
using Bindings = std::map<std::string, const ir::Value *>;

/** Dense partial assignment: slot id -> value (nullptr = unbound). */
using SlotBindings = std::vector<const ir::Value *>;

/** Shared evaluation context for one function. */
struct AtomContext
{
    ir::Function *func = nullptr;
    analysis::FunctionAnalyses *analyses = nullptr;
    /** Candidate-generation indices (owned by the FunctionAnalyses). */
    const analysis::CandidateIndex *index = nullptr;
};

/**
 * Evaluate a fully bound compiled atomic. All positional variable
 * slots of @p node must be bound in @p bound; list variables resolve
 * through the program's pre-expanded slot runs.
 */
bool evalAtomic(const CompiledProgram &prog, const CompiledNode &node,
                const SlotBindings &bound, AtomContext &ctx);

/**
 * Generate the candidate set for the unbound variable at position
 * @p var_index of compiled atomic @p node. Returns nullptr when this
 * atomic cannot generate (check-only); otherwise a pointer to either
 * a CandidateIndex bucket (borrowed — do not hold across IR changes)
 * or to @p scratch, which the call overwrites.
 */
const std::vector<const ir::Value *> *
genCandidates(const CompiledProgram &prog, const CompiledNode &node,
              size_t var_index, const SlotBindings &bound,
              AtomContext &ctx,
              std::vector<const ir::Value *> &scratch);

/**
 * Reference path: evaluate a fully bound atomic against name-keyed
 * bindings, resolving opcode names per call. All positional variables
 * of @p node must be present in @p bound; list variables are resolved
 * against @p bound with "[*]" wildcard expansion.
 */
bool evalAtomic(const Node &node, const Bindings &bound,
                AtomContext &ctx);

/**
 * Reference path: candidate set for the single unbound variable at
 * position @p var_index of @p node, given the other variables bound.
 * Returns std::nullopt when this atomic cannot generate (check-only).
 */
std::optional<std::vector<const ir::Value *>>
genCandidates(const Node &node, size_t var_index, const Bindings &bound,
              AtomContext &ctx);

/** True for atomics evaluated after collects (list/wildcard forms). */
bool isDeferredAtomic(const Node &node);

/** Expand a possibly-wildcarded name list against the bindings. */
std::vector<const ir::Value *>
expandVarList(const std::vector<std::string> &names,
              const Bindings &bound);

/** Resolve a lowered atomic's payload (opcode, zero kind, flags). */
AtomicTraits resolveAtomicTraits(const Node &node);

} // namespace repro::solver

#endif // SOLVER_ATOMICS_H
