/**
 * @file
 * Evaluation and candidate generation for IDL atomic constraints.
 */
#ifndef SOLVER_ATOMICS_H
#define SOLVER_ATOMICS_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/function_analyses.h"
#include "solver/constraint.h"

namespace repro::solver {

/** Current partial assignment. */
using Bindings = std::map<std::string, const ir::Value *>;

/** Shared evaluation context for one function. */
struct AtomContext
{
    ir::Function *func = nullptr;
    analysis::FunctionAnalyses *analyses = nullptr;
    /** Candidate-generation indices (owned by the FunctionAnalyses). */
    const analysis::CandidateIndex *index = nullptr;
};

/**
 * Evaluate a fully bound atomic. All positional variables of @p node
 * must be present in @p bound; list variables are resolved against
 * @p bound with "[*]" wildcard expansion.
 */
bool evalAtomic(const Node &node, const Bindings &bound,
                AtomContext &ctx);

/**
 * Generate the candidate set for the single unbound variable at
 * position @p var_index of @p node, given the other variables bound.
 * Returns std::nullopt when this atomic cannot generate (check-only).
 */
std::optional<std::vector<const ir::Value *>>
genCandidates(const Node &node, size_t var_index, const Bindings &bound,
              AtomContext &ctx);

/** True for atomics evaluated after collects (list/wildcard forms). */
bool isDeferredAtomic(const Node &node);

/** Expand a possibly-wildcarded name list against the bindings. */
std::vector<const ir::Value *>
expandVarList(const std::vector<std::string> &names,
              const Bindings &bound);

} // namespace repro::solver

#endif // SOLVER_ATOMICS_H
