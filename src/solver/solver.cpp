#include "solver/solver.h"

#include <algorithm>
#include <sstream>

#include "solver/atomics.h"
#include "support/diagnostics.h"

namespace repro::solver {

using ir::Instruction;
using ir::Value;

std::vector<const Value *>
Solution::lookupArray(const std::string &pattern) const
{
    std::vector<const Value *> out;
    size_t star = pattern.find("[*]");
    if (star == std::string::npos) {
        if (const Value *v = lookup(pattern))
            out.push_back(v);
        return out;
    }
    for (int k = 0;; ++k) {
        std::string name = pattern.substr(0, star) + "[" +
                           std::to_string(k) + "]" +
                           pattern.substr(star + 3);
        const Value *v = lookup(name);
        if (!v)
            break;
        out.push_back(v);
    }
    return out;
}

std::string
Solution::str() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, value] : bindings) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << name << "\": " << value->handle();
    }
    os << "}";
    return os.str();
}

std::string
Node::str(int indent) const
{
    std::ostringstream os;
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (kind) {
      case Kind::And:
      case Kind::Or:
        os << pad << (kind == Kind::And ? "and" : "or") << "\n";
        for (const auto &c : children)
            os << c->str(indent + 1);
        break;
      case Kind::Collect:
        os << pad << "collect(max=" << collectMax << ")\n"
           << collectBody->str(indent + 1);
        break;
      case Kind::Atomic: {
        os << pad << "atomic#" << static_cast<int>(atomic);
        if (!opcodeName.empty())
            os << " " << opcodeName;
        if (argPosition)
            os << " pos=" << argPosition;
        for (const auto &v : vars)
            os << " {" << v << "}";
        for (const auto &list : varLists) {
            os << " [";
            for (const auto &v : list)
                os << " {" << v << "}";
            os << " ]";
        }
        os << "\n";
        break;
      }
    }
    return os.str();
}

namespace {

/** The recursive search over goals. */
class SearchState
{
  public:
    SearchState(AtomContext ctx, SolveStats &stats,
                const SolverLimits &limits,
                std::vector<Solution> &results)
        : ctx_(ctx), stats_(stats), limits_(limits), results_(results)
    {}

    Bindings bindings;

    void
    run(const Node *root)
    {
        std::vector<const Node *> goals{root};
        try {
            search(goals, 0, 0);
        } catch (const FatalError &) {
            // Budget exceeded: return the solutions found so far.
        }
    }

  private:
    void
    budgetCheck()
    {
        if (++stats_.assignments > limits_.maxAssignments)
            throw FatalError("solver budget exceeded");
    }

    void
    search(std::vector<const Node *> &goals, size_t idx, int rotations)
    {
        if (results_.size() >= limits_.maxSolutions)
            return;
        if (idx == goals.size()) {
            finalize();
            return;
        }
        const Node *g = goals[idx];
        switch (g->kind) {
          case Node::Kind::And: {
            std::vector<const Node *> next(goals.begin(),
                                           goals.begin() + idx);
            for (const auto &c : g->children)
                next.push_back(c.get());
            next.insert(next.end(), goals.begin() + idx + 1,
                        goals.end());
            search(next, idx, 0);
            return;
          }
          case Node::Kind::Or: {
            for (const auto &c : g->children) {
                std::vector<const Node *> next = goals;
                next[idx] = c.get();
                search(next, idx, 0);
                if (results_.size() >= limits_.maxSolutions)
                    return;
            }
            return;
          }
          case Node::Kind::Collect: {
            collects_.push_back(g);
            search(goals, idx + 1, 0);
            collects_.pop_back();
            return;
          }
          case Node::Kind::Atomic:
            break;
        }

        if (isDeferredAtomic(*g)) {
            deferred_.push_back(g);
            search(goals, idx + 1, 0);
            deferred_.pop_back();
            return;
        }

        // Collect unassigned variables of this atomic.
        std::vector<size_t> unassigned;
        for (size_t i = 0; i < g->vars.size(); ++i) {
            if (!bindings.count(g->vars[i]))
                unassigned.push_back(i);
        }

        if (unassigned.empty()) {
            ++stats_.checks;
            if (evalAtomic(*g, bindings, ctx_))
                search(goals, idx + 1, 0);
            return;
        }

        // Try to generate candidates for one of the unassigned
        // variables; generators tolerate other variables still being
        // free (the goal is revisited after each assignment).
        for (size_t pos : unassigned) {
            auto candidates = genCandidates(*g, pos, bindings, ctx_);
            if (candidates) {
                tryCandidates(goals, idx, g, g->vars[pos],
                              *candidates);
                return;
            }
        }

        // Not ready: rotate this goal to the back. If every remaining
        // goal is equally stuck, defer it — its variables can only be
        // bound by collects (library idioms introduce every regular
        // variable through a generating atomic).
        if (rotations < static_cast<int>(goals.size() - idx)) {
            std::vector<const Node *> next = goals;
            next.erase(next.begin() + idx);
            next.push_back(g);
            search(next, idx, rotations + 1);
            return;
        }
        deferred_.push_back(g);
        search(goals, idx + 1, 0);
        deferred_.pop_back();
    }

    void
    tryCandidates(std::vector<const Node *> &goals, size_t idx,
                  const Node *g, const std::string &var,
                  const std::vector<const Value *> &candidates)
    {
        std::set<const Value *> seen;
        for (const Value *c : candidates) {
            if (!c || !seen.insert(c).second)
                continue;
            budgetCheck();
            bindings[var] = c;
            ++stats_.checks;
            bool unassigned_left = false;
            for (const auto &name : g->vars) {
                if (!bindings.count(name)) {
                    unassigned_left = true;
                    break;
                }
            }
            bool ok = true;
            if (!unassigned_left)
                ok = evalAtomic(*g, bindings, ctx_);
            if (ok) {
                if (unassigned_left) {
                    // Still unbound variables: revisit this goal.
                    search(goals, idx, 0);
                } else {
                    search(goals, idx + 1, 0);
                }
            }
            bindings.erase(var);
            if (results_.size() >= limits_.maxSolutions)
                return;
        }
    }

    void
    finalize()
    {
        std::vector<std::string> added;
        if (!runCollects(0, added)) {
            for (const auto &name : added)
                bindings.erase(name);
            return;
        }
        bool ok = true;
        for (const Node *g : deferred_) {
            ++stats_.checks;
            if (!evalAtomic(*g, bindings, ctx_)) {
                ok = false;
                break;
            }
        }
        if (ok)
            emit();
        for (const auto &name : added)
            bindings.erase(name);
    }

    /**
     * Instantiate collect @p ci: enumerate all solutions of the body
     * (whose variable names contain "[#]") and bind them as indexed
     * arrays. Returns false if any collect yields zero solutions.
     */
    bool
    runCollects(size_t ci, std::vector<std::string> &added)
    {
        if (ci == collects_.size())
            return true;
        const Node *col = collects_[ci];

        // Solve the body in a fresh search over the same bindings.
        std::vector<Solution> subresults;
        SolverLimits sublimits;
        sublimits.maxSolutions =
            static_cast<size_t>(col->collectMax);
        sublimits.maxAssignments = limits_.maxAssignments;
        SearchState sub(ctx_, stats_, sublimits, subresults);
        sub.bindings = bindings;
        sub.run(col->collectBody.get());

        // Dedup by the '#'-indexed variables only.
        std::set<std::string> seen;
        int k = 0;
        for (const Solution &s : subresults) {
            std::ostringstream key;
            std::vector<std::pair<std::string, const Value *>> fresh;
            for (const auto &[name, value] : s.bindings) {
                if (name.find("[#]") == std::string::npos)
                    continue;
                key << name << "=" << value << ";";
                fresh.emplace_back(name, value);
            }
            if (fresh.empty() || !seen.insert(key.str()).second)
                continue;
            for (auto &[name, value] : fresh) {
                std::string indexed = name;
                size_t pos = indexed.find("[#]");
                indexed.replace(pos, 3,
                                "[" + std::to_string(k) + "]");
                // '#' may appear in several components.
                while ((pos = indexed.find("[#]")) !=
                       std::string::npos) {
                    indexed.replace(pos, 3,
                                    "[" + std::to_string(k) + "]");
                }
                bindings[indexed] = value;
                added.push_back(indexed);
            }
            ++k;
            if (k >= col->collectMax)
                break;
        }
        // An empty collect binds an empty array; idioms that need at
        // least one element say so through constraints on element 0.
        return runCollects(ci + 1, added);
    }

    void
    emit()
    {
        Solution s;
        s.bindings = bindings;
        // Dedup identical assignments arising from overlapping
        // disjunction branches.
        std::ostringstream key;
        for (const auto &[name, value] : s.bindings)
            key << name << "=" << value << ";";
        if (!emitted_.insert(key.str()).second)
            return;
        ++stats_.solutions;
        results_.push_back(std::move(s));
    }

    AtomContext ctx_;
    SolveStats &stats_;
    const SolverLimits &limits_;
    std::vector<Solution> &results_;
    std::vector<const Node *> collects_;
    std::vector<const Node *> deferred_;
    std::set<std::string> emitted_;
};

} // namespace

Solver::Solver(ir::Function *func, analysis::FunctionAnalyses &analyses)
    : func_(func), analyses_(analyses),
      index_(analyses.candidateIndex())
{
}

std::vector<Solution>
Solver::solveAll(const ConstraintProgram &program,
                 const SolverLimits &limits)
{
    std::vector<Solution> results;
    AtomContext ctx;
    ctx.func = func_;
    ctx.analyses = &analyses_;
    ctx.index = &index_;
    SearchState state(ctx, stats_, limits, results);
    state.run(program.root.get());
    return results;
}

} // namespace repro::solver
