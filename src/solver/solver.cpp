#include "solver/solver.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>

#include "solver/atomics.h"
#include "support/diagnostics.h"

namespace repro::solver {

using ir::Value;

const char *
solveStatusToken(SolveStatus status)
{
    switch (status) {
      case SolveStatus::BudgetExhausted:
        return "budget";
      case SolveStatus::DeadlineExceeded:
        return "deadline";
      case SolveStatus::Complete:
        break;
    }
    return "";
}

SolveStatus
worseStatus(SolveStatus a, SolveStatus b)
{
    return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

std::vector<const Value *>
Solution::lookupArray(const std::string &pattern) const
{
    std::vector<const Value *> out;
    size_t star = pattern.find("[*]");
    if (star == std::string::npos) {
        if (const Value *v = lookup(pattern))
            out.push_back(v);
        return out;
    }
    // One reused key buffer: the prefix is written once, only the
    // index digits and the suffix are rewritten per probe, and the
    // loop exits on the first gap after building that key once.
    std::string key(pattern, 0, star);
    key += '[';
    const size_t digits_at = key.size();
    for (int k = 0;; ++k) {
        key.resize(digits_at);
        key += std::to_string(k);
        key += ']';
        key.append(pattern, star + 3, std::string::npos);
        auto it = bindings.find(key);
        if (it == bindings.end())
            break;
        out.push_back(it->second);
    }
    return out;
}

std::string
Solution::str() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, value] : bindings) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << name << "\": " << value->handle();
    }
    os << "}";
    return os.str();
}

std::string
Node::str(int indent) const
{
    std::ostringstream os;
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (kind) {
      case Kind::And:
      case Kind::Or:
        os << pad << (kind == Kind::And ? "and" : "or") << "\n";
        for (const auto &c : children)
            os << c->str(indent + 1);
        break;
      case Kind::Collect:
        os << pad << "collect(max=" << collectMax << ")\n"
           << collectBody->str(indent + 1);
        break;
      case Kind::Atomic: {
        os << pad << "atomic#" << static_cast<int>(atomic);
        if (!opcodeName.empty())
            os << " " << opcodeName;
        if (argPosition)
            os << " pos=" << argPosition;
        for (const auto &v : vars)
            os << " {" << v << "}";
        for (const auto &list : varLists) {
            os << " [";
            for (const auto &v : list)
                os << " {" << v << "}";
            os << " ]";
        }
        os << "\n";
        break;
      }
    }
    return os.str();
}

namespace {

/**
 * Private unwind token of both engines: thrown by budgetCheck() when
 * a limit trips, caught at the top of run(), never escapes the
 * solver. Deliberately NOT a FatalError — real fatal errors (bad
 * atomics, broken programs) must propagate to the caller, while limit
 * exhaustion is a normal, degradable outcome carried in SolveStatus
 * with the solutions found so far.
 */
struct SearchAborted
{
    SolveStatus reason;
};

/** Deadline probe shared by both engines (strided off the hot path). */
inline void
deadlineCheck(const SolverLimits &limits, uint64_t assignments)
{
    if (limits.hasDeadline() &&
        (assignments & (SolverLimits::kDeadlineCheckStride - 1)) == 0 &&
        std::chrono::steady_clock::now() >= limits.deadline)
        throw SearchAborted{SolveStatus::DeadlineExceeded};
}

/** Entry probe: an already-expired deadline does zero search work. */
inline bool
deadlineExpired(const SolverLimits &limits)
{
    return limits.hasDeadline() &&
           std::chrono::steady_clock::now() >= limits.deadline;
}

/**
 * The compiled search: recursive backtracking over a slot-addressed
 * CompiledProgram.
 *
 * State layout (the whole point of the compilation step):
 *  - `slots` is the dense partial assignment — binding is one vector
 *    store plus counter updates, no string hashing;
 *  - `unbound_` holds one per-atomic counter of unbound positional
 *    variables, maintained through the program's slot-use CSR, so
 *    readiness is an integer compare instead of a bindings scan;
 *  - the goal list is a ring of node ids over `buf_` between `head_`
 *    and `tail_`: And splices its children in front (O(children)),
 *    Or substitutes in place (O(1)), rotation moves the head to the
 *    tail (O(1)) — where the interpreted engine copied the whole
 *    goal vector for each of these;
 *  - collect-added bindings go through `trail_` and are unwound after
 *    emission.
 *
 * Every frame undoes its schedule edits with relative arithmetic on
 * exit (never with saved absolute indices), which keeps reallocation
 * of `buf_` transparent to the frames above.
 *
 * Traversal order replicates the reference engine exactly: the same
 * goals are tried in the same order with the same candidate sets, so
 * SolveStats and the emitted solution sets are byte-identical.
 */
class CompiledSearch
{
  public:
    CompiledSearch(const CompiledProgram &prog, AtomContext ctx,
                   SolveStats &stats, const SolverLimits &limits,
                   std::vector<SlotBindings> &results)
        : prog_(prog), ctx_(ctx), stats_(stats), limits_(limits),
          results_(results)
    {}

    /** Dense bindings; pre-seed before run() for collect sub-search. */
    SlotBindings slots;

    /** How the most recent run() ended. */
    SolveStatus status = SolveStatus::Complete;

    void
    run(uint32_t root)
    {
        status = SolveStatus::Complete;
        if (deadlineExpired(limits_)) {
            status = SolveStatus::DeadlineExceeded;
            return;
        }
        // Reusable across runs (the collect sub-search pool below):
        // only first-run state is allocated, stale dedup stamps are
        // neutralized by the monotonic epoch, and the goal ring keeps
        // whatever capacity earlier runs grew.
        if (slots.empty())
            slots.assign(prog_.numSlots(), nullptr);
        initUnbound();
        size_t universe = ctx_.index->universe().size();
        if (seen_.size() != universe) {
            seen_.assign(universe, 0);
            epoch_ = 0;
        }
        if (buf_.empty())
            buf_.assign(64, 0);
        head_ = tail_ = buf_.size() / 2;
        buf_[tail_++] = root;
        emitted_.clear();
        // A budget throw unwinds past the push/pop pairs of a prior
        // run; drop any such leftovers or a reused sub-search would
        // evaluate phantom deferred goals and collects.
        collects_.clear();
        deferred_.clear();
        trail_.clear();
        depth_ = 0;
        try {
            search(0);
        } catch (const SearchAborted &aborted) {
            // Limit tripped: return the solutions found so far.
            status = aborted.reason;
        }
    }

  private:
    void
    budgetCheck()
    {
        if (++stats_.assignments > limits_.maxAssignments)
            throw SearchAborted{SolveStatus::BudgetExhausted};
        deadlineCheck(limits_, stats_.assignments);
    }

    void
    bind(uint32_t slot, const Value *v)
    {
        if (!slots[slot]) {
            for (const uint32_t *n = prog_.slotUsesBegin(slot),
                                *e = prog_.slotUsesEnd(slot);
                 n != e; ++n) {
                --unbound_[*n];
            }
        }
        slots[slot] = v;
    }

    void
    unbind(uint32_t slot)
    {
        if (!slots[slot])
            return; // already erased by a collect overwrite
        slots[slot] = nullptr;
        for (const uint32_t *n = prog_.slotUsesBegin(slot),
                            *e = prog_.slotUsesEnd(slot);
             n != e; ++n) {
            ++unbound_[*n];
        }
    }

    void
    initUnbound()
    {
        unbound_.assign(prog_.numNodes(), 0);
        for (uint32_t id = 0; id < prog_.numNodes(); ++id) {
            const CompiledNode &n = prog_.node(id);
            if (n.kind != Node::Kind::Atomic)
                continue;
            uint32_t c = 0;
            for (size_t i = 0; i < n.numVars(); ++i) {
                if (!slots[prog_.varSlot(n, i)])
                    ++c;
            }
            unbound_[id] = c;
        }
    }

    /** Make room for @p need goal cells in front of head_. */
    void
    ensureFront(size_t need)
    {
        if (head_ >= need)
            return;
        size_t live = tail_ - head_;
        size_t newSize = std::max(buf_.size() * 2, live + need + 64);
        std::vector<uint32_t> grown(newSize);
        size_t newHead = need + (newSize - live - need) / 2;
        std::copy(buf_.begin() + static_cast<ptrdiff_t>(head_),
                  buf_.begin() + static_cast<ptrdiff_t>(tail_),
                  grown.begin() + static_cast<ptrdiff_t>(newHead));
        buf_.swap(grown);
        head_ = newHead;
        tail_ = newHead + live;
    }

    void
    ensureBack()
    {
        if (tail_ == buf_.size())
            buf_.resize(buf_.size() * 2);
    }

    /** Pooled per-depth buffer (stable under deeper recursion). */
    std::vector<const Value *> &
    uniqueAt(size_t depth)
    {
        while (uniquePool_.size() <= depth)
            uniquePool_.emplace_back();
        std::vector<const Value *> &v = uniquePool_[depth];
        v.clear();
        return v;
    }

    void
    search(int rotations)
    {
        if (results_.size() >= limits_.maxSolutions)
            return;
        if (head_ == tail_) {
            finalize();
            return;
        }
        ++depth_;
        searchGoal(rotations);
        --depth_;
    }

    void
    searchGoal(int rotations)
    {
        const uint32_t gid = buf_[head_];
        const CompiledNode &g = prog_.node(gid);
        switch (g.kind) {
          case Node::Kind::And: {
            size_t k = g.numChildren();
            if (k > 0) {
                ensureFront(k - 1);
                head_ -= k - 1;
                const std::vector<uint32_t> &kids = prog_.childIds();
                for (size_t i = 0; i < k; ++i)
                    buf_[head_ + i] = kids[g.childBegin + i];
                search(0);
                head_ += k - 1;
            } else {
                ++head_;
                search(0);
                --head_;
            }
            buf_[head_] = gid;
            return;
          }
          case Node::Kind::Or: {
            for (uint32_t i = g.childBegin; i < g.childEnd; ++i) {
                buf_[head_] = prog_.childIds()[i];
                search(0);
                if (results_.size() >= limits_.maxSolutions)
                    break;
            }
            buf_[head_] = gid;
            return;
          }
          case Node::Kind::Collect: {
            collects_.push_back(gid);
            ++head_;
            search(0);
            --head_;
            buf_[head_] = gid;
            collects_.pop_back();
            return;
          }
          case Node::Kind::Atomic:
            break;
        }

        if (g.deferred) {
            deferred_.push_back(gid);
            ++head_;
            search(0);
            --head_;
            buf_[head_] = gid;
            deferred_.pop_back();
            return;
        }

        // Readiness is one counter load — the unbound positions are
        // only enumerated when a generator is actually needed.
        if (unbound_[gid] == 0) {
            ++stats_.checks;
            if (evalAtomic(prog_, g, slots, ctx_)) {
                ++head_;
                search(0);
                --head_;
                buf_[head_] = gid;
            }
            return;
        }

        // Try to generate candidates for one of the unassigned
        // variables; generators tolerate other variables still being
        // free (the goal is revisited after each assignment).
        for (size_t i = 0; i < g.numVars(); ++i) {
            uint32_t slot = prog_.varSlot(g, i);
            if (slots[slot])
                continue;
            const std::vector<const Value *> *candidates =
                genCandidates(prog_, g, i, slots, ctx_, scratch_);
            if (candidates) {
                tryCandidates(gid, g, slot, *candidates);
                return;
            }
        }

        // Not ready: rotate this goal to the back. If every remaining
        // goal is equally stuck, defer it — its variables can only be
        // bound by collects (library idioms introduce every regular
        // variable through a generating atomic).
        if (rotations < static_cast<int>(tail_ - head_)) {
            ++stats_.rotations;
            ensureBack();
            buf_[tail_++] = gid;
            ++head_;
            search(rotations + 1);
            --head_;
            --tail_;
            buf_[head_] = gid;
            return;
        }
        deferred_.push_back(gid);
        ++head_;
        search(0);
        --head_;
        buf_[head_] = gid;
        deferred_.pop_back();
    }

    void
    tryCandidates(uint32_t gid, const CompiledNode &g, uint32_t slot,
                  const std::vector<const Value *> &candidates)
    {
        // Deduplicate up front with epoch stamps on the universe
        // positions — no per-candidate tree allocation, and the
        // stamps need not survive the recursion below.
        std::vector<const Value *> &unique = uniqueAt(depth_);
        if (++epoch_ == 0) {
            std::fill(seen_.begin(), seen_.end(), 0u);
            epoch_ = 1;
        }
        for (const Value *c : candidates) {
            if (!c)
                continue;
            uint32_t vi = ctx_.index->indexOf(c);
            if (vi != analysis::CandidateIndex::npos) {
                if (seen_[vi] == epoch_) {
                    ++stats_.dedupHits;
                    continue;
                }
                seen_[vi] = epoch_;
            } else {
                // Candidates outside the universe (none on library
                // paths): linear fallback keeps semantics exact.
                if (std::find(outside_.begin(), outside_.end(), c) !=
                    outside_.end()) {
                    ++stats_.dedupHits;
                    continue;
                }
                outside_.push_back(c);
            }
            unique.push_back(c);
        }
        outside_.clear();

        for (const Value *c : unique) {
            budgetCheck();
            bind(slot, c);
            ++stats_.checks;
            bool unassigned_left = unbound_[gid] > 0;
            bool ok = true;
            if (!unassigned_left)
                ok = evalAtomic(prog_, g, slots, ctx_);
            if (ok) {
                if (unassigned_left) {
                    // Still unbound variables: revisit this goal.
                    search(0);
                } else {
                    ++head_;
                    search(0);
                    --head_;
                    buf_[head_] = gid;
                }
            }
            unbind(slot);
            if (results_.size() >= limits_.maxSolutions)
                return;
        }
    }

    void
    finalize()
    {
        size_t mark = trail_.size();
        bool ok = runCollects(0);
        if (ok) {
            for (uint32_t d : deferred_) {
                ++stats_.checks;
                if (!evalAtomic(prog_, prog_.node(d), slots, ctx_)) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                emit();
        }
        while (trail_.size() > mark) {
            unbind(trail_.back());
            trail_.pop_back();
        }
    }

    /**
     * Instantiate collect @p ci: enumerate all solutions of the body
     * (whose variable slots carry the "[#]" marker) and bind them as
     * indexed arrays through the pre-computed template expansions.
     * Returns false if any collect yields zero solutions — which
     * cannot happen here (an empty collect binds an empty array), but
     * the signature mirrors the reference engine. Defined after
     * SubSearch (it embeds one search per collect node).
     */
    bool runCollects(size_t ci);

    void
    emit()
    {
        // Dedup identical assignments arising from overlapping
        // disjunction branches. Walking the name-ordered slots makes
        // the key byte-identical to the reference engine's
        // map-iteration key.
        std::ostringstream key;
        for (uint32_t s : prog_.orderedSlots()) {
            if (const Value *v = slots[s])
                key << prog_.slotName(s) << "=" << v << ";";
        }
        if (!emitted_.insert(key.str()).second)
            return;
        ++stats_.solutions;
        results_.push_back(slots);
    }

    /** One pooled collect sub-search: its limits and result storage
     *  must outlive the CompiledSearch that references them. Defined
     *  after this class (it embeds one). */
    struct SubSearch;

    const CompiledProgram &prog_;
    AtomContext ctx_;
    SolveStats &stats_;
    const SolverLimits &limits_;
    std::vector<SlotBindings> &results_;
    /** Collect sub-searches, keyed by collect node id. */
    std::map<uint32_t, std::unique_ptr<SubSearch>> subPool_;

    // Goal schedule ring: live goals are buf_[head_, tail_).
    std::vector<uint32_t> buf_;
    size_t head_ = 0, tail_ = 0;

    std::vector<uint32_t> unbound_;  ///< per-node unbound-var counters
    std::vector<uint32_t> collects_; ///< collect node ids on the path
    std::vector<uint32_t> deferred_; ///< deferred atomic node ids
    std::vector<uint32_t> trail_;    ///< collect-bound slots to unwind

    // Candidate dedup: epoch stamps per universe position.
    std::vector<uint32_t> seen_;
    uint32_t epoch_ = 0;
    std::vector<const Value *> outside_;

    // Reused buffers: one scratch for generation (drained before any
    // recursion) and one deduped list per depth (lives across it).
    std::vector<const Value *> scratch_;
    std::deque<std::vector<const Value *>> uniquePool_;
    size_t depth_ = 0;

    std::set<std::string> emitted_;
};

struct CompiledSearch::SubSearch
{
    SolverLimits limits;
    std::vector<SlotBindings> results;
    CompiledSearch search;

    SubSearch(const CompiledProgram &prog, AtomContext ctx,
              SolveStats &stats, const SolverLimits &l)
        : limits(l), search(prog, ctx, stats, limits, results)
    {}
};

bool
CompiledSearch::runCollects(size_t ci)
{
    if (ci == collects_.size())
        return true;
    const uint32_t colId = collects_[ci];
    const CompiledNode &col = prog_.node(colId);

    // Solve the body in a search over the same bindings — seeding is
    // one dense vector copy. The search object is pooled per collect
    // node: finalize() runs once per candidate leaf, so a fresh
    // sub-search here would redo universe-sized allocation and
    // zeroing on the hot path.
    auto &slot = subPool_[colId];
    if (!slot) {
        SolverLimits sublimits;
        sublimits.maxSolutions = static_cast<size_t>(col.collectMax);
        sublimits.maxAssignments = limits_.maxAssignments;
        sublimits.deadline = limits_.deadline;
        slot = std::make_unique<SubSearch>(prog_, ctx_, stats_,
                                           sublimits);
    }
    SubSearch &sub = *slot;
    sub.results.clear();
    sub.search.slots = slots;
    sub.search.run(col.body);
    // A sub-search that hit a limit kept its partial collect; the
    // emitted solution is then degraded too, so the abort reason must
    // surface on the outer search (the shared assignments counter
    // already guarantees the budget case re-trips out here).
    status = worseStatus(status, sub.search.status);

    // Dedup by the '#'-marked template slots only.
    std::set<std::string> seen;
    int k = 0;
    for (const SlotBindings &s : sub.results) {
        std::ostringstream key;
        std::vector<std::pair<uint32_t, const Value *>> fresh;
        for (uint32_t ts : prog_.templateSlotsByName()) {
            const Value *v = s[ts];
            if (!v)
                continue;
            key << prog_.slotName(ts) << "=" << v << ";";
            fresh.emplace_back(ts, v);
        }
        if (fresh.empty() || !seen.insert(key.str()).second)
            continue;
        for (const auto &[ts, v] : fresh) {
            uint32_t indexed = prog_.expandedSlot(ts, k);
            bind(indexed, v);
            trail_.push_back(indexed);
        }
        ++k;
        if (k >= col.collectMax)
            break;
    }
    // An empty collect binds an empty array; idioms that need at
    // least one element say so through constraints on element 0.
    return runCollects(ci + 1);
}

/**
 * The pre-compilation engine: the recursive search over goals with
 * name-keyed bindings and copied goal vectors. Golden reference for
 * CompiledSearch — do not "optimize" this; its value is that it
 * computes the answer the slow, obvious way.
 */
class ReferenceSearch
{
  public:
    ReferenceSearch(AtomContext ctx, SolveStats &stats,
                    const SolverLimits &limits,
                    std::vector<Solution> &results)
        : ctx_(ctx), stats_(stats), limits_(limits), results_(results)
    {}

    Bindings bindings;

    /** How the most recent run() ended. */
    SolveStatus status = SolveStatus::Complete;

    void
    run(const Node *root)
    {
        status = SolveStatus::Complete;
        if (deadlineExpired(limits_)) {
            status = SolveStatus::DeadlineExceeded;
            return;
        }
        std::vector<const Node *> goals{root};
        try {
            search(goals, 0, 0);
        } catch (const SearchAborted &aborted) {
            // Limit tripped: return the solutions found so far.
            status = aborted.reason;
        }
    }

  private:
    void
    budgetCheck()
    {
        if (++stats_.assignments > limits_.maxAssignments)
            throw SearchAborted{SolveStatus::BudgetExhausted};
        deadlineCheck(limits_, stats_.assignments);
    }

    void
    search(std::vector<const Node *> &goals, size_t idx, int rotations)
    {
        if (results_.size() >= limits_.maxSolutions)
            return;
        if (idx == goals.size()) {
            finalize();
            return;
        }
        const Node *g = goals[idx];
        switch (g->kind) {
          case Node::Kind::And: {
            std::vector<const Node *> next(goals.begin(),
                                           goals.begin() + idx);
            for (const auto &c : g->children)
                next.push_back(c.get());
            next.insert(next.end(), goals.begin() + idx + 1,
                        goals.end());
            search(next, idx, 0);
            return;
          }
          case Node::Kind::Or: {
            for (const auto &c : g->children) {
                std::vector<const Node *> next = goals;
                next[idx] = c.get();
                search(next, idx, 0);
                if (results_.size() >= limits_.maxSolutions)
                    return;
            }
            return;
          }
          case Node::Kind::Collect: {
            collects_.push_back(g);
            search(goals, idx + 1, 0);
            collects_.pop_back();
            return;
          }
          case Node::Kind::Atomic:
            break;
        }

        if (isDeferredAtomic(*g)) {
            deferred_.push_back(g);
            search(goals, idx + 1, 0);
            deferred_.pop_back();
            return;
        }

        // Collect unassigned variables of this atomic.
        std::vector<size_t> unassigned;
        for (size_t i = 0; i < g->vars.size(); ++i) {
            if (!bindings.count(g->vars[i]))
                unassigned.push_back(i);
        }

        if (unassigned.empty()) {
            ++stats_.checks;
            if (evalAtomic(*g, bindings, ctx_))
                search(goals, idx + 1, 0);
            return;
        }

        // Try to generate candidates for one of the unassigned
        // variables; generators tolerate other variables still being
        // free (the goal is revisited after each assignment).
        for (size_t pos : unassigned) {
            auto candidates = genCandidates(*g, pos, bindings, ctx_);
            if (candidates) {
                tryCandidates(goals, idx, g, g->vars[pos],
                              *candidates);
                return;
            }
        }

        // Not ready: rotate this goal to the back. If every remaining
        // goal is equally stuck, defer it — its variables can only be
        // bound by collects (library idioms introduce every regular
        // variable through a generating atomic).
        if (rotations < static_cast<int>(goals.size() - idx)) {
            ++stats_.rotations;
            std::vector<const Node *> next = goals;
            next.erase(next.begin() + static_cast<ptrdiff_t>(idx));
            next.push_back(g);
            search(next, idx, rotations + 1);
            return;
        }
        deferred_.push_back(g);
        search(goals, idx + 1, 0);
        deferred_.pop_back();
    }

    void
    tryCandidates(std::vector<const Node *> &goals, size_t idx,
                  const Node *g, const std::string &var,
                  const std::vector<const Value *> &candidates)
    {
        // Same shape as the compiled engine: dedup first, then try —
        // so the dedupHits counts match it exactly.
        std::set<const Value *> seen;
        std::vector<const Value *> unique;
        for (const Value *c : candidates) {
            if (!c)
                continue;
            if (!seen.insert(c).second) {
                ++stats_.dedupHits;
                continue;
            }
            unique.push_back(c);
        }
        for (const Value *c : unique) {
            budgetCheck();
            bindings[var] = c;
            ++stats_.checks;
            bool unassigned_left = false;
            for (const auto &name : g->vars) {
                if (!bindings.count(name)) {
                    unassigned_left = true;
                    break;
                }
            }
            bool ok = true;
            if (!unassigned_left)
                ok = evalAtomic(*g, bindings, ctx_);
            if (ok) {
                if (unassigned_left) {
                    // Still unbound variables: revisit this goal.
                    search(goals, idx, 0);
                } else {
                    search(goals, idx + 1, 0);
                }
            }
            bindings.erase(var);
            if (results_.size() >= limits_.maxSolutions)
                return;
        }
    }

    void
    finalize()
    {
        std::vector<std::string> added;
        if (!runCollects(0, added)) {
            for (const auto &name : added)
                bindings.erase(name);
            return;
        }
        bool ok = true;
        for (const Node *g : deferred_) {
            ++stats_.checks;
            if (!evalAtomic(*g, bindings, ctx_)) {
                ok = false;
                break;
            }
        }
        if (ok)
            emit();
        for (const auto &name : added)
            bindings.erase(name);
    }

    /**
     * Instantiate collect @p ci: enumerate all solutions of the body
     * (whose variable names contain "[#]") and bind them as indexed
     * arrays. Returns false if any collect yields zero solutions.
     */
    bool
    runCollects(size_t ci, std::vector<std::string> &added)
    {
        if (ci == collects_.size())
            return true;
        const Node *col = collects_[ci];

        // Solve the body in a fresh search over the same bindings.
        std::vector<Solution> subresults;
        SolverLimits sublimits;
        sublimits.maxSolutions =
            static_cast<size_t>(col->collectMax);
        sublimits.maxAssignments = limits_.maxAssignments;
        sublimits.deadline = limits_.deadline;
        ReferenceSearch sub(ctx_, stats_, sublimits, subresults);
        sub.bindings = bindings;
        sub.run(col->collectBody.get());
        status = worseStatus(status, sub.status);

        // Dedup by the '#'-indexed variables only.
        std::set<std::string> seen;
        int k = 0;
        for (const Solution &s : subresults) {
            std::ostringstream key;
            std::vector<std::pair<std::string, const Value *>> fresh;
            for (const auto &[name, value] : s.bindings) {
                if (name.find("[#]") == std::string::npos)
                    continue;
                key << name << "=" << value << ";";
                fresh.emplace_back(name, value);
            }
            if (fresh.empty() || !seen.insert(key.str()).second)
                continue;
            for (auto &[name, value] : fresh) {
                std::string indexed = name;
                size_t pos = indexed.find("[#]");
                indexed.replace(pos, 3,
                                "[" + std::to_string(k) + "]");
                // '#' may appear in several components.
                while ((pos = indexed.find("[#]")) !=
                       std::string::npos) {
                    indexed.replace(pos, 3,
                                    "[" + std::to_string(k) + "]");
                }
                bindings[indexed] = value;
                added.push_back(indexed);
            }
            ++k;
            if (k >= col->collectMax)
                break;
        }
        // An empty collect binds an empty array; idioms that need at
        // least one element say so through constraints on element 0.
        return runCollects(ci + 1, added);
    }

    void
    emit()
    {
        Solution s;
        s.bindings = bindings;
        // Dedup identical assignments arising from overlapping
        // disjunction branches.
        std::ostringstream key;
        for (const auto &[name, value] : s.bindings)
            key << name << "=" << value << ";";
        if (!emitted_.insert(key.str()).second)
            return;
        ++stats_.solutions;
        results_.push_back(std::move(s));
    }

    AtomContext ctx_;
    SolveStats &stats_;
    const SolverLimits &limits_;
    std::vector<Solution> &results_;
    std::vector<const Node *> collects_;
    std::vector<const Node *> deferred_;
    std::set<std::string> emitted_;
};

} // namespace

Solver::Solver(ir::Function *func, analysis::FunctionAnalyses &analyses)
    : func_(func), analyses_(analyses),
      index_(analyses.candidateIndex())
{
}

std::vector<Solution>
Solver::solveAll(const CompiledProgram &program,
                 const SolverLimits &limits)
{
    AtomContext ctx;
    ctx.func = func_;
    ctx.analyses = &analyses_;
    ctx.index = &index_;

    std::vector<SlotBindings> snapshots;
    CompiledSearch state(program, ctx, stats_, limits, snapshots);
    state.run(program.root());
    lastStatus_ = state.status;

    // Materialize the name-keyed Solutions the rest of the pipeline
    // consumes. orderedSlots() is lexicographic, so the hinted
    // insertions build each map in O(bindings).
    std::vector<Solution> results;
    results.reserve(snapshots.size());
    for (const SlotBindings &snap : snapshots) {
        Solution s;
        for (uint32_t slot : program.orderedSlots()) {
            if (const Value *v = snap[slot]) {
                s.bindings.emplace_hint(s.bindings.end(),
                                        program.slotName(slot), v);
            }
        }
        results.push_back(std::move(s));
    }
    return results;
}

std::vector<Solution>
Solver::solveAll(const ConstraintProgram &program,
                 const SolverLimits &limits)
{
    CompiledProgram compiled(program);
    return solveAll(compiled, limits);
}

std::vector<Solution>
Solver::solveAllReference(const ConstraintProgram &program,
                          const SolverLimits &limits)
{
    std::vector<Solution> results;
    AtomContext ctx;
    ctx.func = func_;
    ctx.analyses = &analyses_;
    ctx.index = &index_;
    ReferenceSearch state(ctx, stats_, limits, results);
    state.run(program.root.get());
    lastStatus_ = state.status;
    return results;
}

} // namespace repro::solver
