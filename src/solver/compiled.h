/**
 * @file
 * Slot-addressed compilation of lowered constraint programs.
 *
 * The lowered Node tree (solver/constraint.h) names every variable by
 * a flattened string ("inner.iterator", "read[0].base_pointer"), so a
 * naive solver pays string hashing and map-node allocation on every
 * binding, readiness scan and wildcard probe — the innermost loop of
 * the whole pipeline. Compilation removes all of that work from the
 * search:
 *
 *  - every flattened variable name is interned once into a dense
 *    `uint32_t` slot (SymbolTable), so a binding is one vector store;
 *  - the And/Or/Atomic/Collect nodes are stored in one contiguous
 *    array with child/operand lists as index ranges into shared
 *    arrays, so the goal schedule is plain integer indices;
 *  - atomic payloads are resolved at compile time (opcode names to
 *    ir::Opcode, the IsConstantZero type selector to an enum), so no
 *    string comparison survives into evaluation;
 *  - the collect-body "[#]" name templates and the "[*]" wildcard
 *    list entries are pre-expanded into slot runs, so no
 *    `std::string::find`/`substr`/concatenation runs during search;
 *  - a slot-to-atomic use CSR backs the per-node unbound counters
 *    that replace readiness scans.
 *
 * A CompiledProgram is immutable after construction and holds no
 * per-search state, so one instance (cached per idiom next to
 * idioms::loweredIdiomOrNull) is shared by every thread of the
 * parallel matching driver.
 */
#ifndef SOLVER_COMPILED_H
#define SOLVER_COMPILED_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "solver/constraint.h"

namespace repro::solver {

/** Interned flattened-variable-name table of one compiled program. */
class SymbolTable
{
  public:
    static constexpr uint32_t kNoSlot = 0xffffffffu;

    /** Slot of @p name, interning it if new. */
    uint32_t
    intern(const std::string &name)
    {
        auto [it, inserted] = index_.emplace(
            name, static_cast<uint32_t>(names_.size()));
        if (inserted)
            names_.push_back(name);
        return it->second;
    }

    /** Slot of @p name, or kNoSlot when never interned. */
    uint32_t
    lookup(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? kNoSlot : it->second;
    }

    const std::string &name(uint32_t slot) const { return names_[slot]; }

    uint32_t size() const
    {
        return static_cast<uint32_t>(names_.size());
    }

  private:
    std::vector<std::string> names_;
    std::map<std::string, uint32_t> index_;
};

/** IsConstantZero type selector, resolved from Node::opcodeName. */
enum class ZeroKind : uint8_t
{
    Pointer,
    Integer,
    Float,
};

/**
 * True when @p name is an opcode spelling accepted by IDL
 * "is <op> instruction" atomics ("add", "gep", "getelementptr", ...).
 * The IDL semantic analyzer (idl/check.h) uses this to surface typo'd
 * opcode names at library load time instead of letting the atomic
 * silently resolve to an empty candidate set at solve time.
 */
bool knownOpcodeName(const std::string &name);

/**
 * Compile-time-resolved atomic payload shared by the compiled and the
 * reference evaluation paths (see solver/atomics.h).
 */
struct AtomicTraits
{
    idl::AtomicKind atomic = idl::AtomicKind::Same;
    /** Resolved opcode of IsOpcode atomics; valid iff opcodeKnown. */
    ir::Opcode opcode = ir::Opcode::Add;
    bool opcodeKnown = false;
    ZeroKind zero = ZeroKind::Pointer;
    int argPosition = 0;
    bool negated = false;
    bool strict = false;
    bool postDom = false;
    idl::FlowKind flow = idl::FlowKind::Any;
};

/**
 * One entry of a compiled variable list: either a direct slot or a
 * reference to a pre-expanded "[*]" wildcard run.
 */
struct ListEntry
{
    bool wildcard = false;
    /** Slot id, or wildcard-run id when wildcard is set. */
    uint32_t id = SymbolTable::kNoSlot;
};

/** One slot-addressed node; field meanings as in solver::Node. */
struct CompiledNode
{
    Node::Kind kind = Node::Kind::And;

    // Atomic payload.
    AtomicTraits traits;
    /** Pre-classified isDeferredAtomic() result. */
    bool deferred = false;
    /** Positional variable slots: varSlots()[varsBegin, varsEnd). */
    uint32_t varsBegin = 0, varsEnd = 0;
    /** Variable lists: lists()[listsBegin, listsEnd). */
    uint32_t listsBegin = 0, listsEnd = 0;

    // And / Or: childIds()[childBegin, childEnd).
    uint32_t childBegin = 0, childEnd = 0;

    // Collect.
    int collectMax = 0;
    uint32_t body = 0; ///< node id of the collect body

    size_t numVars() const { return varsEnd - varsBegin; }
    size_t numChildren() const { return childEnd - childBegin; }
};

/** Index range of one compiled variable list into listEntries(). */
struct CompiledList
{
    uint32_t begin = 0, end = 0;
};

/**
 * A lowered constraint program compiled to slot-addressed form.
 * Node 0 is always the root. Immutable after construction.
 */
class CompiledProgram
{
  public:
    /** Compile @p program (which stays unreferenced afterwards). */
    explicit CompiledProgram(const ConstraintProgram &program);

    const std::string &name() const { return name_; }
    uint32_t root() const { return 0; }
    uint32_t numNodes() const
    {
        return static_cast<uint32_t>(nodes_.size());
    }
    const CompiledNode &node(uint32_t id) const { return nodes_[id]; }

    uint32_t numSlots() const { return symbols_.size(); }
    const SymbolTable &symbols() const { return symbols_; }
    const std::string &slotName(uint32_t slot) const
    {
        return symbols_.name(slot);
    }

    /** Positional variable slot @p i of atomic @p n. */
    uint32_t
    varSlot(const CompiledNode &n, size_t i) const
    {
        return varSlots_[n.varsBegin + i];
    }

    const std::vector<uint32_t> &varSlots() const { return varSlots_; }
    const std::vector<uint32_t> &childIds() const { return childIds_; }
    const std::vector<CompiledList> &lists() const { return lists_; }
    const std::vector<ListEntry> &listEntries() const
    {
        return listEntries_;
    }

    /** Pre-expanded slots of wildcard run @p id, index order. */
    const std::vector<uint32_t> &wildcardRun(uint32_t id) const
    {
        return wildcardRuns_[id];
    }

    /**
     * Slot of template slot @p slot (whose name contains "[#]") with
     * every "[#]" replaced by "[k]". Valid for k < maxCollect().
     */
    uint32_t
    expandedSlot(uint32_t slot, int k) const
    {
        return expandBySlot_[slot][static_cast<size_t>(k)];
    }

    /** True when slotName(slot) contains the collect marker "[#]". */
    bool
    isTemplateSlot(uint32_t slot) const
    {
        return !expandBySlot_[slot].empty();
    }

    /** Template slots in lexicographic name order. */
    const std::vector<uint32_t> &templateSlotsByName() const
    {
        return templateSlotsByName_;
    }

    /** All slots in lexicographic name order (emission order). */
    const std::vector<uint32_t> &orderedSlots() const
    {
        return orderedSlots_;
    }

    /**
     * Atomic nodes referencing @p slot as a positional variable, one
     * entry per occurrence — the adjacency behind per-node unbound
     * counters.
     */
    const uint32_t *
    slotUsesBegin(uint32_t slot) const
    {
        return slotUseNodes_.data() + slotUseBegin_[slot];
    }

    const uint32_t *
    slotUsesEnd(uint32_t slot) const
    {
        return slotUseNodes_.data() + slotUseBegin_[slot + 1];
    }

    /** Largest collect bound in the program (wildcard-run length). */
    int maxCollect() const { return maxCollect_; }

  private:
    uint32_t compileNode(const Node &node);
    void finalizeTables();

    std::string name_;
    std::vector<CompiledNode> nodes_;
    std::vector<uint32_t> childIds_;
    std::vector<uint32_t> varSlots_;
    std::vector<CompiledList> lists_;
    std::vector<ListEntry> listEntries_;
    std::vector<std::vector<uint32_t>> wildcardRuns_;
    std::map<std::string, uint32_t> wildcardRunIds_;
    SymbolTable symbols_;
    std::vector<std::vector<uint32_t>> expandBySlot_;
    std::vector<uint32_t> templateSlotsByName_;
    std::vector<uint32_t> orderedSlots_;
    std::vector<uint32_t> slotUseBegin_;
    std::vector<uint32_t> slotUseNodes_;
    int maxCollect_ = 0;
};

} // namespace repro::solver

#endif // SOLVER_COMPILED_H
