#include "solver/compiled.h"

#include <algorithm>
#include <cctype>

#include "support/string_utils.h"

namespace repro::solver {

namespace {

/** Opcode spellings accepted by IDL "is <op> instruction" atomics. */
bool
opcodeFromName(const std::string &name, ir::Opcode &op)
{
    using ir::Opcode;
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub},
        {"mul", Opcode::Mul}, {"sdiv", Opcode::SDiv},
        {"srem", Opcode::SRem}, {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}, {"load", Opcode::Load},
        {"store", Opcode::Store}, {"gep", Opcode::GEP},
        {"getelementptr", Opcode::GEP}, {"alloca", Opcode::Alloca},
        {"icmp", Opcode::ICmp}, {"fcmp", Opcode::FCmp},
        {"select", Opcode::Select}, {"branch", Opcode::Br},
        {"br", Opcode::Br}, {"return", Opcode::Ret},
        {"ret", Opcode::Ret}, {"phi", Opcode::Phi},
        {"sext", Opcode::SExt}, {"zext", Opcode::ZExt},
        {"trunc", Opcode::Trunc}, {"sitofp", Opcode::SIToFP},
        {"fptosi", Opcode::FPToSI}, {"fpext", Opcode::FPExt},
        {"fptrunc", Opcode::FPTrunc}, {"call", Opcode::Call},
    };
    auto it = table.find(name);
    if (it == table.end())
        return false;
    op = it->second;
    return true;
}

/** Replace the FIRST "[*]" with "[k]" — the probe the interpreted
 *  expandVarList() performs at runtime. */
std::string
expandWildcardName(const std::string &name, int k)
{
    size_t star = name.find("[*]");
    return name.substr(0, star) + "[" + std::to_string(k) + "]" +
           name.substr(star + 3);
}

} // namespace

bool
knownOpcodeName(const std::string &name)
{
    ir::Opcode op;
    return opcodeFromName(name, op);
}

AtomicTraits
resolveAtomicTraits(const Node &node)
{
    AtomicTraits t;
    t.atomic = node.atomic;
    t.opcodeKnown = opcodeFromName(node.opcodeName, t.opcode);
    if (node.opcodeName == "integer")
        t.zero = ZeroKind::Integer;
    else if (node.opcodeName == "float")
        t.zero = ZeroKind::Float;
    else
        t.zero = ZeroKind::Pointer;
    t.argPosition = node.argPosition;
    t.negated = node.negated;
    t.strict = node.strict;
    t.postDom = node.postDom;
    t.flow = node.flow;
    return t;
}

uint32_t
CompiledProgram::compileNode(const Node &node)
{
    uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    {
        CompiledNode &cn = nodes_[id];
        cn.kind = node.kind;
        if (node.kind == Node::Kind::Atomic) {
            cn.traits = resolveAtomicTraits(node);
            cn.deferred =
                node.atomic == idl::AtomicKind::KernelClosure ||
                node.atomic == idl::AtomicKind::FlowKilledBy;
            cn.varsBegin = static_cast<uint32_t>(varSlots_.size());
            for (const auto &v : node.vars)
                varSlots_.push_back(symbols_.intern(v));
            cn.varsEnd = static_cast<uint32_t>(varSlots_.size());
            cn.listsBegin = static_cast<uint32_t>(lists_.size());
            for (const auto &list : node.varLists) {
                CompiledList cl;
                cl.begin = static_cast<uint32_t>(listEntries_.size());
                for (const auto &name : list) {
                    ListEntry e;
                    if (name.find("[*]") != std::string::npos) {
                        cn.deferred = true;
                        e.wildcard = true;
                        auto [it, inserted] = wildcardRunIds_.emplace(
                            name, static_cast<uint32_t>(
                                      wildcardRuns_.size()));
                        if (inserted)
                            wildcardRuns_.emplace_back();
                        e.id = it->second;
                    } else {
                        e.id = symbols_.intern(name);
                    }
                    listEntries_.push_back(e);
                }
                cl.end = static_cast<uint32_t>(listEntries_.size());
                lists_.push_back(cl);
            }
            cn.listsEnd = static_cast<uint32_t>(lists_.size());
        }
    }
    // Recursing reallocates nodes_, so child/body ids are collected
    // locally and written through a fresh reference afterwards.
    if (node.kind == Node::Kind::And || node.kind == Node::Kind::Or) {
        std::vector<uint32_t> kids;
        kids.reserve(node.children.size());
        for (const auto &c : node.children)
            kids.push_back(compileNode(*c));
        CompiledNode &cn = nodes_[id];
        cn.childBegin = static_cast<uint32_t>(childIds_.size());
        childIds_.insert(childIds_.end(), kids.begin(), kids.end());
        cn.childEnd = static_cast<uint32_t>(childIds_.size());
    } else if (node.kind == Node::Kind::Collect) {
        maxCollect_ = std::max(maxCollect_, node.collectMax);
        uint32_t body = compileNode(*node.collectBody);
        CompiledNode &cn = nodes_[id];
        cn.collectMax = node.collectMax;
        cn.body = body;
    }
    return id;
}

void
CompiledProgram::finalizeTables()
{
    // The wildcard runs must reach any index a binding can carry:
    // collect expansion is bounded by the largest collect, but atomics
    // may also name explicit indices ("read[0].base_pointer") that a
    // generator could bind directly — scan interned names for those.
    int runLen = maxCollect_;
    for (uint32_t s = 0; s < symbols_.size(); ++s) {
        const std::string &name = symbols_.name(s);
        for (size_t i = name.find('['); i != std::string::npos;
             i = name.find('[', i + 1)) {
            size_t j = i + 1;
            while (j < name.size() &&
                   std::isdigit(static_cast<unsigned char>(name[j]))) {
                ++j;
            }
            if (j > i + 1 && j < name.size() && name[j] == ']') {
                int idx = std::stoi(name.substr(i + 1, j - i - 1));
                runLen = std::max(runLen, idx + 1);
            }
        }
    }

    // Expand wildcard runs and "[#]" templates to fixpoint: expansion
    // interns new names, and a wildcard-expanded name may itself
    // carry the collect marker (or vice versa), so keep processing
    // until the symbol table stops growing.
    for (auto &[name, id] : wildcardRunIds_) {
        for (int k = 0; k < runLen; ++k)
            wildcardRuns_[id].push_back(
                symbols_.intern(expandWildcardName(name, k)));
    }
    for (uint32_t s = 0; s < symbols_.size(); ++s) {
        expandBySlot_.resize(symbols_.size());
        const std::string name = symbols_.name(s);
        if (name.find("[#]") == std::string::npos)
            continue;
        std::vector<uint32_t> expansions;
        expansions.reserve(static_cast<size_t>(maxCollect_));
        for (int k = 0; k < maxCollect_; ++k) {
            expansions.push_back(symbols_.intern(replaceAll(
                name, "[#]", "[" + std::to_string(k) + "]")));
        }
        expandBySlot_[s] = std::move(expansions);
    }
    expandBySlot_.resize(symbols_.size());

    // Name-sorted slot orders: orderedSlots_ drives emission (and the
    // emission dedup key), matching std::map iteration of the
    // interpreted engine byte for byte; templateSlotsByName_ drives
    // the collect dedup key the same way.
    orderedSlots_.resize(symbols_.size());
    for (uint32_t s = 0; s < symbols_.size(); ++s)
        orderedSlots_[s] = s;
    std::sort(orderedSlots_.begin(), orderedSlots_.end(),
              [this](uint32_t a, uint32_t b) {
                  return symbols_.name(a) < symbols_.name(b);
              });
    for (uint32_t s : orderedSlots_) {
        if (isTemplateSlot(s))
            templateSlotsByName_.push_back(s);
    }

    // Slot-to-atomic use CSR (one entry per positional occurrence).
    slotUseBegin_.assign(symbols_.size() + 1, 0);
    for (const CompiledNode &n : nodes_) {
        if (n.kind != Node::Kind::Atomic)
            continue;
        for (uint32_t i = n.varsBegin; i < n.varsEnd; ++i)
            ++slotUseBegin_[varSlots_[i] + 1];
    }
    for (size_t s = 1; s < slotUseBegin_.size(); ++s)
        slotUseBegin_[s] += slotUseBegin_[s - 1];
    slotUseNodes_.resize(slotUseBegin_.back());
    std::vector<uint32_t> fill(slotUseBegin_.begin(),
                               slotUseBegin_.end() - 1);
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
        const CompiledNode &n = nodes_[id];
        if (n.kind != Node::Kind::Atomic)
            continue;
        for (uint32_t i = n.varsBegin; i < n.varsEnd; ++i)
            slotUseNodes_[fill[varSlots_[i]]++] = id;
    }
}

CompiledProgram::CompiledProgram(const ConstraintProgram &program)
    : name_(program.name)
{
    compileNode(*program.root);
    finalizeTables();
}

} // namespace repro::solver
