#include "baselines/baselines.h"

#include <set>

#include "analysis/function_analyses.h"

namespace repro::baselines {

using analysis::DomTree;
using analysis::Loop;
using analysis::LoopInfo;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

const Instruction *
asInst(const Value *v)
{
    return v && v->isInstruction()
               ? static_cast<const Instruction *>(v)
               : nullptr;
}

/** Loop skeleton recovered structurally (no IDL involved). */
struct LoopParts
{
    const Instruction *iterator = nullptr;  ///< header phi
    const Instruction *comparison = nullptr;
    const Value *iterBegin = nullptr;
    const Value *iterEnd = nullptr;
    bool valid = false;
};

LoopParts
analyzeLoop(const Loop &loop)
{
    LoopParts parts;
    // The guard compare sits in the header and feeds its terminator.
    Instruction *term = loop.header->terminator();
    if (!term || !term->isConditionalBranch())
        return parts;
    const Instruction *cmp = asInst(term->operand(0));
    if (!cmp || !cmp->is(Opcode::ICmp))
        return parts;
    const Instruction *iter = asInst(cmp->operand(0));
    if (!iter || !iter->is(Opcode::Phi) ||
        iter->parent() != loop.header) {
        return parts;
    }
    parts.iterator = iter;
    parts.comparison = cmp;
    parts.iterEnd = cmp->operand(1);
    for (size_t i = 0; i < iter->numOperands(); ++i) {
        if (!loop.contains(iter->incomingBlocks()[i]))
            parts.iterBegin = iter->operand(i);
    }
    parts.valid = parts.iterBegin != nullptr;
    return parts;
}

/** Does the computation of @p v involve a memory load? */
bool
derivesFromLoad(const Value *v, int depth = 12)
{
    const Instruction *inst = asInst(v);
    if (!inst || depth == 0)
        return false;
    if (inst->is(Opcode::Load))
        return true;
    if (inst->is(Opcode::Phi))
        return false; // iterator-like; fine
    for (const Value *op : inst->operands()) {
        if (derivesFromLoad(op, depth - 1))
            return true;
    }
    return false;
}

/**
 * Affine subscript in the iterators of @p nest_iters: sums/differences
 * of iterators and constants, with multiplications by constants only.
 */
bool
isAffine(const Value *v, const std::set<const Value *> &nest_iters,
         int depth = 12)
{
    if (depth == 0)
        return false;
    if (v->isConstant())
        return true;
    if (nest_iters.count(v))
        return true;
    const Instruction *inst = asInst(v);
    if (!inst)
        return false; // runtime parameter: not a static subscript
    switch (inst->opcode()) {
      case Opcode::SExt:
        return isAffine(inst->operand(0), nest_iters, depth - 1);
      case Opcode::Add:
      case Opcode::Sub:
        return isAffine(inst->operand(0), nest_iters, depth - 1) &&
               isAffine(inst->operand(1), nest_iters, depth - 1);
      case Opcode::Mul: {
        bool c0 = inst->operand(0)->isConstant();
        bool c1 = inst->operand(1)->isConstant();
        if (!c0 && !c1)
            return false; // product of iterators: not affine
        return isAffine(inst->operand(0), nest_iters, depth - 1) &&
               isAffine(inst->operand(1), nest_iters, depth - 1);
      }
      default:
        return false;
    }
}

/** Accumulator phis of one loop: non-iterator header phis updated by
 *  a plain add/fadd/mul/fmul of themselves. */
int
plainAccumulators(const Loop &loop, const LoopParts &parts)
{
    int count = 0;
    for (const auto &inst : loop.header->insts()) {
        if (!inst->is(Opcode::Phi))
            break;
        if (inst.get() == parts.iterator)
            continue;
        const Instruction *phi = inst.get();
        for (size_t i = 0; i < phi->numOperands(); ++i) {
            if (!loop.contains(phi->incomingBlocks()[i]))
                continue;
            const Instruction *update = asInst(phi->operand(i));
            if (!update)
                continue;
            bool is_arith = update->is(Opcode::FAdd) ||
                            update->is(Opcode::Add) ||
                            update->is(Opcode::FMul) ||
                            update->is(Opcode::Mul);
            if (!is_arith)
                continue;
            if (update->operand(0) == phi ||
                update->operand(1) == phi) {
                ++count;
            }
        }
    }
    return count;
}

// ----------------------------------------------------------- ICC-like

/** ICC-like: innermost, straight-line, call/select-free loops with a
 *  computable (non-memory-dependent) trip count. */
int
iccReductionsInLoop(const Loop &loop)
{
    if (!loop.children.empty())
        return 0; // reported on innermost loops only
    LoopParts parts = analyzeLoop(loop);
    if (!parts.valid)
        return 0;
    // Trip count must not depend on memory (CSR-style bounds defeat
    // the dependence analysis).
    if (derivesFromLoad(parts.iterBegin) ||
        derivesFromLoad(parts.iterEnd)) {
        return 0;
    }
    // Straight-line body: header, one body block, optional latch.
    if (loop.blocks.size() > 3)
        return 0;
    for (BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(Opcode::Call) || inst->is(Opcode::Select))
                return 0;
        }
    }
    return plainAccumulators(loop, parts);
}

// ---------------------------------------------------------- Polly-like

/** SCoP test: constant bounds, affine accesses, no calls, no
 *  data-dependent control, nested loops equally well behaved. */
bool
isScop(const Loop &loop, std::set<const Value *> nest_iters)
{
    LoopParts parts = analyzeLoop(loop);
    if (!parts.valid)
        return false;
    if (!parts.iterBegin->isConstant() || !parts.iterEnd->isConstant())
        return false;
    nest_iters.insert(parts.iterator);

    // Headers of all nested loops may carry their guard branches.
    std::set<const BasicBlock *> child_headers;
    std::vector<const Loop *> stack(loop.children.begin(),
                                    loop.children.end());
    while (!stack.empty()) {
        const Loop *child = stack.back();
        stack.pop_back();
        child_headers.insert(child->header);
        stack.insert(stack.end(), child->children.begin(),
                     child->children.end());
    }

    for (BasicBlock *bb : loop.blocks) {
        // Blocks of nested loops are re-checked in the recursion with
        // their iterators in scope.
        bool in_child = false;
        for (const Loop *child : loop.children)
            in_child = in_child || child->contains(bb);
        if (in_child)
            continue;
        for (const auto &inst : bb->insts()) {
            if (inst->is(Opcode::Call))
                return false;
            if (inst->is(Opcode::Load) || inst->is(Opcode::Store)) {
                size_t addr_at = inst->is(Opcode::Load) ? 0 : 1;
                const Instruction *gep =
                    asInst(inst->operand(addr_at));
                if (!gep || !gep->is(Opcode::GEP))
                    return false;
                for (size_t k = 1; k < gep->numOperands(); ++k) {
                    if (!isAffine(gep->operand(k), nest_iters))
                        return false;
                }
            }
            if (inst->isConditionalBranch() &&
                bb != loop.header && !child_headers.count(bb)) {
                return false; // data dependent control flow
            }
        }
    }
    for (const Loop *child : loop.children) {
        if (!isScop(*child, nest_iters))
            return false;
    }
    return true;
}

/** Stencil-shaped parallel loop: a store plus displaced loads from a
 *  different base array. */
bool
isStencilLoop(const Loop &loop)
{
    if (!loop.children.empty())
        return false;
    const Instruction *store = nullptr;
    for (BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(Opcode::Store)) {
                if (store)
                    return false;
                store = inst.get();
            }
        }
    }
    if (!store)
        return false;
    const Value *store_base =
        analysis::basePointerOf(store->operand(1));
    int displaced_loads = 0;
    for (BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (!inst->is(Opcode::Load))
                continue;
            const Value *base =
                analysis::basePointerOf(inst->operand(0));
            if (base == store_base)
                return false; // in-place update: not a stencil
            ++displaced_loads;
        }
    }
    return displaced_loads >= 2;
}

void
countPollyLoop(const Loop &loop, BaselineCounts &counts)
{
    // Reductions inside the SCoP.
    LoopParts parts = analyzeLoop(loop);
    if (loop.children.empty() && parts.valid)
        counts.scalarReductions += plainAccumulators(loop, parts);
    if (isStencilLoop(loop))
        ++counts.stencils;
    for (const Loop *child : loop.children)
        countPollyLoop(*child, counts);
}

} // namespace

BaselineCounts
runPollyLike(ir::Module &module)
{
    BaselineCounts counts;
    for (const auto &func : module.functions()) {
        if (func->isDeclaration())
            continue;
        DomTree dom(func.get(), false);
        LoopInfo loops(func.get(), dom);
        for (Loop *top : loops.topLevel()) {
            if (isScop(*top, {}))
                countPollyLoop(*top, counts);
        }
    }
    return counts;
}

BaselineCounts
runIccLike(ir::Module &module)
{
    BaselineCounts counts;
    for (const auto &func : module.functions()) {
        if (func->isDeclaration())
            continue;
        DomTree dom(func.get(), false);
        LoopInfo loops(func.get(), dom);
        for (const auto &loop : loops.loops())
            counts.scalarReductions += iccReductionsInLoop(*loop);
    }
    return counts;
}

} // namespace repro::baselines
