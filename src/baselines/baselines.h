/**
 * @file
 * Baseline detectors standing in for Polly and ICC (section 7 of the
 * paper, "Alternative detection approaches").
 *
 * Neither tool is an idiom detector; the paper counts a loop when the
 * tool's parallelization analysis admits it. The stand-ins model the
 * *structural* reasons each tool succeeds or fails:
 *
 *  - Polly-like: a loop counts only inside a static control part
 *    (SCoP): compile-time-constant bounds, affine subscripts, no
 *    calls, no data-dependent control, no indirect accesses. Indirect
 *    CSR/histogram subscripts "fundamentally contradict" (section 8.1)
 *    these assumptions.
 *  - ICC-like: dependence-based scalar reduction recognition only —
 *    a straight-line loop body updating a scalar accumulator through
 *    a plain add/mul chain; calls, selects and control flow in the
 *    update defeat it.
 */
#ifndef BASELINES_BASELINES_H
#define BASELINES_BASELINES_H

#include "ir/function.h"

namespace repro::baselines {

/** Idiom-class counts a baseline reports (Table 1 columns). */
struct BaselineCounts
{
    int scalarReductions = 0;
    int histograms = 0;
    int stencils = 0;
    int matrixOps = 0;
    int sparseOps = 0;
};

/** Polly-like SCoP-restricted detection over a module. */
BaselineCounts runPollyLike(ir::Module &module);

/** ICC-like dependence-based reduction detection over a module. */
BaselineCounts runIccLike(ir::Module &module);

} // namespace repro::baselines

#endif // BASELINES_BASELINES_H
