/**
 * @file
 * The IDL idiom library and the detection driver.
 *
 * The library reconstructs the paper's ≈500 lines of IDL: building
 * blocks (SESE, For, ForNest, GepIndex, VectorRead/Store, MatrixRead/
 * Store, ReadRange, DotProductLoop, OffsetIndex, Flat3DIndex,
 * StencilRead) and the top-level idioms of Figures 9-14 (GEMM, SPMV,
 * Histogram, Reduction, Stencil) plus the FactorizationOpportunity
 * example of Figure 2.
 */
#ifndef IDIOMS_LIBRARY_H
#define IDIOMS_LIBRARY_H

#include <memory>
#include <string>
#include <vector>

#include "idl/ast.h"
#include "solver/solver.h"

namespace repro::idioms {

/** Idiom classes reported in Table 1 / Figure 16 of the paper. */
enum class IdiomClass
{
    ScalarReduction,
    HistogramReduction,
    Stencil,
    MatrixOp,
    SparseMatrixOp,
    Other,
};

const char *idiomClassName(IdiomClass cls);

/** One detected idiom instance. */
struct IdiomMatch
{
    std::string idiom;      ///< constraint name, e.g. "SPMV"
    IdiomClass cls = IdiomClass::Other;
    solver::Solution solution;
    ir::Function *function = nullptr;
};

/**
 * Stable serialization of a match's full identity — the comparison
 * key the serial-vs-parallel equivalence tests, benches and examples
 * share, and the identity matches carry into cross-module stores. It
 * embeds the owning module's name and the function's structural
 * contentHash() next to the idiom, class, function name and every
 * solution binding, so two modules with a same-named function (or the
 * same function before and after an edit) never collide.
 */
std::string matchFingerprint(const IdiomMatch &match);

/**
 * Stable hash of the idiom set the detector searches: the full IDL
 * library source plus the ordered top-level idiom list. Any library
 * edit, idiom addition or reordering changes it, invalidating every
 * cross-request cache entry keyed on (function contentHash,
 * idiomSetHash) — see driver/match_cache.h.
 */
uint64_t idiomSetHash();

/** Source text of the complete IDL idiom library. */
const std::string &idiomLibrarySource();

/**
 * Parsed idiom library (shared, immutable). First use also runs the
 * IDL semantic analyzer (idl/check.h) over every solved root and
 * throws FatalError on any error-tier diagnostic, so a defective
 * library fails fast instead of silently never matching.
 */
const idl::IdlProgram &idiomLibrary();

/** Names of the top-level idioms the detector searches for. */
std::vector<std::string> topLevelIdioms();

/** The idioms actually handed to the solver: topLevelIdioms() plus
 *  FactorizationOpportunity — the lint roots for the library. */
std::vector<std::string> rootIdiomNames();

/**
 * Terminal variable-name components ("leaves" after the last '.')
 * that the transformation stage reads out of idiom solutions — the
 * rewrite ABI between the IDL library and transform/transform.cpp.
 * Passed to the IDL lint as its exported-variable list so unused-var
 * never flags a binding whose single mention IS its export.
 */
const std::vector<std::string> &rewriteAbiVarLeaves();

/**
 * Pre-lowered constraint program of @p idiom, built once and shared
 * (lowering is function-independent, so re-lowering per matched
 * function is pure setup overhead). Covers the top-level idioms plus
 * FactorizationOpportunity; returns nullptr for any other name. The
 * returned program is immutable and safe to solve from any thread.
 */
const solver::ConstraintProgram *
loweredIdiomOrNull(const std::string &idiom);

/**
 * Slot-addressed compilation of @p idiom's lowered program (see
 * solver/compiled.h), built once next to loweredIdiomOrNull and
 * shared the same way: immutable, thread-safe, nullptr for names
 * outside the cached top-level set. The detection hot path solves
 * these; the lowered Node form remains available for ablations and
 * the golden reference engine.
 */
const solver::CompiledProgram *
compiledIdiomOrNull(const std::string &idiom);

/**
 * The detection driver: runs every top-level idiom over a function,
 * deduplicates by anchor variable and applies subsumption (a loop
 * claimed by GEMM/SPMV/Stencil/Histogram is not additionally counted
 * as a scalar reduction).
 */
class IdiomDetector
{
  public:
    IdiomDetector();
    explicit IdiomDetector(const solver::SolverLimits &limits);

    /** Detect all idioms in one function. */
    std::vector<IdiomMatch> detect(ir::Function *func);

    /**
     * Detect all idioms in one function, reusing externally owned
     * analyses (the MatchingDriver's per-function cache).
     */
    std::vector<IdiomMatch> detect(ir::Function *func,
                                   analysis::FunctionAnalyses &fa);

    /** Detect across a whole module. */
    std::vector<IdiomMatch> detectModule(ir::Module &module);

    /** Search a single named idiom (no subsumption). */
    std::vector<IdiomMatch> detectOne(ir::Function *func,
                                      const std::string &idiom);

    /** Single named idiom with externally owned analyses. */
    std::vector<IdiomMatch> detectOne(ir::Function *func,
                                      const std::string &idiom,
                                      analysis::FunctionAnalyses &fa);

    /** Accumulated solver statistics. */
    const solver::SolveStats &stats() const { return stats_; }

    /**
     * Worst solve status across every solve this detector ran:
     * Complete unless some idiom's search stopped at a budget or
     * deadline limit — in which case the match lists are valid but
     * possibly incomplete (degraded, not wrong).
     */
    solver::SolveStatus status() const { return status_; }

    /** Limits applied to every constraint solve. */
    const solver::SolverLimits &limits() const { return limits_; }

  private:
    std::vector<IdiomMatch> runIdiom(ir::Function *func,
                                     const std::string &idiom,
                                     analysis::FunctionAnalyses &fa);

    solver::SolveStats stats_;
    solver::SolveStatus status_ = solver::SolveStatus::Complete;
    solver::SolverLimits limits_;
};

/** Anchor variable used to deduplicate matches of @p idiom. */
std::string idiomAnchorVar(const std::string &idiom);

/** Classification of a top-level idiom name. */
IdiomClass idiomClassOf(const std::string &idiom);

/**
 * Specificity rank of @p idiom: its position in the most-specific-
 * first topLevelIdioms() order (0 = most specific). Names outside the
 * top-level set rank least specific. The rewrite engine uses this to
 * resolve overlapping block claims — a GEMM nest beats the scalar
 * Reduction matched inside it.
 */
int idiomSpecificity(const std::string &idiom);

/**
 * Variable names whose bound values identify the loops an idiom match
 * occupies (used for subsumption and runtime-coverage attribution).
 */
std::vector<std::string> idiomClaimVars(const std::string &idiom);

} // namespace repro::idioms

#endif // IDIOMS_LIBRARY_H
