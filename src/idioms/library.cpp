#include "idioms/library.h"

#include <cstdio>
#include <set>

#include "idl/check.h"
#include "idl/lower.h"
#include "idl/parser.h"

namespace repro::idioms {

namespace {

/**
 * The IDL idiom library.
 *
 * Figures 9-14 of the paper give the top-level idioms; the building
 * blocks (For, ForNest, VectorRead, MatrixRead, DotProductLoop, ...)
 * are reconstructed here so that the published top-level definitions
 * work against the SSA shapes our MiniC frontend produces — the same
 * shapes clang -O2 produces for the NAS/Parboil kernels.
 */
const char *kLibrary = R"IDL(
# ---------------------------------------------------------------- SESE
# Single entry single exit region, as given in Figure 9 of the paper.
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin} )
End

# ------------------------------------------------------------- helpers
# {out} equals {in} directly or through a sign extension.
Constraint SextOrSame
( ( {out} is the same as {in} ) or
  ( {out} is sext instruction and
    {in} is first argument of {out} ) )
End

# Bind {index} as the effective index of gep {address}: the index may
# be sign-extended, and globals carry a leading zero index.
Constraint GepIndex
( ( {index} is second argument of {address} ) or
  ( {sext} is second argument of {address} and
    {sext} is sext instruction and
    {index} is first argument of {sext} ) or
  ( {pad} is second argument of {address} and
    {pad} is integer constant zero and
    ( ( {index} is third argument of {address} ) or
      ( {sext} is third argument of {address} and
        {sext} is sext instruction and
        {index} is first argument of {sext} ) ) ) )
End

# {out} is {base_iter}, optionally displaced by a constant. (The sext
# wrapper is already stripped by GepIndex, so it is not repeated here:
# one IR shape must match exactly one assignment or collects would
# produce duplicates.)
Constraint OffsetIndex
( ( {out} is the same as {base_iter} ) or
  ( {out} is add instruction and
    {base_iter} is first argument of {out} and
    {offset} is second argument of {out} and
    {offset} is a constant ) or
  ( {out} is sub instruction and
    {base_iter} is first argument of {out} and
    {offset} is second argument of {out} and
    {offset} is a constant ) )
End

# ------------------------------------------------------------------ For
# A canonical counted loop: iterator phi, compare, guard branch,
# increment through the latch.
Constraint For
( {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {iter_end} is second argument of {comparison} and
  {iterator} is phi instruction and
  {comparison} has data flow to {guard} and
  {guard} is branch instruction and
  {comparison} is first argument of {guard} and
  {iter_begin} reaches phi node {iterator} from {precursor} and
  {increment} reaches phi node {iterator} from {latch} and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {step} is second argument of {increment} and
  {increment} is not the same as {iter_begin} and
  {precursor} is not the same as {latch} and
  {guard} has control flow to {body_begin} and
  {guard} has control flow to {successor} and
  {body_begin} is not the same as {successor} and
  {body_begin} control flow dominates {latch} and
  {iterator} control flow dominates {comparison} and
  {comparison} control flow post dominates {body_begin} )
End

# Inner loop fully contained in the body of the outer loop.
Constraint LoopNestEdge
( {outer.body_begin} control flow dominates {inner.comparison} and
  {outer.latch} control flow post dominates {inner.guard} )
End

# A nest of N loops; iterator[i] / begin[i] alias the For internals.
Constraint ForNest (N=2)
( ( ( inherits For at {loop[i]} and
      {iterator[i]} is the same as {loop[i].iterator} and
      {begin[i]} is the same as {loop[i].body_begin}
    ) for all i = 0 .. N ) and
  ( ( inherits LoopNestEdge
        with {loop[i]} as {outer} and {loop[i+1]} as {inner}
    ) for all i = 0 .. N - 1 ) )
End

# ------------------------------------------------- vector memory access
# A load indexed by {idx} from {base_pointer}.
Constraint VectorRead
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {idx} as {index} )
End

# A store indexed by {idx} to {base_pointer}.
Constraint VectorStore
( {store_instr} is store instruction and
  {value} is first argument of {store_instr} and
  {address} is second argument of {store_instr} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {idx} as {index} )
End

# Loop bounds read from an index array: base[idx] and base[idx+1]
# (the CSR row-pointer pattern of sparse codes).
Constraint ReadRange
( inherits VectorRead with {idx} as {idx} at {lo} and
  inherits VectorRead with {idx_next} as {idx} at {hi} and
  {hi.base_pointer} is the same as {lo.base_pointer} and
  {idx_next} is add instruction and
  {idx} is first argument of {idx_next} and
  {one} is second argument of {idx_next} and
  {one} is a constant and
  inherits SextOrSame with {range_begin} as {out} and {lo.value} as {in} and
  inherits SextOrSame with {range_end} as {out} and {hi.value} as {in} )
End

# ------------------------------------------------- matrix memory access
# The effective element address of a (possibly strided / transposed)
# matrix access: flat "base[col + row*stride]" or nested 2D arrays
# "base[row][col]"; {col} and {row} may bind in either role.
Constraint MatrixIndex
( {address} is gep instruction and
  ( ( {base_pointer} is first argument of {address} and
      inherits GepIndex with {flat} as {index} and
      {flat} is add instruction and
      ( ( {plain} is first argument of {flat} and
          {scaled} is second argument of {flat} ) or
        ( {plain} is second argument of {flat} and
          {scaled} is first argument of {flat} ) ) and
      {scaled} is mul instruction and
      ( ( {scaled_iter} is first argument of {scaled} and
          {stride} is second argument of {scaled} ) or
        ( {scaled_iter} is second argument of {scaled} and
          {stride} is first argument of {scaled} ) ) and
      {stride} is a compile time value and
      ( ( inherits SextOrSame with {plain} as {out} and {col} as {in} and
          inherits SextOrSame with {scaled_iter} as {out} and {row} as {in} ) or
        ( inherits SextOrSame with {plain} as {out} and {row} as {in} and
          inherits SextOrSame with {scaled_iter} as {out} and {col} as {in} ) ) ) or
    ( {rowgep} is first argument of {address} and
      {rowgep} is gep instruction and
      {base_pointer} is first argument of {rowgep} and
      ( ( inherits GepIndex
            with {col} as {index} and {address} as {address}
            at {colidx} and
          inherits GepIndex
            with {row} as {index} and {rowgep} as {address}
            at {rowidx} ) or
        ( inherits GepIndex
            with {row} as {index} and {address} as {address}
            at {colidx} and
          inherits GepIndex
            with {col} as {index} and {rowgep} as {address}
            at {rowidx} ) ) ) ) )
End

Constraint MatrixRead
( {value} is load instruction and
  {address} is first argument of {value} and
  inherits MatrixIndex )
End

Constraint MatrixStore
( {store_instr} is store instruction and
  {value} is first argument of {store_instr} and
  {address} is second argument of {store_instr} and
  inherits MatrixIndex )
End

# ------------------------------------------------------ dot product loop
# Multiply-accumulate over a loop {loop}: acc = acc + src1*src2, with
# the final value flowing (possibly through a linear combination with
# alpha/beta) into the store at {update_address}.
Constraint DotProductLoop
( {product} is fmul instruction and
  ( ( {src1} is first argument of {product} and
      {src2} is second argument of {product} ) or
    ( {src2} is first argument of {product} and
      {src1} is second argument of {product} ) ) and
  {product} has data flow to {sum} and
  {sum} is fadd instruction and
  {sum} reaches phi node {acc} from {loop.latch} and
  {acc} is phi instruction and
  {acc} has data flow to {sum} and
  {acc} is not the same as {loop.iterator} and
  {init} reaches phi node {acc} from {loop.precursor} and
  {update_address} is second argument of {store_instr} and
  {store_instr} is store instruction and
  {stored_value} is first argument of {store_instr} and
  {acc} has data flow path to {stored_value} )
End

# --------------------------------------------------------- flat indices
# flat = d0 + s0*(d1 + s1*d2): the standard 3D flattened index; both
# "i + nx*(j + ny*k)" and "(k*n + j)*n + i" shapes normalize to this.
Constraint Flat3DIndex
( {flat} is add instruction and
  ( ( {d0} is first argument of {flat} and
      {m0} is second argument of {flat} ) or
    ( {d0} is second argument of {flat} and
      {m0} is first argument of {flat} ) ) and
  {m0} is mul instruction and
  ( ( {s0} is first argument of {m0} and
      {mid} is second argument of {m0} ) or
    ( {s0} is second argument of {m0} and
      {mid} is first argument of {m0} ) ) and
  {s0} is a compile time value and
  {mid} is add instruction and
  ( ( {d1} is first argument of {mid} and
      {m1} is second argument of {mid} ) or
    ( {d1} is second argument of {mid} and
      {m1} is first argument of {mid} ) ) and
  {m1} is mul instruction and
  ( ( {s1} is first argument of {m1} and
      {d2} is second argument of {m1} ) or
    ( {s1} is second argument of {m1} and
      {d2} is first argument of {m1} ) ) and
  {s1} is a compile time value )
End

# flat = d0 + s0*d1 (2D flattened index).
Constraint Flat2DIndex
( {flat} is add instruction and
  ( ( {d0} is first argument of {flat} and
      {m0} is second argument of {flat} ) or
    ( {d0} is second argument of {flat} and
      {m0} is first argument of {flat} ) ) and
  {m0} is mul instruction and
  ( ( {s0} is first argument of {m0} and
      {d1} is second argument of {m0} ) or
    ( {s0} is second argument of {m0} and
      {d1} is first argument of {m0} ) ) and
  {s0} is a compile time value )
End

# --------------------------------------------------------- stencil access
# 3D access base[it0 +- c][it1 +- c][it2 +- c] in flattened form.
Constraint StencilAccess3D
( {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {flat} as {index} and
  inherits Flat3DIndex and
  inherits OffsetIndex with {d0} as {out} and {it2} as {base_iter} at {off0} and
  inherits OffsetIndex with {d1} as {out} and {it1} as {base_iter} at {off1} and
  inherits OffsetIndex with {d2} as {out} and {it0} as {base_iter} at {off2} )
End

Constraint StencilRead3D
( {value} is load instruction and
  {address} is first argument of {value} and
  inherits StencilAccess3D )
End

# The updated cell is stored exactly at the iteration point.
Constraint StencilStore3D
( {store_instr} is store instruction and
  {value} is first argument of {store_instr} and
  {address} is second argument of {store_instr} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {flat} as {index} and
  inherits Flat3DIndex and
  inherits SextOrSame with {d0} as {out} and {it2} as {in} and
  inherits SextOrSame with {d1} as {out} and {it1} as {in} and
  inherits SextOrSame with {d2} as {out} and {it0} as {in} )
End

# 2D variants.
Constraint StencilAccess2D
( {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {flat} as {index} and
  inherits Flat2DIndex and
  inherits OffsetIndex with {d0} as {out} and {it1} as {base_iter} at {off0} and
  inherits OffsetIndex with {d1} as {out} and {it0} as {base_iter} at {off1} )
End

Constraint StencilRead2D
( {value} is load instruction and
  {address} is first argument of {value} and
  inherits StencilAccess2D )
End

Constraint StencilStore2D
( {store_instr} is store instruction and
  {value} is first argument of {store_instr} and
  {address} is second argument of {store_instr} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {flat} as {index} and
  inherits Flat2DIndex and
  inherits SextOrSame with {d0} as {out} and {it1} as {in} and
  inherits SextOrSame with {d1} as {out} and {it0} as {in} )
End

# 1D variants (vector stencils).
Constraint StencilRead1D
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  inherits GepIndex with {d0} as {index} and
  inherits OffsetIndex with {d0} as {out} and {it0} as {base_iter} at {off0} )
End

# ===================================================== top level idioms

# Figure 2: the (x*y)+(x*z) factorization example.
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend} ) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend} ) )
End

# Figure 14: scalar reductions. The kernel updating the induction
# value may only consume loop loads, the previous value, and loop
# invariants.
Constraint Reduction
( inherits For and
  {old_value} is phi instruction and
  {old_value} is not the same as {iterator} and
  {kernel_output} reaches phi node {old_value} from {latch} and
  {init_value} reaches phi node {old_value} from {precursor} and
  {kernel_output} is not the same as {old_value} and
  {old_value} has data flow path to {kernel_output} and
  {body_begin} control flow dominates {kernel_output} and
  collect i
  ( inherits VectorRead
      with {iterator} as {idx} and {read_value[i]} as {value}
      at {read[i]} ) and
  all data flow into {kernel_output} inside {body_begin}
    is killed by {read_value[*], old_value} )
End

# Figure 11: generalized histograms - a conditional read-modify-write
# of bin[indexkernel(reads)] with value kernel(old, reads).
Constraint Histogram
( inherits For and
  {store_instr} is store instruction and
  {body_begin} control flow dominates {store_instr} and
  {address} is second argument of {store_instr} and
  {address} is gep instruction and
  {bin_base} is first argument of {address} and
  inherits GepIndex and
  {old_value} is load instruction and
  {address} is first argument of {old_value} and
  {new_value} is first argument of {store_instr} and
  {old_value} is not the same as {new_value} and
  collect i
  ( inherits VectorRead
      with {iterator} as {idx} and {read_value[i]} as {value}
      at {read[i]} ) and
  all data flow into {new_value} inside {body_begin}
    is killed by {read_value[*], old_value} and
  all data flow into {index} inside {body_begin}
    is killed by {read_value[*]} )
End

# Figure 12: sparse matrix-vector multiplication over CSR. The inner
# loop bounds come from the row-pointer array; the matrix values are
# read sequentially while the dense vector is gathered through the
# column-index array.
Constraint SPMV
( inherits For and
  inherits VectorStore with {iterator} as {idx} at {output} and
  {body_begin} control flow dominates {output.store_instr} and
  inherits ReadRange
    with {iterator} as {idx} and {inner.iter_begin} as {range_begin}
     and {inner.iter_end} as {range_end} at {range} and
  inherits For at {inner} and
  {body_begin} control flow dominates {inner.comparison} and
  {latch} control flow post dominates {inner.guard} and
  inherits VectorRead with {inner.iterator} as {idx} at {idx_read} and
  inherits VectorRead with {idx_read.value} as {idx} at {indir_read} and
  inherits VectorRead with {inner.iterator} as {idx} at {seq_read} and
  {idx_read.base_pointer} is not the same as {seq_read.base_pointer} and
  {indir_read.base_pointer} is not the same as {seq_read.base_pointer} and
  inherits DotProductLoop
    with {inner} as {loop} and {indir_read.value} as {src1}
     and {seq_read.value} as {src2}
     and {output.address} as {update_address} )
End

# Figure 10: generalized matrix multiplication. Three nested loops,
# three matrix accesses each using a distinct pair of iterators, and a
# dot product over the innermost loop.
Constraint GEMM
( inherits ForNest ( N = 3 ) and
  inherits MatrixStore
    with {iterator[0]} as {col} and {iterator[1]} as {row}
    at {output} and
  inherits MatrixRead
    with {iterator[0]} as {col} and {iterator[2]} as {row}
    at {input1} and
  inherits MatrixRead
    with {iterator[1]} as {col} and {iterator[2]} as {row}
    at {input2} and
  {output.base_pointer} is not the same as {input1.base_pointer} and
  {output.base_pointer} is not the same as {input2.base_pointer} and
  inherits DotProductLoop
    with {loop[2]} as {loop} and {input1.value} as {src1}
     and {input2.value} as {src2}
     and {output.address} as {update_address} and
  {begin[1]} control flow dominates {output.store_instr} )
End

# Figure 13: stencils. A loop nest storing to the iteration point and
# reading a neighbourhood with constant offsets; the cell update is a
# pure function of those reads.
Constraint Stencil3D
( inherits ForNest ( N = 3 ) and
  inherits StencilStore3D
    with {iterator[0]} as {it0} and {iterator[1]} as {it1}
     and {iterator[2]} as {it2} at {write} and
  {begin[2]} control flow dominates {write.store_instr} and
  collect i
  ( inherits StencilRead3D
      with {iterator[0]} as {it0} and {iterator[1]} as {it1}
       and {iterator[2]} as {it2} and {read_value[i]} as {value}
      at {read[i]} ) and
  all data flow into {write.value} inside {begin[2]}
    is killed by {read_value[*]} )
End

Constraint Stencil2D
( inherits ForNest ( N = 2 ) and
  inherits StencilStore2D
    with {iterator[0]} as {it0} and {iterator[1]} as {it1}
    at {write} and
  {begin[1]} control flow dominates {write.store_instr} and
  collect i
  ( inherits StencilRead2D
      with {iterator[0]} as {it0} and {iterator[1]} as {it1}
       and {read_value[i]} as {value} at {read[i]} ) and
  all data flow into {write.value} inside {begin[1]}
    is killed by {read_value[*]} )
End

Constraint Stencil1D
( inherits For and
  inherits VectorStore with {iterator} as {idx} at {write} and
  {body_begin} control flow dominates {write.store_instr} and
  collect i
  ( inherits StencilRead1D
      with {iterator} as {it0} and {read_value[i]} as {value}
      at {read[i]} ) and
  all data flow into {write.value} inside {body_begin}
    is killed by {read_value[*]} and
  {write.base_pointer} is not the same as {read[0].base_pointer} )
End
)IDL";

} // namespace

const std::string &
idiomLibrarySource()
{
    static const std::string source = kLibrary;
    return source;
}

std::vector<std::string>
rootIdiomNames()
{
    auto roots = topLevelIdioms();
    roots.push_back("FactorizationOpportunity");
    return roots;
}

const std::vector<std::string> &
rewriteAbiVarLeaves()
{
    // Terminal variable components the transformation stage reads out
    // of solutions (transform/transform.cpp: loop bounds, strides,
    // base pointers, initial accumulator values). These are bound for
    // export, so a single mention is correct — the lint's unused-var
    // rule must not flag them.
    static const std::vector<std::string> leaves = {
        "init",     "value",    "base_pointer", "iter_end",
        "step",     "bin_base", "init_value",
    };
    return leaves;
}

const idl::IdlProgram &
idiomLibrary()
{
    // Parsing and semantic analysis both gate here: a typo'd opcode or
    // a generator-less variable in the shipped library fails the first
    // use instead of silently never matching at solve time.
    static const auto program = [] {
        auto p = idl::parseIdlOrDie(idiomLibrarySource());
        idl::checkProgramOrThrow(*p, rootIdiomNames(),
                                 "idiom library",
                                 rewriteAbiVarLeaves());
        return p;
    }();
    return *program;
}

const char *
idiomClassName(IdiomClass cls)
{
    switch (cls) {
      case IdiomClass::ScalarReduction: return "Scalar Reduction";
      case IdiomClass::HistogramReduction: return "Histogram Reduction";
      case IdiomClass::Stencil: return "Stencil";
      case IdiomClass::MatrixOp: return "Matrix Op.";
      case IdiomClass::SparseMatrixOp: return "Sparse Matrix Op.";
      case IdiomClass::Other: return "Other";
    }
    return "Other";
}

std::string
matchFingerprint(const IdiomMatch &match)
{
    // Module name + content hash disambiguate same-named functions
    // across modules and the same function across edits; without them
    // any cross-module store keyed on fingerprints would collide.
    const ir::Module *module = match.function->parentModule();
    char hash[17];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      match.function->contentHash()));
    return (module ? module->name() : std::string()) + "|" + hash +
           "|" + match.idiom + "|" + idiomClassName(match.cls) + "|" +
           match.function->name() + "|" + match.solution.str();
}

uint64_t
idiomSetHash()
{
    static const uint64_t hash = [] {
        uint64_t h = 14695981039346656037ull;
        auto mix = [&h](const std::string &s) {
            for (char c : s) {
                h ^= static_cast<uint8_t>(c);
                h *= 1099511628211ull;
            }
            h ^= 0x7c;
            h *= 1099511628211ull;
        };
        mix(idiomLibrarySource());
        for (const auto &name : topLevelIdioms())
            mix(name);
        return h;
    }();
    return hash;
}

IdiomClass
idiomClassOf(const std::string &idiom)
{
    if (idiom == "Reduction")
        return IdiomClass::ScalarReduction;
    if (idiom == "Histogram")
        return IdiomClass::HistogramReduction;
    if (idiom == "Stencil1D" || idiom == "Stencil2D" ||
        idiom == "Stencil3D") {
        return IdiomClass::Stencil;
    }
    if (idiom == "GEMM")
        return IdiomClass::MatrixOp;
    if (idiom == "SPMV")
        return IdiomClass::SparseMatrixOp;
    return IdiomClass::Other;
}

std::vector<std::string>
topLevelIdioms()
{
    // Most specific first; subsumption removes generic matches whose
    // loops are already claimed.
    return {"GEMM",      "SPMV",      "Stencil3D", "Stencil2D",
            "Stencil1D", "Histogram", "Reduction"};
}

namespace {

/** Lowered + compiled forms of one cached idiom. */
struct CachedIdiom
{
    solver::ConstraintProgram lowered;
    solver::CompiledProgram compiled;

    explicit CachedIdiom(solver::ConstraintProgram prog)
        : lowered(std::move(prog)), compiled(lowered)
    {}
};

const std::map<std::string, CachedIdiom> &
idiomCache()
{
    // Built eagerly under the magic-static lock so concurrent
    // matching shards only ever read the finished map.
    static const auto cache = [] {
        std::map<std::string, CachedIdiom> m;
        for (const auto &name : topLevelIdioms()) {
            m.emplace(name, CachedIdiom(
                                idl::lowerIdiom(idiomLibrary(), name)));
        }
        m.emplace("FactorizationOpportunity",
                  CachedIdiom(idl::lowerIdiom(
                      idiomLibrary(), "FactorizationOpportunity")));
        return m;
    }();
    return cache;
}

} // namespace

const solver::ConstraintProgram *
loweredIdiomOrNull(const std::string &idiom)
{
    const auto &cache = idiomCache();
    auto it = cache.find(idiom);
    return it == cache.end() ? nullptr : &it->second.lowered;
}

const solver::CompiledProgram *
compiledIdiomOrNull(const std::string &idiom)
{
    const auto &cache = idiomCache();
    auto it = cache.find(idiom);
    return it == cache.end() ? nullptr : &it->second.compiled;
}

std::string
idiomAnchorVar(const std::string &idiom)
{
    if (idiom == "Reduction")
        return "old_value";
    if (idiom == "Histogram")
        return "store_instr";
    if (idiom == "SPMV")
        return "output.store_instr";
    if (idiom == "GEMM")
        return "output.store_instr";
    if (idiom == "Stencil1D" || idiom == "Stencil2D" ||
        idiom == "Stencil3D") {
        return "write.store_instr";
    }
    if (idiom == "FactorizationOpportunity")
        return "sum";
    return "";
}

namespace {

/** Minimum collected reads for a match of @p idiom to count. */
size_t
minReadsOf(const std::string &idiom)
{
    if (idiom == "Stencil1D" || idiom == "Stencil2D" ||
        idiom == "Stencil3D") {
        return 2;
    }
    if (idiom == "Histogram")
        return 1;
    return 0;
}

/** Collected-read array pattern per idiom. */
std::string
readPatternOf(const std::string & /*idiom*/)
{
    return "read_value[*]";
}

} // namespace

std::vector<std::string>
idiomClaimVars(const std::string &idiom)
{
    if (idiom == "SPMV")
        return {"comparison", "inner.comparison"};
    if (idiom == "GEMM") {
        return {"loop[0].comparison", "loop[1].comparison",
                "loop[2].comparison"};
    }
    if (idiom == "Stencil3D") {
        return {"loop[0].comparison", "loop[1].comparison",
                "loop[2].comparison"};
    }
    if (idiom == "Stencil2D")
        return {"loop[0].comparison", "loop[1].comparison"};
    if (idiom == "Stencil1D" || idiom == "Histogram" ||
        idiom == "Reduction") {
        return {"comparison"};
    }
    return {};
}

int
idiomSpecificity(const std::string &idiom)
{
    const auto order = topLevelIdioms();
    for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == idiom)
            return static_cast<int>(i);
    }
    return static_cast<int>(order.size());
}

IdiomDetector::IdiomDetector() : IdiomDetector(solver::SolverLimits{})
{
}

IdiomDetector::IdiomDetector(const solver::SolverLimits &limits)
    : limits_(limits)
{
    // Force-parse the library so construction fails loudly on library
    // regressions.
    (void)idiomLibrary();
}

std::vector<IdiomMatch>
IdiomDetector::runIdiom(ir::Function *func, const std::string &idiom,
                        analysis::FunctionAnalyses &fa)
{
    // Library idioms solve the shared pre-compiled program; custom
    // names (building blocks, tests) are lowered and compiled on the
    // fly.
    solver::Solver solver(func, fa);
    std::vector<solver::Solution> solutions;
    if (const solver::CompiledProgram *program =
            compiledIdiomOrNull(idiom)) {
        solutions = solver.solveAll(*program, limits_);
    } else {
        solutions =
            solver.solveAll(idl::lowerIdiom(idiomLibrary(), idiom),
                            limits_);
    }
    stats_ += solver.stats();
    status_ = solver::worseStatus(status_, solver.lastStatus());

    // Deduplicate by anchor variable: one match per anchored
    // instruction regardless of how many assignments the disjunctions
    // admit.
    std::string anchor = idiomAnchorVar(idiom);
    bool is_stencil = idiomClassOf(idiom) == IdiomClass::Stencil;
    std::set<const ir::Value *> seen;
    std::vector<IdiomMatch> out;
    for (auto &sol : solutions) {
        size_t n_reads =
            sol.lookupArray(readPatternOf(idiom)).size();
        if (n_reads < minReadsOf(idiom))
            continue;
        if (is_stencil) {
            // An elementwise map is not a stencil: some read must be
            // displaced from the iteration point. And an in-place
            // update (any read from the written array) is a
            // recurrence, not a stencil.
            bool displaced = false;
            bool in_place = false;
            const ir::Value *write_base =
                sol.lookup("write.base_pointer");
            for (size_t k = 0; k < n_reads; ++k) {
                std::string prefix = "read[" + std::to_string(k) + "]";
                for (int d = 0; d < 3 && !displaced; ++d) {
                    displaced = sol.lookup(prefix + ".off" +
                                           std::to_string(d) +
                                           ".offset") != nullptr;
                }
                if (sol.lookup(prefix + ".base_pointer") == write_base)
                    in_place = true;
            }
            if (!displaced || in_place)
                continue;
        }
        const ir::Value *key =
            anchor.empty() ? nullptr : sol.lookup(anchor);
        if (key && !seen.insert(key).second)
            continue;
        IdiomMatch match;
        match.idiom = idiom;
        match.cls = idiomClassOf(idiom);
        match.solution = std::move(sol);
        match.function = func;
        out.push_back(std::move(match));
    }
    return out;
}

std::vector<IdiomMatch>
IdiomDetector::detectOne(ir::Function *func, const std::string &idiom)
{
    analysis::FunctionAnalyses fa(func);
    return runIdiom(func, idiom, fa);
}

std::vector<IdiomMatch>
IdiomDetector::detectOne(ir::Function *func, const std::string &idiom,
                         analysis::FunctionAnalyses &fa)
{
    return runIdiom(func, idiom, fa);
}

std::vector<IdiomMatch>
IdiomDetector::detect(ir::Function *func)
{
    analysis::FunctionAnalyses fa(func);
    return detect(func, fa);
}

std::vector<IdiomMatch>
IdiomDetector::detect(ir::Function *func,
                      analysis::FunctionAnalyses &fa)
{
    if (func->isDeclaration())
        return {};
    std::vector<IdiomMatch> all;
    std::set<const ir::Value *> claimed;
    for (const std::string &idiom : topLevelIdioms()) {
        auto matches = runIdiom(func, idiom, fa);
        for (auto &m : matches) {
            // Subsumption: skip generic matches on claimed loops.
            bool subsumed = false;
            if (m.cls == IdiomClass::ScalarReduction ||
                m.cls == IdiomClass::HistogramReduction ||
                m.cls == IdiomClass::Stencil) {
                for (const auto &var : idiomClaimVars(m.idiom)) {
                    const ir::Value *loop = m.solution.lookup(var);
                    if (loop && claimed.count(loop)) {
                        subsumed = true;
                        break;
                    }
                }
                if (m.cls == IdiomClass::ScalarReduction) {
                    const ir::Value *loop =
                        m.solution.lookup("comparison");
                    if (loop && claimed.count(loop))
                        subsumed = true;
                }
            }
            if (subsumed)
                continue;
            for (const auto &var : idiomClaimVars(m.idiom)) {
                if (const ir::Value *loop = m.solution.lookup(var))
                    claimed.insert(loop);
            }
            all.push_back(std::move(m));
        }
    }
    return all;
}

std::vector<IdiomMatch>
IdiomDetector::detectModule(ir::Module &module)
{
    std::vector<IdiomMatch> all;
    for (const auto &f : module.functions()) {
        auto matches = detect(f.get());
        for (auto &m : matches)
            all.push_back(std::move(m));
    }
    return all;
}

} // namespace repro::idioms
