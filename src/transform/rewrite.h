/**
 * @file
 * The transactional rewrite engine: plan → validate → commit.
 *
 * The legacy transform path replaced matches one at a time, running
 * cleanup passes (unreachable-block removal + aggressive DCE) after
 * every replacement while later matches in the same function still
 * held raw Value and Instruction pointers from their solutions. Two
 * bug classes followed:
 *
 *  - overlap double-rewrite: two matches claiming the same loop
 *    blocks (a Reduction inside a GEMM nest) were both applied; the
 *    second rewrote blocks the first had already bypassed — or
 *    dereferenced blocks the first's cleanup had erased;
 *  - stale solution pointers: the first replacement's DCE erased an
 *    instruction a later match's solution still referenced, a
 *    use-after-free even for fully disjoint matches.
 *
 * The RewriteEngine stages mutation instead:
 *
 *  1. PLAN — every scheme (spmv/gemm/reduce/histogram/stencil) runs
 *     as a pure planner over unmutated IR and emits a RewritePlan:
 *     the loop blocks it claims, the callee declaration to
 *     materialize, kernel slices to extract (classified, not yet
 *     cloned), and the call arguments as recorded values. No IR is
 *     touched.
 *  2. RESOLVE — block claims are intersected across plans;
 *     overlapping claims are resolved most-specific-first (widest
 *     claim, then idioms::idiomSpecificity, then match order) and the
 *     losers dropped, making applyAll's "most specific first"
 *     contract real.
 *  3. VALIDATE — every surviving plan is checked against the live IR
 *     before any mutation: dangling solution values, cross-function
 *     references, callee signature clashes, argument/parameter type
 *     mismatches, and bypassability of the claimed loop.
 *  4. COMMIT — surviving plans are applied in match order with an
 *     undo log per function; a mid-commit failure rolls the whole
 *     function back (its earlier replacements included) and poisons
 *     it, leaving every other function's rewrites intact. Values a
 *     committed plan rewired (a reduction accumulator becoming its
 *     API call result) are tracked in a remap so later plans resolve
 *     recorded values to their live replacements instead of
 *     re-wiring stale pointers. Cleanup passes run once per rewritten
 *     function at the very end, never between replacements.
 */
#ifndef TRANSFORM_REWRITE_H
#define TRANSFORM_REWRITE_H

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "idioms/library.h"
#include "ir/verifier.h"
#include "transform/extract.h"
#include "transform/harden.h"
#include "transform/loop_shape.h"
#include "transform/transform.h"

namespace repro::transform {

/** One recorded call argument and how commit lowers it. */
struct CallArg
{
    enum class Mode
    {
        Raw,   ///< pass the value unchanged
        ToI64, ///< sign-extend / re-intern to i64 when needed
        Decay, ///< decay pointer-to-array to element pointer via gep
    };
    Mode mode = Mode::Raw;
    ir::Value *value = nullptr;
};

/** One kernel function the commit stage will materialize. */
struct PlannedKernel
{
    std::string name;
    KernelSlice slice;
};

/**
 * Everything one idiom replacement will do, computed without mutating
 * the IR. Values are recorded as pointers into the still-unmutated
 * module; RewriteEngine::validate re-checks them against the live IR
 * before any commit mutates it, and commit resolves them through the
 * remap of already-committed rewrites.
 */
struct RewritePlan
{
    std::string kind;  ///< "spmv" | "gemm" | "reduce" | ...
    std::string idiom; ///< source idiom name (overlap specificity)
    ir::Function *function = nullptr;
    /** Position in the planned match list (commit order). */
    size_t matchIndex = 0;

    /** Outermost loop the commit will bypass. */
    detail::LoopShape loop;
    /** Natural-loop blocks this plan claims (overlap currency). */
    std::vector<ir::BasicBlock *> claimedBlocks;

    /** Callee declaration to materialize (or reuse by name). */
    std::string calleeName;
    ir::Type *calleeReturn = nullptr;
    std::vector<ir::Type *> calleeParams;
    /** Library-backed schemes share one declaration per module. */
    bool reuseCallee = false;

    /** Kernel extractions ([0] = value kernel, [1] = index kernel). */
    std::vector<PlannedKernel> kernels;
    /** Arguments of the inserted call, in order. */
    std::vector<CallArg> args;

    /**
     * Reduction: out-of-claim uses of this value are rewired to the
     * inserted call's result at commit time.
     */
    ir::Value *resultReplaces = nullptr;

    /**
     * Reliability-hardening plan (kind "harden"): instead of an idiom
     * replacement, commit applies the EDDI/CFCSS passes of
     * transform/harden.h to the whole function. Such a plan claims
     * EVERY block of its function — strictly more than any natural
     * loop can claim (the entry block is never part of a loop) — so
     * widest-claim-first overlap resolution deterministically hardens
     * a `__protect`ed function instead of API-rewriting loops inside
     * it. The loop shape stays empty; validate() has a dedicated
     * early path for harden plans.
     */
    bool harden = false;
    HardenOptions hardenOpts;

    /** Idiom class of the source match (backend legality). */
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
    /** The (API, platform, predicted cost) this plan lowers to. */
    runtime::BackendTarget target;

    /** Replacement record (function pointers filled in at commit). */
    Replacement record;
};

/**
 * Backend choice for one match, without touching the IR: what the
 * selection stage would commit plus the ranked alternatives it would
 * reject. The service layer reports these on MATCH lines; replay from
 * the MatchCache re-derives them against the current policy.
 */
struct BackendDecision
{
    size_t matchIndex = 0;
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
    runtime::BackendTarget chosen;
    std::vector<runtime::BackendTarget> rejected;
    /** Costs are modeled (CostModel); Fixed reports the default. */
    bool modeled = false;
};

/**
 * Run plan → target expansion → selection (no validate, no commit)
 * for @p matches and report the per-match backend decisions. Purely
 * advisory: the module is only read (planning interns constants but
 * performs no structural mutation).
 */
std::vector<BackendDecision>
planBackendDecisions(ir::Module &module,
                     const std::vector<idioms::IdiomMatch> &matches,
                     const BackendConfig &backends);

/**
 * Plans, validates and commits idiom replacements over one module.
 * Planning is pure; all mutation happens inside commit(). One engine
 * instance owns the kernel/callee name counter of its module, so use
 * exactly one engine (or one Transformer) per transform pass.
 */
class RewriteEngine
{
  public:
    /** Outcome counters of the engine's lifetime. */
    struct Stats
    {
        size_t planned = 0;     ///< matches that produced a plan
        size_t unplannable = 0; ///< matches no scheme could express
        size_t droppedOverlap = 0;
        size_t failedValidation = 0;
        size_t committed = 0;
        size_t rolledBack = 0; ///< plans undone by a commit failure
    };

    /**
     * With @p verify == VerifyMode::Boundaries, commit() re-verifies
     * every function it touched: after its cleanup passes when its
     * plans committed ("rewrite-commit"), and right after the undo
     * replay when a mid-commit failure rolled it back
     * ("rewrite-rollback"). Harden commits flow through the same
     * pipeline and are covered by the same checks. A verification
     * failure throws InternalError naming the boundary — turning a
     * silent mis-rewrite into a hard stop at the pass that caused it.
     */
    explicit RewriteEngine(ir::Module &module,
                           ir::VerifyMode verify = ir::VerifyMode::Off,
                           BackendConfig backends = BackendConfig())
        : module_(module), verify_(verify),
          backends_(std::move(backends))
    {
    }

    /**
     * Plan one match; nullopt when no scheme can express it.
     * Planning analyzes the match's solution values, so the match
     * must be fresh — produced by detection on the module's current
     * IR. (Stale SOLUTIONS cannot be planned safely; stale PLANS are
     * what validate() exists to catch, by membership checks that
     * never dereference a recorded pointer.)
     */
    std::optional<RewritePlan> plan(const idioms::IdiomMatch &match);

    /**
     * Plan every match, in order (assigns matchIndex), then expand
     * each plan to one clone per candidate backend target: exactly
     * the fixed target under BackendPolicy::Fixed (or a forced
     * override), every legal (API, platform) ranked by modeled cost
     * under CostModel. Clones of one match share its matchIndex; the
     * selection stage of resolveOverlaps keeps the cheapest.
     */
    std::vector<RewritePlan>
    planAll(const std::vector<idioms::IdiomMatch> &matches);

    /** Plan hardening of one function (claims all of its blocks). */
    RewritePlan planHarden(ir::Function *func,
                           const HardenOptions &opts);

    /**
     * Plan hardening for every definition carrying a protect
     * attribute (frontend `__protect` annotation), assigning
     * matchIndex values starting at @p firstMatchIndex so idiom plans
     * keep commit-order priority on ties.
     */
    std::vector<RewritePlan> planHardenAll(size_t firstMatchIndex);

    /**
     * Backend selection, then overlap resolution. Selection groups
     * same-match alternatives (equal function + matchIndex) emitted
     * by planAll's target expansion and keeps the lowest predicted
     * cost, recording the rejected alternatives on the survivor's
     * Replacement. Overlap resolution then drops plans whose block
     * claims overlap an accepted plan's, most-specific-first: widest
     * claim, then idioms::idiomSpecificity, then match order.
     * Survivors are returned in match order.
     */
    std::vector<RewritePlan>
    resolveOverlaps(std::vector<RewritePlan> plans);

    /**
     * Check @p plan against the live IR: returns "" when it can
     * commit, otherwise a description of the first problem (dangling
     * value, cross-function reference, signature clash, type
     * mismatch, unbypassable loop). applyAll validates every
     * surviving plan after overlap resolution and BEFORE the first
     * commit — commits do not re-validate each other because they
     * defer all erasure to the final per-function cleanup, so no
     * commit can invalidate a sibling's validated plan (beyond the
     * bypass precondition, which commitPlan re-checks itself).
     */
    std::string validate(const RewritePlan &plan) const;

    /**
     * Apply plans in match order, atomically per function: a plan
     * that fails mid-commit rolls back every mutation already made to
     * its function (earlier plans included) and poisons the function
     * for the rest of the batch. Cleanup passes run once per
     * successfully rewritten function after all commits. Plans are
     * expected to be overlap-resolved and validated; commit still
     * re-checks the cheap structural preconditions it depends on.
     */
    std::vector<Replacement> commit(std::vector<RewritePlan> plans);

    /** The full pipeline: plan → resolve overlaps → validate → commit. */
    std::vector<Replacement>
    applyAll(const std::vector<idioms::IdiomMatch> &matches);

    const Stats &stats() const { return stats_; }

  private:
    std::optional<RewritePlan>
    planSpmv(const idioms::IdiomMatch &match);
    std::optional<RewritePlan>
    planGemm(const idioms::IdiomMatch &match);
    std::optional<RewritePlan>
    planReduction(const idioms::IdiomMatch &match);
    std::optional<RewritePlan>
    planHistogram(const idioms::IdiomMatch &match);
    std::optional<RewritePlan>
    planStencil(const idioms::IdiomMatch &match, int dims);

    /**
     * Expand one planned match into its per-target clones (see
     * planAll) and price them against the call site's workload.
     */
    std::vector<RewritePlan> expandTargets(RewritePlan plan);

    /** The workload descriptor of @p plan's loop nest: the dynamic
     *  profile via BackendConfig::workloads when deposited, else the
     *  static trip-count estimate. */
    analysis::WorkloadDescriptor workloadOf(const RewritePlan &plan);

    /** Same-match cheapest-alternative selection (see resolveOverlaps). */
    std::vector<RewritePlan>
    selectBackends(std::vector<RewritePlan> plans);

    /**
     * Apply one plan. Mutations are appended to @p undo (run in
     * reverse on rollback); values rewired by earlier commits resolve
     * through @p remap. @p calleeUsers tracks which functions hold
     * committed calls to each shared (reuseCallee) declaration, so a
     * rollback never destroys a declaration another function's call
     * still references — at worst it leaves an unused declaration
     * behind. Returns false on failure with the plan's own partial
     * mutations already recorded in @p undo.
     */
    bool
    commitPlan(RewritePlan &plan,
               std::vector<std::function<void()>> &undo,
               std::map<const ir::Value *, ir::Value *> &remap,
               std::map<ir::Function *, std::set<ir::Function *>>
                   &calleeUsers);

    /**
     * Apply a hardening plan. Fallible only BEFORE any mutation (a
     * hostile module may hold an incompatible @__harden_fault), so no
     * undo entries are needed: after the trap declaration resolves,
     * hardenFunction is infallible on verified IR. A trap declaration
     * created here is deliberately left behind on a later rollback of
     * the same function — the same benign-leftover tradeoff the
     * shared idiom callees make.
     */
    bool commitHarden(RewritePlan &plan);

    friend std::vector<BackendDecision>
    planBackendDecisions(ir::Module &,
                         const std::vector<idioms::IdiomMatch> &,
                         const BackendConfig &);

    ir::Module &module_;
    ir::VerifyMode verify_ = ir::VerifyMode::Off;
    BackendConfig backends_;
    int counter_ = 0;
    Stats stats_;
};

} // namespace repro::transform

#endif // TRANSFORM_REWRITE_H
