#include "transform/transform.h"

#include <set>

#include "analysis/function_analyses.h"
#include "frontend/passes.h"
#include "transform/extract.h"
#include "transform/loop_shape.h"
#include "transform/rewrite.h"

namespace repro::transform {

using namespace detail;
using analysis::DomTree;
using analysis::LoopInfo;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;
using solver::Solution;

Transformer::Transformer(ir::Module &module, ir::VerifyMode verify,
                         BackendConfig backends)
    : module_(module),
      engine_(std::make_unique<RewriteEngine>(module, verify,
                                              std::move(backends)))
{
}

Transformer::~Transformer() = default;

std::vector<Replacement>
Transformer::applyAll(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<Replacement> out = engine_->applyAll(matches);
    done_.insert(done_.end(), out.begin(), out.end());
    return out;
}

std::optional<Replacement>
Transformer::apply(const idioms::IdiomMatch &match)
{
    std::vector<Replacement> out = engine_->applyAll({match});
    if (out.empty())
        return std::nullopt;
    done_.push_back(out.front());
    return out.front();
}

// ------------------------------------------------- legacy reference path
//
// The pre-engine implementation, byte-for-byte: apply one match at a
// time and run cleanup passes immediately after each replacement.
// Solutions of later matches may dangle into IR this cleanup erased —
// that is exactly the bug class the RewriteEngine exists to fix — so
// this path is only safe on match sets known to be disjoint.

std::vector<Replacement>
Transformer::applyAllReference(
    const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<Replacement> out;
    for (const auto &m : matches) {
        auto r = applyReference(m);
        if (r)
            out.push_back(*r);
    }
    return out;
}

std::optional<Replacement>
Transformer::applyReference(const idioms::IdiomMatch &match)
{
    std::optional<Replacement> result;
    if (match.idiom == "SPMV")
        result = applySpmv(match);
    else if (match.idiom == "GEMM")
        result = applyGemm(match);
    else if (match.idiom == "Reduction")
        result = applyReduction(match);
    else if (match.idiom == "Histogram")
        result = applyHistogram(match);
    else if (match.idiom == "Stencil3D")
        result = applyStencil(match, 3);
    else if (match.idiom == "Stencil1D")
        result = applyStencil(match, 1);
    if (result) {
        frontend::removeUnreachableBlocks(match.function);
        frontend::aggressiveDCE(match.function);
        done_.push_back(*result);
    }
    return result;
}

std::optional<Replacement>
Transformer::applySpmv(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    Value *rowstr = asValue(sol.lookup("range.lo.base_pointer"));
    Value *colidx = asValue(sol.lookup("idx_read.base_pointer"));
    Value *a = asValue(sol.lookup("seq_read.base_pointer"));
    Value *z = asValue(sol.lookup("indir_read.base_pointer"));
    Value *r = asValue(sol.lookup("output.base_pointer"));
    if (!rowstr || !colidx || !a || !z || !r)
        return std::nullopt;

    auto &types = module_.types();
    // The fixed cusparseDcsrmv-like signature (Figure 6).
    if (pointeeElement(rowstr) != types.i32Ty() ||
        pointeeElement(colidx) != types.i32Ty() ||
        pointeeElement(a) != types.doubleTy() ||
        pointeeElement(z) != types.doubleTy() ||
        pointeeElement(r) != types.doubleTy()) {
        return std::nullopt;
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(
            *natural, {sol.lookup("output.store_instr")}, false)) {
        return std::nullopt;
    }

    Function *callee = module_.functionByName("__hetero_spmv");
    if (!callee) {
        Type *i32p = types.pointerTo(types.i32Ty());
        Type *f64p = types.pointerTo(types.doubleTy());
        callee = module_.createFunction(
            "__hetero_spmv", types.voidTy(),
            {types.i64Ty(), types.i64Ty(), i32p, i32p, f64p, f64p,
             f64p});
    }

    BasicBlock *tramp = bypassLoop(module_, loop);
    if (!tramp)
        return std::nullopt;
    Inserter ins(module_, tramp);
    ins.call(callee,
             {ins.toI64(loop.iterBegin), ins.toI64(loop.iterEnd),
              ins.decay(rowstr), ins.decay(colidx), ins.decay(a),
              ins.decay(z), ins.decay(r)});

    Replacement rep;
    rep.kind = "spmv";
    rep.calleeName = callee->name();
    rep.callee = callee;
    return rep;
}

std::optional<Replacement>
Transformer::applyGemm(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop0 = loopFromSolution(sol, "loop[0].");
    LoopShape loop1 = loopFromSolution(sol, "loop[1].");
    LoopShape loop2 = loopFromSolution(sol, "loop[2].");
    if (!loop0.complete() || !loop1.complete() || !loop2.complete())
        return std::nullopt;

    auto &types = module_.types();

    // Resolve one matrix access into base + (col, row) strides.
    struct Access
    {
        Value *base = nullptr;
        Value *colStride = nullptr;
        Value *rowStride = nullptr;
    };
    // col/row of each access were unified with loop iterators by the
    // GEMM constraint (Figure 10): output ↦ (it0, it1), input1 ↦
    // (it0, it2), input2 ↦ (it1, it2).
    auto resolve = [&](const std::string &prefix, const char *col_var,
                       const char *row_var) -> std::optional<Access> {
        Access acc;
        acc.base = asValue(sol.lookup(prefix + ".base_pointer"));
        if (!acc.base)
            return std::nullopt;
        const Value *col = sol.lookup(col_var);
        const Value *row = sol.lookup(row_var);
        Value *one = module_.intConst(types.i64Ty(), 1);
        if (const Value *stride = sol.lookup(prefix + ".stride")) {
            // Flat form: plain + scaled_iter*stride.
            const Value *plain =
                stripSext(sol.lookup(prefix + ".plain"));
            if (plain == col) {
                acc.colStride = one;
                acc.rowStride = asValue(stride);
            } else if (plain == row) {
                acc.rowStride = one;
                acc.colStride = asValue(stride);
            } else {
                return std::nullopt;
            }
            return acc;
        }
        // 2D form: rowgep selects a row array; the address indexes it.
        Instruction *address = asInst(sol.lookup(prefix + ".address"));
        Instruction *rowgep = asInst(sol.lookup(prefix + ".rowgep"));
        if (!address || !rowgep)
            return std::nullopt;
        // Inner index of `address` (last operand, through sext).
        const Value *inner = stripSext(
            address->operand(address->numOperands() - 1));
        int64_t row_elems = static_cast<int64_t>(
            address->accessType()->arraySize());
        Value *stride =
            module_.intConst(types.i64Ty(), row_elems);
        if (inner == col) {
            acc.colStride = one;
            acc.rowStride = stride;
        } else if (inner == row) {
            acc.rowStride = one;
            acc.colStride = stride;
        } else {
            return std::nullopt;
        }
        return acc;
    };

    auto out = resolve("output", "iterator[0]", "iterator[1]");
    auto in1 = resolve("input1", "iterator[0]", "iterator[2]");
    auto in2 = resolve("input2", "iterator[1]", "iterator[2]");
    if (!out || !in1 || !in2)
        return std::nullopt;

    Type *elem = pointeeElement(out->base);
    if (elem != pointeeElement(in1->base) ||
        elem != pointeeElement(in2->base) ||
        !(elem == types.floatTy() || elem == types.doubleTy())) {
        return std::nullopt;
    }

    // Alpha / beta extraction from the stored value expression.
    const Value *acc_phi = sol.lookup("acc");
    const Value *stored = sol.lookup("stored_value");
    const Value *init = sol.lookup("init");
    const Value *out_addr = sol.lookup("output.address");
    if (!acc_phi || !stored || !init)
        return std::nullopt;

    Value *alpha = nullptr;
    Value *beta = nullptr;
    auto fp_const = [&](double v) -> Value * {
        return module_.fpConst(elem, v);
    };
    auto is_load_of_out = [&](const Value *v) {
        const Instruction *inst =
            v->isInstruction()
                ? static_cast<const Instruction *>(v)
                : nullptr;
        return inst && inst->is(Opcode::Load) &&
               structurallyEqual(inst->operand(0), out_addr);
    };

    std::set<const Value *> allowed_stores;
    allowed_stores.insert(sol.lookup("store_instr"));
    if (stored == acc_phi) {
        alpha = fp_const(1.0);
        if (init->isConstant() &&
            static_cast<const ir::Constant *>(init)->isZero()) {
            beta = fp_const(0.0);
        } else if (is_load_of_out(init)) {
            // Promoted accumulator (Figure 8, second style). If the
            // same iteration zero-initializes the cell first, the
            // effective semantics are beta = 0 and the init store
            // dies with the loop.
            const auto *init_load =
                static_cast<const Instruction *>(init);
            BasicBlock *bb = init_load->parent();
            int at = bb->indexOf(init_load);
            const Instruction *zero_store = nullptr;
            for (int i = at - 1; i >= 0; --i) {
                const Instruction *prev =
                    bb->insts()[static_cast<size_t>(i)].get();
                if (prev->is(Opcode::Store) &&
                    structurallyEqual(prev->operand(1),
                                      init_load->operand(0))) {
                    zero_store = prev;
                    break;
                }
            }
            if (zero_store) {
                const Value *sv = zero_store->operand(0);
                if (!sv->isConstant() ||
                    !static_cast<const ir::Constant *>(sv)->isZero()) {
                    return std::nullopt;
                }
                beta = fp_const(0.0);
                allowed_stores.insert(zero_store);
            } else {
                beta = fp_const(1.0);
            }
        } else {
            return std::nullopt;
        }
    } else {
        // Match beta*C + alpha*acc (any operand order).
        const Instruction *add = asInst(stored);
        if (!add || !add->is(Opcode::FAdd))
            return std::nullopt;
        const Instruction *mul_a = asInst(add->operand(0));
        const Instruction *mul_b = asInst(add->operand(1));
        if (!mul_a || !mul_b || !mul_a->is(Opcode::FMul) ||
            !mul_b->is(Opcode::FMul)) {
            return std::nullopt;
        }
        auto pick = [&](const Instruction *mul, const Value *want,
                        auto pred) -> Value * {
            for (int i = 0; i < 2; ++i) {
                if (pred(mul->operand(static_cast<size_t>(i)), want))
                    return asValue(mul->operand(1 - i));
            }
            return nullptr;
        };
        auto is_same = [](const Value *a, const Value *b) {
            return a == b;
        };
        auto is_out_load = [&](const Value *a, const Value *) {
            return is_load_of_out(a);
        };
        // acc can reach the mul through the phi exit value directly.
        alpha = pick(mul_a, acc_phi, is_same);
        beta = pick(mul_b, nullptr, is_out_load);
        if (!alpha || !beta) {
            alpha = pick(mul_b, acc_phi, is_same);
            beta = pick(mul_a, nullptr, is_out_load);
        }
        if (!alpha || !beta)
            return std::nullopt;
        if (!init->isConstant() ||
            !static_cast<const ir::Constant *>(init)->isZero()) {
            return std::nullopt;
        }
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop0);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(*natural, allowed_stores, false))
        return std::nullopt;
    // alpha/beta must be available before the nest.
    for (Value *v : {alpha, beta}) {
        if (Instruction *inst = asInst(v)) {
            if (!dom.dominates(inst, loop0.precursor))
                return std::nullopt;
        }
    }

    bool is_f32 = elem == types.floatTy();
    std::string name = is_f32 ? "__hetero_gemm_f32"
                              : "__hetero_gemm_f64";
    Function *callee = module_.functionByName(name);
    if (!callee) {
        Type *i64 = types.i64Ty();
        Type *ep = types.pointerTo(elem);
        callee = module_.createFunction(
            name, types.voidTy(),
            {i64, i64, i64, i64, i64, i64, // bounds
             ep, i64, i64,                 // C, c_col, c_row
             ep, i64, i64,                 // A, a_col, a_k
             ep, i64, i64,                 // B, b_col, b_k
             elem, elem});                 // alpha, beta
    }

    BasicBlock *tramp = bypassLoop(module_, loop0);
    if (!tramp)
        return std::nullopt;
    Inserter ins(module_, tramp);
    ins.call(callee,
             {ins.toI64(loop0.iterBegin), ins.toI64(loop0.iterEnd),
              ins.toI64(loop1.iterBegin), ins.toI64(loop1.iterEnd),
              ins.toI64(loop2.iterBegin), ins.toI64(loop2.iterEnd),
              ins.decay(out->base), ins.toI64(out->colStride),
              ins.toI64(out->rowStride), ins.decay(in1->base),
              ins.toI64(in1->colStride), ins.toI64(in1->rowStride),
              ins.decay(in2->base), ins.toI64(in2->colStride),
              ins.toI64(in2->rowStride), alpha, beta});

    Replacement rep;
    rep.kind = "gemm";
    rep.calleeName = name;
    rep.callee = callee;
    rep.elemKind = elem->kind();
    return rep;
}

std::optional<Replacement>
Transformer::applyReduction(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    const Value *old_value = sol.lookup("old_value");
    const Value *kernel_out = sol.lookup("kernel_output");
    Value *init = asValue(sol.lookup("init_value"));
    if (!old_value || !kernel_out || !init)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    for (size_t i = 0; i < reads.size(); ++i) {
        Value *base = asValue(sol.lookup(
            "read[" + std::to_string(i) + "].base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, old_value))
        return std::nullopt;
    if (!loopEffectsAreCovered(*natural, {}, true))
        return std::nullopt;
    for (Value *base : bases) {
        if (Instruction *inst = asInst(base)) {
            if (!dom.dominates(inst, loop.precursor))
                return std::nullopt;
        }
    }

    std::vector<const Value *> inputs(reads.begin(), reads.end());
    inputs.push_back(old_value);
    std::string kname =
        "__kernel_reduce_" + std::to_string(counter_++);
    auto extracted =
        extractKernel(module_, kname, kernel_out, loop.bodyBegin,
                      inputs, dom, loop.precursor);
    if (!extracted)
        return std::nullopt;

    auto &types = module_.types();
    Type *acc_type = asValue(old_value)->type();
    std::vector<Type *> params{types.i64Ty(), types.i64Ty(), acc_type};
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : extracted->invariants)
        params.push_back(inv->type());
    std::string name = "__hetero_reduce_" + std::to_string(counter_++);
    Function *callee =
        module_.createFunction(name, acc_type, params);

    BasicBlock *tramp = bypassLoop(module_, loop);
    if (!tramp)
        return std::nullopt;
    Inserter ins(module_, tramp);
    std::vector<Value *> args{ins.toI64(loop.iterBegin),
                              ins.toI64(loop.iterEnd), init};
    for (Value *base : bases)
        args.push_back(ins.decay(base));
    for (const Value *inv : extracted->invariants)
        args.push_back(asValue(inv));
    Instruction *call = ins.call(callee, args);

    // Out-of-loop uses of the accumulator phi become the call result.
    std::vector<Instruction *> users(asValue(old_value)->users());
    for (Instruction *user : users) {
        if (user == call || natural->contains(user->parent()))
            continue;
        for (size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == old_value)
                user->setOperand(i, call);
        }
    }

    Replacement rep;
    rep.kind = "reduce";
    rep.calleeName = name;
    rep.callee = callee;
    rep.kernel = extracted->func;
    rep.numReads = static_cast<int>(reads.size());
    rep.numInvariants = static_cast<int>(extracted->invariants.size());
    for (const Value *r : reads)
        rep.readKinds.push_back(r->type()->kind());
    rep.elemKind = acc_type->kind();
    return rep;
}

std::optional<Replacement>
Transformer::applyHistogram(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    const Value *new_value = sol.lookup("new_value");
    const Value *old_value = sol.lookup("old_value");
    const Value *index = sol.lookup("index");
    Value *bin_base = asValue(sol.lookup("bin_base"));
    if (!new_value || !old_value || !index || !bin_base)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    for (size_t i = 0; i < reads.size(); ++i) {
        Value *base = asValue(sol.lookup(
            "read[" + std::to_string(i) + "].base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(
            *natural, {sol.lookup("store_instr")}, true)) {
        return std::nullopt;
    }
    for (Value *base : bases) {
        if (Instruction *inst = asInst(base)) {
            if (!dom.dominates(inst, loop.precursor))
                return std::nullopt;
        }
    }

    // Kernel computing the updated bin value from (reads..., old).
    std::vector<const Value *> val_inputs(reads.begin(), reads.end());
    val_inputs.push_back(old_value);
    auto val_kernel = extractKernel(
        module_, "__kernel_histo_val_" + std::to_string(counter_),
        new_value, loop.bodyBegin, val_inputs, dom, loop.precursor);
    if (!val_kernel)
        return std::nullopt;
    // Kernel computing the bin index from (reads...).
    std::vector<const Value *> idx_inputs(reads.begin(), reads.end());
    auto idx_kernel = extractKernel(
        module_, "__kernel_histo_idx_" + std::to_string(counter_),
        index, loop.bodyBegin, idx_inputs, dom, loop.precursor);
    if (!idx_kernel)
        return std::nullopt;

    auto &types = module_.types();
    std::vector<Type *> params{
        types.i64Ty(), types.i64Ty(),
        types.pointerTo(pointeeElement(bin_base))};
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : val_kernel->invariants)
        params.push_back(inv->type());
    for (const Value *inv : idx_kernel->invariants)
        params.push_back(inv->type());
    std::string name =
        "__hetero_histogram_" + std::to_string(counter_++);
    Function *callee =
        module_.createFunction(name, types.voidTy(), params);

    BasicBlock *tramp = bypassLoop(module_, loop);
    if (!tramp)
        return std::nullopt;
    Inserter ins(module_, tramp);
    std::vector<Value *> args{ins.toI64(loop.iterBegin),
                              ins.toI64(loop.iterEnd),
                              ins.decay(bin_base)};
    for (Value *base : bases)
        args.push_back(ins.decay(base));
    for (const Value *inv : val_kernel->invariants)
        args.push_back(asValue(inv));
    for (const Value *inv : idx_kernel->invariants)
        args.push_back(asValue(inv));
    ins.call(callee, args);

    Replacement rep;
    rep.kind = "histogram";
    rep.calleeName = name;
    rep.callee = callee;
    rep.kernel = val_kernel->func;
    rep.indexKernel = idx_kernel->func;
    rep.numReads = static_cast<int>(reads.size());
    rep.numInvariants =
        static_cast<int>(val_kernel->invariants.size());
    rep.numIndexInvariants =
        static_cast<int>(idx_kernel->invariants.size());
    for (const Value *r : reads)
        rep.readKinds.push_back(r->type()->kind());
    rep.elemKind = pointeeElement(bin_base)->kind();
    return rep;
}

std::optional<Replacement>
Transformer::applyStencil(const idioms::IdiomMatch &match, int dims)
{
    const Solution &sol = match.solution;
    LoopShape outer = loopFromSolution(
        sol, dims == 1 ? "" : "loop[0].");
    if (!outer.complete())
        return std::nullopt;

    const Value *write_value = sol.lookup("write.value");
    Value *write_base = asValue(sol.lookup("write.base_pointer"));
    if (!write_value || !write_base)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    std::vector<int64_t> offsets;
    // The displaced index for dimension d of one read is bound to
    // "read[i].d<d>"; OffsetIndex helper variables live under
    // "read[i].off<d>.".
    auto offset_of =
        [&](const std::string &read_prefix,
            int d) -> std::optional<int64_t> {
        const Value *out =
            sol.lookup(read_prefix + ".d" + std::to_string(d));
        if (!out)
            return std::nullopt;
        const Instruction *inst = asInst(out);
        if (!inst || inst->is(Opcode::Phi))
            return 0; // the iterator itself ("same" branch)
        const Value *c = sol.lookup(read_prefix + ".off" +
                                    std::to_string(d) + ".offset");
        if (!c || !c->isConstant())
            return std::nullopt;
        int64_t off =
            static_cast<const ir::Constant *>(c)->intValue();
        return inst->is(Opcode::Sub) ? -off : off;
    };
    for (size_t i = 0; i < reads.size(); ++i) {
        std::string prefix = "read[" + std::to_string(i) + "]";
        Value *base = asValue(sol.lookup(prefix + ".base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
        for (int d = 0; d < dims; ++d) {
            auto off = offset_of(prefix, d);
            if (!off)
                return std::nullopt;
            offsets.push_back(*off);
        }
    }

    // 3D strides must be shared between the write and every read.
    Value *s0 = nullptr;
    Value *s1 = nullptr;
    if (dims == 3) {
        s0 = asValue(sol.lookup("write.s0"));
        s1 = asValue(sol.lookup("write.s1"));
        if (!s0 || !s1)
            return std::nullopt;
        for (size_t i = 0; i < reads.size(); ++i) {
            std::string prefix = "read[" + std::to_string(i) + "]";
            if (sol.lookup(prefix + ".s0") != s0 ||
                sol.lookup(prefix + ".s1") != s1) {
                return std::nullopt;
            }
        }
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, outer);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(
            *natural, {sol.lookup("write.store_instr")}, true)) {
        return std::nullopt;
    }
    // A Jacobi-style stencil must not update in place.
    for (Value *base : bases) {
        if (base == write_base)
            return std::nullopt;
    }

    std::vector<const Value *> inputs(reads.begin(), reads.end());
    // The kernel region is the innermost loop body.
    Instruction *inner_begin = asInst(sol.lookup(
        dims == 1 ? "body_begin"
                  : "begin[" + std::to_string(dims - 1) + "]"));
    if (!inner_begin)
        return std::nullopt;
    auto extracted = extractKernel(
        module_, "__kernel_stencil_" + std::to_string(counter_),
        write_value, inner_begin, inputs, dom, outer.precursor);
    if (!extracted)
        return std::nullopt;

    auto &types = module_.types();
    Type *elem = pointeeElement(write_base);
    std::vector<Type *> params;
    for (int d = 0; d < dims; ++d) {
        params.push_back(types.i64Ty());
        params.push_back(types.i64Ty());
    }
    params.push_back(types.pointerTo(elem));
    if (dims == 3) {
        params.push_back(types.i64Ty());
        params.push_back(types.i64Ty());
    }
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : extracted->invariants)
        params.push_back(inv->type());
    std::string name = "__hetero_stencil" + std::to_string(dims) +
                       "d_" + std::to_string(counter_++);
    Function *callee =
        module_.createFunction(name, types.voidTy(), params);

    BasicBlock *tramp = bypassLoop(module_, outer);
    if (!tramp)
        return std::nullopt;
    Inserter ins(module_, tramp);
    std::vector<Value *> args;
    for (int d = 0; d < dims; ++d) {
        LoopShape shape =
            dims == 1 ? outer
                      : loopFromSolution(
                            sol, "loop[" + std::to_string(d) + "].");
        args.push_back(ins.toI64(shape.iterBegin));
        args.push_back(ins.toI64(shape.iterEnd));
    }
    args.push_back(ins.decay(write_base));
    if (dims == 3) {
        args.push_back(ins.toI64(s0));
        args.push_back(ins.toI64(s1));
    }
    for (Value *base : bases)
        args.push_back(ins.decay(base));
    for (const Value *inv : extracted->invariants)
        args.push_back(asValue(inv));
    ins.call(callee, args);

    Replacement rep;
    rep.kind = "stencil" + std::to_string(dims) + "d";
    rep.calleeName = name;
    rep.callee = callee;
    rep.kernel = extracted->func;
    rep.numReads = static_cast<int>(reads.size());
    rep.numInvariants = static_cast<int>(extracted->invariants.size());
    rep.readOffsets = offsets;
    rep.stencilDims = dims;
    for (const Value *r : reads)
        rep.readKinds.push_back(r->type()->kind());
    rep.elemKind = elem->kind();
    return rep;
}

} // namespace repro::transform
