/**
 * @file
 * Kernel extraction: clone the backward slice of a value into a fresh
 * IR function (section 6.2 — "we use this information to cut out the
 * kernel function").
 */
#ifndef TRANSFORM_EXTRACT_H
#define TRANSFORM_EXTRACT_H

#include <optional>
#include <string>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace repro::transform {

/** Result of a successful extraction. */
struct ExtractedKernel
{
    ir::Function *func = nullptr;
    /** Loop-invariant values that became trailing parameters. */
    std::vector<const ir::Value *> invariants;
};

/**
 * Extract the computation of @p out into a new function.
 *
 * @param inputs become the leading parameters, in order (typically
 *        the collected read values followed by the old accumulator).
 * @param region_begin instruction-level region root: instructions
 *        dominated by it are cloned; values defined outside are
 *        treated as loop invariants and appended as parameters.
 * @param call_point every invariant must dominate this instruction
 *        (where the replacement call will live).
 *
 * Returns std::nullopt when the slice contains constructs the
 * translation cannot express (phis, unlisted loads, stores, calls to
 * defined functions).
 */
std::optional<ExtractedKernel>
extractKernel(ir::Module &module, const std::string &name,
              const ir::Value *out, const ir::Instruction *region_begin,
              const std::vector<const ir::Value *> &inputs,
              const analysis::DomTree &dom,
              const ir::Instruction *call_point);

} // namespace repro::transform

#endif // TRANSFORM_EXTRACT_H
