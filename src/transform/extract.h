/**
 * @file
 * Kernel extraction: clone the backward slice of a value into a fresh
 * IR function (section 6.2 — "we use this information to cut out the
 * kernel function").
 *
 * Extraction is split into two phases so the transactional
 * RewriteEngine (rewrite.h) can plan without mutating the module:
 * planKernelSlice classifies the backward slice and computes the
 * loop-invariant parameter list purely, and materializeKernel builds
 * the function from a previously computed slice. extractKernel is the
 * one-shot composition of the two, kept for the legacy per-match
 * reference path.
 */
#ifndef TRANSFORM_EXTRACT_H
#define TRANSFORM_EXTRACT_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace repro::transform {

/**
 * Pure classification of one kernel extraction: which values become
 * leading parameters (@p inputs, in order), which loop-invariant
 * values become trailing parameters, and which region the clone will
 * walk. Holds no IR mutation; pointers reference the (still
 * unmutated) source function.
 */
struct KernelSlice
{
    /** Value the kernel computes (becomes the return value). */
    const ir::Value *out = nullptr;
    /** Instruction-level region root (see planKernelSlice). */
    const ir::Instruction *regionBegin = nullptr;
    /** Leading parameters, in order. */
    std::vector<const ir::Value *> inputs;
    /** Loop-invariant values that become trailing parameters. */
    std::vector<const ir::Value *> invariants;
};

/** Result of a successful extraction. */
struct ExtractedKernel
{
    ir::Function *func = nullptr;
    /** Loop-invariant values that became trailing parameters. */
    std::vector<const ir::Value *> invariants;
};

/**
 * Classify the computation of @p out without touching the IR.
 *
 * @param inputs become the leading parameters, in order (typically
 *        the collected read values followed by the old accumulator).
 * @param region_begin instruction-level region root: instructions
 *        dominated by it are cloned; values defined outside are
 *        treated as loop invariants and appended as parameters.
 * @param call_point every invariant must dominate this instruction
 *        (where the replacement call will live).
 *
 * Returns std::nullopt when the slice contains constructs the
 * translation cannot express (phis, unlisted loads, stores, calls to
 * defined functions).
 */
std::optional<KernelSlice>
planKernelSlice(const ir::Value *out,
                const ir::Instruction *region_begin,
                const std::vector<const ir::Value *> &inputs,
                const analysis::DomTree &dom,
                const ir::Instruction *call_point);

/**
 * Build the kernel function @p name from a slice computed by
 * planKernelSlice. The slice's source region must still be intact.
 *
 * @param remap optional value substitutions performed by rewrites
 *        committed since the slice was planned (e.g. a reduction
 *        result replaced by its API call): any slice value with an
 *        entry here is ALSO mapped to the corresponding parameter, so
 *        region instructions whose operands were rewired still clone
 *        to parameter references instead of dragging foreign
 *        instructions into the kernel.
 */
ir::Function *
materializeKernel(ir::Module &module, const std::string &name,
                  const KernelSlice &slice,
                  const std::map<const ir::Value *, ir::Value *>
                      *remap = nullptr);

/**
 * One-shot extraction: planKernelSlice + materializeKernel. Used by
 * the legacy per-match reference path; new code should plan first and
 * materialize at commit time.
 */
std::optional<ExtractedKernel>
extractKernel(ir::Module &module, const std::string &name,
              const ir::Value *out, const ir::Instruction *region_begin,
              const std::vector<const ir::Value *> &inputs,
              const analysis::DomTree &dom,
              const ir::Instruction *call_point);

} // namespace repro::transform

#endif // TRANSFORM_EXTRACT_H
