/**
 * @file
 * Idiom-to-API transformation (section 6 of the paper).
 *
 * A detected idiom solution drives surgery on the IR: the matched
 * loop (nest) is bypassed, a call to a heterogeneous API entry point
 * is inserted in its place, and — for DSL-backed idioms — the loop
 * body's kernel function is extracted into a fresh IR function that
 * the runtime skeleton invokes per element.
 *
 * Since the transactional rework, all rewriting is staged through the
 * RewriteEngine (rewrite.h): matches are planned purely, overlapping
 * block claims are resolved most-specific-first, every plan is
 * validated against the live IR, and mutation happens in one
 * per-function-atomic commit with cleanup passes run once at the end.
 * The legacy one-match-at-a-time path survives as applyAllReference
 * for differential testing only.
 */
#ifndef TRANSFORM_TRANSFORM_H
#define TRANSFORM_TRANSFORM_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "idioms/library.h"
#include "ir/function.h"
#include "ir/verifier.h"
#include "runtime/cost.h"

namespace repro::transform {

class RewriteEngine;

/**
 * How the engine picks the backend of each replacement.
 *
 * Fixed (the default) lowers every idiom class to its historical
 * host target (runtime::fixedTarget) — byte-identical to the
 * pre-selection transform stack, so Table 1 counts and all parity
 * tests are unaffected. CostModel plans every legal (API, platform)
 * lowering, prices each against the call site's workload descriptor
 * and commits the cheapest (docs/BACKENDS.md).
 */
enum class BackendPolicy
{
    Fixed,
    CostModel,
};

/** Backend-selection inputs threaded through the transform stack. */
struct BackendConfig
{
    BackendPolicy policy = BackendPolicy::Fixed;

    /**
     * Force the target of every plan of a given kind ("gemm",
     * "spmv", ...), overriding the policy. The differential
     * verification sweep uses this to drive each legal alternative
     * through the full pipeline.
     */
    std::map<std::string, runtime::BackendTarget> forced;

    /**
     * Dynamic per-loop workload lookup (function, nest header) →
     * descriptor; null function or null result falls back to the
     * engine's static trip-count estimate.
     */
    std::function<const analysis::WorkloadDescriptor *(
        const ir::Function *, const ir::BasicBlock *)>
        workloads;
};

/** Record of one applied replacement. */
struct Replacement
{
    std::string kind;        ///< "spmv" | "gemm" | "reduce" | ...
    std::string calleeName;  ///< the inserted API entry point
    ir::Function *callee = nullptr;
    ir::Function *kernel = nullptr;      ///< extracted kernel
    ir::Function *indexKernel = nullptr; ///< histogram index kernel
    int numReads = 0;
    int numInvariants = 0;
    /** Histogram: trailing invariants of the index kernel. */
    int numIndexInvariants = 0;
    /** Element type kinds of the collected reads, in order. */
    std::vector<ir::Type::Kind> readKinds;
    /** Stencil: flattened per-read offsets (innermost first). */
    std::vector<int64_t> readOffsets;
    int stencilDims = 0;
    /** Value kind of the accumulator / stored element. */
    ir::Type::Kind elemKind = ir::Type::Kind::Double;

    /** Idiom class of the source match. */
    idioms::IdiomClass cls = idioms::IdiomClass::Other;
    /** The backend this call site was lowered to. */
    runtime::BackendTarget target;
    /**
     * Legal alternatives the selection stage rejected, ranked by
     * ascending predicted cost. Empty under BackendPolicy::Fixed.
     */
    std::vector<runtime::BackendTarget> rejected;
    /** Costs were modeled (CostModel policy); Fixed leaves 0s. */
    bool costModeled = false;
};

/**
 * Applies idiom matches to the module. Replacements that the current
 * translation schemes cannot express (e.g. kernels with internal
 * control flow that does not reduce to selects) are skipped — the
 * idiom still counts as detected, it is just not exploited.
 *
 * One Transformer owns one RewriteEngine (and with it the module's
 * kernel/callee name counter): use a fresh instance per transform
 * pass, and do not mix the engine-backed entry points with
 * applyAllReference on the same instance.
 */
class Transformer
{
  public:
    /**
     * @p verify is forwarded to the engine: with
     * VerifyMode::Boundaries, every commit and rollback re-verifies
     * the touched function (see RewriteEngine). The legacy
     * applyAllReference path ignores it.
     */
    explicit Transformer(ir::Module &module,
                         ir::VerifyMode verify = ir::VerifyMode::Off,
                         BackendConfig backends = BackendConfig());
    ~Transformer();

    /** Try to replace one match; nullopt when unsupported. */
    std::optional<Replacement> apply(const idioms::IdiomMatch &match);

    /**
     * Apply every match, most specific first: plan all replacements
     * against the unmutated IR, drop overlapping claims, validate,
     * then commit atomically per function (see RewriteEngine).
     */
    std::vector<Replacement>
    applyAll(const std::vector<idioms::IdiomMatch> &matches);

    /**
     * The legacy pre-engine path (the solveAllReference/runReference
     * pattern): replace matches one at a time, running cleanup passes
     * after every replacement, with no overlap tracking and no
     * stale-pointer validation. Byte-identical to applyAll on match
     * sets where it is well defined — i.e. non-overlapping matches
     * whose solutions stay disjoint from each other's cleanup — and
     * undefined behavior outside that; kept briefly for differential
     * testing.
     */
    std::vector<Replacement>
    applyAllReference(const std::vector<idioms::IdiomMatch> &matches);

    /** Replacements performed so far. */
    const std::vector<Replacement> &replacements() const
    {
        return done_;
    }

    /** The engine behind apply/applyAll (stats inspection). */
    const RewriteEngine &engine() const { return *engine_; }

  private:
    /** Legacy per-match scheme bodies (reference path only). */
    std::optional<Replacement>
    applyReference(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applySpmv(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyGemm(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyReduction(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyHistogram(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyStencil(const idioms::IdiomMatch &match, int dims);

    ir::Module &module_;
    std::unique_ptr<RewriteEngine> engine_;
    std::vector<Replacement> done_;
    /** Name counter of the reference path (the engine has its own). */
    int counter_ = 0;
};

} // namespace repro::transform

#endif // TRANSFORM_TRANSFORM_H
