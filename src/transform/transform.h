/**
 * @file
 * Idiom-to-API transformation (section 6 of the paper).
 *
 * A detected idiom solution drives surgery on the IR: the matched
 * loop (nest) is bypassed, a call to a heterogeneous API entry point
 * is inserted in its place, and — for DSL-backed idioms — the loop
 * body's kernel function is extracted into a fresh IR function that
 * the runtime skeleton invokes per element.
 */
#ifndef TRANSFORM_TRANSFORM_H
#define TRANSFORM_TRANSFORM_H

#include <optional>
#include <string>
#include <vector>

#include "idioms/library.h"
#include "ir/function.h"

namespace repro::transform {

/** Record of one applied replacement. */
struct Replacement
{
    std::string kind;        ///< "spmv" | "gemm" | "reduce" | ...
    std::string calleeName;  ///< the inserted API entry point
    ir::Function *callee = nullptr;
    ir::Function *kernel = nullptr;      ///< extracted kernel
    ir::Function *indexKernel = nullptr; ///< histogram index kernel
    int numReads = 0;
    int numInvariants = 0;
    /** Histogram: trailing invariants of the index kernel. */
    int numIndexInvariants = 0;
    /** Element type kinds of the collected reads, in order. */
    std::vector<ir::Type::Kind> readKinds;
    /** Stencil: flattened per-read offsets (innermost first). */
    std::vector<int64_t> readOffsets;
    int stencilDims = 0;
    /** Value kind of the accumulator / stored element. */
    ir::Type::Kind elemKind = ir::Type::Kind::Double;
};

/**
 * Applies idiom matches to the module. Replacements that the current
 * translation schemes cannot express (e.g. kernels with internal
 * control flow that does not reduce to selects) are skipped — the
 * idiom still counts as detected, it is just not exploited.
 */
class Transformer
{
  public:
    explicit Transformer(ir::Module &module) : module_(module) {}

    /** Try to replace one match; nullopt when unsupported. */
    std::optional<Replacement> apply(const idioms::IdiomMatch &match);

    /** Apply every match, most specific first. */
    std::vector<Replacement>
    applyAll(const std::vector<idioms::IdiomMatch> &matches);

    /** Replacements performed so far. */
    const std::vector<Replacement> &replacements() const
    {
        return done_;
    }

  private:
    std::optional<Replacement>
    applySpmv(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyGemm(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyReduction(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyHistogram(const idioms::IdiomMatch &match);
    std::optional<Replacement>
    applyStencil(const idioms::IdiomMatch &match, int dims);

    ir::Module &module_;
    std::vector<Replacement> done_;
    int counter_ = 0;
};

} // namespace repro::transform

#endif // TRANSFORM_TRANSFORM_H
