/**
 * @file
 * Binds the inserted heterogeneous API entry points to native
 * skeleton implementations on the interpreter (the "link against the
 * vendor library / DSL output" step of Figure 1).
 */
#ifndef TRANSFORM_BINDER_H
#define TRANSFORM_BINDER_H

#include <vector>

#include "interp/interpreter.h"
#include "transform/transform.h"

namespace repro::transform {

/**
 * Register a native handler with @p interp for every entry of
 * @p replacements, so a transformed module stays executable:
 * DSL-backed idioms (reduce/histogram/stencil) call back into their
 * extracted IR kernel functions through the interpreter, while
 * library-backed ones (spmv/gemm) run directly over the heap via
 * runtime/sparse.h and runtime/blas.h. Call after
 * transform::Transformer::applyAll and before Interpreter::run.
 */
void bindReplacements(interp::Interpreter &interp,
                      const std::vector<Replacement> &replacements);

} // namespace repro::transform

#endif // TRANSFORM_BINDER_H
