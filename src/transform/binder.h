/**
 * @file
 * Binds the inserted heterogeneous API entry points to native
 * skeleton implementations on the interpreter (the "link against the
 * vendor library / DSL output" step of Figure 1).
 */
#ifndef TRANSFORM_BINDER_H
#define TRANSFORM_BINDER_H

#include <vector>

#include "interp/interpreter.h"
#include "transform/transform.h"

namespace repro::transform {

/**
 * Register native handlers for every replacement. DSL-backed idioms
 * (reduce/histogram/stencil) call back into their extracted IR kernel
 * functions through the interpreter; library-backed ones (spmv/gemm)
 * run directly over the heap.
 */
void bindReplacements(interp::Interpreter &interp,
                      const std::vector<Replacement> &replacements);

} // namespace repro::transform

#endif // TRANSFORM_BINDER_H
