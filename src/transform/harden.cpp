/**
 * @file
 * Implementation of the EDDI / CFCSS hardening passes (harden.h).
 *
 * Both passes run in one structural walk:
 *
 *  1. (EDDI) two cloning passes over the unmutated function: first
 *     every duplicable instruction gets an empty shadow clone and
 *     every shadow *root* (argument, alloca, non-void call result)
 *     gets an identity-copy instruction, registering them in the
 *     shadow map; then clone operands are filled through the map, so
 *     forward references (phis of loop-carried values) resolve.
 *  2. one rebuild pass over the original blocks: each block's
 *     instructions are detached and re-emitted into a chain of
 *     *segments* — the original block (keeping its incoming edges)
 *     followed by fresh "harden.seg" blocks, one split per emitted
 *     check. Shadow clones ride immediately after their originals,
 *     CFCSS instrumentation is generated in place (and is itself
 *     never duplicated or checked), and every check terminates its
 *     segment with `condBr(mismatch, fault, next-segment)`.
 *  3. a phi fixup: predecessors still branch to the original block
 *     heads, but the terminator of a rebuilt block now lives in its
 *     last segment, so every phi incoming-block reference is remapped
 *     original -> last segment, restoring the verifier's exact
 *     phi/predecessor correspondence.
 *
 * CFCSS signatures are derived from the block's position in the
 * original layout via a splitmix64 mix, making the instrumentation —
 * and therefore the whole fault-injection campaign — deterministic
 * across runs and engines.
 */
#include "transform/harden.h"

#include <map>
#include <vector>

#include "interp/interpreter.h"
#include "ir/irbuilder.h"
#include "support/diagnostics.h"

namespace repro::transform {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

std::optional<HardenOptions>
protectOptionsFor(const Function &func)
{
    if (func.hasAttribute("protect"))
        return HardenOptions{true, true};
    if (func.hasAttribute("protect:eddi"))
        return HardenOptions{true, false};
    if (func.hasAttribute("protect:cfcss"))
        return HardenOptions{false, true};
    return std::nullopt;
}

Function *
getOrCreateHardenTrap(Module &module)
{
    if (Function *existing =
            module.functionByName(interp::kHardenTrapFunction)) {
        bool compatible = existing->isDeclaration() &&
                          existing->returnType()->isVoid() &&
                          existing->numArgs() == 0;
        return compatible ? existing : nullptr;
    }
    return module.createFunction(interp::kHardenTrapFunction,
                                 module.types().voidTy(), {});
}

namespace {

/** Deterministic block-signature mix (splitmix64 finalizer). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** All pass state for hardening one function. */
class Hardener
{
  public:
    Hardener(Module &module, Function &func, Function *trap,
             const HardenOptions &opts)
        : module_(module), func_(func), trap_(trap), opts_(opts),
          builder_(module)
    {}

    void
    run()
    {
        for (const auto &bb : func_.blocks())
            origBlocks_.push_back(bb.get());
        if (opts_.signatures)
            computeSignatures();
        buildFaultBlock();
        if (opts_.duplicate) {
            createShadows();
            fillShadowOperands();
        }
        for (BasicBlock *bb : origBlocks_)
            rebuildBlock(bb);
        fixupPhiIncomings();
    }

  private:
    int64_t
    sigConst(const BasicBlock *bb) const
    {
        return sig_.at(bb);
    }

    ir::Constant *
    c64(int64_t v)
    {
        return module_.intConst(module_.types().i64Ty(), v);
    }

    /**
     * Signatures keyed to the ORIGINAL blocks, by layout index, and
     * the fan-in reference predecessor p1(B): the first predecessor
     * in layout order (BasicBlock::predecessors scans the function
     * in order, so this is deterministic).
     */
    void
    computeSignatures()
    {
        for (size_t i = 0; i < origBlocks_.size(); ++i)
            sig_[origBlocks_[i]] = static_cast<int64_t>(mix64(i + 1));
        for (BasicBlock *bb : origBlocks_) {
            auto preds = bb->predecessors();
            if (!preds.empty())
                firstPred_[bb] = preds.front();
        }
    }

    /** One shared trap block: call @__harden_fault, return zero. */
    void
    buildFaultBlock()
    {
        faultBB_ = func_.createBlock(func_.uniqueName("harden.fault"));
        builder_.setInsertPoint(faultBB_);
        builder_.call(trap_, {});
        Type *ret = func_.returnType();
        if (ret->isVoid()) {
            builder_.retVoid();
        } else if (ret->isFloatingPoint()) {
            builder_.ret(module_.fpConst(ret, 0.0));
        } else {
            // Integer and pointer returns: interned zero of the type.
            builder_.ret(module_.intConst(ret, 0));
        }
    }

    /** Ops whose results flow into the shadow computation as clones. */
    static bool
    isDuplicable(Opcode op)
    {
        switch (op) {
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::SDiv: case Opcode::SRem: case Opcode::And:
          case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
          case Opcode::AShr: case Opcode::FAdd: case Opcode::FSub:
          case Opcode::FMul: case Opcode::FDiv: case Opcode::Load:
          case Opcode::GEP: case Opcode::ICmp: case Opcode::FCmp:
          case Opcode::Select: case Opcode::Phi: case Opcode::SExt:
          case Opcode::ZExt: case Opcode::Trunc: case Opcode::SIToFP:
          case Opcode::FPToSI: case Opcode::FPExt: case Opcode::FPTrunc:
            return true;
          default:
            return false;
        }
    }

    /**
     * Identity copy of @p v: a fresh instruction computing v again so
     * the shadow data-flow re-reads the value through an independent
     * dynamic instruction. All three forms are bit-exact:
     * `or v, 0` for integers, `fadd v, -0.0` for floats (IEEE-754
     * identity for every value including zeros; rounding to float
     * precision is idempotent), `gep v, 0` for pointers.
     */
    std::unique_ptr<Instruction>
    makeIdentityCopy(Value *v)
    {
        Type *t = v->type();
        std::unique_ptr<Instruction> inst;
        if (t->isInteger()) {
            inst = std::make_unique<Instruction>(
                Opcode::Or, t, func_.uniqueName("shadow"));
            inst->addOperand(v);
            inst->addOperand(module_.intConst(t, 0));
        } else if (t->isFloatingPoint()) {
            inst = std::make_unique<Instruction>(
                Opcode::FAdd, t, func_.uniqueName("shadow"));
            inst->addOperand(v);
            inst->addOperand(module_.fpConst(t, -0.0));
        } else if (t->isPointer()) {
            inst = std::make_unique<Instruction>(
                Opcode::GEP, module_.types().pointerTo(t->element()),
                func_.uniqueName("shadow"));
            inst->setAccessType(t->element());
            inst->addOperand(v);
            inst->addOperand(c64(0));
        } else {
            throw InternalError("harden: unsupported shadow root type");
        }
        return inst;
    }

    /**
     * Cloning pass 1: empty shadow clones for duplicable
     * instructions, identity copies for shadow roots (arguments,
     * allocas, non-void call results). Only registration — clones are
     * placed during the rebuild, right after their originals.
     */
    void
    createShadows()
    {
        for (size_t i = 0; i < func_.numArgs(); ++i) {
            Value *arg = func_.arg(i);
            auto copy = makeIdentityCopy(arg);
            shadow_[arg] = copy.get();
            argCopies_.push_back(std::move(copy));
        }
        for (BasicBlock *bb : origBlocks_) {
            for (const auto &inst : bb->insts()) {
                if (isDuplicable(inst->opcode())) {
                    auto clone = std::make_unique<Instruction>(
                        inst->opcode(), inst->type(),
                        func_.uniqueName("shadow"));
                    clone->setCmpPred(inst->cmpPred());
                    clone->setAccessType(inst->accessType());
                    shadow_[inst.get()] = clone.get();
                    pending_[inst.get()] = std::move(clone);
                } else if (inst->is(Opcode::Alloca) ||
                           (inst->is(Opcode::Call) &&
                            !inst->type()->isVoid())) {
                    auto copy = makeIdentityCopy(inst.get());
                    shadow_[inst.get()] = copy.get();
                    pending_[inst.get()] = std::move(copy);
                }
            }
        }
    }

    Value *
    shadowOf(Value *v) const
    {
        auto it = shadow_.find(v);
        return it == shadow_.end() ? v : it->second;
    }

    /** Cloning pass 2: fill clone operands through the shadow map. */
    void
    fillShadowOperands()
    {
        for (BasicBlock *bb : origBlocks_) {
            for (const auto &inst : bb->insts()) {
                auto it = pending_.find(inst.get());
                if (it == pending_.end() ||
                    !isDuplicable(inst->opcode()))
                    continue; // roots carry their operands already
                Instruction *clone = it->second.get();
                if (inst->is(Opcode::Phi)) {
                    const auto &blocks = inst->incomingBlocks();
                    for (size_t i = 0; i < inst->numOperands(); ++i) {
                        clone->addIncoming(shadowOf(inst->operand(i)),
                                           blocks[i]);
                    }
                } else {
                    for (Value *op : inst->operands())
                        clone->addOperand(shadowOf(op));
                }
            }
        }
    }

    /** End the current segment with a branch-to-fault check. */
    void
    splitOnCondition(Value *mismatch)
    {
        BasicBlock *next =
            func_.createBlock(func_.uniqueName("harden.seg"));
        builder_.setInsertPoint(cur_);
        builder_.condBr(mismatch, faultBB_, next);
        cur_ = next;
        builder_.setInsertPoint(cur_);
    }

    /**
     * EDDI consistency check over (original, shadow) value pairs:
     * OR-combined NE comparisons, then a segment split. Pairs whose
     * shadow is the value itself (constants, globals, unprotected
     * inputs) are trivially consistent and skipped; a check with only
     * trivial pairs vanishes entirely.
     */
    void
    emitPairCheck(const std::vector<Value *> &values)
    {
        builder_.setInsertPoint(cur_);
        Value *acc = nullptr;
        for (Value *v : values) {
            Value *sh = shadowOf(v);
            if (sh == v)
                continue;
            Instruction *ne =
                v->type()->isFloatingPoint()
                    ? builder_.fcmp(ir::CmpPred::NE, v, sh)
                    : builder_.icmp(ir::CmpPred::NE, v, sh);
            acc = acc ? builder_.binary(Opcode::Or, acc, ne) : ne;
        }
        if (acc)
            splitOnCondition(acc);
    }

    /** Place a pending shadow clone right after its original. */
    void
    placeShadowFor(Instruction *orig)
    {
        auto it = pending_.find(orig);
        if (it == pending_.end())
            return;
        cur_->append(std::move(it->second));
        pending_.erase(it);
    }

    /**
     * CFCSS runtime-adjusting value for the edge B -> T:
     * sig(p1(T)) ^ sig(B); taking the edge leaves G == sig(T) after
     * T's entry arithmetic iff the edge is legal.
     */
    int64_t
    dValueFor(const BasicBlock *from, const BasicBlock *to) const
    {
        return sigConst(firstPred_.at(to)) ^ sigConst(from);
    }

    /** D := the adjusting value of whichever edge @p br takes. */
    void
    emitSignatureUpdate(BasicBlock *origBlock, Instruction *br)
    {
        builder_.setInsertPoint(cur_);
        const auto &targets = br->blockTargets();
        if (!br->isConditionalBranch()) {
            builder_.store(c64(dValueFor(origBlock, targets[0])), dD_);
            return;
        }
        int64_t dTrue = dValueFor(origBlock, targets[0]);
        int64_t dFalse = dValueFor(origBlock, targets[1]);
        if (dTrue == dFalse) {
            builder_.store(c64(dTrue), dD_);
            return;
        }
        Instruction *sel = builder_.select(br->operand(0), c64(dTrue),
                                           c64(dFalse), "cfcss.d");
        builder_.store(sel, dD_);
    }

    /**
     * Block-entry signature check: G = G ^ (sig(p1) ^ sig(B)) ^ D
     * must equal sig(B). Skipped for the entry block (no inbound
     * edges to validate) and unreachable blocks (no p1).
     */
    void
    emitSignatureCheck(BasicBlock *bb)
    {
        auto p1 = firstPred_.find(bb);
        if (bb == origBlocks_.front() || p1 == firstPred_.end())
            return;
        builder_.setInsertPoint(cur_);
        Instruction *g0 = builder_.load(dG_, "cfcss.g");
        Instruction *g1 = builder_.binary(
            Opcode::Xor, g0,
            c64(sigConst(p1->second) ^ sigConst(bb)));
        Instruction *d0 = builder_.load(dD_, "cfcss.d");
        Instruction *g2 = builder_.binary(Opcode::Xor, g1, d0);
        builder_.store(g2, dG_);
        Instruction *bad =
            builder_.icmp(ir::CmpPred::NE, g2, c64(sigConst(bb)));
        splitOnCondition(bad);
    }

    /** Entry-block prelude: signature registers, argument copies. */
    void
    emitEntryPrelude()
    {
        builder_.setInsertPoint(cur_);
        if (opts_.signatures) {
            // G and D live in memory: the fault model only flips SSA
            // values, so the signature state itself is not a fault
            // target — only the loaded copies that feed the checks.
            dG_ = builder_.alloca_(module_.types().i64Ty(), "cfcss.G");
            dD_ = builder_.alloca_(module_.types().i64Ty(), "cfcss.D");
            builder_.store(c64(sigConst(origBlocks_.front())), dG_);
            builder_.store(c64(0), dD_);
        }
        for (auto &copy : argCopies_)
            cur_->append(std::move(copy));
        argCopies_.clear();
    }

    void
    rebuildBlock(BasicBlock *bb)
    {
        std::vector<std::unique_ptr<Instruction>> insts;
        while (!bb->empty())
            insts.push_back(bb->detach(bb->front()));

        cur_ = bb;
        size_t idx = 0;

        // Leading phi group: originals first, then their shadow
        // clones (also phis, keeping the group contiguous).
        std::vector<Instruction *> phis;
        while (idx < insts.size() && insts[idx]->is(Opcode::Phi)) {
            phis.push_back(insts[idx].get());
            cur_->append(std::move(insts[idx]));
            ++idx;
        }
        for (Instruction *phi : phis)
            placeShadowFor(phi);

        if (bb == origBlocks_.front())
            emitEntryPrelude();
        if (opts_.signatures)
            emitSignatureCheck(bb);

        for (; idx < insts.size(); ++idx) {
            Instruction *inst = insts[idx].get();
            if (opts_.signatures && inst->is(Opcode::Br))
                emitSignatureUpdate(bb, inst);
            if (opts_.duplicate)
                emitChecksBefore(inst);
            cur_->append(std::move(insts[idx]));
            if (opts_.duplicate)
                placeShadowFor(inst);
        }
        lastSeg_[bb] = cur_;
    }

    /** The EDDI observation points: where wrong values become real. */
    void
    emitChecksBefore(Instruction *inst)
    {
        switch (inst->opcode()) {
          case Opcode::Store:
            emitPairCheck({inst->operand(0), inst->operand(1)});
            break;
          case Opcode::Br:
            if (inst->isConditionalBranch())
                emitPairCheck({inst->operand(0)});
            break;
          case Opcode::Ret:
            if (inst->numOperands() == 1)
                emitPairCheck({inst->operand(0)});
            break;
          case Opcode::Call:
            emitPairCheck(inst->operands());
            break;
          default:
            break;
        }
    }

    /**
     * Predecessors still branch to the original block heads, but the
     * edge into a successor now leaves the last segment: remap every
     * phi incoming-block reference accordingly.
     */
    void
    fixupPhiIncomings()
    {
        for (const auto &bb : func_.blocks()) {
            for (const auto &inst : bb->insts()) {
                if (!inst->is(Opcode::Phi))
                    break;
                const auto &incoming = inst->incomingBlocks();
                for (size_t i = 0; i < incoming.size(); ++i) {
                    auto it = lastSeg_.find(incoming[i]);
                    if (it != lastSeg_.end() &&
                        it->second != incoming[i])
                        inst->setBlockTarget(i, it->second);
                }
            }
        }
    }

    Module &module_;
    Function &func_;
    Function *trap_;
    HardenOptions opts_;
    ir::IRBuilder builder_;

    std::vector<BasicBlock *> origBlocks_;
    std::map<const BasicBlock *, int64_t> sig_;
    std::map<const BasicBlock *, const BasicBlock *> firstPred_;
    std::map<const BasicBlock *, BasicBlock *> lastSeg_;
    std::map<Value *, Value *> shadow_;
    std::map<const Instruction *, std::unique_ptr<Instruction>>
        pending_;
    std::vector<std::unique_ptr<Instruction>> argCopies_;
    BasicBlock *faultBB_ = nullptr;
    BasicBlock *cur_ = nullptr;
    Instruction *dG_ = nullptr;
    Instruction *dD_ = nullptr;
};

} // namespace

void
hardenFunction(Module &module, Function &func, Function *trap,
               const HardenOptions &opts)
{
    if (func.isDeclaration())
        return;
    reproAssert(trap != nullptr && trap->isDeclaration(),
                "harden: trap must be a declaration");
    reproAssert(opts.duplicate || opts.signatures,
                "harden: no pass selected");
    Hardener(module, func, trap, opts).run();
}

} // namespace repro::transform
