/**
 * @file
 * Reliability-hardening transformations (EDDI + CFCSS).
 *
 * Idiom replacement (transform/rewrite.h) rewrites code for
 * performance; this file rewrites it for *reliability*, reusing the
 * same plan/validate/commit machinery. Two classic software-implemented
 * fault-tolerance passes are provided, modeled on EDDI (Oh et al.,
 * "Error Detection by Duplicated Instructions") and CFCSS (Oh et al.,
 * "Control-Flow Checking by Software Signatures"), in the spirit of
 * ASPIS-style compiler hardening:
 *
 *  - **Instruction duplication** clones every duplicable computation
 *    (arithmetic, loads, geps, comparisons, selects, phis, casts) into
 *    a shadow data-flow that starts from identity copies of the
 *    arguments. At every point where a wrong value becomes observable
 *    — the value and address of a store, the condition of a
 *    conditional branch, a returned value, every call argument — the
 *    original and shadow are compared and execution branches to the
 *    trap @__harden_fault (interp::kHardenTrapFunction) on mismatch.
 *  - **Control-flow signature checking** assigns every original block
 *    a compile-time signature, threads a runtime signature register G
 *    (plus an adjusting register D for fan-in blocks) through memory,
 *    and verifies on entry to every block that the signature arithmetic
 *    lands on the block's own signature: an illegal jump — one not
 *    following a CFG edge — is caught at the next block boundary.
 *
 * Both passes are scoped per function via the `__protect` MiniC
 * annotation, which the frontend threads through as the "protect"
 * function attribute ("protect:eddi" / "protect:cfcss" select a single
 * pass). The RewriteEngine turns the attribute into a "harden"
 * RewritePlan that claims *all* blocks of the function, so hardening
 * composes deterministically with idiom replacement: overlap
 * resolution is widest-claim-first, a whole-function claim beats any
 * loop claim, and a protected function is hardened instead of
 * API-rewritten (pinned by tests/test_harden.cpp).
 *
 * Known limits (documented in docs/HARDENING.md): duplicated FCmp NE
 * checks misfire on NaN shadow pairs (NaN != NaN), so protected code
 * should not compute NaNs; faults in the checking instructions
 * themselves can escape detection (no check-the-checker redundancy).
 */
#ifndef TRANSFORM_HARDEN_H
#define TRANSFORM_HARDEN_H

#include <optional>

#include "ir/function.h"

namespace repro::transform {

/** Which hardening passes hardenFunction applies. */
struct HardenOptions
{
    bool duplicate = true;  ///< EDDI-style instruction duplication
    bool signatures = true; ///< CFCSS-style control-flow signatures
};

/**
 * Parse a "protect" attribute set into pass options: "protect" enables
 * both passes, "protect:eddi" / "protect:cfcss" one. Returns nullopt
 * when @p func carries no protect attribute.
 */
std::optional<HardenOptions> protectOptionsFor(const ir::Function &func);

/**
 * Get or create the module's shared trap declaration
 * @__harden_fault : void(). Returns null when the name is taken by an
 * incompatible function (wrong signature, or a definition); callers
 * treat that as a validation failure, before any mutation.
 */
ir::Function *getOrCreateHardenTrap(ir::Module &module);

/**
 * Apply the configured hardening passes to @p func in place,
 * branching to @p trap on every detected divergence. Infallible on
 * verified IR: any invariant violation is an InternalError, not a
 * recoverable failure — which is what lets the RewriteEngine commit
 * hardening without an undo log of its own.
 */
void hardenFunction(ir::Module &module, ir::Function &func,
                    ir::Function *trap, const HardenOptions &opts);

} // namespace repro::transform

#endif // TRANSFORM_HARDEN_H
