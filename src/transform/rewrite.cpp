#include "transform/rewrite.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "frontend/passes.h"
#include "interp/interpreter.h"

namespace repro::transform {

using namespace detail;
using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;
using solver::Solution;

// ------------------------------------------------------------- planners
//
// Each planner mirrors the legacy scheme check-for-check (same order,
// same name-counter consumption points) so that on inputs where the
// legacy path is well defined the committed IR is byte-identical.
// Unlike the legacy schemes they stop short of mutation: everything
// the commit stage needs is recorded in the RewritePlan.

std::optional<RewritePlan>
RewriteEngine::planSpmv(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    Value *rowstr = asValue(sol.lookup("range.lo.base_pointer"));
    Value *colidx = asValue(sol.lookup("idx_read.base_pointer"));
    Value *a = asValue(sol.lookup("seq_read.base_pointer"));
    Value *z = asValue(sol.lookup("indir_read.base_pointer"));
    Value *r = asValue(sol.lookup("output.base_pointer"));
    if (!rowstr || !colidx || !a || !z || !r)
        return std::nullopt;

    auto &types = module_.types();
    // The fixed cusparseDcsrmv-like signature (Figure 6).
    if (pointeeElement(rowstr) != types.i32Ty() ||
        pointeeElement(colidx) != types.i32Ty() ||
        pointeeElement(a) != types.doubleTy() ||
        pointeeElement(z) != types.doubleTy() ||
        pointeeElement(r) != types.doubleTy()) {
        return std::nullopt;
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(
            *natural, {sol.lookup("output.store_instr")}, false)) {
        return std::nullopt;
    }
    if (!canBypassLoop(loop))
        return std::nullopt;

    RewritePlan plan;
    plan.kind = "spmv";
    plan.idiom = match.idiom;
    plan.function = match.function;
    plan.loop = loop;
    plan.claimedBlocks.assign(natural->blocks.begin(),
                              natural->blocks.end());
    Type *i32p = types.pointerTo(types.i32Ty());
    Type *f64p = types.pointerTo(types.doubleTy());
    plan.calleeName = "__hetero_spmv";
    plan.calleeReturn = types.voidTy();
    plan.calleeParams = {types.i64Ty(), types.i64Ty(), i32p, i32p,
                         f64p,          f64p,          f64p};
    plan.reuseCallee = true;
    plan.args = {{CallArg::Mode::ToI64, loop.iterBegin},
                 {CallArg::Mode::ToI64, loop.iterEnd},
                 {CallArg::Mode::Decay, rowstr},
                 {CallArg::Mode::Decay, colidx},
                 {CallArg::Mode::Decay, a},
                 {CallArg::Mode::Decay, z},
                 {CallArg::Mode::Decay, r}};
    plan.record.kind = "spmv";
    plan.record.calleeName = plan.calleeName;
    return plan;
}

std::optional<RewritePlan>
RewriteEngine::planGemm(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop0 = loopFromSolution(sol, "loop[0].");
    LoopShape loop1 = loopFromSolution(sol, "loop[1].");
    LoopShape loop2 = loopFromSolution(sol, "loop[2].");
    if (!loop0.complete() || !loop1.complete() || !loop2.complete())
        return std::nullopt;

    auto &types = module_.types();

    // Resolve one matrix access into base + (col, row) strides.
    struct Access
    {
        Value *base = nullptr;
        Value *colStride = nullptr;
        Value *rowStride = nullptr;
    };
    // col/row of each access were unified with loop iterators by the
    // GEMM constraint (Figure 10): output ↦ (it0, it1), input1 ↦
    // (it0, it2), input2 ↦ (it1, it2).
    auto resolve = [&](const std::string &prefix, const char *col_var,
                       const char *row_var) -> std::optional<Access> {
        Access acc;
        acc.base = asValue(sol.lookup(prefix + ".base_pointer"));
        if (!acc.base)
            return std::nullopt;
        const Value *col = sol.lookup(col_var);
        const Value *row = sol.lookup(row_var);
        Value *one = module_.intConst(types.i64Ty(), 1);
        if (const Value *stride = sol.lookup(prefix + ".stride")) {
            // Flat form: plain + scaled_iter*stride.
            const Value *plain =
                stripSext(sol.lookup(prefix + ".plain"));
            if (plain == col) {
                acc.colStride = one;
                acc.rowStride = asValue(stride);
            } else if (plain == row) {
                acc.rowStride = one;
                acc.colStride = asValue(stride);
            } else {
                return std::nullopt;
            }
            return acc;
        }
        // 2D form: rowgep selects a row array; the address indexes it.
        Instruction *address = asInst(sol.lookup(prefix + ".address"));
        Instruction *rowgep = asInst(sol.lookup(prefix + ".rowgep"));
        if (!address || !rowgep)
            return std::nullopt;
        // Inner index of `address` (last operand, through sext).
        const Value *inner =
            stripSext(address->operand(address->numOperands() - 1));
        int64_t row_elems = static_cast<int64_t>(
            address->accessType()->arraySize());
        Value *stride = module_.intConst(types.i64Ty(), row_elems);
        if (inner == col) {
            acc.colStride = one;
            acc.rowStride = stride;
        } else if (inner == row) {
            acc.rowStride = one;
            acc.colStride = stride;
        } else {
            return std::nullopt;
        }
        return acc;
    };

    auto out = resolve("output", "iterator[0]", "iterator[1]");
    auto in1 = resolve("input1", "iterator[0]", "iterator[2]");
    auto in2 = resolve("input2", "iterator[1]", "iterator[2]");
    if (!out || !in1 || !in2)
        return std::nullopt;

    Type *elem = pointeeElement(out->base);
    if (elem != pointeeElement(in1->base) ||
        elem != pointeeElement(in2->base) ||
        !(elem == types.floatTy() || elem == types.doubleTy())) {
        return std::nullopt;
    }

    // Alpha / beta extraction from the stored value expression.
    const Value *acc_phi = sol.lookup("acc");
    const Value *stored = sol.lookup("stored_value");
    const Value *init = sol.lookup("init");
    const Value *out_addr = sol.lookup("output.address");
    if (!acc_phi || !stored || !init)
        return std::nullopt;

    Value *alpha = nullptr;
    Value *beta = nullptr;
    auto fp_const = [&](double v) -> Value * {
        return module_.fpConst(elem, v);
    };
    auto is_load_of_out = [&](const Value *v) {
        const Instruction *inst =
            v->isInstruction() ? static_cast<const Instruction *>(v)
                               : nullptr;
        return inst && inst->is(Opcode::Load) &&
               structurallyEqual(inst->operand(0), out_addr);
    };

    std::set<const Value *> allowed_stores;
    allowed_stores.insert(sol.lookup("store_instr"));
    if (stored == acc_phi) {
        alpha = fp_const(1.0);
        if (init->isConstant() &&
            static_cast<const ir::Constant *>(init)->isZero()) {
            beta = fp_const(0.0);
        } else if (is_load_of_out(init)) {
            // Promoted accumulator (Figure 8, second style). If the
            // same iteration zero-initializes the cell first, the
            // effective semantics are beta = 0 and the init store
            // dies with the loop.
            const auto *init_load =
                static_cast<const Instruction *>(init);
            BasicBlock *bb = init_load->parent();
            int at = bb->indexOf(init_load);
            const Instruction *zero_store = nullptr;
            for (int i = at - 1; i >= 0; --i) {
                const Instruction *prev =
                    bb->insts()[static_cast<size_t>(i)].get();
                if (prev->is(Opcode::Store) &&
                    structurallyEqual(prev->operand(1),
                                      init_load->operand(0))) {
                    zero_store = prev;
                    break;
                }
            }
            if (zero_store) {
                const Value *sv = zero_store->operand(0);
                if (!sv->isConstant() ||
                    !static_cast<const ir::Constant *>(sv)->isZero()) {
                    return std::nullopt;
                }
                beta = fp_const(0.0);
                allowed_stores.insert(zero_store);
            } else {
                beta = fp_const(1.0);
            }
        } else {
            return std::nullopt;
        }
    } else {
        // Match beta*C + alpha*acc (any operand order).
        const Instruction *add = asInst(stored);
        if (!add || !add->is(Opcode::FAdd))
            return std::nullopt;
        const Instruction *mul_a = asInst(add->operand(0));
        const Instruction *mul_b = asInst(add->operand(1));
        if (!mul_a || !mul_b || !mul_a->is(Opcode::FMul) ||
            !mul_b->is(Opcode::FMul)) {
            return std::nullopt;
        }
        auto pick = [&](const Instruction *mul, const Value *want,
                        auto pred) -> Value * {
            for (int i = 0; i < 2; ++i) {
                if (pred(mul->operand(static_cast<size_t>(i)), want))
                    return asValue(mul->operand(1 - i));
            }
            return nullptr;
        };
        auto is_same = [](const Value *a, const Value *b) {
            return a == b;
        };
        auto is_out_load = [&](const Value *a, const Value *) {
            return is_load_of_out(a);
        };
        // acc can reach the mul through the phi exit value directly.
        alpha = pick(mul_a, acc_phi, is_same);
        beta = pick(mul_b, nullptr, is_out_load);
        if (!alpha || !beta) {
            alpha = pick(mul_b, acc_phi, is_same);
            beta = pick(mul_a, nullptr, is_out_load);
        }
        if (!alpha || !beta)
            return std::nullopt;
        if (!init->isConstant() ||
            !static_cast<const ir::Constant *>(init)->isZero()) {
            return std::nullopt;
        }
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop0);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(*natural, allowed_stores, false))
        return std::nullopt;
    // alpha/beta must be available before the nest.
    for (Value *v : {alpha, beta}) {
        if (Instruction *inst = asInst(v)) {
            if (!dom.dominates(inst, loop0.precursor))
                return std::nullopt;
        }
    }
    if (!canBypassLoop(loop0))
        return std::nullopt;

    bool is_f32 = elem == types.floatTy();
    std::string name =
        is_f32 ? "__hetero_gemm_f32" : "__hetero_gemm_f64";

    RewritePlan plan;
    plan.kind = "gemm";
    plan.idiom = match.idiom;
    plan.function = match.function;
    plan.loop = loop0;
    plan.claimedBlocks.assign(natural->blocks.begin(),
                              natural->blocks.end());
    Type *i64 = types.i64Ty();
    Type *ep = types.pointerTo(elem);
    plan.calleeName = name;
    plan.calleeReturn = types.voidTy();
    plan.calleeParams = {i64, i64, i64, i64, i64, i64, // bounds
                         ep,  i64, i64,                // C, c_col, c_row
                         ep,  i64, i64,                // A, a_col, a_k
                         ep,  i64, i64,                // B, b_col, b_k
                         elem, elem};                  // alpha, beta
    plan.reuseCallee = true;
    plan.args = {{CallArg::Mode::ToI64, loop0.iterBegin},
                 {CallArg::Mode::ToI64, loop0.iterEnd},
                 {CallArg::Mode::ToI64, loop1.iterBegin},
                 {CallArg::Mode::ToI64, loop1.iterEnd},
                 {CallArg::Mode::ToI64, loop2.iterBegin},
                 {CallArg::Mode::ToI64, loop2.iterEnd},
                 {CallArg::Mode::Decay, out->base},
                 {CallArg::Mode::ToI64, out->colStride},
                 {CallArg::Mode::ToI64, out->rowStride},
                 {CallArg::Mode::Decay, in1->base},
                 {CallArg::Mode::ToI64, in1->colStride},
                 {CallArg::Mode::ToI64, in1->rowStride},
                 {CallArg::Mode::Decay, in2->base},
                 {CallArg::Mode::ToI64, in2->colStride},
                 {CallArg::Mode::ToI64, in2->rowStride},
                 {CallArg::Mode::Raw, alpha},
                 {CallArg::Mode::Raw, beta}};
    plan.record.kind = "gemm";
    plan.record.calleeName = name;
    plan.record.elemKind = elem->kind();
    return plan;
}

std::optional<RewritePlan>
RewriteEngine::planReduction(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    const Value *old_value = sol.lookup("old_value");
    const Value *kernel_out = sol.lookup("kernel_output");
    Value *init = asValue(sol.lookup("init_value"));
    if (!old_value || !kernel_out || !init)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    for (size_t i = 0; i < reads.size(); ++i) {
        Value *base = asValue(sol.lookup(
            "read[" + std::to_string(i) + "].base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, old_value))
        return std::nullopt;
    if (!loopEffectsAreCovered(*natural, {}, true))
        return std::nullopt;
    for (Value *base : bases) {
        if (Instruction *inst = asInst(base)) {
            if (!dom.dominates(inst, loop.precursor))
                return std::nullopt;
        }
    }

    std::vector<const Value *> inputs(reads.begin(), reads.end());
    inputs.push_back(old_value);
    std::string kname =
        "__kernel_reduce_" + std::to_string(counter_++);
    auto slice = planKernelSlice(kernel_out, loop.bodyBegin, inputs,
                                 dom, loop.precursor);
    if (!slice)
        return std::nullopt;

    auto &types = module_.types();
    Type *acc_type = asValue(old_value)->type();
    std::vector<Type *> params{types.i64Ty(), types.i64Ty(),
                               acc_type};
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : slice->invariants)
        params.push_back(inv->type());
    std::string name =
        "__hetero_reduce_" + std::to_string(counter_++);
    if (!canBypassLoop(loop))
        return std::nullopt;

    RewritePlan plan;
    plan.kind = "reduce";
    plan.idiom = match.idiom;
    plan.function = match.function;
    plan.loop = loop;
    plan.claimedBlocks.assign(natural->blocks.begin(),
                              natural->blocks.end());
    plan.calleeName = name;
    plan.calleeReturn = acc_type;
    plan.calleeParams = std::move(params);
    plan.kernels.push_back({kname, *slice});
    plan.args = {{CallArg::Mode::ToI64, loop.iterBegin},
                 {CallArg::Mode::ToI64, loop.iterEnd},
                 {CallArg::Mode::Raw, init}};
    for (Value *base : bases)
        plan.args.push_back({CallArg::Mode::Decay, base});
    for (const Value *inv : slice->invariants)
        plan.args.push_back({CallArg::Mode::Raw, asValue(inv)});
    plan.resultReplaces = asValue(old_value);

    plan.record.kind = "reduce";
    plan.record.calleeName = name;
    plan.record.numReads = static_cast<int>(reads.size());
    plan.record.numInvariants =
        static_cast<int>(slice->invariants.size());
    for (const Value *r : reads)
        plan.record.readKinds.push_back(r->type()->kind());
    plan.record.elemKind = acc_type->kind();
    return plan;
}

std::optional<RewritePlan>
RewriteEngine::planHistogram(const idioms::IdiomMatch &match)
{
    const Solution &sol = match.solution;
    LoopShape loop = loopFromSolution(sol, "");
    if (!loop.complete())
        return std::nullopt;

    const Value *new_value = sol.lookup("new_value");
    const Value *old_value = sol.lookup("old_value");
    const Value *index = sol.lookup("index");
    Value *bin_base = asValue(sol.lookup("bin_base"));
    if (!new_value || !old_value || !index || !bin_base)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    for (size_t i = 0; i < reads.size(); ++i) {
        Value *base = asValue(sol.lookup(
            "read[" + std::to_string(i) + "].base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, loop);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(*natural, {sol.lookup("store_instr")},
                               true)) {
        return std::nullopt;
    }
    for (Value *base : bases) {
        if (Instruction *inst = asInst(base)) {
            if (!dom.dominates(inst, loop.precursor))
                return std::nullopt;
        }
    }

    // Kernel computing the updated bin value from (reads..., old).
    std::vector<const Value *> val_inputs(reads.begin(), reads.end());
    val_inputs.push_back(old_value);
    std::string val_name =
        "__kernel_histo_val_" + std::to_string(counter_);
    auto val_slice = planKernelSlice(new_value, loop.bodyBegin,
                                     val_inputs, dom, loop.precursor);
    if (!val_slice)
        return std::nullopt;
    // Kernel computing the bin index from (reads...).
    std::vector<const Value *> idx_inputs(reads.begin(), reads.end());
    std::string idx_name =
        "__kernel_histo_idx_" + std::to_string(counter_);
    auto idx_slice = planKernelSlice(index, loop.bodyBegin, idx_inputs,
                                     dom, loop.precursor);
    if (!idx_slice)
        return std::nullopt;

    auto &types = module_.types();
    std::vector<Type *> params{
        types.i64Ty(), types.i64Ty(),
        types.pointerTo(pointeeElement(bin_base))};
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : val_slice->invariants)
        params.push_back(inv->type());
    for (const Value *inv : idx_slice->invariants)
        params.push_back(inv->type());
    std::string name =
        "__hetero_histogram_" + std::to_string(counter_++);
    if (!canBypassLoop(loop))
        return std::nullopt;

    RewritePlan plan;
    plan.kind = "histogram";
    plan.idiom = match.idiom;
    plan.function = match.function;
    plan.loop = loop;
    plan.claimedBlocks.assign(natural->blocks.begin(),
                              natural->blocks.end());
    plan.calleeName = name;
    plan.calleeReturn = types.voidTy();
    plan.calleeParams = std::move(params);
    plan.kernels.push_back({val_name, *val_slice});
    plan.kernels.push_back({idx_name, *idx_slice});
    plan.args = {{CallArg::Mode::ToI64, loop.iterBegin},
                 {CallArg::Mode::ToI64, loop.iterEnd},
                 {CallArg::Mode::Decay, bin_base}};
    for (Value *base : bases)
        plan.args.push_back({CallArg::Mode::Decay, base});
    for (const Value *inv : val_slice->invariants)
        plan.args.push_back({CallArg::Mode::Raw, asValue(inv)});
    for (const Value *inv : idx_slice->invariants)
        plan.args.push_back({CallArg::Mode::Raw, asValue(inv)});

    plan.record.kind = "histogram";
    plan.record.calleeName = name;
    plan.record.numReads = static_cast<int>(reads.size());
    plan.record.numInvariants =
        static_cast<int>(val_slice->invariants.size());
    plan.record.numIndexInvariants =
        static_cast<int>(idx_slice->invariants.size());
    for (const Value *r : reads)
        plan.record.readKinds.push_back(r->type()->kind());
    plan.record.elemKind = pointeeElement(bin_base)->kind();
    return plan;
}

std::optional<RewritePlan>
RewriteEngine::planStencil(const idioms::IdiomMatch &match, int dims)
{
    const Solution &sol = match.solution;
    LoopShape outer =
        loopFromSolution(sol, dims == 1 ? "" : "loop[0].");
    if (!outer.complete())
        return std::nullopt;

    const Value *write_value = sol.lookup("write.value");
    Value *write_base = asValue(sol.lookup("write.base_pointer"));
    if (!write_value || !write_base)
        return std::nullopt;

    auto reads = sol.lookupArray("read_value[*]");
    std::vector<Value *> bases;
    std::vector<int64_t> offsets;
    // The displaced index for dimension d of one read is bound to
    // "read[i].d<d>"; OffsetIndex helper variables live under
    // "read[i].off<d>.".
    auto offset_of = [&](const std::string &read_prefix,
                         int d) -> std::optional<int64_t> {
        const Value *out =
            sol.lookup(read_prefix + ".d" + std::to_string(d));
        if (!out)
            return std::nullopt;
        const Instruction *inst = asInst(out);
        if (!inst || inst->is(Opcode::Phi))
            return 0; // the iterator itself ("same" branch)
        const Value *c = sol.lookup(read_prefix + ".off" +
                                    std::to_string(d) + ".offset");
        if (!c || !c->isConstant())
            return std::nullopt;
        int64_t off =
            static_cast<const ir::Constant *>(c)->intValue();
        return inst->is(Opcode::Sub) ? -off : off;
    };
    for (size_t i = 0; i < reads.size(); ++i) {
        std::string prefix = "read[" + std::to_string(i) + "]";
        Value *base = asValue(sol.lookup(prefix + ".base_pointer"));
        if (!base)
            return std::nullopt;
        bases.push_back(base);
        for (int d = 0; d < dims; ++d) {
            auto off = offset_of(prefix, d);
            if (!off)
                return std::nullopt;
            offsets.push_back(*off);
        }
    }

    // 3D strides must be shared between the write and every read.
    Value *s0 = nullptr;
    Value *s1 = nullptr;
    if (dims == 3) {
        s0 = asValue(sol.lookup("write.s0"));
        s1 = asValue(sol.lookup("write.s1"));
        if (!s0 || !s1)
            return std::nullopt;
        for (size_t i = 0; i < reads.size(); ++i) {
            std::string prefix = "read[" + std::to_string(i) + "]";
            if (sol.lookup(prefix + ".s0") != s0 ||
                sol.lookup(prefix + ".s1") != s1) {
                return std::nullopt;
            }
        }
    }

    analysis::DomTree dom(match.function, false);
    analysis::LoopInfo loops(match.function, dom);
    const analysis::Loop *natural = findLoop(loops, outer);
    if (!natural || !loopIsSelfContained(*natural, nullptr))
        return std::nullopt;
    if (!loopEffectsAreCovered(
            *natural, {sol.lookup("write.store_instr")}, true)) {
        return std::nullopt;
    }
    // A Jacobi-style stencil must not update in place.
    for (Value *base : bases) {
        if (base == write_base)
            return std::nullopt;
    }

    std::vector<const Value *> inputs(reads.begin(), reads.end());
    // The kernel region is the innermost loop body.
    Instruction *inner_begin = asInst(sol.lookup(
        dims == 1 ? "body_begin"
                  : "begin[" + std::to_string(dims - 1) + "]"));
    if (!inner_begin)
        return std::nullopt;
    std::string kname =
        "__kernel_stencil_" + std::to_string(counter_);
    auto slice = planKernelSlice(write_value, inner_begin, inputs,
                                 dom, outer.precursor);
    if (!slice)
        return std::nullopt;

    auto &types = module_.types();
    Type *elem = pointeeElement(write_base);
    std::vector<Type *> params;
    for (int d = 0; d < dims; ++d) {
        params.push_back(types.i64Ty());
        params.push_back(types.i64Ty());
    }
    params.push_back(types.pointerTo(elem));
    if (dims == 3) {
        params.push_back(types.i64Ty());
        params.push_back(types.i64Ty());
    }
    for (Value *base : bases)
        params.push_back(types.pointerTo(pointeeElement(base)));
    for (const Value *inv : slice->invariants)
        params.push_back(inv->type());
    std::string name = "__hetero_stencil" + std::to_string(dims) +
                       "d_" + std::to_string(counter_++);
    if (!canBypassLoop(outer))
        return std::nullopt;

    RewritePlan plan;
    plan.kind = "stencil" + std::to_string(dims) + "d";
    plan.idiom = match.idiom;
    plan.function = match.function;
    plan.loop = outer;
    plan.claimedBlocks.assign(natural->blocks.begin(),
                              natural->blocks.end());
    plan.calleeName = name;
    plan.calleeReturn = types.voidTy();
    plan.calleeParams = std::move(params);
    plan.kernels.push_back({kname, *slice});
    for (int d = 0; d < dims; ++d) {
        LoopShape shape =
            dims == 1 ? outer
                      : loopFromSolution(
                            sol, "loop[" + std::to_string(d) + "].");
        plan.args.push_back({CallArg::Mode::ToI64, shape.iterBegin});
        plan.args.push_back({CallArg::Mode::ToI64, shape.iterEnd});
    }
    plan.args.push_back({CallArg::Mode::Decay, write_base});
    if (dims == 3) {
        plan.args.push_back({CallArg::Mode::ToI64, s0});
        plan.args.push_back({CallArg::Mode::ToI64, s1});
    }
    for (Value *base : bases)
        plan.args.push_back({CallArg::Mode::Decay, base});
    for (const Value *inv : slice->invariants)
        plan.args.push_back({CallArg::Mode::Raw, asValue(inv)});

    plan.record.kind = plan.kind;
    plan.record.calleeName = name;
    plan.record.numReads = static_cast<int>(reads.size());
    plan.record.numInvariants =
        static_cast<int>(slice->invariants.size());
    plan.record.readOffsets = offsets;
    plan.record.stencilDims = dims;
    for (const Value *r : reads)
        plan.record.readKinds.push_back(r->type()->kind());
    plan.record.elemKind = elem->kind();
    return plan;
}

// ------------------------------------------------------------- pipeline

std::optional<RewritePlan>
RewriteEngine::plan(const idioms::IdiomMatch &match)
{
    std::optional<RewritePlan> plan;
    if (match.idiom == "SPMV")
        plan = planSpmv(match);
    else if (match.idiom == "GEMM")
        plan = planGemm(match);
    else if (match.idiom == "Reduction")
        plan = planReduction(match);
    else if (match.idiom == "Histogram")
        plan = planHistogram(match);
    else if (match.idiom == "Stencil3D")
        plan = planStencil(match, 3);
    else if (match.idiom == "Stencil1D")
        plan = planStencil(match, 1);
    if (plan) {
        ++stats_.planned;
        plan->cls = match.cls;
        plan->record.cls = match.cls;
        plan->target = runtime::fixedTarget(match.cls);
        plan->record.target = plan->target;
    } else {
        ++stats_.unplannable;
    }
    return plan;
}

analysis::WorkloadDescriptor
RewriteEngine::workloadOf(const RewritePlan &plan)
{
    const BasicBlock *header = plan.loop.header();
    if (backends_.workloads) {
        if (const analysis::WorkloadDescriptor *wd =
                backends_.workloads(plan.function, header))
            return *wd;
    }
    // Static fallback: constant-bound trip estimates over a locally
    // built loop forest (planning already builds these per match, so
    // the extra construction only happens under CostModel).
    analysis::DomTree dom(plan.function, false);
    analysis::LoopInfo loops(plan.function, dom);
    const analysis::Loop *natural = loops.loopFor(header);
    while (natural && natural->header != header)
        natural = natural->parent;
    if (!natural)
        return analysis::WorkloadDescriptor();
    return analysis::estimateWorkload(loops, natural,
                                      analysis::InstCountFn());
}

std::vector<RewritePlan>
RewriteEngine::expandTargets(RewritePlan plan)
{
    using runtime::BackendTarget;

    auto forcedIt = backends_.forced.find(plan.kind);
    bool modeled = false;
    std::vector<BackendTarget> targets;
    if (forcedIt != backends_.forced.end()) {
        targets.push_back(forcedIt->second);
    } else if (backends_.policy == BackendPolicy::Fixed) {
        targets.push_back(runtime::fixedTarget(plan.cls));
    } else {
        targets = runtime::rankTargets(plan.cls, workloadOf(plan));
        if (targets.empty())
            targets.push_back(runtime::fixedTarget(plan.cls));
        else
            modeled = true;
    }

    std::vector<RewritePlan> out;
    out.reserve(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
        RewritePlan p =
            i + 1 == targets.size() ? std::move(plan) : plan;
        p.target = targets[i];
        p.record.target = targets[i];
        p.record.costModeled = modeled;
        // Library-backed schemes dispatch by callee name, so a
        // non-default backend gets its own shared declaration (e.g.
        // __hetero_gemm_f64__cublas_gpu). DSL-backed schemes already
        // have a unique per-site callee; the target rides along in
        // the Replacement record only. The fixed target keeps the
        // historical name, byte-for-byte.
        if ((p.kind == "spmv" || p.kind == "gemm") &&
            !runtime::sameBackend(targets[i],
                                  runtime::fixedTarget(p.cls))) {
            p.calleeName +=
                "__" + runtime::backendSymbol(targets[i]);
            p.record.calleeName = p.calleeName;
        }
        out.push_back(std::move(p));
    }
    return out;
}

std::vector<RewritePlan>
RewriteEngine::planAll(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<RewritePlan> plans;
    for (size_t i = 0; i < matches.size(); ++i) {
        auto p = plan(matches[i]);
        if (p) {
            p->matchIndex = i;
            for (RewritePlan &t : expandTargets(std::move(*p)))
                plans.push_back(std::move(t));
        }
    }
    return plans;
}

RewritePlan
RewriteEngine::planHarden(ir::Function *func,
                          const HardenOptions &opts)
{
    RewritePlan plan;
    plan.kind = "harden";
    plan.idiom = "Harden";
    plan.function = func;
    for (const auto &bb : func->blocks())
        plan.claimedBlocks.push_back(bb.get());
    plan.calleeName = interp::kHardenTrapFunction;
    plan.calleeReturn = module_.types().voidTy();
    plan.reuseCallee = true;
    plan.harden = true;
    plan.hardenOpts = opts;
    plan.record.kind = "harden";
    plan.record.calleeName = plan.calleeName;
    return plan;
}

std::vector<RewritePlan>
RewriteEngine::planHardenAll(size_t firstMatchIndex)
{
    std::vector<RewritePlan> plans;
    for (const auto &func : module_.functions()) {
        if (func->isDeclaration())
            continue;
        auto opts = protectOptionsFor(*func);
        if (!opts)
            continue;
        RewritePlan plan = planHarden(func.get(), *opts);
        plan.matchIndex = firstMatchIndex + plans.size();
        plans.push_back(std::move(plan));
        ++stats_.planned;
    }
    return plans;
}

std::vector<RewritePlan>
RewriteEngine::selectBackends(std::vector<RewritePlan> plans)
{
    std::vector<RewritePlan> out;
    out.reserve(plans.size());
    size_t i = 0;
    while (i < plans.size()) {
        // Alternatives of one match are adjacent (planAll emits them
        // together) and share the match's function and matchIndex.
        size_t j = i + 1;
        while (j < plans.size() &&
               plans[j].function == plans[i].function &&
               plans[j].matchIndex == plans[i].matchIndex)
            ++j;
        // expandTargets ranked the group by ascending predicted cost,
        // so the first entry wins; the losers are recorded on its
        // Replacement for reporting.
        RewritePlan winner = std::move(plans[i]);
        for (size_t k = i + 1; k < j; ++k)
            winner.record.rejected.push_back(plans[k].target);
        out.push_back(std::move(winner));
        i = j;
    }
    return out;
}

std::vector<RewritePlan>
RewriteEngine::resolveOverlaps(std::vector<RewritePlan> plans)
{
    // Backend selection first: collapse each match's per-target
    // alternatives to the modeled winner, so overlap resolution sees
    // exactly one plan per match (under BackendPolicy::Fixed every
    // group has size one and this is the identity).
    plans = selectBackends(std::move(plans));

    if (plans.size() < 2)
        return plans;

    // Selection order: widest claim first (a nest before the loops
    // inside it), then the library's most-specific-first idiom order,
    // then original match order. Claims are block pointers, so plans
    // of different functions can never collide.
    std::vector<size_t> order(plans.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const RewritePlan &pa = plans[a];
        const RewritePlan &pb = plans[b];
        if (pa.claimedBlocks.size() != pb.claimedBlocks.size())
            return pa.claimedBlocks.size() > pb.claimedBlocks.size();
        int sa = idioms::idiomSpecificity(pa.idiom);
        int sb = idioms::idiomSpecificity(pb.idiom);
        if (sa != sb)
            return sa < sb;
        return pa.matchIndex < pb.matchIndex;
    });

    std::set<const BasicBlock *> claimed;
    std::vector<bool> keep(plans.size(), false);
    for (size_t idx : order) {
        bool clash = false;
        for (BasicBlock *bb : plans[idx].claimedBlocks) {
            if (claimed.count(bb)) {
                clash = true;
                break;
            }
        }
        if (clash) {
            ++stats_.droppedOverlap;
            continue;
        }
        for (BasicBlock *bb : plans[idx].claimedBlocks)
            claimed.insert(bb);
        keep[idx] = true;
    }

    std::vector<RewritePlan> out;
    out.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
        if (keep[i])
            out.push_back(std::move(plans[i]));
    }
    return out;
}

std::string
RewriteEngine::validate(const RewritePlan &plan) const
{
    if (!plan.function)
        return "plan has no function";
    bool owned = false;
    for (const auto &f : module_.functions()) {
        if (f.get() == plan.function) {
            owned = true;
            break;
        }
    }
    if (!owned)
        return "function is no longer part of the module";

    // Hardening plans carry no loop shape, kernels or call arguments;
    // only their block claims and the trap declaration need checking.
    if (plan.harden) {
        std::set<const BasicBlock *> liveBlocks;
        for (const auto &bb : plan.function->blocks())
            liveBlocks.insert(bb.get());
        for (const BasicBlock *bb : plan.claimedBlocks) {
            if (!liveBlocks.count(bb))
                return "a claimed block was erased from the function";
        }
        if (Function *existing =
                module_.functionByName(plan.calleeName)) {
            if (!existing->isDeclaration() ||
                !existing->returnType()->isVoid() ||
                existing->numArgs() != 0) {
                return "existing '" + plan.calleeName +
                       "' is incompatible with the hardening trap";
            }
        }
        return "";
    }

    // Whitelist of safely-referenceable values, rebuilt against the
    // current IR: the function's live instructions and arguments plus
    // every module-owned constant and global. A recorded pointer may
    // dangle, so liveness is decided by set membership alone — the
    // candidate is never dereferenced (even reading its kind would be
    // a use-after-free).
    std::set<const BasicBlock *> blocks;
    std::set<const Value *> live;
    for (const auto &bb : plan.function->blocks()) {
        blocks.insert(bb.get());
        for (const auto &inst : bb->insts())
            live.insert(inst.get());
    }
    for (const auto &arg : plan.function->args())
        live.insert(arg.get());
    for (const auto &global : module_.globals())
        live.insert(global.get());
    for (const Value *c : module_.internedConstants())
        live.insert(c);

    auto check = [&](const Value *v,
                     const std::string &what) -> std::string {
        if (!v)
            return what + " is null";
        if (!live.count(v)) {
            return what + " references a dangling value or one from "
                          "another function";
        }
        return "";
    };

    if (!plan.loop.complete())
        return "loop shape is incomplete";
    std::string err;
    const std::pair<const Value *, const char *> shape[] = {
        {plan.loop.precursor, "loop precursor"},
        {plan.loop.comparison, "loop comparison"},
        {plan.loop.iterator, "loop iterator"},
        {plan.loop.successor, "loop successor"},
        {plan.loop.bodyBegin, "loop body begin"},
        {plan.loop.latch, "loop latch"},
        {plan.loop.iterBegin, "loop begin bound"},
        {plan.loop.iterEnd, "loop end bound"},
    };
    for (const auto &[v, what] : shape) {
        if (!(err = check(v, what)).empty())
            return err;
    }
    for (const BasicBlock *bb : plan.claimedBlocks) {
        if (!blocks.count(bb))
            return "a claimed block was erased from the function";
    }

    for (const CallArg &arg : plan.args) {
        if (!(err = check(arg.value, "call argument")).empty())
            return err;
    }
    for (const PlannedKernel &pk : plan.kernels) {
        if (!(err = check(pk.slice.out, "kernel output")).empty())
            return err;
        if (!(err = check(pk.slice.regionBegin, "kernel region"))
                 .empty())
            return err;
        for (const Value *v : pk.slice.inputs) {
            if (!(err = check(v, "kernel input")).empty())
                return err;
        }
        for (const Value *v : pk.slice.invariants) {
            if (!(err = check(v, "kernel invariant")).empty())
                return err;
        }
    }
    if (plan.resultReplaces) {
        if (!(err = check(plan.resultReplaces, "replaced result"))
                 .empty())
            return err;
    }

    // Callee declaration: a module-level name clash is fatal unless
    // the scheme deliberately shares the declaration.
    if (Function *existing = module_.functionByName(plan.calleeName)) {
        if (!plan.reuseCallee)
            return "callee name '" + plan.calleeName +
                   "' already exists in the module";
        if (existing->returnType() != plan.calleeReturn ||
            existing->functionType()->params() != plan.calleeParams) {
            return "existing callee '" + plan.calleeName +
                   "' has a mismatching signature";
        }
    }

    // Argument/parameter agreement after commit-time lowering.
    if (plan.args.size() != plan.calleeParams.size())
        return "call argument count does not match the callee";
    auto &types = module_.types();
    for (size_t i = 0; i < plan.args.size(); ++i) {
        const CallArg &arg = plan.args[i];
        Type *t = arg.value->type();
        switch (arg.mode) {
          case CallArg::Mode::Raw:
            break;
          case CallArg::Mode::ToI64:
            t = types.i64Ty();
            break;
          case CallArg::Mode::Decay:
            while (t->isPointer() && t->element()->isArray())
                t = types.pointerTo(t->element()->element());
            break;
        }
        if (t != plan.calleeParams[i]) {
            return "call argument " + std::to_string(i) +
                   " does not match the callee parameter type";
        }
    }

    // The claimed loop must still be bypassable.
    if (!blocks.count(plan.loop.header()) ||
        !blocks.count(plan.loop.exitBlock()))
        return "loop header or exit block was erased";
    if (!canBypassLoop(plan.loop))
        return "loop can no longer be bypassed at its precursor";
    return "";
}

bool
RewriteEngine::commitPlan(
    RewritePlan &plan, std::vector<std::function<void()>> &undo,
    std::map<const Value *, Value *> &remap,
    std::map<Function *, std::set<Function *>> &calleeUsers)
{
    if (plan.harden)
        return commitHarden(plan);

    auto resolve = [&remap](Value *v) -> Value * {
        auto it = remap.find(v);
        return it == remap.end() ? v : it->second;
    };

    // Kernels first, then the callee: module function order matches
    // the legacy per-match path exactly.
    std::vector<Function *> kernelFuncs;
    for (const PlannedKernel &pk : plan.kernels) {
        Function *kf =
            materializeKernel(module_, pk.name, pk.slice, &remap);
        undo.push_back([this, kf] { module_.removeFunction(kf); });
        kernelFuncs.push_back(kf);
    }

    Function *callee = plan.reuseCallee
                           ? module_.functionByName(plan.calleeName)
                           : nullptr;
    if (callee) {
        if (callee->returnType() != plan.calleeReturn ||
            callee->functionType()->params() != plan.calleeParams) {
            return false;
        }
    } else {
        callee = module_.createFunction(
            plan.calleeName, plan.calleeReturn, plan.calleeParams);
        Function *created = callee;
        if (plan.reuseCallee) {
            // Shared declaration: another function's plan may commit
            // a call to it before this function rolls back. Removing
            // it then would leave that call's callee pointer
            // dangling, so the undo keeps the declaration alive
            // while anyone else references it (an unused leftover
            // declaration is the benign alternative).
            Function *owner = plan.function;
            undo.push_back([this, created, owner, &calleeUsers] {
                const auto it = calleeUsers.find(created);
                if (it != calleeUsers.end()) {
                    for (Function *user : it->second) {
                        if (user != owner)
                            return;
                    }
                }
                module_.removeFunction(created);
            });
        } else {
            undo.push_back(
                [this, created] { module_.removeFunction(created); });
        }
    }
    if (plan.reuseCallee)
        calleeUsers[callee].insert(plan.function);

    // Bypass surgery. canBypassLoop guarantees bypassLoop cannot fail
    // halfway, so the undo entry covers the complete trampoline.
    if (!canBypassLoop(plan.loop))
        return false;
    Instruction *precursor = plan.loop.precursor;
    std::vector<BasicBlock *> oldTargets = precursor->blockTargets();
    BasicBlock *tramp = bypassLoop(module_, plan.loop);
    if (!tramp)
        return false;
    undo.push_back([precursor, oldTargets, tramp] {
        for (size_t i = 0; i < oldTargets.size(); ++i)
            precursor->setBlockTarget(i, oldTargets[i]);
        ir::Function *func = tramp->parent();
        while (!tramp->empty())
            tramp->erase(tramp->insts().back().get());
        func->eraseBlock(tramp);
    });

    // The call, with every recorded value resolved through the remap
    // of earlier commits (a stale accumulator becomes its API call).
    Inserter ins(module_, tramp);
    std::vector<Value *> argv;
    argv.reserve(plan.args.size());
    for (const CallArg &arg : plan.args) {
        Value *v = resolve(arg.value);
        switch (arg.mode) {
          case CallArg::Mode::Raw:
            argv.push_back(v);
            break;
          case CallArg::Mode::ToI64:
            argv.push_back(ins.toI64(v));
            break;
          case CallArg::Mode::Decay:
            argv.push_back(ins.decay(v));
            break;
        }
    }
    Instruction *call = ins.call(callee, argv);

    // Out-of-claim uses of the accumulator become the call result.
    if (plan.resultReplaces) {
        Value *oldv = plan.resultReplaces;
        std::set<const BasicBlock *> claimed(
            plan.claimedBlocks.begin(), plan.claimedBlocks.end());
        std::vector<Instruction *> users(oldv->users());
        for (Instruction *user : users) {
            if (user == call || claimed.count(user->parent()))
                continue;
            for (size_t i = 0; i < user->numOperands(); ++i) {
                if (user->operand(i) == oldv) {
                    user->setOperand(i, call);
                    undo.push_back([user, i, oldv] {
                        user->setOperand(i, oldv);
                    });
                }
            }
        }
        remap[oldv] = call;
    }

    plan.record.callee = callee;
    if (!kernelFuncs.empty())
        plan.record.kernel = kernelFuncs[0];
    if (kernelFuncs.size() > 1)
        plan.record.indexKernel = kernelFuncs[1];
    return true;
}

bool
RewriteEngine::commitHarden(RewritePlan &plan)
{
    Function *trap = getOrCreateHardenTrap(module_);
    if (!trap)
        return false; // pre-mutation: nothing to roll back
    hardenFunction(module_, *plan.function, trap, plan.hardenOpts);
    plan.record.callee = trap;
    return true;
}

std::vector<Replacement>
RewriteEngine::commit(std::vector<RewritePlan> plans)
{
    /** Commit-time bookkeeping of one function (atomicity unit). */
    struct FuncState
    {
        std::vector<std::function<void()>> undo;
        std::vector<size_t> committed; ///< indices into `out`
        std::vector<const Value *> remapKeys;
        bool poisoned = false;
    };
    std::map<Function *, FuncState> state;
    std::map<const Value *, Value *> remap;
    /** Which functions hold committed calls to each shared callee. */
    std::map<Function *, std::set<Function *>> calleeUsers;
    std::vector<std::optional<Replacement>> out;
    std::vector<Function *> cleanupOrder;

    for (auto &plan : plans) {
        FuncState &fs = state[plan.function];
        if (fs.poisoned) {
            // A failed commit already rolled this function back;
            // later plans for it are skipped, not half-applied.
            ++stats_.rolledBack;
            continue;
        }
        if (fs.committed.empty() && fs.undo.empty())
            cleanupOrder.push_back(plan.function);
        if (commitPlan(plan, fs.undo, remap, calleeUsers)) {
            fs.committed.push_back(out.size());
            if (plan.resultReplaces)
                fs.remapKeys.push_back(plan.resultReplaces);
            out.emplace_back(plan.record);
            ++stats_.committed;
        } else {
            // Atomic per function: unwind every mutation made to it,
            // this plan's partial work included, and poison it.
            for (auto it = fs.undo.rbegin(); it != fs.undo.rend();
                 ++it) {
                (*it)();
            }
            fs.undo.clear();
            stats_.rolledBack += fs.committed.size() + 1;
            stats_.committed -= fs.committed.size();
            for (size_t idx : fs.committed)
                out[idx].reset();
            fs.committed.clear();
            for (const Value *key : fs.remapKeys)
                remap.erase(key);
            fs.remapKeys.clear();
            // Its calls are gone: stop counting it as a shared-callee
            // user, so later rollbacks can reclaim declarations only
            // this function still appeared to reference.
            for (auto &[callee, users] : calleeUsers)
                users.erase(plan.function);
            fs.poisoned = true;
            // The undo log must have restored a well-formed function;
            // a defect here means rollback itself is broken.
            if (verify_ == ir::VerifyMode::Boundaries)
                ir::verifyOrThrow(plan.function, "rewrite-rollback");
        }
    }

    // Cleanup passes run once per successfully rewritten function —
    // never between replacements, so no plan ever dereferences
    // IR a sibling's cleanup erased.
    for (Function *func : cleanupOrder) {
        const FuncState &fs = state[func];
        if (fs.poisoned || fs.committed.empty())
            continue;
        frontend::removeUnreachableBlocks(func);
        frontend::aggressiveDCE(func);
        if (verify_ == ir::VerifyMode::Boundaries)
            ir::verifyOrThrow(func, "rewrite-commit");
    }
    // Rewrites also add module-level structure (extracted kernels,
    // callee declarations); one whole-module pass covers those.
    if (verify_ == ir::VerifyMode::Boundaries && !cleanupOrder.empty())
        ir::verifyOrThrow(module_, "rewrite-module");

    std::vector<Replacement> result;
    result.reserve(out.size());
    for (auto &r : out) {
        if (r)
            result.push_back(std::move(*r));
    }
    return result;
}

std::vector<Replacement>
RewriteEngine::applyAll(const std::vector<idioms::IdiomMatch> &matches)
{
    std::vector<RewritePlan> plans = planAll(matches);
    // Hardening plans ride the same resolve/validate/commit pipeline;
    // their whole-function claims evict any idiom plan inside a
    // protected function during overlap resolution.
    for (RewritePlan &plan : planHardenAll(matches.size()))
        plans.push_back(std::move(plan));
    plans = resolveOverlaps(std::move(plans));
    std::vector<RewritePlan> valid;
    valid.reserve(plans.size());
    for (auto &plan : plans) {
        std::string err = validate(plan);
        if (err.empty())
            valid.push_back(std::move(plan));
        else
            ++stats_.failedValidation;
    }
    return commit(std::move(valid));
}

std::vector<BackendDecision>
planBackendDecisions(ir::Module &module,
                     const std::vector<idioms::IdiomMatch> &matches,
                     const BackendConfig &backends)
{
    RewriteEngine engine(module, ir::VerifyMode::Off, backends);
    std::vector<RewritePlan> plans = engine.planAll(matches);
    plans = engine.selectBackends(std::move(plans));
    std::vector<BackendDecision> out;
    out.reserve(plans.size());
    for (RewritePlan &p : plans) {
        BackendDecision d;
        d.matchIndex = p.matchIndex;
        d.cls = p.cls;
        d.chosen = p.target;
        d.rejected = std::move(p.record.rejected);
        d.modeled = p.record.costModeled;
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace repro::transform
