#include "transform/binder.h"

#include <algorithm>
#include <set>
#include <vector>

#include "runtime/sparse.h"
#include "support/diagnostics.h"

namespace repro::transform {

using interp::Interpreter;
using interp::Memory;
using interp::RuntimeValue;
using ir::Type;

namespace {

uint64_t
kindSize(Type::Kind kind)
{
    switch (kind) {
      case Type::Kind::I1: return 1;
      case Type::Kind::I32: return 4;
      case Type::Kind::I64: return 8;
      case Type::Kind::Float: return 4;
      case Type::Kind::Double: return 8;
      default: return 8;
    }
}

RuntimeValue
loadKind(Memory &mem, Type::Kind kind, uint64_t addr)
{
    switch (kind) {
      case Type::Kind::I32:
        return RuntimeValue::makeInt(mem.load<int32_t>(addr));
      case Type::Kind::I64:
        return RuntimeValue::makeInt(mem.load<int64_t>(addr));
      case Type::Kind::Float:
        return RuntimeValue::makeFP(mem.load<float>(addr));
      case Type::Kind::Double:
        return RuntimeValue::makeFP(mem.load<double>(addr));
      default:
        throw FatalError("binder: unsupported element kind");
    }
}

void
storeKind(Memory &mem, Type::Kind kind, uint64_t addr, RuntimeValue v)
{
    switch (kind) {
      case Type::Kind::I32:
        mem.store<int32_t>(addr, static_cast<int32_t>(v.i));
        break;
      case Type::Kind::I64:
        mem.store<int64_t>(addr, v.i);
        break;
      case Type::Kind::Float:
        mem.store<float>(addr, static_cast<float>(v.f));
        break;
      case Type::Kind::Double:
        mem.store<double>(addr, v.f);
        break;
      default:
        throw FatalError("binder: unsupported element kind");
    }
}

uint64_t
addrOf(const RuntimeValue &v)
{
    return static_cast<uint64_t>(v.i);
}

void
spmvInline(Memory &mem, const std::vector<RuntimeValue> &args)
{
    int64_t row_begin = args[0].i;
    int64_t row_end = args[1].i;
    uint64_t rowstr = addrOf(args[2]);
    uint64_t colidx = addrOf(args[3]);
    uint64_t a = addrOf(args[4]);
    uint64_t z = addrOf(args[5]);
    uint64_t r = addrOf(args[6]);
    for (int64_t j = row_begin; j < row_end; ++j) {
        int32_t lo =
            mem.load<int32_t>(rowstr + 4 * static_cast<uint64_t>(j));
        int32_t hi = mem.load<int32_t>(
            rowstr + 4 * static_cast<uint64_t>(j + 1));
        double d = 0.0;
        for (int32_t k = lo; k < hi; ++k) {
            int32_t col = mem.load<int32_t>(
                colidx + 4 * static_cast<uint64_t>(k));
            double av =
                mem.load<double>(a + 8 * static_cast<uint64_t>(k));
            double zv =
                mem.load<double>(z + 8 * static_cast<uint64_t>(col));
            d += av * zv;
        }
        mem.store<double>(r + 8 * static_cast<uint64_t>(j), d);
    }
}

void
bindSpmv(Interpreter &interp)
{
    interp.registerNative(
        "__hetero_spmv",
        [](const std::vector<RuntimeValue> &args, Interpreter &it) {
            spmvInline(it.memory(), args);
            return RuntimeValue::makeVoid();
        });
}

/**
 * The device-backend path of an spmv lowering (cuSPARSE / clSPARSE /
 * libSPMV targets): stage the CSR arrays out of interpreter memory
 * into host buffers — the stand-in for the host→device transfer the
 * cost model prices — run runtime::sparse::csrmv over the staged
 * copies, and write the result rows back. csrmv's accumulation order
 * is identical to the inline loop, so the heap bytes produced are
 * byte-for-byte the same; degenerate index sets (negative rows or
 * columns) fall back to the inline path rather than staging garbage.
 */
void
spmvStaged(Memory &mem, const std::vector<RuntimeValue> &args)
{
    int64_t row_begin = args[0].i;
    int64_t row_end = args[1].i;
    if (row_end <= row_begin)
        return;
    if (row_begin < 0) {
        spmvInline(mem, args);
        return;
    }
    uint64_t rowstr = addrOf(args[2]);
    uint64_t colidx = addrOf(args[3]);
    uint64_t a = addrOf(args[4]);
    uint64_t z = addrOf(args[5]);
    uint64_t r = addrOf(args[6]);

    std::vector<int32_t> h_rowstr(
        static_cast<size_t>(row_end) + 1);
    for (int64_t j = 0; j <= row_end; ++j)
        h_rowstr[static_cast<size_t>(j)] = mem.load<int32_t>(
            rowstr + 4 * static_cast<uint64_t>(j));

    int64_t kmax = 0;
    for (int64_t j = row_begin; j < row_end; ++j) {
        int32_t lo = h_rowstr[static_cast<size_t>(j)];
        int32_t hi = h_rowstr[static_cast<size_t>(j) + 1];
        if (lo < 0) {
            spmvInline(mem, args);
            return;
        }
        kmax = std::max<int64_t>(kmax, hi);
    }

    std::vector<int32_t> h_colidx(static_cast<size_t>(kmax));
    std::vector<double> h_a(static_cast<size_t>(kmax));
    int64_t colmax = -1;
    for (int64_t k = 0; k < kmax; ++k) {
        h_colidx[static_cast<size_t>(k)] = mem.load<int32_t>(
            colidx + 4 * static_cast<uint64_t>(k));
        h_a[static_cast<size_t>(k)] =
            mem.load<double>(a + 8 * static_cast<uint64_t>(k));
    }
    for (int64_t j = row_begin; j < row_end; ++j) {
        for (int32_t k = h_rowstr[static_cast<size_t>(j)];
             k < h_rowstr[static_cast<size_t>(j) + 1]; ++k) {
            int32_t col = h_colidx[static_cast<size_t>(k)];
            if (col < 0) {
                spmvInline(mem, args);
                return;
            }
            colmax = std::max<int64_t>(colmax, col);
        }
    }

    std::vector<double> h_z(static_cast<size_t>(colmax) + 1);
    for (int64_t c = 0; c <= colmax; ++c)
        h_z[static_cast<size_t>(c)] =
            mem.load<double>(z + 8 * static_cast<uint64_t>(c));
    std::vector<double> h_r(static_cast<size_t>(row_end), 0.0);

    runtime::sparse::csrmv(row_begin, row_end, h_rowstr.data(),
                           h_colidx.data(), h_a.data(), h_z.data(),
                           h_r.data());

    for (int64_t j = row_begin; j < row_end; ++j)
        mem.store<double>(r + 8 * static_cast<uint64_t>(j),
                          h_r[static_cast<size_t>(j)]);
}

void
bindSpmvStaged(Interpreter &interp, const std::string &name)
{
    interp.registerNative(
        name,
        [](const std::vector<RuntimeValue> &args, Interpreter &it) {
            spmvStaged(it.memory(), args);
            return RuntimeValue::makeVoid();
        });
}

template <typename T>
void
gemmLoop(Memory &mem, const std::vector<RuntimeValue> &args)
{
    int64_t b0 = args[0].i, e0 = args[1].i;
    int64_t b1 = args[2].i, e1 = args[3].i;
    int64_t b2 = args[4].i, e2 = args[5].i;
    uint64_t c = addrOf(args[6]);
    int64_t c0 = args[7].i, c1 = args[8].i;
    uint64_t a = addrOf(args[9]);
    int64_t a0 = args[10].i, a2 = args[11].i;
    uint64_t b = addrOf(args[12]);
    int64_t b1s = args[13].i, b2s = args[14].i;
    T alpha = static_cast<T>(args[15].f);
    T beta = static_cast<T>(args[16].f);
    const uint64_t es = sizeof(T);
    for (int64_t i0 = b0; i0 < e0; ++i0) {
        for (int64_t i1 = b1; i1 < e1; ++i1) {
            T acc = 0;
            for (int64_t k = b2; k < e2; ++k) {
                T av = mem.load<T>(
                    a + es * static_cast<uint64_t>(i0 * a0 + k * a2));
                T bv = mem.load<T>(
                    b + es * static_cast<uint64_t>(i1 * b1s +
                                                   k * b2s));
                acc += av * bv;
            }
            uint64_t caddr =
                c + es * static_cast<uint64_t>(i0 * c0 + i1 * c1);
            T old = mem.load<T>(caddr);
            mem.store<T>(caddr, beta * old + alpha * acc);
        }
    }
}

void
bindGemm(Interpreter &interp)
{
    interp.registerNative(
        "__hetero_gemm_f32",
        [](const std::vector<RuntimeValue> &args, Interpreter &it) {
            gemmLoop<float>(it.memory(), args);
            return RuntimeValue::makeVoid();
        });
    interp.registerNative(
        "__hetero_gemm_f64",
        [](const std::vector<RuntimeValue> &args, Interpreter &it) {
            gemmLoop<double>(it.memory(), args);
            return RuntimeValue::makeVoid();
        });
}

/**
 * Flat-index range of a strided 2-D access i*s_i + j*s_j over the
 * (half-open) iteration rectangle. Strides may be negative, so the
 * extremes sit at the rectangle's corners.
 */
struct FlatRange
{
    int64_t lo = 0;
    int64_t hi = 0; ///< inclusive
};

FlatRange
flatRange(int64_t bi, int64_t ei, int64_t si, int64_t bj, int64_t ej,
          int64_t sj)
{
    FlatRange fr;
    bool first = true;
    for (int64_t i : {bi, ei - 1}) {
        for (int64_t j : {bj, ej - 1}) {
            int64_t flat = i * si + j * sj;
            if (first) {
                fr.lo = fr.hi = flat;
                first = false;
            } else {
                fr.lo = std::min(fr.lo, flat);
                fr.hi = std::max(fr.hi, flat);
            }
        }
    }
    return fr;
}

/**
 * Device-backend gemm (cuBLAS / clBLAS / CLBlast / Lift targets):
 * stage the accessed extents of A, B and C into host buffers, run the
 * multiply over the staged copies with the exact accumulation order
 * of gemmLoop (so results are byte-identical), and write the C
 * extent back. Exotic shapes whose corner scan reaches a negative
 * flat index fall back to the in-place loop.
 */
template <typename T>
void
gemmStaged(Memory &mem, const std::vector<RuntimeValue> &args)
{
    int64_t b0 = args[0].i, e0 = args[1].i;
    int64_t b1 = args[2].i, e1 = args[3].i;
    int64_t b2 = args[4].i, e2 = args[5].i;
    if (e0 <= b0 || e1 <= b1)
        return;
    uint64_t c = addrOf(args[6]);
    int64_t c0 = args[7].i, c1 = args[8].i;
    uint64_t a = addrOf(args[9]);
    int64_t a0 = args[10].i, a2 = args[11].i;
    uint64_t b = addrOf(args[12]);
    int64_t b1s = args[13].i, b2s = args[14].i;
    T alpha = static_cast<T>(args[15].f);
    T beta = static_cast<T>(args[16].f);
    const uint64_t es = sizeof(T);

    int64_t k_end = std::max(e2, b2 + 1);
    FlatRange fa = flatRange(b0, e0, a0, b2, k_end, a2);
    FlatRange fb = flatRange(b1, e1, b1s, b2, k_end, b2s);
    FlatRange fc = flatRange(b0, e0, c0, b1, e1, c1);
    if (fa.lo < 0 || fb.lo < 0 || fc.lo < 0) {
        gemmLoop<T>(mem, args);
        return;
    }

    auto stage = [&](uint64_t base, const FlatRange &fr) {
        std::vector<T> h(static_cast<size_t>(fr.hi) + 1);
        for (int64_t f = 0; f <= fr.hi; ++f)
            h[static_cast<size_t>(f)] =
                mem.load<T>(base + es * static_cast<uint64_t>(f));
        return h;
    };
    std::vector<T> h_a = stage(a, fa);
    std::vector<T> h_b = stage(b, fb);
    std::vector<T> h_c = stage(c, fc);

    for (int64_t i0 = b0; i0 < e0; ++i0) {
        for (int64_t i1 = b1; i1 < e1; ++i1) {
            T acc = 0;
            for (int64_t k = b2; k < e2; ++k) {
                T av = h_a[static_cast<size_t>(i0 * a0 + k * a2)];
                T bv = h_b[static_cast<size_t>(i1 * b1s + k * b2s)];
                acc += av * bv;
            }
            size_t ci = static_cast<size_t>(i0 * c0 + i1 * c1);
            h_c[ci] = beta * h_c[ci] + alpha * acc;
        }
    }

    for (int64_t i0 = b0; i0 < e0; ++i0)
        for (int64_t i1 = b1; i1 < e1; ++i1) {
            uint64_t flat = static_cast<uint64_t>(i0 * c0 + i1 * c1);
            mem.store<T>(c + es * flat,
                         h_c[static_cast<size_t>(flat)]);
        }
}

void
bindGemmStaged(Interpreter &interp, const std::string &name,
               Type::Kind elemKind)
{
    if (elemKind == Type::Kind::Float) {
        interp.registerNative(
            name, [](const std::vector<RuntimeValue> &args,
                     Interpreter &it) {
                gemmStaged<float>(it.memory(), args);
                return RuntimeValue::makeVoid();
            });
    } else {
        interp.registerNative(
            name, [](const std::vector<RuntimeValue> &args,
                     Interpreter &it) {
                gemmStaged<double>(it.memory(), args);
                return RuntimeValue::makeVoid();
            });
    }
}

void
bindReduce(Interpreter &interp, const Replacement &rep)
{
    interp.registerNative(
        rep.calleeName,
        [rep](const std::vector<RuntimeValue> &args, Interpreter &it) {
            Memory &mem = it.memory();
            int64_t begin = args[0].i;
            int64_t end = args[1].i;
            RuntimeValue acc = args[2];
            size_t base_at = 3;
            size_t inv_at =
                base_at + static_cast<size_t>(rep.numReads);
            for (int64_t i = begin; i < end; ++i) {
                std::vector<RuntimeValue> kargs;
                kargs.reserve(static_cast<size_t>(rep.numReads) + 1 +
                              static_cast<size_t>(rep.numInvariants));
                for (int r = 0; r < rep.numReads; ++r) {
                    Type::Kind kind =
                        rep.readKinds[static_cast<size_t>(r)];
                    uint64_t base = addrOf(
                        args[base_at + static_cast<size_t>(r)]);
                    kargs.push_back(loadKind(
                        mem, kind,
                        base + kindSize(kind) *
                                   static_cast<uint64_t>(i)));
                }
                kargs.push_back(acc);
                for (int v = 0; v < rep.numInvariants; ++v)
                    kargs.push_back(
                        args[inv_at + static_cast<size_t>(v)]);
                acc = it.call(rep.kernel, kargs);
            }
            return acc;
        });
}

void
bindHistogram(Interpreter &interp, const Replacement &rep)
{
    interp.registerNative(
        rep.calleeName,
        [rep](const std::vector<RuntimeValue> &args, Interpreter &it) {
            Memory &mem = it.memory();
            int64_t begin = args[0].i;
            int64_t end = args[1].i;
            uint64_t bin = addrOf(args[2]);
            size_t base_at = 3;
            size_t vinv_at =
                base_at + static_cast<size_t>(rep.numReads);
            size_t iinv_at =
                vinv_at + static_cast<size_t>(rep.numInvariants);
            for (int64_t i = begin; i < end; ++i) {
                std::vector<RuntimeValue> reads;
                for (int r = 0; r < rep.numReads; ++r) {
                    Type::Kind kind =
                        rep.readKinds[static_cast<size_t>(r)];
                    uint64_t base = addrOf(
                        args[base_at + static_cast<size_t>(r)]);
                    reads.push_back(loadKind(
                        mem, kind,
                        base + kindSize(kind) *
                                   static_cast<uint64_t>(i)));
                }
                std::vector<RuntimeValue> iargs = reads;
                for (int v = 0; v < rep.numIndexInvariants; ++v)
                    iargs.push_back(
                        args[iinv_at + static_cast<size_t>(v)]);
                int64_t idx =
                    it.call(rep.indexKernel, iargs).i;
                uint64_t slot =
                    bin + kindSize(rep.elemKind) *
                              static_cast<uint64_t>(idx);
                RuntimeValue old =
                    loadKind(mem, rep.elemKind, slot);
                std::vector<RuntimeValue> vargs = reads;
                vargs.push_back(old);
                for (int v = 0; v < rep.numInvariants; ++v)
                    vargs.push_back(
                        args[vinv_at + static_cast<size_t>(v)]);
                storeKind(mem, rep.elemKind, slot,
                          it.call(rep.kernel, vargs));
            }
            return RuntimeValue::makeVoid();
        });
}

void
bindStencil(Interpreter &interp, const Replacement &rep)
{
    int dims = rep.stencilDims;
    interp.registerNative(
        rep.calleeName,
        [rep, dims](const std::vector<RuntimeValue> &args,
                    Interpreter &it) {
            Memory &mem = it.memory();
            std::vector<int64_t> lo(static_cast<size_t>(dims));
            std::vector<int64_t> hi(static_cast<size_t>(dims));
            size_t at = 0;
            for (int d = 0; d < dims; ++d) {
                lo[static_cast<size_t>(d)] = args[at++].i;
                hi[static_cast<size_t>(d)] = args[at++].i;
            }
            uint64_t out = addrOf(args[at++]);
            int64_t s0 = 1, s1 = 1;
            if (dims == 3) {
                s0 = args[at++].i;
                s1 = args[at++].i;
            }
            std::vector<uint64_t> bases;
            for (int r = 0; r < rep.numReads; ++r)
                bases.push_back(addrOf(args[at++]));
            std::vector<RuntimeValue> invs;
            for (int v = 0; v < rep.numInvariants; ++v)
                invs.push_back(args[at++]);

            uint64_t esz = kindSize(rep.elemKind);
            auto run_point = [&](int64_t i0, int64_t i1, int64_t i2) {
                std::vector<RuntimeValue> kargs;
                for (int r = 0; r < rep.numReads; ++r) {
                    int64_t flat;
                    if (dims == 3) {
                        const int64_t *off =
                            &rep.readOffsets[static_cast<size_t>(r) *
                                             3];
                        flat = (i2 + off[0]) +
                               s0 * ((i1 + off[1]) +
                                     s1 * (i0 + off[2]));
                    } else {
                        flat = i0 +
                               rep.readOffsets[static_cast<size_t>(r)];
                    }
                    Type::Kind rkind =
                        rep.readKinds[static_cast<size_t>(r)];
                    kargs.push_back(loadKind(
                        mem, rkind,
                        bases[static_cast<size_t>(r)] +
                            kindSize(rkind) *
                                static_cast<uint64_t>(flat)));
                }
                for (const RuntimeValue &v : invs)
                    kargs.push_back(v);
                RuntimeValue result = it.call(rep.kernel, kargs);
                int64_t wflat = dims == 3
                                    ? i2 + s0 * (i1 + s1 * i0)
                                    : i0;
                storeKind(mem, rep.elemKind,
                          out + esz * static_cast<uint64_t>(wflat),
                          result);
            };

            if (dims == 3) {
                for (int64_t i0 = lo[0]; i0 < hi[0]; ++i0)
                    for (int64_t i1 = lo[1]; i1 < hi[1]; ++i1)
                        for (int64_t i2 = lo[2]; i2 < hi[2]; ++i2)
                            run_point(i0, i1, i2);
            } else {
                for (int64_t i0 = lo[0]; i0 < hi[0]; ++i0)
                    run_point(i0, 0, 0);
            }
            return RuntimeValue::makeVoid();
        });
}

} // namespace

void
bindReplacements(Interpreter &interp,
                 const std::vector<Replacement> &replacements)
{
    // spmv/gemm call sites share callee functions, so dispatch by the
    // inserted callee NAME: the classic names get the historical
    // in-place handlers, backend-suffixed names (cost-model lowerings,
    // e.g. "__hetero_gemm_f64__cublas_gpu") get the staged handlers
    // that model the host→device round trip. DSL-backed kinds always
    // have unique per-site names.
    std::set<std::string> bound;
    for (const Replacement &rep : replacements) {
        if (rep.kind == "spmv" || rep.kind == "gemm") {
            if (!bound.insert(rep.calleeName).second)
                continue;
            if (rep.calleeName == "__hetero_spmv") {
                bindSpmv(interp);
            } else if (rep.calleeName == "__hetero_gemm_f32" ||
                       rep.calleeName == "__hetero_gemm_f64") {
                bindGemm(interp);
                bound.insert("__hetero_gemm_f32");
                bound.insert("__hetero_gemm_f64");
            } else if (rep.kind == "spmv") {
                bindSpmvStaged(interp, rep.calleeName);
            } else {
                bindGemmStaged(interp, rep.calleeName, rep.elemKind);
            }
        } else if (rep.kind == "reduce") {
            bindReduce(interp, rep);
        } else if (rep.kind == "histogram") {
            bindHistogram(interp, rep);
        } else if (rep.kind.rfind("stencil", 0) == 0) {
            bindStencil(interp, rep);
        }
    }
}

} // namespace repro::transform
