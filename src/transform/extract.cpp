#include "transform/extract.h"

#include <algorithm>
#include <functional>
#include <set>

namespace repro::transform {

using analysis::DomTree;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

bool
isClonable(const Instruction *inst)
{
    switch (inst->opcode()) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Alloca:
      case Opcode::Br:
      case Opcode::Ret:
      case Opcode::Phi:
        return false;
      case Opcode::Call:
        return inst->callee()->isDeclaration(); // pure builtins
      default:
        return true;
    }
}

} // namespace

std::optional<KernelSlice>
planKernelSlice(const Value *out, const Instruction *region_begin,
                const std::vector<const Value *> &inputs,
                const DomTree &dom, const Instruction *call_point)
{
    std::set<const Value *> input_set(inputs.begin(), inputs.end());
    auto in_region = [&](const Instruction *inst) {
        return dom.dominates(region_begin, inst);
    };

    // Classify the backward slice.
    KernelSlice slice;
    slice.out = out;
    slice.regionBegin = region_begin;
    slice.inputs = inputs;
    std::set<const Value *> seen;
    std::vector<const Value *> stack{out};
    seen.insert(out);
    while (!stack.empty()) {
        const Value *v = stack.back();
        stack.pop_back();
        if (input_set.count(v))
            continue;
        if (v->isConstant() || v->isGlobal())
            continue;
        if (v->isArgument()) {
            if (std::find(slice.invariants.begin(),
                          slice.invariants.end(),
                          v) == slice.invariants.end()) {
                slice.invariants.push_back(v);
            }
            continue;
        }
        const auto *inst = static_cast<const Instruction *>(v);
        if (!in_region(inst)) {
            // Loop invariant: must be available at the call site.
            if (!dom.dominates(inst, call_point))
                return std::nullopt;
            if (std::find(slice.invariants.begin(),
                          slice.invariants.end(),
                          v) == slice.invariants.end()) {
                slice.invariants.push_back(v);
            }
            continue;
        }
        if (!isClonable(inst))
            return std::nullopt;
        for (const Value *op : inst->operands()) {
            if (seen.insert(op).second)
                stack.push_back(op);
        }
    }
    return slice;
}

Function *
materializeKernel(Module &module, const std::string &name,
                  const KernelSlice &slice,
                  const std::map<const Value *, Value *> *remap)
{
    std::vector<Type *> params;
    for (const Value *v : slice.inputs)
        params.push_back(v->type());
    for (const Value *v : slice.invariants)
        params.push_back(v->type());
    Function *func = module.createFunction(name, slice.out->type(),
                                           std::move(params));
    ir::BasicBlock *entry = func->createBlock("entry");

    std::map<const Value *, Value *> mapping;
    // A slice value rewired by an earlier commit (remap) must reach
    // the same parameter through either pointer: region instructions
    // may still hold the planned value or already the substitute.
    auto map_param = [&](const Value *v, Value *arg) {
        mapping[v] = arg;
        if (remap) {
            auto it = remap->find(v);
            if (it != remap->end())
                mapping[it->second] = arg;
        }
    };
    for (size_t i = 0; i < slice.inputs.size(); ++i) {
        map_param(slice.inputs[i], func->arg(i));
        func->arg(i)->setName("in" + std::to_string(i));
    }
    for (size_t i = 0; i < slice.invariants.size(); ++i) {
        map_param(slice.invariants[i],
                  func->arg(slice.inputs.size() + i));
        func->arg(slice.inputs.size() + i)
            ->setName("param" + std::to_string(i));
    }

    // Clone in dependency order (recursive with memoization; the
    // slice is a DAG because phis were rejected).
    std::function<Value *(const Value *)> clone =
        [&](const Value *v) -> Value * {
        auto it = mapping.find(v);
        if (it != mapping.end())
            return it->second;
        if (v->isConstant() || v->isGlobal())
            return const_cast<Value *>(v);
        const auto *inst = static_cast<const Instruction *>(v);
        auto copy = std::make_unique<Instruction>(
            inst->opcode(), inst->type(), inst->name());
        copy->setCmpPred(inst->cmpPred());
        copy->setAccessType(inst->accessType());
        copy->setCallee(inst->callee());
        // Clone operands first.
        std::vector<Value *> ops;
        ops.reserve(inst->numOperands());
        for (const Value *op : inst->operands())
            ops.push_back(clone(op));
        for (Value *op : ops)
            copy->addOperand(op);
        Instruction *placed = entry->append(std::move(copy));
        mapping[v] = placed;
        return placed;
    };

    Value *result = clone(slice.out);
    auto ret = std::make_unique<Instruction>(
        Opcode::Ret, module.types().voidTy(), "");
    ret->addOperand(result);
    entry->append(std::move(ret));
    return func;
}

std::optional<ExtractedKernel>
extractKernel(Module &module, const std::string &name, const Value *out,
              const Instruction *region_begin,
              const std::vector<const Value *> &inputs,
              const DomTree &dom, const Instruction *call_point)
{
    auto slice =
        planKernelSlice(out, region_begin, inputs, dom, call_point);
    if (!slice)
        return std::nullopt;
    ExtractedKernel extracted;
    extracted.func = materializeKernel(module, name, *slice);
    extracted.invariants = slice->invariants;
    return extracted;
}

} // namespace repro::transform
