/**
 * @file
 * Shared building blocks of the transform layer's rewrite schemes:
 * the loop skeleton bound by a For solution, the trampoline-block
 * instruction inserter, the loop-bypass surgery, and the purity /
 * effect-coverage predicates every scheme checks before claiming a
 * loop.
 *
 * Both the transactional RewriteEngine (rewrite.h) and the legacy
 * per-match reference path (Transformer::applyAllReference) build on
 * these helpers, which is what keeps the two byte-identical on inputs
 * where the legacy path is well defined.
 */
#ifndef TRANSFORM_LOOP_SHAPE_H
#define TRANSFORM_LOOP_SHAPE_H

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/loops.h"
#include "ir/function.h"
#include "solver/solver.h"

namespace repro::transform::detail {

inline ir::Instruction *
asInst(const ir::Value *v)
{
    if (!v || !v->isInstruction())
        return nullptr;
    return const_cast<ir::Instruction *>(
        static_cast<const ir::Instruction *>(v));
}

inline ir::Value *
asValue(const ir::Value *v)
{
    return const_cast<ir::Value *>(v);
}

/** The loop skeleton bound by a For solution under @p prefix. */
struct LoopShape
{
    ir::Instruction *precursor = nullptr;
    ir::Instruction *comparison = nullptr;
    ir::Instruction *iterator = nullptr;
    ir::Instruction *successor = nullptr;
    ir::Instruction *bodyBegin = nullptr;
    ir::Instruction *latch = nullptr;
    ir::Value *iterBegin = nullptr;
    ir::Value *iterEnd = nullptr;

    bool
    complete() const
    {
        return precursor && comparison && iterator && successor &&
               bodyBegin && latch && iterBegin && iterEnd;
    }

    ir::BasicBlock *header() const { return comparison->parent(); }
    ir::BasicBlock *exitBlock() const { return successor->parent(); }
};

inline LoopShape
loopFromSolution(const solver::Solution &sol, const std::string &prefix)
{
    LoopShape shape;
    shape.precursor = asInst(sol.lookup(prefix + "precursor"));
    shape.comparison = asInst(sol.lookup(prefix + "comparison"));
    shape.iterator = asInst(sol.lookup(prefix + "iterator"));
    shape.successor = asInst(sol.lookup(prefix + "successor"));
    shape.bodyBegin = asInst(sol.lookup(prefix + "body_begin"));
    shape.latch = asInst(sol.lookup(prefix + "latch"));
    shape.iterBegin = asValue(sol.lookup(prefix + "iter_begin"));
    shape.iterEnd = asValue(sol.lookup(prefix + "iter_end"));
    return shape;
}

/** Inserts instructions into a trampoline block before its branch. */
class Inserter
{
  public:
    Inserter(ir::Module &module, ir::BasicBlock *bb)
        : module_(module), bb_(bb)
    {}

    ir::Instruction *
    add(std::unique_ptr<ir::Instruction> inst)
    {
        size_t pos = bb_->terminator() ? bb_->size() - 1 : bb_->size();
        return bb_->insert(pos, std::move(inst));
    }

    /** Sign-extend to i64 when needed. */
    ir::Value *
    toI64(ir::Value *v)
    {
        ir::Type *i64 = module_.types().i64Ty();
        if (v->type() == i64)
            return v;
        if (v->isConstant()) {
            return module_.intConst(
                i64, static_cast<ir::Constant *>(v)->intValue());
        }
        auto sext = std::make_unique<ir::Instruction>(ir::Opcode::SExt,
                                                      i64, "");
        sext->addOperand(v);
        return add(std::move(sext));
    }

    /** Decay pointer-to-array values to element pointers via gep. */
    ir::Value *
    decay(ir::Value *v)
    {
        while (v->type()->isPointer() &&
               v->type()->element()->isArray()) {
            ir::Type *arr = v->type()->element();
            auto gep = std::make_unique<ir::Instruction>(
                ir::Opcode::GEP,
                module_.types().pointerTo(arr->element()), "");
            gep->setAccessType(arr);
            gep->addOperand(v);
            gep->addOperand(
                module_.intConst(module_.types().i64Ty(), 0));
            gep->addOperand(
                module_.intConst(module_.types().i64Ty(), 0));
            v = add(std::move(gep));
        }
        return v;
    }

    ir::Instruction *
    call(ir::Function *callee, const std::vector<ir::Value *> &args)
    {
        auto inst = std::make_unique<ir::Instruction>(
            ir::Opcode::Call, callee->returnType(), "");
        inst->setCallee(callee);
        for (ir::Value *a : args)
            inst->addOperand(a);
        return add(std::move(inst));
    }

  private:
    ir::Module &module_;
    ir::BasicBlock *bb_;
};

/**
 * True when bypassLoop can succeed on @p loop right now: the exit
 * block must carry no phis and the loop-entering branch must actually
 * target the header. Pure; the RewriteEngine checks this both at plan
 * time and again during validation against the live IR.
 */
inline bool
canBypassLoop(const LoopShape &loop)
{
    ir::BasicBlock *exit = loop.exitBlock();
    if (!exit->empty() && exit->front()->is(ir::Opcode::Phi))
        return false;
    for (ir::BasicBlock *target : loop.precursor->blockTargets()) {
        if (target == loop.header())
            return true;
    }
    return false;
}

/**
 * Create a trampoline block that will hold the API call, rewire the
 * loop-entering branch through it to the loop exit, and return the
 * trampoline. Returns null when the surgery preconditions fail.
 */
inline ir::BasicBlock *
bypassLoop(ir::Module &module, const LoopShape &loop)
{
    // One source of truth for the preconditions: checked here before
    // any mutation, so a failed bypass never leaves a stray block.
    if (!canBypassLoop(loop))
        return nullptr;
    ir::BasicBlock *header = loop.header();
    ir::BasicBlock *exit = loop.exitBlock();
    ir::Function *func = header->parent();

    ir::BasicBlock *tramp =
        func->createBlock(func->uniqueName("hetero.call"));
    auto br = std::make_unique<ir::Instruction>(
        ir::Opcode::Br, module.types().voidTy(), "");
    br->addBlockTarget(exit);
    tramp->append(std::move(br));

    for (size_t i = 0; i < loop.precursor->blockTargets().size();
         ++i) {
        if (loop.precursor->blockTargets()[i] == header)
            loop.precursor->setBlockTarget(i, tramp);
    }
    return tramp;
}

/** Blocks of the natural loop headed by @p shape's header. */
inline const analysis::Loop *
findLoop(const analysis::LoopInfo &loops, const LoopShape &shape)
{
    for (const auto &loop : loops.loops()) {
        if (loop->header == shape.header())
            return loop.get();
    }
    return nullptr;
}

/**
 * Verify that no value defined inside the loop is used outside it
 * (the @p allowed value — a reduction result — excepted).
 */
inline bool
loopIsSelfContained(const analysis::Loop &loop,
                    const ir::Value *allowed)
{
    for (ir::BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (inst.get() == allowed)
                continue;
            for (const ir::Instruction *user : inst->users()) {
                if (!loop.contains(user->parent()))
                    return false;
            }
        }
    }
    return true;
}

/**
 * Removing the loop must remove no observable effect beyond the
 * idiom: every store must be in @p allowed_stores, and calls — whose
 * originals die with the loop — may only be pure builtins (extracted
 * kernels re-create them).
 */
inline bool
loopEffectsAreCovered(const analysis::Loop &loop,
                      const std::set<const ir::Value *> &allowed_stores,
                      bool allow_builtin_calls)
{
    for (ir::BasicBlock *bb : loop.blocks) {
        for (const auto &inst : bb->insts()) {
            if (inst->is(ir::Opcode::Store) &&
                !allowed_stores.count(inst.get())) {
                return false;
            }
            if (inst->is(ir::Opcode::Call)) {
                if (!allow_builtin_calls ||
                    !inst->callee()->isDeclaration()) {
                    return false;
                }
            }
            if (inst->is(ir::Opcode::Alloca))
                return false;
        }
    }
    return true;
}

/**
 * Structural equality of pure address computations: the same gep
 * expression recomputed at two program points (codegen does not CSE).
 */
inline bool
structurallyEqual(const ir::Value *a, const ir::Value *b,
                  int depth = 8)
{
    if (a == b)
        return true;
    if (depth == 0 || !a || !b || !a->isInstruction() ||
        !b->isInstruction()) {
        return false;
    }
    const auto *ia = static_cast<const ir::Instruction *>(a);
    const auto *ib = static_cast<const ir::Instruction *>(b);
    switch (ia->opcode()) {
      case ir::Opcode::GEP:
      case ir::Opcode::SExt:
      case ir::Opcode::Add:
      case ir::Opcode::Sub:
      case ir::Opcode::Mul:
        break;
      default:
        return false;
    }
    if (ia->opcode() != ib->opcode() ||
        ia->numOperands() != ib->numOperands() ||
        ia->accessType() != ib->accessType()) {
        return false;
    }
    for (size_t i = 0; i < ia->numOperands(); ++i) {
        if (!structurallyEqual(ia->operand(i), ib->operand(i),
                               depth - 1)) {
            return false;
        }
    }
    return true;
}

inline const ir::Value *
stripSext(const ir::Value *v)
{
    while (v && v->isInstruction()) {
        const auto *inst = static_cast<const ir::Instruction *>(v);
        if (!inst->is(ir::Opcode::SExt))
            break;
        v = inst->operand(0);
    }
    return v;
}

/** Element type behind a pointer-ish base value. */
inline ir::Type *
pointeeElement(const ir::Value *base)
{
    ir::Type *t = base->type();
    if (!t->isPointer())
        return nullptr;
    t = t->element();
    while (t->isArray())
        t = t->element();
    return t;
}

} // namespace repro::transform::detail

#endif // TRANSFORM_LOOP_SHAPE_H
