/**
 * @file
 * Instruction class of the SSA IR.
 *
 * A single concrete class with an opcode discriminator keeps the
 * constraint solver simple: IDL atomics like "{x} is mul instruction"
 * become one enum comparison.
 */
#ifndef IR_INSTRUCTION_H
#define IR_INSTRUCTION_H

#include <string>
#include <vector>

#include "ir/value.h"

namespace repro::ir {

class BasicBlock;
class Function;

/** Every opcode the IR supports. Names follow LLVM. */
enum class Opcode
{
    // Integer arithmetic.
    Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr,
    // Floating point arithmetic.
    FAdd, FSub, FMul, FDiv,
    // Memory.
    Load, Store, GEP, Alloca,
    // Comparison and selection.
    ICmp, FCmp, Select,
    // Control flow.
    Br, Ret,
    // SSA merge.
    Phi,
    // Conversions.
    SExt, ZExt, Trunc, SIToFP, FPToSI, FPExt, FPTrunc,
    // Calls.
    Call,
};

/** Comparison predicates shared by icmp and fcmp. */
enum class CmpPred
{
    EQ, NE, LT, LE, GT, GE,
};

const char *opcodeName(Opcode op);
const char *cmpPredName(CmpPred pred, bool is_float);

/**
 * One SSA instruction.
 *
 * Operand edges maintain use lists on both sides. Control-flow targets
 * of branches and the incoming blocks of phis are held separately from
 * the operand list (blocks are not Values in this IR).
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type *type, std::string name)
        : Value(ValueKind::Instruction, type, std::move(name)), op_(op)
    {}
    ~Instruction() override;

    Opcode opcode() const { return op_; }
    bool is(Opcode op) const { return op_ == op; }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }
    Function *function() const;

    // Operands -----------------------------------------------------------
    size_t numOperands() const { return operands_.size(); }
    Value *operand(size_t i) const { return operands_[i]; }
    const std::vector<Value *> &operands() const { return operands_; }
    void addOperand(Value *v);
    void setOperand(size_t i, Value *v);
    /** Drop all operand edges (used before erasing). */
    void dropOperands();

    // Branch targets -----------------------------------------------------
    const std::vector<BasicBlock *> &blockTargets() const
    {
        return blocks_;
    }
    void addBlockTarget(BasicBlock *bb) { blocks_.push_back(bb); }
    void setBlockTarget(size_t i, BasicBlock *bb) { blocks_[i] = bb; }

    bool isTerminator() const { return op_ == Opcode::Br ||
                                       op_ == Opcode::Ret; }
    bool isConditionalBranch() const
    {
        return op_ == Opcode::Br && numOperands() == 1;
    }

    // Phi ----------------------------------------------------------------
    /** Incoming blocks, parallel to the operand list. */
    const std::vector<BasicBlock *> &incomingBlocks() const
    {
        return blocks_;
    }
    void addIncoming(Value *v, BasicBlock *bb);
    /** Incoming value for @p bb; null if absent. */
    Value *incomingFor(const BasicBlock *bb) const;
    /** Drop all incoming pairs of a phi (operands and blocks). */
    void
    clearIncoming()
    {
        dropOperands();
        blocks_.clear();
    }

    // Cmp ----------------------------------------------------------------
    CmpPred cmpPred() const { return pred_; }
    void setCmpPred(CmpPred pred) { pred_ = pred; }

    // Alloca / GEP -------------------------------------------------------
    /** Type allocated by alloca / stepped over by gep. */
    Type *accessType() const { return accessType_; }
    void setAccessType(Type *t) { accessType_ = t; }

    // Call ---------------------------------------------------------------
    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }

    std::string handle() const override;

    /**
     * Remove this instruction from its block and destroy it. All operand
     * use edges are dropped; the instruction must itself be unused.
     */
    void eraseFromParent();

  private:
    Opcode op_;
    BasicBlock *parent_ = nullptr;
    std::vector<Value *> operands_;
    std::vector<BasicBlock *> blocks_;
    CmpPred pred_ = CmpPred::EQ;
    Type *accessType_ = nullptr;
    Function *callee_ = nullptr;
};

} // namespace repro::ir

#endif // IR_INSTRUCTION_H
