#include "ir/value.h"

#include <algorithm>
#include <sstream>

#include "ir/instruction.h"
#include "support/diagnostics.h"

namespace repro::ir {

void
Value::removeUser(Instruction *inst)
{
    auto it = std::find(users_.begin(), users_.end(), inst);
    reproAssert(it != users_.end(), "removeUser: not a user");
    users_.erase(it);
}

void
Value::replaceAllUsesWith(Value *replacement)
{
    reproAssert(replacement != this, "RAUW with self");
    // Take a copy: setOperand mutates users_.
    std::vector<Instruction *> users = users_;
    for (Instruction *user : users) {
        for (size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == this)
                user->setOperand(i, replacement);
        }
    }
}

std::string
Value::handle() const
{
    if (!name_.empty())
        return "%" + name_;
    std::ostringstream os;
    os << "%" << id_;
    return os.str();
}

std::string
Constant::handle() const
{
    std::ostringstream os;
    if (isFP_) {
        os << fpValue_;
        if (os.str().find('.') == std::string::npos &&
            os.str().find('e') == std::string::npos &&
            os.str().find("inf") == std::string::npos &&
            os.str().find("nan") == std::string::npos) {
            os << ".0";
        }
    } else {
        os << intValue_;
    }
    return os.str();
}

} // namespace repro::ir
