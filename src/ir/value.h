/**
 * @file
 * Value hierarchy of the SSA IR: the base Value class plus Constant,
 * Argument and GlobalVariable. Instructions live in instruction.h.
 *
 * The IR mirrors LLVM closely because the Idiom Description Language
 * (IDL, section 3 of the paper) expresses atomic constraints over LLVM
 * concepts: opcodes, operand positions, phi incomings, dominance and
 * data/control flow.
 */
#ifndef IR_VALUE_H
#define IR_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace repro::ir {

class Instruction;
class Function;

/** Discriminator for the Value hierarchy. */
enum class ValueKind
{
    Constant,
    Argument,
    GlobalVariable,
    Instruction,
    FunctionRef,
};

/**
 * Base class of everything an instruction operand can name.
 *
 * Values track their users so that data-flow constraints ("has data flow
 * to") and RAUW are cheap.
 */
class Value
{
  public:
    Value(ValueKind kind, Type *type, std::string name)
        : kind_(kind), type_(type), name_(std::move(name))
    {}
    virtual ~Value() = default;

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind kind() const { return kind_; }
    Type *type() const { return type_; }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Stable per-function numbering assigned by Function::renumber(). */
    int id() const { return id_; }
    void setId(int id) { id_ = id; }

    bool isConstant() const { return kind_ == ValueKind::Constant; }
    bool isArgument() const { return kind_ == ValueKind::Argument; }
    bool isInstruction() const { return kind_ == ValueKind::Instruction; }
    bool isGlobal() const { return kind_ == ValueKind::GlobalVariable; }

    /** Instructions currently using this value as an operand. */
    const std::vector<Instruction *> &users() const { return users_; }

    bool unused() const { return users_.empty(); }

    /** Rewrite every use of this value to @p replacement. */
    void replaceAllUsesWith(Value *replacement);

    /** Short printable handle, e.g. "%sum" or "42". */
    virtual std::string handle() const;

  private:
    friend class Instruction;
    void addUser(Instruction *inst) { users_.push_back(inst); }
    void removeUser(Instruction *inst);

    ValueKind kind_;
    Type *type_;
    std::string name_;
    int id_ = -1;
    std::vector<Instruction *> users_;
};

/** An integer or floating point literal. Owned by the Module. */
class Constant : public Value
{
  public:
    Constant(Type *type, int64_t int_value)
        : Value(ValueKind::Constant, type, ""), intValue_(int_value)
    {}
    Constant(Type *type, double fp_value)
        : Value(ValueKind::Constant, type, ""), fpValue_(fp_value),
          isFP_(true)
    {}

    bool isFP() const { return isFP_; }
    int64_t intValue() const { return intValue_; }
    double fpValue() const { return fpValue_; }

    /** True when this is the additive identity of its type. */
    bool
    isZero() const
    {
        return isFP_ ? fpValue_ == 0.0 : intValue_ == 0;
    }

    std::string handle() const override;

  private:
    int64_t intValue_ = 0;
    double fpValue_ = 0.0;
    bool isFP_ = false;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(Type *type, std::string name, Function *parent, int index)
        : Value(ValueKind::Argument, type, std::move(name)),
          parent_(parent), index_(index)
    {}

    Function *parent() const { return parent_; }
    int index() const { return index_; }

  private:
    Function *parent_;
    int index_;
};

/**
 * A module-level array or scalar with static storage. Its Value type is
 * a pointer to the stored type, as in LLVM.
 */
class GlobalVariable : public Value
{
  public:
    GlobalVariable(Type *pointer_type, Type *stored_type, std::string name)
        : Value(ValueKind::GlobalVariable, pointer_type, std::move(name)),
          storedType_(stored_type)
    {}

    Type *storedType() const { return storedType_; }

    std::string handle() const override { return "@" + name(); }

  private:
    Type *storedType_;
};

} // namespace repro::ir

#endif // IR_VALUE_H
