#include "ir/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "support/string_utils.h"

namespace repro::ir {

namespace {

/** Character cursor over one source line. */
class Cursor
{
  public:
    Cursor(const std::string &line, int line_no)
        : s_(line), lineNo_(line_no)
    {}

    void
    skipWS()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool atEnd()
    {
        skipWS();
        return pos_ >= s_.size();
    }

    char
    peek()
    {
        skipWS();
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    /** Consume @p text if it is next (token-ish match). */
    bool
    match(const std::string &text)
    {
        skipWS();
        if (s_.compare(pos_, text.size(), text) == 0) {
            pos_ += text.size();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &text, DiagEngine &diags)
    {
        if (!match(text)) {
            diags.error({lineNo_, static_cast<int>(pos_) + 1},
                        "expected '" + text + "' in: " + s_);
            throw FatalError("IR parse error");
        }
    }

    /** Read an identifier-like token: letters, digits, . _ - */
    std::string
    ident()
    {
        skipWS();
        size_t start = pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '_' || c == '-' || c == '+') {
                ++pos_;
            } else {
                break;
            }
        }
        return s_.substr(start, pos_ - start);
    }

    /** Read a value token: %name, @name or a numeric literal. */
    std::string
    valueToken()
    {
        skipWS();
        std::string out;
        if (pos_ < s_.size() && (s_[pos_] == '%' || s_[pos_] == '@')) {
            out.push_back(s_[pos_]);
            ++pos_;
        }
        out += ident();
        return out;
    }

    /** Parse a type: [N x T], scalar names, trailing '*'s. */
    Type *
    parseType(TypeContext &types, DiagEngine &diags)
    {
        skipWS();
        Type *base = nullptr;
        if (match("[")) {
            std::string count = ident();
            expect("x", diags);
            Type *elem = parseType(types, diags);
            expect("]", diags);
            base = types.arrayOf(elem, std::stoull(count));
        } else {
            std::string word = ident();
            base = types.parse(word);
            if (!base) {
                diags.error({lineNo_, static_cast<int>(pos_) + 1},
                            "unknown type '" + word + "' in: " + s_);
                throw FatalError("IR parse error");
            }
        }
        while (true) {
            skipWS();
            if (pos_ < s_.size() && s_[pos_] == '*') {
                ++pos_;
                base = types.pointerTo(base);
            } else {
                break;
            }
        }
        return base;
    }

    int lineNo() const { return lineNo_; }
    const std::string &text() const { return s_; }

  private:
    std::string s_;
    size_t pos_ = 0;
    int lineNo_;
};

/** One instruction line pending operand resolution. */
struct PendingInst
{
    Instruction *inst = nullptr;
    std::string line;
    int lineNo = 0;
};

/** Parser state for one function body. */
class FunctionParser
{
  public:
    FunctionParser(Module &module, Function *func, DiagEngine &diags)
        : module_(module), func_(func), diags_(diags)
    {}

    void registerValue(const std::string &token, Value *v)
    {
        values_[token] = v;
    }

    Value *
    lookupValue(const std::string &token, Type *type, int line_no)
    {
        if (token.empty()) {
            diags_.error({line_no, 0}, "empty operand token");
            throw FatalError("IR parse error");
        }
        if (token[0] == '%') {
            auto it = values_.find(token);
            if (it == values_.end()) {
                diags_.error({line_no, 0},
                             "unknown value '" + token + "'");
                throw FatalError("IR parse error");
            }
            return it->second;
        }
        if (token[0] == '@') {
            std::string name = token.substr(1);
            if (Value *g = module_.globalByName(name))
                return g;
            if (Value *f = module_.functionByName(name))
                return f;
            diags_.error({line_no, 0}, "unknown global '" + token + "'");
            throw FatalError("IR parse error");
        }
        // Literal constant.
        if (type->isFloatingPoint())
            return module_.fpConst(type, std::stod(token));
        return module_.intConst(type, std::stoll(token));
    }

    BasicBlock *
    lookupBlock(const std::string &name, int line_no)
    {
        BasicBlock *bb = func_->blockByName(name);
        if (!bb) {
            diags_.error({line_no, 0}, "unknown block '%" + name + "'");
            throw FatalError("IR parse error");
        }
        return bb;
    }

    Module &module_;
    Function *func_;
    DiagEngine &diags_;
    std::map<std::string, Value *> values_;
};

Opcode
opcodeFromWord(const std::string &word, bool &ok)
{
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::Add}, {"sub", Opcode::Sub},
        {"mul", Opcode::Mul}, {"sdiv", Opcode::SDiv},
        {"srem", Opcode::SRem}, {"and", Opcode::And},
        {"or", Opcode::Or}, {"xor", Opcode::Xor},
        {"shl", Opcode::Shl}, {"ashr", Opcode::AShr},
        {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv},
        {"load", Opcode::Load}, {"store", Opcode::Store},
        {"getelementptr", Opcode::GEP}, {"gep", Opcode::GEP},
        {"alloca", Opcode::Alloca}, {"icmp", Opcode::ICmp},
        {"fcmp", Opcode::FCmp}, {"select", Opcode::Select},
        {"br", Opcode::Br}, {"ret", Opcode::Ret},
        {"phi", Opcode::Phi}, {"sext", Opcode::SExt},
        {"zext", Opcode::ZExt}, {"trunc", Opcode::Trunc},
        {"sitofp", Opcode::SIToFP}, {"fptosi", Opcode::FPToSI},
        {"fpext", Opcode::FPExt}, {"fptrunc", Opcode::FPTrunc},
        {"call", Opcode::Call},
    };
    auto it = table.find(word);
    ok = it != table.end();
    return ok ? it->second : Opcode::Add;
}

bool
cmpPredFromWord(const std::string &w, CmpPred &pred)
{
    static const std::map<std::string, CmpPred> table = {
        {"eq", CmpPred::EQ}, {"ne", CmpPred::NE},
        {"slt", CmpPred::LT}, {"sle", CmpPred::LE},
        {"sgt", CmpPred::GT}, {"sge", CmpPred::GE},
        {"ult", CmpPred::LT}, {"ule", CmpPred::LE},
        {"ugt", CmpPred::GT}, {"uge", CmpPred::GE},
        {"oeq", CmpPred::EQ}, {"one", CmpPred::NE},
        {"olt", CmpPred::LT}, {"ole", CmpPred::LE},
        {"ogt", CmpPred::GT}, {"oge", CmpPred::GE},
    };
    auto it = table.find(w);
    if (it == table.end())
        return false;
    pred = it->second;
    return true;
}

/**
 * Pass 1: create the instruction with its result type and register its
 * name. Returns the created instruction.
 */
Instruction *
createInstruction(FunctionParser &fp, BasicBlock *bb,
                  const std::string &line, int line_no)
{
    TypeContext &types = fp.module_.types();
    Cursor cur(line, line_no);

    std::string result_tok;
    if (cur.peek() == '%') {
        result_tok = cur.valueToken();
        cur.expect("=", fp.diags_);
    }

    std::string opword = cur.ident();
    bool ok = false;
    Opcode op = opcodeFromWord(opword, ok);
    if (!ok) {
        fp.diags_.error({line_no, 1},
                        "unknown instruction '" + opword + "'");
        throw FatalError("IR parse error");
    }

    Type *type = types.voidTy();
    Type *access = nullptr;
    CmpPred pred = CmpPred::EQ;
    Function *callee = nullptr;

    switch (op) {
      case Opcode::Load:
        type = cur.parseType(types, fp.diags_);
        break;
      case Opcode::GEP: {
        access = cur.parseType(types, fp.diags_);
        cur.expect(",", fp.diags_);
        cur.parseType(types, fp.diags_); // base pointer type
        cur.valueToken();
        // The first index steps over whole pointees; each further index
        // steps into one array dimension.
        Type *elem = access;
        while (cur.match(",")) {
            cur.parseType(types, fp.diags_);
            cur.valueToken();
        }
        // Operands: "<access type>, <base>, <idx0>[, <idxN>...]" —
        // the first index steps whole pointees, each further one
        // descends an array level.
        int commas = 0;
        for (char c : line) {
            if (c == ',')
                ++commas;
        }
        for (int i = 0; i < commas - 2; ++i)
            elem = elem->element();
        type = types.pointerTo(elem);
        break;
      }
      case Opcode::Alloca:
        access = cur.parseType(types, fp.diags_);
        type = types.pointerTo(access);
        break;
      case Opcode::ICmp:
      case Opcode::FCmp: {
        std::string pw = cur.ident();
        if (!cmpPredFromWord(pw, pred)) {
            fp.diags_.error({line_no, 1},
                            "bad compare predicate '" + pw + "'");
            throw FatalError("IR parse error");
        }
        type = types.i1Ty();
        break;
      }
      case Opcode::Select:
        cur.parseType(types, fp.diags_); // i1
        cur.valueToken();
        cur.expect(",", fp.diags_);
        type = cur.parseType(types, fp.diags_);
        break;
      case Opcode::Phi:
        type = cur.parseType(types, fp.diags_);
        break;
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc: {
        cur.parseType(types, fp.diags_);
        cur.valueToken();
        cur.expect("to", fp.diags_);
        type = cur.parseType(types, fp.diags_);
        break;
      }
      case Opcode::Call: {
        type = cur.parseType(types, fp.diags_);
        std::string ftok = cur.valueToken();
        callee = fp.module_.functionByName(ftok.substr(1));
        if (!callee) {
            fp.diags_.error({line_no, 1},
                            "call to unknown function " + ftok);
            throw FatalError("IR parse error");
        }
        break;
      }
      case Opcode::Store:
      case Opcode::Br:
      case Opcode::Ret:
        type = types.voidTy();
        break;
      default:
        // Binary arithmetic: type follows the opcode.
        type = cur.parseType(types, fp.diags_);
        break;
    }

    std::string name;
    if (!result_tok.empty() && result_tok[0] == '%') {
        name = result_tok.substr(1);
        bool numeric = !name.empty() &&
            name.find_first_not_of("0123456789") == std::string::npos;
        if (numeric)
            name.clear();
    }

    auto inst = std::make_unique<Instruction>(op, type, name);
    if (access)
        inst->setAccessType(access);
    inst->setCmpPred(pred);
    if (callee)
        inst->setCallee(callee);
    Instruction *out = bb->append(std::move(inst));
    if (!result_tok.empty())
        fp.registerValue(result_tok, out);
    return out;
}

/** Pass 2: re-parse the line and attach operands / block targets. */
void
resolveInstruction(FunctionParser &fp, Instruction *inst,
                   const std::string &line, int line_no)
{
    TypeContext &types = fp.module_.types();
    Cursor cur(line, line_no);

    if (cur.peek() == '%') {
        cur.valueToken();
        cur.expect("=", fp.diags_);
    }
    cur.ident(); // opcode word

    auto typedOperand = [&]() -> Value * {
        Type *t = cur.parseType(types, fp.diags_);
        std::string tok = cur.valueToken();
        return fp.lookupValue(tok, t, line_no);
    };

    switch (inst->opcode()) {
      case Opcode::Load:
        cur.parseType(types, fp.diags_);
        cur.expect(",", fp.diags_);
        inst->addOperand(typedOperand());
        break;
      case Opcode::Store:
        inst->addOperand(typedOperand());
        cur.expect(",", fp.diags_);
        inst->addOperand(typedOperand());
        break;
      case Opcode::GEP: {
        cur.parseType(types, fp.diags_); // access type
        cur.expect(",", fp.diags_);
        inst->addOperand(typedOperand());
        while (cur.match(","))
            inst->addOperand(typedOperand());
        break;
      }
      case Opcode::Alloca:
        cur.parseType(types, fp.diags_);
        break;
      case Opcode::ICmp:
      case Opcode::FCmp: {
        cur.ident(); // predicate
        Type *t = cur.parseType(types, fp.diags_);
        std::string a = cur.valueToken();
        cur.expect(",", fp.diags_);
        std::string b = cur.valueToken();
        inst->addOperand(fp.lookupValue(a, t, line_no));
        inst->addOperand(fp.lookupValue(b, t, line_no));
        break;
      }
      case Opcode::Select:
        inst->addOperand(typedOperand());
        cur.expect(",", fp.diags_);
        inst->addOperand(typedOperand());
        cur.expect(",", fp.diags_);
        inst->addOperand(typedOperand());
        break;
      case Opcode::Br:
        if (cur.match("label")) {
            cur.expect("%", fp.diags_);
            inst->addBlockTarget(fp.lookupBlock(cur.ident(), line_no));
        } else {
            inst->addOperand(typedOperand());
            cur.expect(",", fp.diags_);
            cur.expect("label", fp.diags_);
            cur.expect("%", fp.diags_);
            inst->addBlockTarget(fp.lookupBlock(cur.ident(), line_no));
            cur.expect(",", fp.diags_);
            cur.expect("label", fp.diags_);
            cur.expect("%", fp.diags_);
            inst->addBlockTarget(fp.lookupBlock(cur.ident(), line_no));
        }
        break;
      case Opcode::Ret:
        if (!cur.match("void"))
            inst->addOperand(typedOperand());
        break;
      case Opcode::Phi: {
        Type *t = cur.parseType(types, fp.diags_);
        bool first = true;
        while (true) {
            if (!first && !cur.match(","))
                break;
            first = false;
            if (!cur.match("["))
                break;
            std::string vtok = cur.valueToken();
            cur.expect(",", fp.diags_);
            cur.expect("%", fp.diags_);
            std::string bname = cur.ident();
            cur.expect("]", fp.diags_);
            inst->addIncoming(fp.lookupValue(vtok, t, line_no),
                              fp.lookupBlock(bname, line_no));
        }
        break;
      }
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc: {
        inst->addOperand(typedOperand());
        break;
      }
      case Opcode::Call: {
        cur.parseType(types, fp.diags_);
        cur.valueToken(); // @callee
        cur.expect("(", fp.diags_);
        if (!cur.match(")")) {
            do {
                inst->addOperand(typedOperand());
            } while (cur.match(","));
            cur.expect(")", fp.diags_);
        }
        break;
      }
      default: {
        // Binary arithmetic.
        Type *t = cur.parseType(types, fp.diags_);
        std::string a = cur.valueToken();
        cur.expect(",", fp.diags_);
        std::string b = cur.valueToken();
        inst->addOperand(fp.lookupValue(a, t, line_no));
        inst->addOperand(fp.lookupValue(b, t, line_no));
        break;
      }
    }
}

std::string
stripComment(const std::string &line)
{
    size_t pos = line.find(';');
    if (pos == std::string::npos)
        return line;
    return line.substr(0, pos);
}

/** Parse the "define ..." header; returns arg name tokens. */
Function *
parseHeader(Module &module, const std::string &line, int line_no,
            DiagEngine &diags, std::vector<std::string> &arg_names)
{
    Cursor cur(line, line_no);
    if (!cur.match("define") && !cur.match("declare"))
        return nullptr;
    Type *ret = cur.parseType(module.types(), diags);
    std::string fname = cur.valueToken();
    if (fname.empty() || fname[0] != '@') {
        diags.error({line_no, 1}, "expected function name");
        throw FatalError("IR parse error");
    }
    cur.expect("(", diags);
    std::vector<Type *> params;
    if (!cur.match(")")) {
        do {
            params.push_back(cur.parseType(module.types(), diags));
            if (cur.peek() == '%')
                arg_names.push_back(cur.valueToken());
            else
                arg_names.push_back("");
        } while (cur.match(","));
        cur.expect(")", diags);
    }
    Function *f = module.createFunction(fname.substr(1), ret,
                                        std::move(params));
    for (size_t i = 0; i < arg_names.size(); ++i) {
        if (!arg_names[i].empty())
            f->arg(i)->setName(arg_names[i].substr(1));
    }
    return f;
}

} // namespace

bool
parseModule(const std::string &text, Module &module, DiagEngine &diags)
{
    std::vector<std::string> lines = splitString(text, '\n');

    try {
        // Pre-pass: globals and function signatures, so calls and
        // global references resolve regardless of definition order.
        struct Body
        {
            Function *func;
            std::vector<std::string> argNames;
            std::vector<std::pair<std::string, int>> lines;
        };
        std::vector<Body> bodies;
        Body *current = nullptr;

        for (size_t i = 0; i < lines.size(); ++i) {
            std::string line = trimString(stripComment(lines[i]));
            int line_no = static_cast<int>(i) + 1;
            if (line.empty())
                continue;
            if (startsWith(line, "@")) {
                Cursor cur(line, line_no);
                std::string gname = cur.valueToken();
                cur.expect("=", diags);
                cur.expect("global", diags);
                Type *stored = cur.parseType(module.types(), diags);
                module.createGlobal(gname.substr(1), stored);
                continue;
            }
            if (startsWith(line, "define") || startsWith(line, "declare")) {
                std::vector<std::string> arg_names;
                Function *f = parseHeader(module, line, line_no, diags,
                                          arg_names);
                bodies.push_back({f, std::move(arg_names), {}});
                current = endsWith(line, "{") ? &bodies.back() : nullptr;
                continue;
            }
            if (line == "}") {
                current = nullptr;
                continue;
            }
            if (current)
                current->lines.emplace_back(line, line_no);
        }

        // Per-function body parsing.
        for (Body &body : bodies) {
            if (body.lines.empty())
                continue;
            FunctionParser fp(module, body.func, diags);
            for (size_t i = 0; i < body.argNames.size(); ++i) {
                if (!body.argNames[i].empty()) {
                    fp.registerValue(body.argNames[i],
                                     body.func->arg(i));
                }
            }

            // Pass A: create blocks.
            bool first_is_label = endsWith(body.lines.front().first, ":");
            if (!first_is_label)
                body.func->createBlock("entry");
            for (auto &[line, line_no] : body.lines) {
                if (endsWith(line, ":")) {
                    body.func->createBlock(
                        trimString(line.substr(0, line.size() - 1)));
                }
            }

            // Pass B: create instructions.
            std::vector<PendingInst> pending;
            BasicBlock *bb = body.func->entry();
            for (auto &[line, line_no] : body.lines) {
                if (endsWith(line, ":")) {
                    bb = body.func->blockByName(
                        trimString(line.substr(0, line.size() - 1)));
                    continue;
                }
                Instruction *inst =
                    createInstruction(fp, bb, line, line_no);
                pending.push_back({inst, line, line_no});
            }

            // Pass C: resolve operands.
            for (PendingInst &p : pending)
                resolveInstruction(fp, p.inst, p.line, p.lineNo);
        }
    } catch (const FatalError &) {
        return false;
    }
    return !diags.hasErrors();
}

void
parseModuleOrDie(const std::string &text, Module &module)
{
    DiagEngine diags;
    if (!parseModule(text, module, diags))
        throw FatalError("IR parse failed:\n" + diags.dump());
}

} // namespace repro::ir
