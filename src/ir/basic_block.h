/**
 * @file
 * BasicBlock: a straight-line sequence of instructions ending in a
 * terminator.
 */
#ifndef IR_BASIC_BLOCK_H
#define IR_BASIC_BLOCK_H

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace repro::ir {

class Function;

/** A node of the control flow graph. */
class BasicBlock
{
  public:
    BasicBlock(std::string name, Function *parent)
        : name_(std::move(name)), parent_(parent)
    {}

    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    Function *parent() const { return parent_; }

    const std::vector<std::unique_ptr<Instruction>> &insts() const
    {
        return insts_;
    }
    bool empty() const { return insts_.empty(); }
    size_t size() const { return insts_.size(); }

    Instruction *front() const { return insts_.front().get(); }
    Instruction *
    terminator() const
    {
        if (insts_.empty() || !insts_.back()->isTerminator())
            return nullptr;
        return insts_.back().get();
    }

    /** Append an instruction, taking ownership. */
    Instruction *append(std::unique_ptr<Instruction> inst);

    /** Insert before position @p index. */
    Instruction *insert(size_t index, std::unique_ptr<Instruction> inst);

    /** Index of @p inst in this block; -1 if absent. */
    int indexOf(const Instruction *inst) const;

    /** Detach and destroy @p inst. */
    void erase(Instruction *inst);

    /** Release @p inst without destroying it. */
    std::unique_ptr<Instruction> detach(Instruction *inst);

    /** Successor blocks derived from the terminator. */
    std::vector<BasicBlock *> successors() const;

    /** Predecessor blocks, scanning the parent function. */
    std::vector<BasicBlock *> predecessors() const;

  private:
    std::string name_;
    Function *parent_;
    std::vector<std::unique_ptr<Instruction>> insts_;
};

} // namespace repro::ir

#endif // IR_BASIC_BLOCK_H
