#include "ir/instruction.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "support/diagnostics.h"

namespace repro::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::SDiv: return "sdiv";
      case Opcode::SRem: return "srem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::AShr: return "ashr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::GEP: return "getelementptr";
      case Opcode::Alloca: return "alloca";
      case Opcode::ICmp: return "icmp";
      case Opcode::FCmp: return "fcmp";
      case Opcode::Select: return "select";
      case Opcode::Br: return "br";
      case Opcode::Ret: return "ret";
      case Opcode::Phi: return "phi";
      case Opcode::SExt: return "sext";
      case Opcode::ZExt: return "zext";
      case Opcode::Trunc: return "trunc";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::FPExt: return "fpext";
      case Opcode::FPTrunc: return "fptrunc";
      case Opcode::Call: return "call";
    }
    return "<bad opcode>";
}

const char *
cmpPredName(CmpPred pred, bool is_float)
{
    if (is_float) {
        switch (pred) {
          case CmpPred::EQ: return "oeq";
          case CmpPred::NE: return "one";
          case CmpPred::LT: return "olt";
          case CmpPred::LE: return "ole";
          case CmpPred::GT: return "ogt";
          case CmpPred::GE: return "oge";
        }
    } else {
        switch (pred) {
          case CmpPred::EQ: return "eq";
          case CmpPred::NE: return "ne";
          case CmpPred::LT: return "slt";
          case CmpPred::LE: return "sle";
          case CmpPred::GT: return "sgt";
          case CmpPred::GE: return "sge";
        }
    }
    return "<bad pred>";
}

Instruction::~Instruction()
{
    dropOperands();
}

Function *
Instruction::function() const
{
    return parent_ ? parent_->parent() : nullptr;
}

void
Instruction::addOperand(Value *v)
{
    reproAssert(v != nullptr, "addOperand(null)");
    operands_.push_back(v);
    v->addUser(this);
}

void
Instruction::setOperand(size_t i, Value *v)
{
    reproAssert(i < operands_.size(), "setOperand: index out of range");
    reproAssert(v != nullptr, "setOperand(null)");
    operands_[i]->removeUser(this);
    operands_[i] = v;
    v->addUser(this);
}

void
Instruction::dropOperands()
{
    for (Value *v : operands_)
        v->removeUser(this);
    operands_.clear();
}

void
Instruction::addIncoming(Value *v, BasicBlock *bb)
{
    reproAssert(op_ == Opcode::Phi, "addIncoming on non-phi");
    addOperand(v);
    blocks_.push_back(bb);
}

Value *
Instruction::incomingFor(const BasicBlock *bb) const
{
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i] == bb)
            return operands_[i];
    }
    return nullptr;
}

std::string
Instruction::handle() const
{
    return Value::handle();
}

void
Instruction::eraseFromParent()
{
    reproAssert(parent_ != nullptr, "eraseFromParent: detached");
    parent_->erase(this);
}

} // namespace repro::ir
