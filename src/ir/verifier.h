/**
 * @file
 * Dominance-aware static verifier for the SSA IR.
 *
 * Five layers mutate or consume IR (frontend passes, the transactional
 * RewriteEngine, the EDDI/CFCSS harden pass, bytecode lowering, cache
 * replay re-anchoring); the verifier is the machine-checkable contract
 * between them. It checks, per function:
 *
 *  - structure: every block ends in exactly one terminator
 *    ("block-term"), phis are grouped at block starts ("phi-order")
 *    and agree with the predecessor list ("phi-pred", "phi-type"),
 *    per-opcode operand typing ("op-type");
 *  - CFG integrity: branch targets are blocks of the same function
 *    with the right arity ("cfg-edge"); blocks unreachable from the
 *    entry are reported as warnings ("cfg-unreachable");
 *  - value ownership: every operand is one of the function's own
 *    arguments/instructions, a module global or an interned module
 *    constant — membership is decided by set lookup alone, never by
 *    dereferencing, so a recorded-then-erased pointer is diagnosed
 *    ("op-dangling") instead of dereferenced, and a value owned by
 *    another function is "op-cross-function";
 *  - SSA dominance (reusing analysis/dominators): every non-phi use
 *    is strictly dominated by its def ("dom-use"), and every phi
 *    incoming value dominates the matching predecessor's terminator
 *    ("dom-phi");
 *  - call sites: the callee is a function of the same module
 *    ("call-callee"), argument count ("call-arity") and types
 *    ("call-arg-type") match the callee signature, and the call's
 *    result type equals the callee return type ("call-ret-type");
 *  - attributes: unknown function attributes are warned about
 *    ("attr-unknown").
 *
 * Diagnostics are structured (rule id, function, block, instruction
 * index) so negative-oracle tests can pin exact rules and the service
 * layer can reject malformed modules with a structured protocol
 * error. The legacy string API remains as a thin wrapper over the
 * error tier.
 */
#ifndef IR_VERIFIER_H
#define IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace repro::ir {

/**
 * Where the pipeline runs the verifier. Off keeps the historical
 * behavior (only the frontend's final post-compile check). Boundaries
 * additionally gates every pass boundary: after MiniC codegen, after
 * mem2reg, after LICM/DCE, after every RewriteEngine commit and
 * rollback (hardening commits included), after the driver's transform
 * stage, and before bytecode lowering.
 */
enum class VerifyMode
{
    Off,
    Boundaries,
};

/**
 * Process-wide default, read once from the REPRO_VERIFY environment
 * variable: "1" / "on" / "boundaries" select Boundaries, everything
 * else (and unset) selects Off. The sanitizer CI tiers export
 * REPRO_VERIFY=1 so the whole quick test tier runs fully gated.
 */
VerifyMode defaultVerifyMode();

/** Severity tier of one verifier diagnostic. */
enum class VerifySeverity
{
    Error,
    Warning,
};

/** One structured verifier finding. */
struct VerifierDiag
{
    /** Stable rule id, e.g. "dom-use" (see file comment for the set). */
    std::string rule;
    VerifySeverity severity = VerifySeverity::Error;
    /** Function the finding is in. */
    std::string function;
    /** Block name; empty for function-level findings. */
    std::string block;
    /** Instruction index within the block; -1 for block/function level. */
    int instIndex = -1;
    /** Human-readable detail. */
    std::string message;

    /** "rule=<id> function=@f block=%b inst=<i>: <message>". */
    std::string str() const;
};

/** All findings of one verification run. */
struct VerifierReport
{
    std::vector<VerifierDiag> diags;

    /** True when no error-tier diagnostic was produced. */
    bool ok() const;
    size_t errorCount() const;
    size_t warningCount() const;
    /** True when some diagnostic carries @p rule. */
    bool hasRule(const std::string &rule) const;
    /** First error-tier diagnostic; must not be called when ok(). */
    const VerifierDiag &firstError() const;
    /** Render every diagnostic, one per line. */
    std::string str() const;
};

/** Run every rule over @p func. Declarations verify trivially. */
VerifierReport verifyFunctionDetailed(Function *func);

/** Run every rule over every function of @p module. */
VerifierReport verifyModuleDetailed(Module &module);

/**
 * Legacy string API: the error-tier diagnostics of
 * verifyFunctionDetailed rendered as strings (empty when valid).
 * Warnings are not included — they never fail a compile.
 */
std::vector<std::string> verifyFunction(Function *func);

/** Legacy string API over a whole module. */
std::vector<std::string> verifyModule(Module &module);

/**
 * Gate helper for pass boundaries: verify and throw InternalError
 * naming @p boundary when any error-tier diagnostic is found. A
 * violation at a boundary is a bug in the pass that just ran, not bad
 * user input.
 */
void verifyOrThrow(Function *func, const std::string &boundary);
void verifyOrThrow(Module &module, const std::string &boundary);

} // namespace repro::ir

#endif // IR_VERIFIER_H
