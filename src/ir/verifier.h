/**
 * @file
 * Structural verifier for the SSA IR.
 */
#ifndef IR_VERIFIER_H
#define IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace repro::ir {

/**
 * Check structural well-formedness of @p func:
 *  - every block ends in exactly one terminator;
 *  - phis are grouped at block starts and cover each predecessor once;
 *  - operand types are consistent per opcode;
 *  - stores/loads go through pointer operands.
 *
 * Returns a list of human-readable problems (empty when valid).
 */
std::vector<std::string> verifyFunction(Function *func);

/** Verify every function in @p module. */
std::vector<std::string> verifyModule(Module &module);

} // namespace repro::ir

#endif // IR_VERIFIER_H
