#include "ir/basic_block.h"

#include <algorithm>

#include "ir/function.h"
#include "support/diagnostics.h"

namespace repro::ir {

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    inst->setParent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
}

Instruction *
BasicBlock::insert(size_t index, std::unique_ptr<Instruction> inst)
{
    reproAssert(index <= insts_.size(), "insert: index out of range");
    inst->setParent(this);
    auto it = insts_.begin() + static_cast<ptrdiff_t>(index);
    it = insts_.insert(it, std::move(inst));
    return it->get();
}

int
BasicBlock::indexOf(const Instruction *inst) const
{
    for (size_t i = 0; i < insts_.size(); ++i) {
        if (insts_[i].get() == inst)
            return static_cast<int>(i);
    }
    return -1;
}

void
BasicBlock::erase(Instruction *inst)
{
    int idx = indexOf(inst);
    reproAssert(idx >= 0, "erase: instruction not in block");
    reproAssert(inst->unused(), "erase: instruction still has users");
    insts_.erase(insts_.begin() + idx);
}

std::unique_ptr<Instruction>
BasicBlock::detach(Instruction *inst)
{
    int idx = indexOf(inst);
    reproAssert(idx >= 0, "detach: instruction not in block");
    std::unique_ptr<Instruction> out = std::move(insts_[idx]);
    insts_.erase(insts_.begin() + idx);
    out->setParent(nullptr);
    return out;
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    Instruction *term = terminator();
    if (!term)
        return {};
    return term->blockTargets();
}

std::vector<BasicBlock *>
BasicBlock::predecessors() const
{
    std::vector<BasicBlock *> preds;
    for (const auto &bb : parent_->blocks()) {
        auto succs = bb->successors();
        if (std::find(succs.begin(), succs.end(), this) != succs.end())
            preds.push_back(bb.get());
    }
    return preds;
}

} // namespace repro::ir
