#include "ir/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "analysis/dominators.h"
#include "ir/printer.h"
#include "support/diagnostics.h"

namespace repro::ir {

VerifyMode
defaultVerifyMode()
{
    static const VerifyMode mode = [] {
        const char *env = std::getenv("REPRO_VERIFY");
        if (!env)
            return VerifyMode::Off;
        std::string v(env);
        if (v == "1" || v == "on" || v == "boundaries")
            return VerifyMode::Boundaries;
        return VerifyMode::Off;
    }();
    return mode;
}

std::string
VerifierDiag::str() const
{
    std::ostringstream os;
    os << "rule=" << rule << " function=@" << function;
    if (!block.empty())
        os << " block=%" << block;
    if (instIndex >= 0)
        os << " inst=" << instIndex;
    os << ": " << message;
    return os.str();
}

bool
VerifierReport::ok() const
{
    return errorCount() == 0;
}

size_t
VerifierReport::errorCount() const
{
    size_t n = 0;
    for (const auto &d : diags) {
        if (d.severity == VerifySeverity::Error)
            ++n;
    }
    return n;
}

size_t
VerifierReport::warningCount() const
{
    return diags.size() - errorCount();
}

bool
VerifierReport::hasRule(const std::string &rule) const
{
    for (const auto &d : diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

const VerifierDiag &
VerifierReport::firstError() const
{
    for (const auto &d : diags) {
        if (d.severity == VerifySeverity::Error)
            return d;
    }
    throw InternalError("VerifierReport::firstError on a clean report");
}

std::string
VerifierReport::str() const
{
    std::ostringstream os;
    for (const auto &d : diags)
        os << d.str() << "\n";
    return os.str();
}

namespace {

/**
 * Ownership universe of one module: which values belong to which
 * function and which are module-owned. Built once per verification and
 * consulted by pointer membership alone — a recorded-then-erased
 * operand is diagnosed without ever being dereferenced.
 */
struct Ownership
{
    /** Values (arguments + instructions) owned by each function. */
    std::map<const Function *, std::set<const Value *>> owned;
    std::set<const Value *> moduleValues; // constants + globals
    std::set<const Value *> functions;

    explicit Ownership(const Module &module)
    {
        for (const auto &f : module.functions()) {
            auto &set = owned[f.get()];
            for (const auto &arg : f->args())
                set.insert(arg.get());
            for (const auto &bb : f->blocks()) {
                for (const auto &inst : bb->insts())
                    set.insert(inst.get());
            }
            functions.insert(f.get());
        }
        for (const Constant *c : module.internedConstants())
            moduleValues.insert(c);
        for (const auto &g : module.globals())
            moduleValues.insert(g.get());
    }

    /** Function owning @p v, or null when no function does. */
    const Function *
    ownerOf(const Value *v) const
    {
        for (const auto &[func, set] : owned) {
            if (set.count(v))
                return func;
        }
        return nullptr;
    }
};

/** Attribute spellings the pipeline attaches and consumes. */
bool
knownAttribute(const std::string &attr)
{
    return attr == "protect" || attr == "protect:eddi" ||
           attr == "protect:cfcss";
}

/** Expected operand count per opcode; -1 means variadic. */
int
expectedOperands(Opcode op)
{
    switch (op) {
      case Opcode::Alloca:
        return 0;
      case Opcode::Load:
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
        return 1;
      case Opcode::Store:
      case Opcode::ICmp:
      case Opcode::FCmp:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::AShr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
        return 2;
      case Opcode::Select:
        return 3;
      default:
        return -1; // GEP, Br, Ret, Phi, Call are variadic
    }
}

/** One function's verification pass. */
class FunctionVerifier
{
  public:
    FunctionVerifier(Function *func, const Ownership &owners,
                     VerifierReport &report)
        : func_(func), owners_(owners),
          own_(owners.owned.at(func)), report_(report)
    {}

    void
    run()
    {
        if (func_->isDeclaration())
            return;
        checkAttributes();
        checkStructure();
        if (cfgSound_) {
            computeReachability();
            checkDominance();
        }
    }

  private:
    void
    diag(const std::string &rule, VerifySeverity sev,
         const BasicBlock *bb, int inst_index, const std::string &msg)
    {
        VerifierDiag d;
        d.rule = rule;
        d.severity = sev;
        d.function = func_->name();
        if (bb)
            d.block = bb->name();
        d.instIndex = inst_index;
        d.message = msg;
        report_.diags.push_back(std::move(d));
    }

    void
    errorAt(const std::string &rule, const Instruction *inst,
            const std::string &msg)
    {
        const BasicBlock *bb = inst->parent();
        int idx = bb ? bb->indexOf(inst) : -1;
        // Rendering dereferences operands; only safe once membership
        // has established every operand is live.
        std::string detail = badOperands_.count(inst)
                                 ? msg
                                 : msg + " in: " + printInstruction(inst);
        diag(rule, VerifySeverity::Error, bb, idx, detail);
    }

    void
    checkAttributes()
    {
        for (const std::string &attr : func_->attributes()) {
            if (!knownAttribute(attr)) {
                diag("attr-unknown", VerifySeverity::Warning, nullptr,
                     -1, "unknown function attribute '" + attr + "'");
            }
        }
    }

    bool
    isOwnBlock(const BasicBlock *bb) const
    {
        return func_->blockIndex(bb) >= 0;
    }

    /** True when @p v may be dereferenced: it is a live value of this
     *  module visible to this function. Decided by set membership. */
    bool
    live(const Value *v) const
    {
        return own_.count(v) || owners_.moduleValues.count(v);
    }

    /**
     * Membership-validate every operand of @p inst; emit op-dangling /
     * op-cross-function and return false when any operand must not be
     * dereferenced. All later checks skip such instructions.
     */
    bool
    checkOperandLiveness(Instruction *inst)
    {
        bool ok = true;
        for (Value *v : inst->operands()) {
            if (live(v))
                continue;
            ok = false;
            badOperands_.insert(inst);
            if (owners_.functions.count(v)) {
                errorAt("op-cross-function", inst,
                        "function reference used as an operand");
            } else if (const Function *other = owners_.ownerOf(v)) {
                errorAt("op-cross-function", inst,
                        "operand owned by @" + other->name());
            } else {
                errorAt("op-dangling", inst,
                        "operand is not a live value of this module "
                        "(erased or foreign)");
            }
        }
        return ok;
    }

    void
    checkStructure()
    {
        for (const auto &bb : func_->blocks()) {
            if (!bb->terminator()) {
                diag("block-term", VerifySeverity::Error, bb.get(), -1,
                     "block has no terminator");
                cfgSound_ = false;
            }
            auto preds = bb->predecessors();
            bool past_phis = false;
            for (size_t i = 0; i < bb->size(); ++i) {
                Instruction *inst = bb->insts()[i].get();
                if (inst->isTerminator() && i + 1 != bb->size()) {
                    errorAt("block-term", inst,
                            "terminator not at end of block");
                    cfgSound_ = false;
                }
                bool operands_ok = checkOperandLiveness(inst);
                if (inst->is(Opcode::Phi)) {
                    checkPhi(inst, preds, past_phis, operands_ok);
                } else {
                    past_phis = true;
                }
                if (inst->is(Opcode::Br))
                    checkBranch(inst);
                if (!operands_ok)
                    continue;
                checkOperandTypes(inst);
                if (inst->is(Opcode::Call))
                    checkCall(inst);
            }
        }
    }

    void
    checkPhi(Instruction *inst, const std::vector<BasicBlock *> &preds,
             bool past_phis, bool operands_ok)
    {
        if (past_phis)
            errorAt("phi-order", inst, "phi after non-phi instruction");
        if (inst->numOperands() != preds.size() ||
            inst->incomingBlocks().size() != inst->numOperands()) {
            errorAt("phi-pred", inst,
                    "phi incoming count differs from predecessors");
        }
        for (BasicBlock *in : inst->incomingBlocks()) {
            if (std::find(preds.begin(), preds.end(), in) ==
                preds.end()) {
                errorAt("phi-pred", inst,
                        "phi incoming from non-predecessor");
            }
        }
        if (!operands_ok)
            return;
        for (Value *v : inst->operands()) {
            if (v->type() != inst->type())
                errorAt("phi-type", inst, "phi incoming type mismatch");
        }
    }

    void
    checkBranch(Instruction *inst)
    {
        size_t want = inst->isConditionalBranch() ? 2 : 1;
        if (inst->blockTargets().size() != want) {
            errorAt("cfg-edge", inst,
                    inst->isConditionalBranch()
                        ? "conditional branch needs 2 targets"
                        : "unconditional branch needs 1 target");
            cfgSound_ = false;
        }
        for (BasicBlock *target : inst->blockTargets()) {
            if (!target || !isOwnBlock(target)) {
                errorAt("cfg-edge", inst,
                        "branch target is not a block of this function");
                cfgSound_ = false;
            }
        }
    }

    void
    checkOperandTypes(Instruction *inst)
    {
        int want = expectedOperands(inst->opcode());
        if (want >= 0 &&
            inst->numOperands() != static_cast<size_t>(want)) {
            errorAt("op-type", inst,
                    "operand count mismatch (got " +
                        std::to_string(inst->numOperands()) +
                        ", opcode takes " + std::to_string(want) + ")");
            return;
        }
        switch (inst->opcode()) {
          case Opcode::Load:
            if (!inst->operand(0)->type()->isPointer())
                errorAt("op-type", inst, "load from non-pointer");
            break;
          case Opcode::Store:
            if (!inst->operand(1)->type()->isPointer()) {
                errorAt("op-type", inst, "store to non-pointer");
            } else if (inst->operand(1)->type()->element() !=
                       inst->operand(0)->type()) {
                errorAt("op-type", inst,
                        "store value/pointer type mismatch");
            }
            break;
          case Opcode::GEP:
            if (inst->numOperands() < 2) {
                errorAt("op-type", inst, "gep needs base and index");
                break;
            }
            if (!inst->operand(0)->type()->isPointer())
                errorAt("op-type", inst, "gep base not a pointer");
            for (size_t k = 1; k < inst->numOperands(); ++k) {
                if (!inst->operand(k)->type()->isInteger())
                    errorAt("op-type", inst, "gep index not an integer");
            }
            break;
          case Opcode::Br:
            if (inst->isConditionalBranch() &&
                !inst->operand(0)->type()->isI1()) {
                errorAt("op-type", inst, "branch condition not i1");
            }
            break;
          case Opcode::Ret:
            if (func_->returnType()->isVoid()) {
                if (inst->numOperands() != 0)
                    errorAt("op-type", inst,
                            "ret with value in void function");
            } else if (inst->numOperands() != 1 ||
                       inst->operand(0)->type() != func_->returnType()) {
                errorAt("op-type", inst, "ret type mismatch");
            }
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::SDiv:
          case Opcode::SRem:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::AShr:
            if (!inst->type()->isInteger() ||
                inst->operand(0)->type() != inst->type() ||
                inst->operand(1)->type() != inst->type()) {
                errorAt("op-type", inst,
                        "integer binary type mismatch");
            }
            break;
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
            if (!inst->type()->isFloatingPoint() ||
                inst->operand(0)->type() != inst->type() ||
                inst->operand(1)->type() != inst->type()) {
                errorAt("op-type", inst, "float binary type mismatch");
            }
            break;
          default:
            break;
        }
    }

    void
    checkCall(Instruction *inst)
    {
        Function *callee = inst->callee();
        if (!callee) {
            errorAt("call-callee", inst, "call without a callee");
            return;
        }
        if (!owners_.functions.count(callee)) {
            errorAt("call-callee", inst,
                    "callee is not a function of this module");
            return;
        }
        const auto &params = callee->functionType()->params();
        if (inst->numOperands() != params.size()) {
            errorAt("call-arity", inst,
                    "call argument count mismatch (got " +
                        std::to_string(inst->numOperands()) +
                        ", callee @" + callee->name() + " takes " +
                        std::to_string(params.size()) + ")");
        } else {
            for (size_t k = 0; k < params.size(); ++k) {
                if (inst->operand(k)->type() != params[k]) {
                    errorAt("call-arg-type", inst,
                            "call argument " + std::to_string(k) +
                                " type mismatch against @" +
                                callee->name());
                }
            }
        }
        if (inst->type() != callee->returnType()) {
            errorAt("call-ret-type", inst,
                    "call result type differs from @" +
                        callee->name() + " return type");
        }
    }

    void
    computeReachability()
    {
        std::vector<const BasicBlock *> work{func_->entry()};
        reachable_.insert(func_->entry());
        while (!work.empty()) {
            const BasicBlock *bb = work.back();
            work.pop_back();
            for (BasicBlock *succ : bb->successors()) {
                if (reachable_.insert(succ).second)
                    work.push_back(succ);
            }
        }
        for (const auto &bb : func_->blocks()) {
            if (!reachable_.count(bb.get())) {
                diag("cfg-unreachable", VerifySeverity::Warning,
                     bb.get(), -1,
                     "block is unreachable from the entry");
            }
        }
    }

    void
    checkDominance()
    {
        analysis::DomTree dom(func_, false);
        for (const auto &bb : func_->blocks()) {
            if (!reachable_.count(bb.get()))
                continue; // dominance is undefined off the CFG
            for (const auto &instp : bb->insts()) {
                Instruction *inst = instp.get();
                if (badOperands_.count(inst))
                    continue;
                bool is_phi = inst->is(Opcode::Phi);
                if (is_phi && (inst->incomingBlocks().size() !=
                                   inst->numOperands() ||
                               inst->numOperands() !=
                                   bb->predecessors().size())) {
                    continue; // already a phi-pred error
                }
                for (size_t k = 0; k < inst->numOperands(); ++k) {
                    Value *v = inst->operand(k);
                    if (!v->isInstruction() || !own_.count(v))
                        continue;
                    auto *def = static_cast<Instruction *>(v);
                    if (is_phi) {
                        checkPhiIncomingDominance(dom, inst, k, def);
                    } else if (!reachable_.count(def->parent()) ||
                               !dom.strictlyDominates(def, inst)) {
                        errorAt("dom-use", inst,
                                "use of " + def->handle() +
                                    " is not dominated by its "
                                    "definition");
                    }
                }
            }
        }
    }

    void
    checkPhiIncomingDominance(const analysis::DomTree &dom,
                              Instruction *phi, size_t k,
                              Instruction *def)
    {
        BasicBlock *in = phi->incomingBlocks()[k];
        if (!in || !isOwnBlock(in))
            return; // already a phi-pred error
        Instruction *term = in->terminator();
        if (!term)
            return; // already a block-term error
        if (!reachable_.count(in))
            return; // dominance is undefined off the CFG
        if (!reachable_.count(def->parent()) ||
            !dom.dominates(def, term)) {
            errorAt("dom-phi", phi,
                    "phi incoming " + def->handle() +
                        " does not dominate the %" + in->name() +
                        " edge");
        }
    }

    Function *func_;
    const Ownership &owners_;
    const std::set<const Value *> &own_;
    VerifierReport &report_;
    bool cfgSound_ = true;
    std::set<const BasicBlock *> reachable_;
    std::set<const Instruction *> badOperands_;
};

} // namespace

VerifierReport
verifyFunctionDetailed(Function *func)
{
    VerifierReport report;
    Module *module = func->parentModule();
    if (!module)
        return report;
    Ownership owners(*module);
    FunctionVerifier(func, owners, report).run();
    return report;
}

VerifierReport
verifyModuleDetailed(Module &module)
{
    VerifierReport report;
    Ownership owners(module);
    for (const auto &f : module.functions())
        FunctionVerifier(f.get(), owners, report).run();
    return report;
}

std::vector<std::string>
verifyFunction(Function *func)
{
    std::vector<std::string> problems;
    for (const auto &d : verifyFunctionDetailed(func).diags) {
        if (d.severity == VerifySeverity::Error)
            problems.push_back(d.str());
    }
    return problems;
}

std::vector<std::string>
verifyModule(Module &module)
{
    std::vector<std::string> problems;
    for (const auto &d : verifyModuleDetailed(module).diags) {
        if (d.severity == VerifySeverity::Error)
            problems.push_back(d.str());
    }
    return problems;
}

void
verifyOrThrow(Function *func, const std::string &boundary)
{
    VerifierReport report = verifyFunctionDetailed(func);
    if (!report.ok()) {
        throw InternalError("IR verification failed at boundary '" +
                            boundary + "':\n" + report.str());
    }
}

void
verifyOrThrow(Module &module, const std::string &boundary)
{
    VerifierReport report = verifyModuleDetailed(module);
    if (!report.ok()) {
        throw InternalError("IR verification failed at boundary '" +
                            boundary + "':\n" + report.str());
    }
}

} // namespace repro::ir
