#include "ir/verifier.h"

#include <algorithm>
#include <sstream>

#include "ir/printer.h"

namespace repro::ir {

namespace {

void
check(std::vector<std::string> &problems, bool cond,
      const Instruction *inst, const std::string &msg)
{
    if (!cond) {
        std::ostringstream os;
        os << msg << " in: " << printInstruction(inst);
        problems.push_back(os.str());
    }
}

} // namespace

std::vector<std::string>
verifyFunction(Function *func)
{
    std::vector<std::string> problems;
    if (func->isDeclaration())
        return problems;

    for (const auto &bb : func->blocks()) {
        if (!bb->terminator()) {
            problems.push_back("block %" + bb->name() +
                               " has no terminator");
            continue;
        }
        auto preds = bb->predecessors();
        bool past_phis = false;
        for (size_t i = 0; i < bb->size(); ++i) {
            Instruction *inst = bb->insts()[i].get();
            if (inst->isTerminator() && i + 1 != bb->size()) {
                check(problems, false, inst,
                      "terminator not at end of block");
            }
            if (inst->is(Opcode::Phi)) {
                check(problems, !past_phis, inst,
                      "phi after non-phi instruction");
                check(problems,
                      inst->numOperands() == preds.size(), inst,
                      "phi incoming count differs from predecessors");
                for (BasicBlock *in : inst->incomingBlocks()) {
                    check(problems,
                          std::find(preds.begin(), preds.end(), in) !=
                              preds.end(),
                          inst, "phi incoming from non-predecessor");
                }
                for (Value *v : inst->operands()) {
                    check(problems, v->type() == inst->type(), inst,
                          "phi incoming type mismatch");
                }
            } else {
                past_phis = true;
            }

            switch (inst->opcode()) {
              case Opcode::Load:
                check(problems, inst->operand(0)->type()->isPointer(),
                      inst, "load from non-pointer");
                break;
              case Opcode::Store:
                check(problems, inst->operand(1)->type()->isPointer(),
                      inst, "store to non-pointer");
                if (inst->operand(1)->type()->isPointer()) {
                    check(problems,
                          inst->operand(1)->type()->element() ==
                              inst->operand(0)->type(),
                          inst, "store value/pointer type mismatch");
                }
                break;
              case Opcode::GEP:
                check(problems, inst->operand(0)->type()->isPointer(),
                      inst, "gep base not a pointer");
                for (size_t k = 1; k < inst->numOperands(); ++k) {
                    check(problems,
                          inst->operand(k)->type()->isInteger(), inst,
                          "gep index not an integer");
                }
                break;
              case Opcode::Br:
                if (inst->isConditionalBranch()) {
                    check(problems, inst->operand(0)->type()->isI1(),
                          inst, "branch condition not i1");
                    check(problems, inst->blockTargets().size() == 2,
                          inst, "conditional branch needs 2 targets");
                } else {
                    check(problems, inst->blockTargets().size() == 1,
                          inst, "unconditional branch needs 1 target");
                }
                break;
              case Opcode::Ret:
                if (func->returnType()->isVoid()) {
                    check(problems, inst->numOperands() == 0, inst,
                          "ret with value in void function");
                } else {
                    check(problems,
                          inst->numOperands() == 1 &&
                              inst->operand(0)->type() ==
                                  func->returnType(),
                          inst, "ret type mismatch");
                }
                break;
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Mul:
              case Opcode::SDiv:
              case Opcode::SRem:
              case Opcode::And:
              case Opcode::Or:
              case Opcode::Xor:
              case Opcode::Shl:
              case Opcode::AShr:
                check(problems,
                      inst->type()->isInteger() &&
                          inst->operand(0)->type() == inst->type() &&
                          inst->operand(1)->type() == inst->type(),
                      inst, "integer binary type mismatch");
                break;
              case Opcode::FAdd:
              case Opcode::FSub:
              case Opcode::FMul:
              case Opcode::FDiv:
                check(problems,
                      inst->type()->isFloatingPoint() &&
                          inst->operand(0)->type() == inst->type() &&
                          inst->operand(1)->type() == inst->type(),
                      inst, "float binary type mismatch");
                break;
              case Opcode::Call: {
                const auto &params =
                    inst->callee()->functionType()->params();
                check(problems, inst->numOperands() == params.size(),
                      inst, "call argument count mismatch");
                if (inst->numOperands() == params.size()) {
                    for (size_t k = 0; k < params.size(); ++k) {
                        check(problems,
                              inst->operand(k)->type() == params[k],
                              inst, "call argument type mismatch");
                    }
                }
                break;
              }
              default:
                break;
            }
        }
    }
    return problems;
}

std::vector<std::string>
verifyModule(Module &module)
{
    std::vector<std::string> problems;
    for (const auto &f : module.functions()) {
        auto p = verifyFunction(f.get());
        for (auto &msg : p)
            problems.push_back("@" + f->name() + ": " + msg);
    }
    return problems;
}

} // namespace repro::ir
