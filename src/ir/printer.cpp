#include "ir/printer.h"

#include <sstream>

namespace repro::ir {

std::string
printOperand(const Value *v)
{
    return v->handle();
}

namespace {

std::string
typedOperand(const Value *v)
{
    return v->type()->str() + " " + printOperand(v);
}

} // namespace

std::string
printInstruction(const Instruction *inst)
{
    std::ostringstream os;
    bool produces = !inst->type()->isVoid();
    if (produces)
        os << printOperand(inst) << " = ";

    switch (inst->opcode()) {
      case Opcode::Store:
        os << "store " << typedOperand(inst->operand(0)) << ", "
           << typedOperand(inst->operand(1));
        break;
      case Opcode::Load:
        os << "load " << inst->type()->str() << ", "
           << typedOperand(inst->operand(0));
        break;
      case Opcode::GEP:
        os << "getelementptr " << inst->accessType()->str() << ", "
           << typedOperand(inst->operand(0));
        for (size_t i = 1; i < inst->numOperands(); ++i)
            os << ", " << typedOperand(inst->operand(i));
        break;
      case Opcode::Alloca:
        os << "alloca " << inst->accessType()->str();
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        os << opcodeName(inst->opcode()) << " "
           << cmpPredName(inst->cmpPred(),
                          inst->opcode() == Opcode::FCmp)
           << " " << inst->operand(0)->type()->str() << " "
           << printOperand(inst->operand(0)) << ", "
           << printOperand(inst->operand(1));
        break;
      case Opcode::Select:
        os << "select " << typedOperand(inst->operand(0)) << ", "
           << typedOperand(inst->operand(1)) << ", "
           << typedOperand(inst->operand(2));
        break;
      case Opcode::Br:
        if (inst->isConditionalBranch()) {
            os << "br " << typedOperand(inst->operand(0)) << ", label %"
               << inst->blockTargets()[0]->name() << ", label %"
               << inst->blockTargets()[1]->name();
        } else {
            os << "br label %" << inst->blockTargets()[0]->name();
        }
        break;
      case Opcode::Ret:
        if (inst->numOperands() == 0)
            os << "ret void";
        else
            os << "ret " << typedOperand(inst->operand(0));
        break;
      case Opcode::Phi: {
        os << "phi " << inst->type()->str() << " ";
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            if (i)
                os << ", ";
            os << "[ " << printOperand(inst->operand(i)) << ", %"
               << inst->incomingBlocks()[i]->name() << " ]";
        }
        break;
      }
      case Opcode::SExt:
      case Opcode::ZExt:
      case Opcode::Trunc:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
        os << opcodeName(inst->opcode()) << " "
           << typedOperand(inst->operand(0)) << " to "
           << inst->type()->str();
        break;
      case Opcode::Call: {
        os << "call " << inst->type()->str() << " @"
           << inst->callee()->name() << "(";
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            if (i)
                os << ", ";
            os << typedOperand(inst->operand(i));
        }
        os << ")";
        break;
      }
      default:
        // Binary arithmetic.
        os << opcodeName(inst->opcode()) << " "
           << inst->type()->str() << " "
           << printOperand(inst->operand(0)) << ", "
           << printOperand(inst->operand(1));
        break;
    }
    return os.str();
}

std::string
printFunction(Function *func)
{
    func->renumber();
    std::ostringstream os;
    os << "define " << func->returnType()->str() << " @"
       << func->name() << "(";
    for (size_t i = 0; i < func->numArgs(); ++i) {
        if (i)
            os << ", ";
        os << func->arg(i)->type()->str() << " "
           << printOperand(func->arg(i));
    }
    os << ")";
    if (func->isDeclaration()) {
        os << "\n";
        return os.str();
    }
    os << " {\n";
    for (const auto &bb : func->blocks()) {
        os << bb->name() << ":\n";
        for (const auto &inst : bb->insts())
            os << "  " << printInstruction(inst.get()) << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(Module &module)
{
    std::ostringstream os;
    for (const auto &g : module.globals()) {
        os << "@" << g->name() << " = global "
           << g->storedType()->str() << "\n";
    }
    if (!module.globals().empty())
        os << "\n";
    for (const auto &f : module.functions()) {
        os << printFunction(f.get());
        os << "\n";
    }
    return os.str();
}

} // namespace repro::ir
