#include "ir/type.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/string_utils.h"

namespace repro::ir {

uint64_t
Type::sizeInBytes() const
{
    switch (kind_) {
      case Kind::Void: return 0;
      case Kind::I1: return 1;
      case Kind::I32: return 4;
      case Kind::I64: return 8;
      case Kind::Float: return 4;
      case Kind::Double: return 8;
      case Kind::Pointer: return 8;
      case Kind::Array: return arraySize_ * element_->sizeInBytes();
      case Kind::Function: return 0;
    }
    return 0;
}

std::string
Type::str() const
{
    switch (kind_) {
      case Kind::Void: return "void";
      case Kind::I1: return "i1";
      case Kind::I32: return "i32";
      case Kind::I64: return "i64";
      case Kind::Float: return "float";
      case Kind::Double: return "double";
      case Kind::Pointer: return element_->str() + "*";
      case Kind::Array: {
        std::ostringstream os;
        os << "[" << arraySize_ << " x " << element_->str() << "]";
        return os.str();
      }
      case Kind::Function: {
        std::ostringstream os;
        os << element_->str() << " (";
        for (size_t i = 0; i < params_.size(); ++i) {
            if (i)
                os << ", ";
            os << params_[i]->str();
        }
        os << ")";
        return os.str();
      }
    }
    return "<invalid>";
}

TypeContext::TypeContext()
{
    voidTy_ = make(Type::Kind::Void, nullptr, 0, {});
    i1Ty_ = make(Type::Kind::I1, nullptr, 0, {});
    i32Ty_ = make(Type::Kind::I32, nullptr, 0, {});
    i64Ty_ = make(Type::Kind::I64, nullptr, 0, {});
    floatTy_ = make(Type::Kind::Float, nullptr, 0, {});
    doubleTy_ = make(Type::Kind::Double, nullptr, 0, {});
}

Type *
TypeContext::make(Type::Kind kind, Type *element, uint64_t array_size,
                  std::vector<Type *> params)
{
    all_.emplace_back(new Type(kind, element, array_size,
                               std::move(params)));
    return all_.back().get();
}

Type *
TypeContext::pointerTo(Type *pointee)
{
    reproAssert(pointee != nullptr, "pointerTo(null)");
    auto it = pointerCache_.find(pointee);
    if (it != pointerCache_.end())
        return it->second;
    Type *t = make(Type::Kind::Pointer, pointee, 0, {});
    pointerCache_[pointee] = t;
    return t;
}

Type *
TypeContext::arrayOf(Type *element, uint64_t count)
{
    reproAssert(element != nullptr, "arrayOf(null)");
    auto key = std::make_pair(element, count);
    auto it = arrayCache_.find(key);
    if (it != arrayCache_.end())
        return it->second;
    Type *t = make(Type::Kind::Array, element, count, {});
    arrayCache_[key] = t;
    return t;
}

Type *
TypeContext::functionTy(Type *ret, std::vector<Type *> params)
{
    auto key = std::make_pair(ret, params);
    auto it = funcCache_.find(key);
    if (it != funcCache_.end())
        return it->second;
    Type *t = make(Type::Kind::Function, ret, 0, std::move(params));
    funcCache_[key] = t;
    return t;
}

Type *
TypeContext::parse(const std::string &text)
{
    std::string s = trimString(text);
    if (s.empty())
        return nullptr;
    if (endsWith(s, "*")) {
        Type *inner = parse(s.substr(0, s.size() - 1));
        return inner ? pointerTo(inner) : nullptr;
    }
    if (s.front() == '[' && s.back() == ']') {
        std::string body = s.substr(1, s.size() - 2);
        size_t xpos = body.find(" x ");
        if (xpos == std::string::npos)
            return nullptr;
        uint64_t count = std::stoull(trimString(body.substr(0, xpos)));
        Type *elem = parse(body.substr(xpos + 3));
        return elem ? arrayOf(elem, count) : nullptr;
    }
    if (s == "void")
        return voidTy_;
    if (s == "i1")
        return i1Ty_;
    if (s == "i32")
        return i32Ty_;
    if (s == "i64")
        return i64Ty_;
    if (s == "float")
        return floatTy_;
    if (s == "double")
        return doubleTy_;
    return nullptr;
}

} // namespace repro::ir
