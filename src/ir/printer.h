/**
 * @file
 * Textual printer for the SSA IR (LLVM-like syntax).
 */
#ifndef IR_PRINTER_H
#define IR_PRINTER_H

#include <string>

#include "ir/function.h"

namespace repro::ir {

/** Render one instruction, e.g. "%1 = add i64 %a, %b". */
std::string printInstruction(const Instruction *inst);

/** Render a whole function. Assigns ids to unnamed values. */
std::string printFunction(Function *func);

/** Render the module: globals then functions. */
std::string printModule(Module &module);

/** Operand rendering: "%name", "@glob" or a literal. */
std::string printOperand(const Value *v);

} // namespace repro::ir

#endif // IR_PRINTER_H
