/**
 * @file
 * IRBuilder: convenience factory that appends instructions to a block.
 */
#ifndef IR_IRBUILDER_H
#define IR_IRBUILDER_H

#include <memory>
#include <string>

#include "ir/function.h"

namespace repro::ir {

/**
 * Builds instructions at the end of a chosen insertion block, mirroring
 * llvm::IRBuilder. Used by the MiniC code generator, tests and examples.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    void setInsertPoint(BasicBlock *bb) { block_ = bb; }
    BasicBlock *insertBlock() const { return block_; }

    Module &module() { return module_; }
    TypeContext &types() { return module_.types(); }

    // Arithmetic ---------------------------------------------------------
    Instruction *binary(Opcode op, Value *lhs, Value *rhs,
                        const std::string &name = "");

    Instruction *add(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::Add, l, r, n); }
    Instruction *sub(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::Sub, l, r, n); }
    Instruction *mul(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::Mul, l, r, n); }
    Instruction *fadd(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::FAdd, l, r, n); }
    Instruction *fsub(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::FSub, l, r, n); }
    Instruction *fmul(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::FMul, l, r, n); }
    Instruction *fdiv(Value *l, Value *r, const std::string &n = "")
    { return binary(Opcode::FDiv, l, r, n); }

    // Memory -------------------------------------------------------------
    Instruction *alloca_(Type *type, const std::string &name = "");
    Instruction *load(Value *ptr, const std::string &name = "");
    Instruction *store(Value *value, Value *ptr);
    /** getelementptr with one or more indices. */
    Instruction *gep(Value *base, const std::vector<Value *> &indices,
                     const std::string &name = "");

    // Comparison / select --------------------------------------------------
    Instruction *icmp(CmpPred pred, Value *l, Value *r,
                      const std::string &name = "");
    Instruction *fcmp(CmpPred pred, Value *l, Value *r,
                      const std::string &name = "");
    Instruction *select(Value *cond, Value *t, Value *f,
                        const std::string &name = "");

    // Control flow ---------------------------------------------------------
    Instruction *br(BasicBlock *dest);
    Instruction *condBr(Value *cond, BasicBlock *t, BasicBlock *f);
    Instruction *ret(Value *value);
    Instruction *retVoid();

    // Phi ------------------------------------------------------------------
    Instruction *phi(Type *type, const std::string &name = "");

    // Conversions ------------------------------------------------------------
    Instruction *cast(Opcode op, Value *v, Type *to,
                      const std::string &name = "");

    // Calls ------------------------------------------------------------------
    Instruction *call(Function *callee, const std::vector<Value *> &args,
                      const std::string &name = "");

    // Constants ----------------------------------------------------------
    Constant *i64(int64_t v) { return module_.intConst(types().i64Ty(), v); }
    Constant *i32(int32_t v) { return module_.intConst(types().i32Ty(), v); }
    Constant *i1(bool v) { return module_.intConst(types().i1Ty(), v); }
    Constant *f64(double v)
    { return module_.fpConst(types().doubleTy(), v); }
    Constant *f32(double v)
    { return module_.fpConst(types().floatTy(), v); }

  private:
    Instruction *emit(std::unique_ptr<Instruction> inst);

    Module &module_;
    BasicBlock *block_ = nullptr;
};

} // namespace repro::ir

#endif // IR_IRBUILDER_H
