/**
 * @file
 * Parser for the textual IR syntax produced by printer.h.
 *
 * The parser accepts the same LLVM-like dialect the printer emits. It is
 * used by tests and examples to write IR fixtures directly, playing the
 * role of llvm-as in the original system.
 */
#ifndef IR_PARSER_H
#define IR_PARSER_H

#include <string>

#include "ir/function.h"
#include "support/diagnostics.h"

namespace repro::ir {

/**
 * Parse @p text into @p module. Reports problems to @p diags and
 * returns false if any error occurred.
 */
bool parseModule(const std::string &text, Module &module,
                 DiagEngine &diags);

/** Convenience wrapper that throws FatalError on parse failure. */
void parseModuleOrDie(const std::string &text, Module &module);

} // namespace repro::ir

#endif // IR_PARSER_H
