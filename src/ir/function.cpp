#include "ir/function.h"

#include <cstring>
#include <set>
#include <sstream>
#include <unordered_map>

#include "support/diagnostics.h"

namespace repro::ir {

Function::Function(Type *func_type, std::string name, Module *parent)
    : Value(ValueKind::FunctionRef, func_type, std::move(name)),
      module_(parent), funcType_(func_type)
{
    const auto &params = func_type->params();
    for (size_t i = 0; i < params.size(); ++i) {
        std::ostringstream os;
        os << "arg" << i;
        args_.emplace_back(new Argument(params[i], os.str(), this,
                                        static_cast<int>(i)));
    }
}

void
Function::dropAllReferences()
{
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb->insts())
            inst->dropOperands();
    }
}

BasicBlock *
Function::createBlock(const std::string &name)
{
    blocks_.emplace_back(new BasicBlock(name, this));
    return blocks_.back().get();
}

BasicBlock *
Function::blockByName(const std::string &name) const
{
    for (const auto &bb : blocks_) {
        if (bb->name() == name)
            return bb.get();
    }
    return nullptr;
}

int
Function::blockIndex(const BasicBlock *bb) const
{
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].get() == bb)
            return static_cast<int>(i);
    }
    return -1;
}

void
Function::eraseBlock(BasicBlock *bb)
{
    int idx = blockIndex(bb);
    reproAssert(idx >= 0, "eraseBlock: block not in function");
    blocks_.erase(blocks_.begin() + idx);
}

std::vector<Value *>
Function::renumber()
{
    std::vector<Value *> values;
    int next = 0;
    for (const auto &a : args_) {
        a->setId(next++);
        values.push_back(a.get());
    }
    std::set<Value *> const_seen;
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb->insts()) {
            inst->setId(next++);
            values.push_back(inst.get());
            for (Value *op : inst->operands()) {
                if ((op->isConstant() || op->isGlobal()) &&
                    const_seen.insert(op).second) {
                    op->setId(next++);
                    values.push_back(op);
                }
            }
        }
    }
    return values;
}

namespace {

/** FNV-1a accumulator behind Function::contentHash(). */
struct ContentHasher
{
    uint64_t h = 14695981039346656037ull;

    void
    mixByte(uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            mixByte(static_cast<uint8_t>(v & 0xff));
            v >>= 8;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(s.size());
        for (char c : s)
            mixByte(static_cast<uint8_t>(c));
    }

    /**
     * Structural type mix: kinds and shapes only, never Type
     * addresses, so functions of different modules (whose
     * TypeContexts intern separately) hash alike.
     */
    void
    mixType(const Type *t)
    {
        if (!t) {
            mix(uint64_t(0xff));
            return;
        }
        mix(static_cast<uint64_t>(t->kind()));
        switch (t->kind()) {
          case Type::Kind::Pointer:
            mixType(t->element());
            break;
          case Type::Kind::Array:
            mixType(t->element());
            mix(t->arraySize());
            break;
          case Type::Kind::Function:
            mixType(t->returnType());
            mix(t->params().size());
            for (Type *p : t->params())
                mixType(p);
            break;
          default:
            break;
        }
    }
};

} // namespace

uint64_t
Function::contentHash() const
{
    ContentHasher hasher;

    // Dense positional identities for every locally defined value and
    // block; forward references (phis) resolve because the maps are
    // built before any operand is visited.
    std::unordered_map<const Value *, uint32_t> local;
    std::unordered_map<const BasicBlock *, uint32_t> blockIdx;
    uint32_t next = 0;
    for (const auto &a : args_)
        local.emplace(a.get(), next++);
    for (const auto &bb : blocks_) {
        blockIdx.emplace(bb.get(),
                         static_cast<uint32_t>(blockIdx.size()));
        for (const auto &inst : bb->insts())
            local.emplace(inst.get(), next++);
    }

    hasher.mix(args_.size());
    for (const auto &a : args_)
        hasher.mixType(a->type());
    hasher.mixType(returnType());

    hasher.mix(blocks_.size());
    for (const auto &bb : blocks_) {
        hasher.mix(bb->size());
        for (const auto &inst : bb->insts()) {
            hasher.mix(static_cast<uint64_t>(inst->opcode()));
            hasher.mixType(inst->type());
            if (inst->is(Opcode::ICmp) || inst->is(Opcode::FCmp))
                hasher.mix(static_cast<uint64_t>(inst->cmpPred()));
            if (inst->accessType())
                hasher.mixType(inst->accessType());
            if (inst->callee())
                hasher.mix(inst->callee()->name());

            hasher.mix(inst->numOperands());
            for (const Value *op : inst->operands()) {
                auto it = local.find(op);
                if (it != local.end()) {
                    hasher.mix(uint64_t(0x10));
                    hasher.mix(it->second);
                    continue;
                }
                switch (op->kind()) {
                  case ValueKind::Constant: {
                    const auto *c = static_cast<const Constant *>(op);
                    hasher.mix(c->isFP() ? uint64_t(0xC1)
                                         : uint64_t(0xC0));
                    hasher.mixType(c->type());
                    uint64_t bits;
                    if (c->isFP()) {
                        double d = c->fpValue();
                        std::memcpy(&bits, &d, sizeof(bits));
                    } else {
                        bits = static_cast<uint64_t>(c->intValue());
                    }
                    hasher.mix(bits);
                    break;
                  }
                  case ValueKind::GlobalVariable:
                    hasher.mix(uint64_t(0x60));
                    hasher.mix(op->name());
                    break;
                  case ValueKind::FunctionRef:
                    hasher.mix(uint64_t(0xF0));
                    hasher.mix(op->name());
                    break;
                  default:
                    // A value defined in another function: no stable
                    // positional identity exists, but the edge itself
                    // must still perturb the hash.
                    hasher.mix(uint64_t(0xEE));
                    hasher.mix(op->name());
                    break;
                }
            }

            const auto &targets = inst->blockTargets();
            hasher.mix(targets.size());
            for (const BasicBlock *t : targets) {
                auto bt = blockIdx.find(t);
                hasher.mix(bt != blockIdx.end() ? bt->second
                                                : uint32_t(~0u));
            }
        }
    }
    return hasher.h;
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->size();
    return n;
}

std::string
Function::uniqueName(const std::string &prefix)
{
    std::ostringstream os;
    os << prefix << nameCounter_++;
    return os.str();
}

void
Function::addAttribute(const std::string &attr)
{
    if (!hasAttribute(attr))
        attributes_.push_back(attr);
}

bool
Function::hasAttribute(const std::string &attr) const
{
    for (const auto &a : attributes_) {
        if (a == attr)
            return true;
    }
    return false;
}

Function *
Module::createFunction(const std::string &name, Type *ret,
                       std::vector<Type *> params)
{
    Type *fty = types_.functionTy(ret, std::move(params));
    functions_.emplace_back(new Function(fty, name, this));
    return functions_.back().get();
}

void
Module::removeFunction(Function *func)
{
    for (size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].get() == func) {
            functions_.erase(functions_.begin() +
                             static_cast<ptrdiff_t>(i));
            return;
        }
    }
    reproAssert(false, "removeFunction: function not in module");
}

Function *
Module::functionByName(const std::string &name) const
{
    for (const auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

std::vector<const Constant *>
Module::internedConstants() const
{
    std::vector<const Constant *> out;
    out.reserve(intConsts_.size() + fpConsts_.size());
    for (const auto &[key, c] : intConsts_)
        out.push_back(c.get());
    for (const auto &[key, c] : fpConsts_)
        out.push_back(c.get());
    return out;
}

GlobalVariable *
Module::createGlobal(const std::string &name, Type *stored)
{
    globals_.emplace_back(
        new GlobalVariable(types_.pointerTo(stored), stored, name));
    return globals_.back().get();
}

GlobalVariable *
Module::globalByName(const std::string &name) const
{
    for (const auto &g : globals_) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

Constant *
Module::intConst(Type *type, int64_t value)
{
    auto key = std::make_pair(type, value);
    auto it = intConsts_.find(key);
    if (it != intConsts_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, value);
    Constant *out = c.get();
    intConsts_[key] = std::move(c);
    return out;
}

Constant *
Module::fpConst(Type *type, double value)
{
    auto key = std::make_pair(type, value);
    auto it = fpConsts_.find(key);
    if (it != fpConsts_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, value);
    Constant *out = c.get();
    fpConsts_[key] = std::move(c);
    return out;
}

} // namespace repro::ir
