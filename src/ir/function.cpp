#include "ir/function.h"

#include <set>
#include <sstream>

#include "support/diagnostics.h"

namespace repro::ir {

Function::Function(Type *func_type, std::string name, Module *parent)
    : Value(ValueKind::FunctionRef, func_type, std::move(name)),
      module_(parent), funcType_(func_type)
{
    const auto &params = func_type->params();
    for (size_t i = 0; i < params.size(); ++i) {
        std::ostringstream os;
        os << "arg" << i;
        args_.emplace_back(new Argument(params[i], os.str(), this,
                                        static_cast<int>(i)));
    }
}

void
Function::dropAllReferences()
{
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb->insts())
            inst->dropOperands();
    }
}

BasicBlock *
Function::createBlock(const std::string &name)
{
    blocks_.emplace_back(new BasicBlock(name, this));
    return blocks_.back().get();
}

BasicBlock *
Function::blockByName(const std::string &name) const
{
    for (const auto &bb : blocks_) {
        if (bb->name() == name)
            return bb.get();
    }
    return nullptr;
}

int
Function::blockIndex(const BasicBlock *bb) const
{
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].get() == bb)
            return static_cast<int>(i);
    }
    return -1;
}

void
Function::eraseBlock(BasicBlock *bb)
{
    int idx = blockIndex(bb);
    reproAssert(idx >= 0, "eraseBlock: block not in function");
    blocks_.erase(blocks_.begin() + idx);
}

std::vector<Value *>
Function::renumber()
{
    std::vector<Value *> values;
    int next = 0;
    for (const auto &a : args_) {
        a->setId(next++);
        values.push_back(a.get());
    }
    std::set<Value *> const_seen;
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb->insts()) {
            inst->setId(next++);
            values.push_back(inst.get());
            for (Value *op : inst->operands()) {
                if ((op->isConstant() || op->isGlobal()) &&
                    const_seen.insert(op).second) {
                    op->setId(next++);
                    values.push_back(op);
                }
            }
        }
    }
    return values;
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->size();
    return n;
}

std::string
Function::uniqueName(const std::string &prefix)
{
    std::ostringstream os;
    os << prefix << nameCounter_++;
    return os.str();
}

Function *
Module::createFunction(const std::string &name, Type *ret,
                       std::vector<Type *> params)
{
    Type *fty = types_.functionTy(ret, std::move(params));
    functions_.emplace_back(new Function(fty, name, this));
    return functions_.back().get();
}

void
Module::removeFunction(Function *func)
{
    for (size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].get() == func) {
            functions_.erase(functions_.begin() +
                             static_cast<ptrdiff_t>(i));
            return;
        }
    }
    reproAssert(false, "removeFunction: function not in module");
}

Function *
Module::functionByName(const std::string &name) const
{
    for (const auto &f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

std::vector<const Constant *>
Module::internedConstants() const
{
    std::vector<const Constant *> out;
    out.reserve(intConsts_.size() + fpConsts_.size());
    for (const auto &[key, c] : intConsts_)
        out.push_back(c.get());
    for (const auto &[key, c] : fpConsts_)
        out.push_back(c.get());
    return out;
}

GlobalVariable *
Module::createGlobal(const std::string &name, Type *stored)
{
    globals_.emplace_back(
        new GlobalVariable(types_.pointerTo(stored), stored, name));
    return globals_.back().get();
}

GlobalVariable *
Module::globalByName(const std::string &name) const
{
    for (const auto &g : globals_) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

Constant *
Module::intConst(Type *type, int64_t value)
{
    auto key = std::make_pair(type, value);
    auto it = intConsts_.find(key);
    if (it != intConsts_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, value);
    Constant *out = c.get();
    intConsts_[key] = std::move(c);
    return out;
}

Constant *
Module::fpConst(Type *type, double value)
{
    auto key = std::make_pair(type, value);
    auto it = fpConsts_.find(key);
    if (it != fpConsts_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, value);
    Constant *out = c.get();
    fpConsts_[key] = std::move(c);
    return out;
}

} // namespace repro::ir
