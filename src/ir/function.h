/**
 * @file
 * Function and Module containers of the SSA IR.
 */
#ifndef IR_FUNCTION_H
#define IR_FUNCTION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"

namespace repro::ir {

class Module;

/** A function: arguments plus a CFG of basic blocks. */
class Function : public Value
{
  public:
    Function(Type *func_type, std::string name, Module *parent);
    ~Function() override { dropAllReferences(); }

    /**
     * Drop every operand edge of every instruction so the function can
     * be destroyed regardless of cross-block or cross-object use
     * edges.
     */
    void dropAllReferences();

    Module *parentModule() const { return module_; }
    Type *functionType() const { return funcType_; }
    Type *returnType() const { return funcType_->returnType(); }

    bool isDeclaration() const { return blocks_.empty(); }

    // Arguments ----------------------------------------------------------
    size_t numArgs() const { return args_.size(); }
    Argument *arg(size_t i) const { return args_[i].get(); }
    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }

    // Blocks -------------------------------------------------------------
    BasicBlock *createBlock(const std::string &name);
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    BasicBlock *entry() const
    {
        return blocks_.empty() ? nullptr : blocks_.front().get();
    }
    BasicBlock *blockByName(const std::string &name) const;
    int blockIndex(const BasicBlock *bb) const;

    /** Remove an unreachable block (must have no live instructions). */
    void eraseBlock(BasicBlock *bb);

    /**
     * Assign dense ids to arguments and instructions and return every
     * value in the function in a stable order. Constants used as
     * operands are included once each.
     */
    std::vector<Value *> renumber();

    /** Total number of instructions across all blocks. */
    size_t instructionCount() const;

    /**
     * Stable structural hash of the function body.
     *
     * A layout-order walk over blocks, instructions and operands:
     * instructions and blocks are identified by their position, local
     * values (arguments, instruction results) by dense indices,
     * constants by type and bit pattern, globals and callees by name.
     * SSA value names, heap addresses and the uniqueName() counter do
     * not participate, so two structurally identical functions — the
     * same function recompiled, or the same body under another name in
     * another module — hash equal, while any edit to an instruction,
     * operand, type, branch target or embedded constant changes the
     * hash. This is the content fingerprint the cross-request
     * MatchCache and the service layer key on.
     */
    uint64_t contentHash() const;

    std::string handle() const override { return "@" + name(); }

    /** Pick a fresh SSA name with the given prefix. */
    std::string uniqueName(const std::string &prefix);

    // Attributes ---------------------------------------------------------
    //
    // Free-form string markers attached to a function, threaded from
    // frontend annotations (`__protect` -> "protect") to the transform
    // layer. Attributes are metadata about how a function should be
    // *treated*, not part of its body: contentHash() deliberately
    // ignores them, so the MatchCache keys stay attribute-independent.

    /** Attach @p attr (duplicates are ignored; order is preserved). */
    void addAttribute(const std::string &attr);
    bool hasAttribute(const std::string &attr) const;
    const std::vector<std::string> &attributes() const
    {
        return attributes_;
    }

  private:
    Module *module_;
    Type *funcType_;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<std::string> attributes_;
    int nameCounter_ = 0;
};

/** Top-level container: functions, globals and interned constants. */
class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /**
     * Client-facing module identity (empty by default). The service
     * layer keys sessions by it and matchFingerprint embeds it, so two
     * clients' same-named functions never collide in cross-module
     * stores.
     */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    ~Module()
    {
        // Sever all operand edges before members are destroyed so the
        // destruction order of functions, globals and interned
        // constants cannot matter.
        for (auto &f : functions_)
            f->dropAllReferences();
        functions_.clear();
    }

    TypeContext &types() { return types_; }

    Function *createFunction(const std::string &name, Type *ret,
                             std::vector<Type *> params);

    /**
     * Remove @p func from the module and destroy it (rollback path of
     * a failed rewrite commit). The function must have no remaining
     * call sites; its own operand edges are dropped first so interned
     * constants and globals it references survive intact.
     */
    void removeFunction(Function *func);

    Function *functionByName(const std::string &name) const;
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    GlobalVariable *createGlobal(const std::string &name, Type *stored);
    GlobalVariable *globalByName(const std::string &name) const;
    const std::vector<std::unique_ptr<GlobalVariable>> &globals() const
    {
        return globals_;
    }

    /** Interned integer constant. */
    Constant *intConst(Type *type, int64_t value);
    /** Interned floating point constant. */
    Constant *fpConst(Type *type, double value);

    /**
     * Every constant interned so far. Rewrite-plan validation builds
     * its whitelist of safely-referenceable values from this: a
     * pointer recorded in a plan may dangle, so liveness must be
     * decided by set membership alone, never by dereferencing.
     */
    std::vector<const Constant *> internedConstants() const;

  private:
    TypeContext types_;
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<std::unique_ptr<GlobalVariable>> globals_;
    std::map<std::pair<Type *, int64_t>, std::unique_ptr<Constant>>
        intConsts_;
    std::map<std::pair<Type *, double>, std::unique_ptr<Constant>>
        fpConsts_;
};

} // namespace repro::ir

#endif // IR_FUNCTION_H
