#include "ir/irbuilder.h"

#include "support/diagnostics.h"

namespace repro::ir {

Instruction *
IRBuilder::emit(std::unique_ptr<Instruction> inst)
{
    reproAssert(block_ != nullptr, "IRBuilder: no insertion point");
    return block_->append(std::move(inst));
}

Instruction *
IRBuilder::binary(Opcode op, Value *lhs, Value *rhs,
                  const std::string &name)
{
    reproAssert(lhs->type() == rhs->type(),
                "binary: operand type mismatch");
    auto inst = std::make_unique<Instruction>(op, lhs->type(), name);
    inst->addOperand(lhs);
    inst->addOperand(rhs);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::alloca_(Type *type, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Alloca, types().pointerTo(type), name);
    inst->setAccessType(type);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::load(Value *ptr, const std::string &name)
{
    reproAssert(ptr->type()->isPointer(), "load: operand not a pointer");
    auto inst = std::make_unique<Instruction>(
        Opcode::Load, ptr->type()->element(), name);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::store(Value *value, Value *ptr)
{
    reproAssert(ptr->type()->isPointer(), "store: operand not a pointer");
    reproAssert(ptr->type()->element() == value->type(),
                "store: type mismatch");
    auto inst = std::make_unique<Instruction>(
        Opcode::Store, types().voidTy(), "");
    inst->addOperand(value);
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::gep(Value *base, const std::vector<Value *> &indices,
               const std::string &name)
{
    reproAssert(base->type()->isPointer(), "gep: base not a pointer");
    reproAssert(!indices.empty(), "gep: no indices");
    // The first index steps over whole pointees; each further index
    // steps into an array dimension, as in LLVM.
    Type *cur = base->type()->element();
    for (size_t i = 1; i < indices.size(); ++i) {
        reproAssert(cur->isArray(), "gep: too many indices");
        cur = cur->element();
    }
    auto inst = std::make_unique<Instruction>(
        Opcode::GEP, types().pointerTo(cur), name);
    inst->setAccessType(base->type()->element());
    inst->addOperand(base);
    for (Value *idx : indices)
        inst->addOperand(idx);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::icmp(CmpPred pred, Value *l, Value *r, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::ICmp, types().i1Ty(), name);
    inst->setCmpPred(pred);
    inst->addOperand(l);
    inst->addOperand(r);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::fcmp(CmpPred pred, Value *l, Value *r, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::FCmp, types().i1Ty(), name);
    inst->setCmpPred(pred);
    inst->addOperand(l);
    inst->addOperand(r);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::select(Value *cond, Value *t, Value *f, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Select, t->type(), name);
    inst->addOperand(cond);
    inst->addOperand(t);
    inst->addOperand(f);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::br(BasicBlock *dest)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Br, types().voidTy(), "");
    inst->addBlockTarget(dest);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::condBr(Value *cond, BasicBlock *t, BasicBlock *f)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Br, types().voidTy(), "");
    inst->addOperand(cond);
    inst->addBlockTarget(t);
    inst->addBlockTarget(f);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::ret(Value *value)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Ret, types().voidTy(), "");
    inst->addOperand(value);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::retVoid()
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Ret, types().voidTy(), "");
    return emit(std::move(inst));
}

Instruction *
IRBuilder::phi(Type *type, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(Opcode::Phi, type, name);
    reproAssert(block_ != nullptr, "IRBuilder: no insertion point");
    // Phis must stay grouped at the start of the block.
    size_t pos = 0;
    while (pos < block_->size() &&
           block_->insts()[pos]->is(Opcode::Phi)) {
        ++pos;
    }
    return block_->insert(pos, std::move(inst));
}

Instruction *
IRBuilder::cast(Opcode op, Value *v, Type *to, const std::string &name)
{
    auto inst = std::make_unique<Instruction>(op, to, name);
    inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::call(Function *callee, const std::vector<Value *> &args,
                const std::string &name)
{
    auto inst = std::make_unique<Instruction>(
        Opcode::Call, callee->returnType(), name);
    inst->setCallee(callee);
    for (Value *a : args)
        inst->addOperand(a);
    return emit(std::move(inst));
}

} // namespace repro::ir
