/**
 * @file
 * Type system for the SSA intermediate representation.
 *
 * Types are interned: structurally identical types are represented by the
 * same Type object, owned by a TypeContext. Pointer equality is therefore
 * type equality, exactly as in LLVM.
 */
#ifndef IR_TYPE_H
#define IR_TYPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace repro::ir {

class TypeContext;

/** A first-class IR type: void, integer, floating point, pointer, array
 *  or function. */
class Type
{
  public:
    enum class Kind
    {
        Void,
        I1,
        I32,
        I64,
        Float,
        Double,
        Pointer,
        Array,
        Function,
    };

    Kind kind() const { return kind_; }

    bool isVoid() const { return kind_ == Kind::Void; }
    bool isI1() const { return kind_ == Kind::I1; }
    bool
    isInteger() const
    {
        return kind_ == Kind::I1 || kind_ == Kind::I32 ||
               kind_ == Kind::I64;
    }
    bool
    isFloatingPoint() const
    {
        return kind_ == Kind::Float || kind_ == Kind::Double;
    }
    bool isPointer() const { return kind_ == Kind::Pointer; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isFunction() const { return kind_ == Kind::Function; }

    /** Element type for pointers and arrays; null otherwise. */
    Type *element() const { return element_; }

    /** Number of elements for array types. */
    uint64_t arraySize() const { return arraySize_; }

    /** Return type for function types. */
    Type *returnType() const { return element_; }

    /** Parameter types for function types. */
    const std::vector<Type *> &params() const { return params_; }

    /** Size in bytes when stored in interpreter memory. */
    uint64_t sizeInBytes() const;

    /** Render in LLVM-like syntax, e.g. "double*", "[8 x i32]". */
    std::string str() const;

  private:
    friend class TypeContext;
    Type(Kind kind, Type *element, uint64_t array_size,
         std::vector<Type *> params)
        : kind_(kind), element_(element), arraySize_(array_size),
          params_(std::move(params))
    {}

    Kind kind_;
    Type *element_ = nullptr;
    uint64_t arraySize_ = 0;
    std::vector<Type *> params_;
};

/**
 * Owns and interns all Type objects of one Module.
 */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    Type *voidTy() { return voidTy_; }
    Type *i1Ty() { return i1Ty_; }
    Type *i32Ty() { return i32Ty_; }
    Type *i64Ty() { return i64Ty_; }
    Type *floatTy() { return floatTy_; }
    Type *doubleTy() { return doubleTy_; }

    Type *pointerTo(Type *pointee);
    Type *arrayOf(Type *element, uint64_t count);
    Type *functionTy(Type *ret, std::vector<Type *> params);

    /** Parse a type from its str() rendering; null on failure. */
    Type *parse(const std::string &text);

  private:
    Type *make(Type::Kind kind, Type *element, uint64_t array_size,
               std::vector<Type *> params);

    std::vector<std::unique_ptr<Type>> all_;
    std::map<Type *, Type *> pointerCache_;
    std::map<std::pair<Type *, uint64_t>, Type *> arrayCache_;
    std::map<std::pair<Type *, std::vector<Type *>>, Type *> funcCache_;

    Type *voidTy_;
    Type *i1Ty_;
    Type *i32Ty_;
    Type *i64Ty_;
    Type *floatTy_;
    Type *doubleTy_;
};

} // namespace repro::ir

#endif // IR_TYPE_H
