/**
 * @file
 * Native implementations of the math builtins the MiniC frontend
 * declares (sqrt, fabs, exp, ...).
 */
#ifndef INTERP_BUILTINS_H
#define INTERP_BUILTINS_H

#include "interp/interpreter.h"

namespace repro::interp {

/** Register sqrt/fabs/exp/log/sin/cos/floor/pow/fmax/fmin. */
void registerMathBuiltins(Interpreter &interp);

} // namespace repro::interp

#endif // INTERP_BUILTINS_H
