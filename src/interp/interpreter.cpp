#include "interp/interpreter.h"

#include <unordered_map>

#include "interp/compiled.h"
#include "ir/printer.h"

namespace repro::interp {

using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

uint64_t
Profile::countIn(const std::set<const ir::Instruction *> &set) const
{
    uint64_t total = 0;
    for (const auto &[inst, count] : counts) {
        if (set.count(inst))
            total += count;
    }
    return total;
}

void
Interpreter::registerNative(const std::string &name, NativeFn fn)
{
    natives_[name] = std::move(fn);
}

std::vector<const Value *>
faultValueList(const ir::Function &func)
{
    std::vector<const Value *> out;
    for (size_t i = 0; i < func.numArgs(); ++i)
        out.push_back(func.arg(i));
    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb->insts()) {
            if (!inst->type()->isVoid())
                out.push_back(inst.get());
        }
    }
    return out;
}

void
flipFaultBits(Type::Kind kind, RuntimeValue &v, uint32_t bit)
{
    switch (kind) {
      case Type::Kind::I1:
        v.i ^= 1;
        break;
      case Type::Kind::I32:
        // Both engines keep I32 lanes sign-extended in the full
        // 64-bit i without re-truncating after arithmetic, so the
        // flip targets the low 32 bits but must not truncate.
        v.i = static_cast<int64_t>(static_cast<uint64_t>(v.i) ^
                                   (1ull << (bit % 32)));
        break;
      case Type::Kind::I64:
      case Type::Kind::Pointer:
        v.i = static_cast<int64_t>(static_cast<uint64_t>(v.i) ^
                                   (1ull << (bit % 64)));
        break;
      case Type::Kind::Float: {
        // Float values are stored as already-rounded doubles; flip in
        // the 32-bit representation and widen back, as a fault in a
        // hardware float register would read.
        float f = static_cast<float>(v.f);
        uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        bits ^= 1u << (bit % 32);
        std::memcpy(&f, &bits, sizeof(bits));
        v.f = static_cast<double>(f);
        break;
      }
      case Type::Kind::Double: {
        uint64_t bits;
        std::memcpy(&bits, &v.f, sizeof(bits));
        bits ^= 1ull << (bit % 64);
        std::memcpy(&v.f, &bits, sizeof(bits));
        break;
      }
      default:
        break;
    }
    // A flip into a not-yet-defined slot gives it the kind its IR
    // type implies; SSA dominance means such a slot is overwritten
    // before any legal read, identically in both engines.
    if (v.kind == RuntimeValue::Kind::Void) {
        v.kind = (kind == Type::Kind::Float ||
                  kind == Type::Kind::Double)
                     ? RuntimeValue::Kind::FP
                     : RuntimeValue::Kind::Int;
    }
}

RuntimeValue
Interpreter::evalConstant(const ir::Constant *c) const
{
    if (c->isFP()) {
        return RuntimeValue::makeFP(
            roundIfFloat(c->type(), c->fpValue()));
    }
    return RuntimeValue::makeInt(c->intValue());
}

// Out of line so CompiledFunction is complete where the cache's
// unique_ptrs are constructed and destroyed.
Interpreter::Interpreter(ir::Module &module, Memory &mem)
    : module_(module), mem_(mem)
{}

Interpreter::~Interpreter() = default;

void
Interpreter::materializeGlobals()
{
    // Module order, so both engines lay out globals identically.
    for (const auto &g : module_.globals()) {
        if (!globalAddrs_.count(g.get())) {
            globalAddrs_[g.get()] =
                mem_.allocate(g->storedType()->sizeInBytes());
        }
    }
}

RuntimeValue
Interpreter::run(ir::Function *func,
                 const std::vector<RuntimeValue> &args)
{
    engine_ = Engine::Compiled;
    steps_ = 0;
    faultFired_ = false;
    faultCounter_ = 0;
    materializeGlobals();
    // Flush even when execution throws (step limit, memory trap), so
    // partial profiles match what the reference engine accumulates.
    try {
        RuntimeValue result = CompiledExec::run(*this, func, args, 0);
        if (profiling_)
            flushProfileBuffers();
        return result;
    } catch (...) {
        if (profiling_)
            flushProfileBuffers();
        throw;
    }
}

RuntimeValue
Interpreter::runReference(ir::Function *func,
                          const std::vector<RuntimeValue> &args)
{
    engine_ = Engine::Reference;
    steps_ = 0;
    faultFired_ = false;
    faultCounter_ = 0;
    materializeGlobals();
    return runFunction(func, args, 0);
}

RuntimeValue
Interpreter::call(ir::Function *func,
                  const std::vector<RuntimeValue> &args)
{
    if (engine_ == Engine::Reference)
        return runFunction(func, args, 1);
    return CompiledExec::run(*this, func, args, 1);
}

const CompiledFunction &
Interpreter::compiledFor(ir::Function *func)
{
    auto &slot = compiled_[func];
    if (!slot) {
        // Last line of defense: bytecode lowering assumes well-formed
        // SSA (operand registers resolve by dominance), so a malformed
        // function must fail loudly here, not execute garbage.
        if (verify_ == ir::VerifyMode::Boundaries)
            ir::verifyOrThrow(func, "pre-bytecode");
        slot = std::make_unique<CompiledFunction>(*func);
    }
    return *slot;
}

uint64_t *
Interpreter::profileBufferFor(const CompiledFunction &cf)
{
    auto &buf = profileBuffers_[&cf];
    if (buf.empty())
        buf.resize(cf.numProfiled(), 0);
    return buf.data();
}

void
Interpreter::flushProfileBuffers()
{
    for (auto &[cf, buf] : profileBuffers_) {
        const auto &insts = cf->profInstructions();
        for (size_t i = 0; i < buf.size(); ++i) {
            if (buf[i] != 0) {
                profile_.counts[insts[i]] += buf[i];
                buf[i] = 0;
            }
        }
    }
}

void
Interpreter::clearProfile()
{
    profile_ = Profile();
    profileBuffers_.clear();
}

namespace {

/** Typed memory access dispatch. */
RuntimeValue
loadTyped(Memory &mem, Type *type, uint64_t addr)
{
    switch (type->kind()) {
      case Type::Kind::I1:
        return RuntimeValue::makeInt(mem.load<uint8_t>(addr) != 0);
      case Type::Kind::I32:
        return RuntimeValue::makeInt(mem.load<int32_t>(addr));
      case Type::Kind::I64:
        return RuntimeValue::makeInt(mem.load<int64_t>(addr));
      case Type::Kind::Float:
        return RuntimeValue::makeFP(mem.load<float>(addr));
      case Type::Kind::Double:
        return RuntimeValue::makeFP(mem.load<double>(addr));
      case Type::Kind::Pointer:
        return RuntimeValue::makeInt(
            static_cast<int64_t>(mem.load<uint64_t>(addr)));
      default:
        throw repro::FatalError("load of unsupported type " +
                                type->str());
    }
}

void
storeTyped(Memory &mem, Type *type, uint64_t addr, RuntimeValue v)
{
    switch (type->kind()) {
      case Type::Kind::I1:
        mem.store<uint8_t>(addr, v.i != 0);
        break;
      case Type::Kind::I32:
        mem.store<int32_t>(addr, static_cast<int32_t>(v.i));
        break;
      case Type::Kind::I64:
        mem.store<int64_t>(addr, v.i);
        break;
      case Type::Kind::Float:
        mem.store<float>(addr, static_cast<float>(v.f));
        break;
      case Type::Kind::Double:
        mem.store<double>(addr, v.f);
        break;
      case Type::Kind::Pointer:
        mem.store<uint64_t>(addr, static_cast<uint64_t>(v.i));
        break;
      default:
        throw repro::FatalError("store of unsupported type " +
                                type->str());
    }
}

} // namespace

void
Interpreter::injectFaultReference(
    const ir::Function *func,
    std::unordered_map<const Value *, RuntimeValue> &env)
{
    faultFired_ = true;
    std::vector<const Value *> slots = faultValueList(*func);
    if (slots.empty())
        return;
    const Value *target = slots[fault_->valueIndex % slots.size()];
    flipFaultBits(target->type()->kind(), env[target], fault_->bit);
}

RuntimeValue
Interpreter::runFunction(ir::Function *func,
                         const std::vector<RuntimeValue> &args, int depth)
{
    if (depth > 64)
        throw FatalError("interpreter: call depth exceeded");
    if (func->isDeclaration()) {
        if (func->name() == kHardenTrapFunction) {
            throw FaultDetected(
                "hardening check tripped in a protected function");
        }
        auto it = natives_.find(func->name());
        if (it == natives_.end()) {
            throw FatalError("interpreter: no native handler for @" +
                             func->name());
        }
        return it->second(args, *this);
    }
    reproAssert(args.size() == func->numArgs(),
                "interpreter: wrong argument count");

    std::unordered_map<const Value *, RuntimeValue> env;
    for (size_t i = 0; i < args.size(); ++i)
        env[func->arg(i)] = args[i];

    auto eval = [&](Value *v) -> RuntimeValue {
        if (v->isConstant())
            return evalConstant(static_cast<ir::Constant *>(v));
        if (v->isGlobal()) {
            auto *g = static_cast<ir::GlobalVariable *>(v);
            return RuntimeValue::makeInt(
                static_cast<int64_t>(globalAddrs_.at(g)));
        }
        auto it = env.find(v);
        if (it == env.end()) {
            throw FatalError("interpreter: use of undefined value " +
                             v->handle());
        }
        return it->second;
    };

    ir::BasicBlock *block = func->entry();
    ir::BasicBlock *prev = nullptr;
    size_t index = 0;
    // Fault charges follow the step accounting of this frame exactly;
    // the injection boundary is before a non-phi instruction, where
    // the bytecode engine's cumulative charge provably agrees.
    const bool faultHere = fault_ && func->name() == fault_->function;

    while (true) {
        Instruction *inst = block->insts()[index].get();
        ++index;
        if (faultHere) {
            if (!faultFired_ && !inst->is(Opcode::Phi) &&
                faultCounter_ >= fault_->step) {
                injectFaultReference(func, env);
            }
            ++faultCounter_;
        }
        if (++steps_ > stepLimit_)
            throw FatalError("interpreter: step limit exceeded");
        if (profiling_) {
            ++profile_.counts[inst];
            ++profile_.totalSteps;
        }

        switch (inst->opcode()) {
          case Opcode::Phi: {
            // Evaluate the whole phi group against the predecessor
            // atomically. Every member costs one dynamic instruction:
            // the generic accounting above charged the first phi, so
            // charge the rest here (skipping them skews the per-loop
            // counts Figures 16-19 report).
            std::vector<std::pair<Instruction *, RuntimeValue>> vals;
            size_t i = index - 1;
            while (i < block->size() &&
                   block->insts()[i]->is(Opcode::Phi)) {
                Instruction *phi = block->insts()[i].get();
                if (i != index - 1) {
                    if (faultHere)
                        ++faultCounter_;
                    if (++steps_ > stepLimit_) {
                        throw FatalError(
                            "interpreter: step limit exceeded");
                    }
                    if (profiling_) {
                        ++profile_.counts[phi];
                        ++profile_.totalSteps;
                    }
                }
                Value *in = phi->incomingFor(prev);
                if (!in) {
                    throw FatalError(
                        "interpreter: phi without incoming for pred");
                }
                vals.emplace_back(phi, eval(in));
                ++i;
            }
            for (auto &[phi, v] : vals)
                env[phi] = v;
            index = i;
            break;
          }
          case Opcode::Add:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i +
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::Sub:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i -
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::Mul:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i *
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::SDiv: {
            int64_t d = eval(inst->operand(1)).i;
            if (d == 0)
                throw FatalError("interpreter: division by zero");
            env[inst] =
                RuntimeValue::makeInt(eval(inst->operand(0)).i / d);
            break;
          }
          case Opcode::SRem: {
            int64_t d = eval(inst->operand(1)).i;
            if (d == 0)
                throw FatalError("interpreter: remainder by zero");
            env[inst] =
                RuntimeValue::makeInt(eval(inst->operand(0)).i % d);
            break;
          }
          case Opcode::And:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i &
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::Or:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i |
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::Xor:
            env[inst] = RuntimeValue::makeInt(eval(inst->operand(0)).i ^
                                              eval(inst->operand(1)).i);
            break;
          case Opcode::Shl:
            env[inst] = RuntimeValue::makeInt(
                eval(inst->operand(0)).i
                << (eval(inst->operand(1)).i & 63));
            break;
          case Opcode::AShr:
            env[inst] = RuntimeValue::makeInt(
                eval(inst->operand(0)).i >>
                (eval(inst->operand(1)).i & 63));
            break;
          case Opcode::FAdd:
            env[inst] = RuntimeValue::makeFP(roundIfFloat(
                inst->type(), eval(inst->operand(0)).f +
                                  eval(inst->operand(1)).f));
            break;
          case Opcode::FSub:
            env[inst] = RuntimeValue::makeFP(roundIfFloat(
                inst->type(), eval(inst->operand(0)).f -
                                  eval(inst->operand(1)).f));
            break;
          case Opcode::FMul:
            env[inst] = RuntimeValue::makeFP(roundIfFloat(
                inst->type(), eval(inst->operand(0)).f *
                                  eval(inst->operand(1)).f));
            break;
          case Opcode::FDiv:
            env[inst] = RuntimeValue::makeFP(roundIfFloat(
                inst->type(), eval(inst->operand(0)).f /
                                  eval(inst->operand(1)).f));
            break;
          case Opcode::Alloca: {
            uint64_t addr =
                mem_.allocate(inst->accessType()->sizeInBytes());
            env[inst] =
                RuntimeValue::makeInt(static_cast<int64_t>(addr));
            break;
          }
          case Opcode::Load: {
            uint64_t addr = static_cast<uint64_t>(
                eval(inst->operand(0)).i);
            env[inst] = loadTyped(mem_, inst->type(), addr);
            break;
          }
          case Opcode::Store: {
            uint64_t addr = static_cast<uint64_t>(
                eval(inst->operand(1)).i);
            storeTyped(mem_, inst->operand(0)->type(), addr,
                       eval(inst->operand(0)));
            break;
          }
          case Opcode::GEP: {
            uint64_t addr =
                static_cast<uint64_t>(eval(inst->operand(0)).i);
            Type *cur = inst->accessType();
            addr += static_cast<uint64_t>(eval(inst->operand(1)).i) *
                    cur->sizeInBytes();
            for (size_t k = 2; k < inst->numOperands(); ++k) {
                cur = cur->element();
                addr +=
                    static_cast<uint64_t>(eval(inst->operand(k)).i) *
                    cur->sizeInBytes();
            }
            env[inst] =
                RuntimeValue::makeInt(static_cast<int64_t>(addr));
            break;
          }
          case Opcode::ICmp: {
            int64_t a = eval(inst->operand(0)).i;
            int64_t b = eval(inst->operand(1)).i;
            bool r = false;
            switch (inst->cmpPred()) {
              case ir::CmpPred::EQ: r = a == b; break;
              case ir::CmpPred::NE: r = a != b; break;
              case ir::CmpPred::LT: r = a < b; break;
              case ir::CmpPred::LE: r = a <= b; break;
              case ir::CmpPred::GT: r = a > b; break;
              case ir::CmpPred::GE: r = a >= b; break;
            }
            env[inst] = RuntimeValue::makeInt(r);
            break;
          }
          case Opcode::FCmp: {
            double a = eval(inst->operand(0)).f;
            double b = eval(inst->operand(1)).f;
            bool r = false;
            switch (inst->cmpPred()) {
              case ir::CmpPred::EQ: r = a == b; break;
              case ir::CmpPred::NE: r = a != b; break;
              case ir::CmpPred::LT: r = a < b; break;
              case ir::CmpPred::LE: r = a <= b; break;
              case ir::CmpPred::GT: r = a > b; break;
              case ir::CmpPred::GE: r = a >= b; break;
            }
            env[inst] = RuntimeValue::makeInt(r);
            break;
          }
          case Opcode::Select:
            env[inst] = eval(inst->operand(0)).i != 0
                            ? eval(inst->operand(1))
                            : eval(inst->operand(2));
            break;
          case Opcode::Br: {
            ir::BasicBlock *next;
            if (inst->isConditionalBranch()) {
                next = eval(inst->operand(0)).i != 0
                           ? inst->blockTargets()[0]
                           : inst->blockTargets()[1];
            } else {
                next = inst->blockTargets()[0];
            }
            prev = block;
            block = next;
            index = 0;
            break;
          }
          case Opcode::Ret:
            if (inst->numOperands() == 0)
                return RuntimeValue::makeVoid();
            return eval(inst->operand(0));
          case Opcode::SExt:
          case Opcode::ZExt:
          case Opcode::Trunc: {
            int64_t v = eval(inst->operand(0)).i;
            if (inst->opcode() == Opcode::Trunc &&
                inst->type()->kind() == Type::Kind::I32) {
                v = static_cast<int32_t>(v);
            }
            if (inst->opcode() == Opcode::Trunc &&
                inst->type()->kind() == Type::Kind::I1) {
                v = v & 1;
            }
            env[inst] = RuntimeValue::makeInt(v);
            break;
          }
          case Opcode::SIToFP:
            env[inst] = RuntimeValue::makeFP(roundIfFloat(
                inst->type(),
                static_cast<double>(eval(inst->operand(0)).i)));
            break;
          case Opcode::FPToSI:
            env[inst] = RuntimeValue::makeInt(
                static_cast<int64_t>(eval(inst->operand(0)).f));
            break;
          case Opcode::FPExt:
            env[inst] = eval(inst->operand(0));
            break;
          case Opcode::FPTrunc:
            env[inst] = RuntimeValue::makeFP(static_cast<float>(
                eval(inst->operand(0)).f));
            break;
          case Opcode::Call: {
            std::vector<RuntimeValue> callArgs;
            callArgs.reserve(inst->numOperands());
            for (size_t k = 0; k < inst->numOperands(); ++k)
                callArgs.push_back(eval(inst->operand(k)));
            RuntimeValue r =
                runFunction(inst->callee(), callArgs, depth + 1);
            if (!inst->type()->isVoid())
                env[inst] = r;
            break;
          }
        }
    }
}

} // namespace repro::interp
