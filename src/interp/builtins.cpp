#include "interp/builtins.h"

#include <cmath>

namespace repro::interp {

void
registerMathBuiltins(Interpreter &interp)
{
    auto unary = [&](const char *name, double (*fn)(double)) {
        interp.registerNative(
            name, [fn](const std::vector<RuntimeValue> &args,
                       Interpreter &) {
                return RuntimeValue::makeFP(fn(args[0].f));
            });
    };
    unary("sqrt", std::sqrt);
    unary("fabs", std::fabs);
    unary("exp", std::exp);
    unary("log", std::log);
    unary("sin", std::sin);
    unary("cos", std::cos);
    unary("floor", std::floor);

    auto binary = [&](const char *name, double (*fn)(double, double)) {
        interp.registerNative(
            name, [fn](const std::vector<RuntimeValue> &args,
                       Interpreter &) {
                return RuntimeValue::makeFP(fn(args[0].f, args[1].f));
            });
    };
    binary("pow", std::pow);
    binary("fmax", std::fmax);
    binary("fmin", std::fmin);
}

} // namespace repro::interp
