/**
 * @file
 * Flat byte-addressable memory for the IR interpreter.
 *
 * Pointers in interpreted programs are 64-bit offsets into this heap.
 * Address 0 is kept invalid so null-pointer bugs trap.
 *
 * All bounds arithmetic is overflow-safe: interpreted programs control
 * the addresses they dereference, so a wild pointer near 2^64 must not
 * wrap `addr + size` past the heap end and slip through the range
 * check (that is exactly the bug class hardware accelerators inherit
 * when a transformed program hands them a bad extent).
 */
#ifndef INTERP_MEMORY_H
#define INTERP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <new>
#include <stdexcept>
#include <vector>

#include "support/diagnostics.h"

namespace repro::interp {

/** Interpreter heap. */
class Memory
{
  public:
    /** Lowest valid address; [0, kBase) traps as a null-pointer zone. */
    static constexpr uint64_t kBase = 64;

    Memory() : bytes_(kBase, 0) {}

    /**
     * Allocate @p size bytes, 8-byte aligned; returns the address.
     *
     * Zero-sized allocations still advance the heap so every call
     * returns a distinct address that never aliases a later
     * allocation. Sizes that would overflow the address computation
     * (or exceed the address-space cap) throw FatalError instead of
     * wrapping around.
     */
    uint64_t
    allocate(uint64_t size)
    {
        reproAssert(rawBorrows_ == 0,
                    "Memory::allocate while a RawSpan is borrowed: "
                    "the heap may reallocate and invalidate it");
        uint64_t addr = (bytes_.size() + 7) & ~uint64_t(7);
        uint64_t bytes = size == 0 ? 1 : size;
        if (bytes > kMaxBytes - addr) {
            throw FatalError(
                "interpreter heap allocation overflows address space");
        }
        try {
            bytes_.resize(addr + bytes, 0);
        } catch (const std::bad_alloc &) {
            throw FatalError("interpreter heap exhausted");
        } catch (const std::length_error &) {
            throw FatalError("interpreter heap exhausted");
        }
        ++generation_;
        return addr;
    }

    uint64_t size() const { return bytes_.size(); }

    /** Bumped on every allocation; stale raw() pointers are those
     *  taken at an older generation. */
    uint64_t generation() const { return generation_; }

    template <typename T>
    T
    load(uint64_t addr) const
    {
        checkRange(addr, sizeof(T));
        T out;
        std::memcpy(&out, bytes_.data() + addr, sizeof(T));
        return out;
    }

    template <typename T>
    void
    store(uint64_t addr, T value)
    {
        checkRange(addr, sizeof(T));
        std::memcpy(bytes_.data() + addr, &value, sizeof(T));
    }

    /**
     * Direct pointer into the heap for bulk native operations.
     *
     * WARNING: the pointer is invalidated by any subsequent
     * allocate() — the backing vector may reallocate. Native runtime
     * handlers must re-fetch it after every allocation (or use a
     * RawSpan, which turns a held-across-allocate bug into an
     * InternalError instead of a use-after-free).
     */
    uint8_t *
    raw(uint64_t addr, uint64_t size)
    {
        checkRange(addr, size);
        return bytes_.data() + addr;
    }

    const uint8_t *
    raw(uint64_t addr, uint64_t size) const
    {
        checkRange(addr, size);
        return bytes_.data() + addr;
    }

    /**
     * Scoped, checked borrow of a heap range. While any RawSpan is
     * alive, allocate() asserts (throws InternalError) instead of
     * silently invalidating the borrowed pointer; data() additionally
     * re-validates that no allocation happened since construction.
     */
    class RawSpan
    {
      public:
        RawSpan(const Memory &mem, uint64_t addr, uint64_t size)
            : mem_(&mem), addr_(addr), size_(size),
              generation_(mem.generation_)
        {
            mem.checkRange(addr, size);
            ++mem.rawBorrows_;
        }

        ~RawSpan() { --mem_->rawBorrows_; }

        RawSpan(const RawSpan &) = delete;
        RawSpan &operator=(const RawSpan &) = delete;

        const uint8_t *
        data() const
        {
            reproAssert(generation_ == mem_->generation_,
                        "Memory::RawSpan used after the heap grew");
            return mem_->bytes_.data() + addr_;
        }

        uint64_t size() const { return size_; }

      private:
        const Memory *mem_;
        uint64_t addr_;
        uint64_t size_;
        uint64_t generation_;
    };

  private:
    friend class RawSpan;

    void
    checkRange(uint64_t addr, uint64_t size) const
    {
        // `addr + size` wraps for near-2^64 addresses; compare by
        // subtraction against the heap end instead.
        if (addr < kBase || size > bytes_.size() ||
            addr > bytes_.size() - size) {
            throw FatalError("interpreter memory access out of range");
        }
    }

    /** Address-space cap (way beyond any paper-scale workload); keeps
     *  `addr + size` representable before the resize. */
    static constexpr uint64_t kMaxBytes = uint64_t(1) << 47;

    std::vector<uint8_t> bytes_;
    uint64_t generation_ = 0;
    mutable uint64_t rawBorrows_ = 0;
};

} // namespace repro::interp

#endif // INTERP_MEMORY_H
