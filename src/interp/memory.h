/**
 * @file
 * Flat byte-addressable memory for the IR interpreter.
 *
 * Pointers in interpreted programs are 64-bit offsets into this heap.
 * Address 0 is kept invalid so null-pointer bugs trap.
 */
#ifndef INTERP_MEMORY_H
#define INTERP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/diagnostics.h"

namespace repro::interp {

/** Interpreter heap. */
class Memory
{
  public:
    Memory() : bytes_(kBase, 0) {}

    /** Allocate @p size bytes, 8-byte aligned; returns the address. */
    uint64_t
    allocate(uint64_t size)
    {
        uint64_t addr = (bytes_.size() + 7) & ~uint64_t(7);
        bytes_.resize(addr + size, 0);
        return addr;
    }

    uint64_t size() const { return bytes_.size(); }

    template <typename T>
    T
    load(uint64_t addr) const
    {
        checkRange(addr, sizeof(T));
        T out;
        std::memcpy(&out, bytes_.data() + addr, sizeof(T));
        return out;
    }

    template <typename T>
    void
    store(uint64_t addr, T value)
    {
        checkRange(addr, sizeof(T));
        std::memcpy(bytes_.data() + addr, &value, sizeof(T));
    }

    /** Direct pointer into the heap for bulk native operations. */
    uint8_t *
    raw(uint64_t addr, uint64_t size)
    {
        checkRange(addr, size);
        return bytes_.data() + addr;
    }

    const uint8_t *
    raw(uint64_t addr, uint64_t size) const
    {
        checkRange(addr, size);
        return bytes_.data() + addr;
    }

  private:
    void
    checkRange(uint64_t addr, uint64_t size) const
    {
        if (addr < kBase || addr + size > bytes_.size()) {
            throw FatalError("interpreter memory access out of range");
        }
    }

    static constexpr uint64_t kBase = 64;
    std::vector<uint8_t> bytes_;
};

} // namespace repro::interp

#endif // INTERP_MEMORY_H
